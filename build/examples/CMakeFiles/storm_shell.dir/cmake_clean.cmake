file(REMOVE_RECURSE
  "CMakeFiles/storm_shell.dir/storm_shell.cpp.o"
  "CMakeFiles/storm_shell.dir/storm_shell.cpp.o.d"
  "storm_shell"
  "storm_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
