# Empty dependencies file for storm_shell.
# This may be replaced when dependencies are built.
