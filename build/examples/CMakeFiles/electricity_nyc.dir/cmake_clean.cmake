file(REMOVE_RECURSE
  "CMakeFiles/electricity_nyc.dir/electricity_nyc.cpp.o"
  "CMakeFiles/electricity_nyc.dir/electricity_nyc.cpp.o.d"
  "electricity_nyc"
  "electricity_nyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electricity_nyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
