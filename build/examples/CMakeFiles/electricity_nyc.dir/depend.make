# Empty dependencies file for electricity_nyc.
# This may be replaced when dependencies are built.
