file(REMOVE_RECURSE
  "CMakeFiles/twitter_kde.dir/twitter_kde.cpp.o"
  "CMakeFiles/twitter_kde.dir/twitter_kde.cpp.o.d"
  "twitter_kde"
  "twitter_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
