# Empty compiler generated dependencies file for twitter_kde.
# This may be replaced when dependencies are built.
