# Empty compiler generated dependencies file for trajectory.
# This may be replaced when dependencies are built.
