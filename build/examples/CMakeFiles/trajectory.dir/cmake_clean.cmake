file(REMOVE_RECURSE
  "CMakeFiles/trajectory.dir/trajectory.cpp.o"
  "CMakeFiles/trajectory.dir/trajectory.cpp.o.d"
  "trajectory"
  "trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
