file(REMOVE_RECURSE
  "CMakeFiles/short_text.dir/short_text.cpp.o"
  "CMakeFiles/short_text.dir/short_text.cpp.o.d"
  "short_text"
  "short_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
