# Empty compiler generated dependencies file for short_text.
# This may be replaced when dependencies are built.
