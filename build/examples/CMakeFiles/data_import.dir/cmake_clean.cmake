file(REMOVE_RECURSE
  "CMakeFiles/data_import.dir/data_import.cpp.o"
  "CMakeFiles/data_import.dir/data_import.cpp.o.d"
  "data_import"
  "data_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
