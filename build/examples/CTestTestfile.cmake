# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_electricity_nyc "/root/repo/build/examples/electricity_nyc")
set_tests_properties(example_electricity_nyc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_twitter_kde "/root/repo/build/examples/twitter_kde")
set_tests_properties(example_twitter_kde PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trajectory "/root/repo/build/examples/trajectory")
set_tests_properties(example_trajectory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_short_text "/root/repo/build/examples/short_text")
set_tests_properties(example_short_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_import "/root/repo/build/examples/data_import")
set_tests_properties(example_data_import PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_storm_shell "/root/repo/build/examples/storm_shell")
set_tests_properties(example_storm_shell PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
