# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/storm_util_test[1]_include.cmake")
include("/root/repo/build/tests/storm_geo_test[1]_include.cmake")
include("/root/repo/build/tests/storm_io_test[1]_include.cmake")
include("/root/repo/build/tests/storm_rtree_test[1]_include.cmake")
include("/root/repo/build/tests/storm_sampler_test[1]_include.cmake")
include("/root/repo/build/tests/storm_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/storm_analytics_test[1]_include.cmake")
include("/root/repo/build/tests/storm_storage_test[1]_include.cmake")
include("/root/repo/build/tests/storm_connector_test[1]_include.cmake")
include("/root/repo/build/tests/storm_query_test[1]_include.cmake")
include("/root/repo/build/tests/storm_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/storm_viz_test[1]_include.cmake")
include("/root/repo/build/tests/storm_data_test[1]_include.cmake")
include("/root/repo/build/tests/storm_integration_test[1]_include.cmake")
