# Empty dependencies file for storm_io_test.
# This may be replaced when dependencies are built.
