file(REMOVE_RECURSE
  "CMakeFiles/storm_io_test.dir/io_test.cc.o"
  "CMakeFiles/storm_io_test.dir/io_test.cc.o.d"
  "storm_io_test"
  "storm_io_test.pdb"
  "storm_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
