# Empty compiler generated dependencies file for storm_util_test.
# This may be replaced when dependencies are built.
