file(REMOVE_RECURSE
  "CMakeFiles/storm_util_test.dir/util_test.cc.o"
  "CMakeFiles/storm_util_test.dir/util_test.cc.o.d"
  "storm_util_test"
  "storm_util_test.pdb"
  "storm_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
