# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for storm_analytics_test.
