# Empty dependencies file for storm_analytics_test.
# This may be replaced when dependencies are built.
