file(REMOVE_RECURSE
  "CMakeFiles/storm_analytics_test.dir/analytics_test.cc.o"
  "CMakeFiles/storm_analytics_test.dir/analytics_test.cc.o.d"
  "storm_analytics_test"
  "storm_analytics_test.pdb"
  "storm_analytics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
