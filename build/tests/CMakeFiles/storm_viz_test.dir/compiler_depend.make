# Empty compiler generated dependencies file for storm_viz_test.
# This may be replaced when dependencies are built.
