file(REMOVE_RECURSE
  "CMakeFiles/storm_viz_test.dir/viz_test.cc.o"
  "CMakeFiles/storm_viz_test.dir/viz_test.cc.o.d"
  "storm_viz_test"
  "storm_viz_test.pdb"
  "storm_viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
