file(REMOVE_RECURSE
  "CMakeFiles/storm_estimator_test.dir/estimator_test.cc.o"
  "CMakeFiles/storm_estimator_test.dir/estimator_test.cc.o.d"
  "storm_estimator_test"
  "storm_estimator_test.pdb"
  "storm_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
