# Empty dependencies file for storm_estimator_test.
# This may be replaced when dependencies are built.
