# Empty dependencies file for storm_connector_test.
# This may be replaced when dependencies are built.
