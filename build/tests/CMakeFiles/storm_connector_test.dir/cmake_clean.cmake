file(REMOVE_RECURSE
  "CMakeFiles/storm_connector_test.dir/connector_test.cc.o"
  "CMakeFiles/storm_connector_test.dir/connector_test.cc.o.d"
  "storm_connector_test"
  "storm_connector_test.pdb"
  "storm_connector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_connector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
