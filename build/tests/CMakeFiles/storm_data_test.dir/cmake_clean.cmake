file(REMOVE_RECURSE
  "CMakeFiles/storm_data_test.dir/data_test.cc.o"
  "CMakeFiles/storm_data_test.dir/data_test.cc.o.d"
  "storm_data_test"
  "storm_data_test.pdb"
  "storm_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
