# Empty compiler generated dependencies file for storm_data_test.
# This may be replaced when dependencies are built.
