# Empty compiler generated dependencies file for storm_storage_test.
# This may be replaced when dependencies are built.
