file(REMOVE_RECURSE
  "CMakeFiles/storm_storage_test.dir/storage_test.cc.o"
  "CMakeFiles/storm_storage_test.dir/storage_test.cc.o.d"
  "storm_storage_test"
  "storm_storage_test.pdb"
  "storm_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
