# Empty compiler generated dependencies file for storm_integration_test.
# This may be replaced when dependencies are built.
