file(REMOVE_RECURSE
  "CMakeFiles/storm_integration_test.dir/integration_test.cc.o"
  "CMakeFiles/storm_integration_test.dir/integration_test.cc.o.d"
  "storm_integration_test"
  "storm_integration_test.pdb"
  "storm_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
