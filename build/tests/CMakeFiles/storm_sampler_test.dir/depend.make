# Empty dependencies file for storm_sampler_test.
# This may be replaced when dependencies are built.
