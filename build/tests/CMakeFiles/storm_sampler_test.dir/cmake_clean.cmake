file(REMOVE_RECURSE
  "CMakeFiles/storm_sampler_test.dir/sampler_test.cc.o"
  "CMakeFiles/storm_sampler_test.dir/sampler_test.cc.o.d"
  "storm_sampler_test"
  "storm_sampler_test.pdb"
  "storm_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
