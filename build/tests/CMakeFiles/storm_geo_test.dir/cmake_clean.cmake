file(REMOVE_RECURSE
  "CMakeFiles/storm_geo_test.dir/geo_test.cc.o"
  "CMakeFiles/storm_geo_test.dir/geo_test.cc.o.d"
  "storm_geo_test"
  "storm_geo_test.pdb"
  "storm_geo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
