# Empty compiler generated dependencies file for storm_geo_test.
# This may be replaced when dependencies are built.
