# Empty dependencies file for storm_query_test.
# This may be replaced when dependencies are built.
