# Empty compiler generated dependencies file for storm_rtree_test.
# This may be replaced when dependencies are built.
