file(REMOVE_RECURSE
  "CMakeFiles/storm_rtree_test.dir/rtree_test.cc.o"
  "CMakeFiles/storm_rtree_test.dir/rtree_test.cc.o.d"
  "storm_rtree_test"
  "storm_rtree_test.pdb"
  "storm_rtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
