# Empty compiler generated dependencies file for storm_query.
# This may be replaced when dependencies are built.
