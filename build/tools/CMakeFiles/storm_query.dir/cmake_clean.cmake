file(REMOVE_RECURSE
  "CMakeFiles/storm_query.dir/storm_query.cpp.o"
  "CMakeFiles/storm_query.dir/storm_query.cpp.o.d"
  "storm_query"
  "storm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
