# Empty compiler generated dependencies file for fig6b_short_text.
# This may be replaced when dependencies are built.
