file(REMOVE_RECURSE
  "CMakeFiles/fig6b_short_text.dir/fig6b_short_text.cc.o"
  "CMakeFiles/fig6b_short_text.dir/fig6b_short_text.cc.o.d"
  "fig6b_short_text"
  "fig6b_short_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_short_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
