# Empty compiler generated dependencies file for fig5_kde_convergence.
# This may be replaced when dependencies are built.
