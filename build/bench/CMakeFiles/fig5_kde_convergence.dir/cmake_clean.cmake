file(REMOVE_RECURSE
  "CMakeFiles/fig5_kde_convergence.dir/fig5_kde_convergence.cc.o"
  "CMakeFiles/fig5_kde_convergence.dir/fig5_kde_convergence.cc.o.d"
  "fig5_kde_convergence"
  "fig5_kde_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_kde_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
