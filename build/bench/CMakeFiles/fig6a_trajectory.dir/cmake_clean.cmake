file(REMOVE_RECURSE
  "CMakeFiles/fig6a_trajectory.dir/fig6a_trajectory.cc.o"
  "CMakeFiles/fig6a_trajectory.dir/fig6a_trajectory.cc.o.d"
  "fig6a_trajectory"
  "fig6a_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
