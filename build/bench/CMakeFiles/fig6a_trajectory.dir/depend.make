# Empty dependencies file for fig6a_trajectory.
# This may be replaced when dependencies are built.
