# Empty compiler generated dependencies file for fig3b_accuracy.
# This may be replaced when dependencies are built.
