file(REMOVE_RECURSE
  "CMakeFiles/fig3b_accuracy.dir/fig3b_accuracy.cc.o"
  "CMakeFiles/fig3b_accuracy.dir/fig3b_accuracy.cc.o.d"
  "fig3b_accuracy"
  "fig3b_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
