file(REMOVE_RECURSE
  "CMakeFiles/ablation_level_ratio.dir/ablation_level_ratio.cc.o"
  "CMakeFiles/ablation_level_ratio.dir/ablation_level_ratio.cc.o.d"
  "ablation_level_ratio"
  "ablation_level_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_level_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
