file(REMOVE_RECURSE
  "CMakeFiles/fig3a_query_efficiency.dir/fig3a_query_efficiency.cc.o"
  "CMakeFiles/fig3a_query_efficiency.dir/fig3a_query_efficiency.cc.o.d"
  "fig3a_query_efficiency"
  "fig3a_query_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_query_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
