# Empty dependencies file for fig3a_query_efficiency.
# This may be replaced when dependencies are built.
