# Empty dependencies file for storm.
# This may be replaced when dependencies are built.
