file(REMOVE_RECURSE
  "libstorm.a"
)
