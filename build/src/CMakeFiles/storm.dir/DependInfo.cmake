
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storm/analytics/kde.cc" "src/CMakeFiles/storm.dir/storm/analytics/kde.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/analytics/kde.cc.o.d"
  "/root/repo/src/storm/analytics/kmeans.cc" "src/CMakeFiles/storm.dir/storm/analytics/kmeans.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/analytics/kmeans.cc.o.d"
  "/root/repo/src/storm/analytics/text.cc" "src/CMakeFiles/storm.dir/storm/analytics/text.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/analytics/text.cc.o.d"
  "/root/repo/src/storm/analytics/trajectory.cc" "src/CMakeFiles/storm.dir/storm/analytics/trajectory.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/analytics/trajectory.cc.o.d"
  "/root/repo/src/storm/cluster/coordinator.cc" "src/CMakeFiles/storm.dir/storm/cluster/coordinator.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/cluster/coordinator.cc.o.d"
  "/root/repo/src/storm/cluster/shard.cc" "src/CMakeFiles/storm.dir/storm/cluster/shard.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/cluster/shard.cc.o.d"
  "/root/repo/src/storm/connector/csv.cc" "src/CMakeFiles/storm.dir/storm/connector/csv.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/connector/csv.cc.o.d"
  "/root/repo/src/storm/connector/free_data.cc" "src/CMakeFiles/storm.dir/storm/connector/free_data.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/connector/free_data.cc.o.d"
  "/root/repo/src/storm/connector/importer.cc" "src/CMakeFiles/storm.dir/storm/connector/importer.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/connector/importer.cc.o.d"
  "/root/repo/src/storm/connector/jsonl.cc" "src/CMakeFiles/storm.dir/storm/connector/jsonl.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/connector/jsonl.cc.o.d"
  "/root/repo/src/storm/connector/schema_discovery.cc" "src/CMakeFiles/storm.dir/storm/connector/schema_discovery.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/connector/schema_discovery.cc.o.d"
  "/root/repo/src/storm/data/electricity_gen.cc" "src/CMakeFiles/storm.dir/storm/data/electricity_gen.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/data/electricity_gen.cc.o.d"
  "/root/repo/src/storm/data/osm_gen.cc" "src/CMakeFiles/storm.dir/storm/data/osm_gen.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/data/osm_gen.cc.o.d"
  "/root/repo/src/storm/data/tweet_gen.cc" "src/CMakeFiles/storm.dir/storm/data/tweet_gen.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/data/tweet_gen.cc.o.d"
  "/root/repo/src/storm/data/weather_gen.cc" "src/CMakeFiles/storm.dir/storm/data/weather_gen.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/data/weather_gen.cc.o.d"
  "/root/repo/src/storm/estimator/aggregate.cc" "src/CMakeFiles/storm.dir/storm/estimator/aggregate.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/estimator/aggregate.cc.o.d"
  "/root/repo/src/storm/estimator/confidence.cc" "src/CMakeFiles/storm.dir/storm/estimator/confidence.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/estimator/confidence.cc.o.d"
  "/root/repo/src/storm/estimator/group_by.cc" "src/CMakeFiles/storm.dir/storm/estimator/group_by.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/estimator/group_by.cc.o.d"
  "/root/repo/src/storm/estimator/quantile.cc" "src/CMakeFiles/storm.dir/storm/estimator/quantile.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/estimator/quantile.cc.o.d"
  "/root/repo/src/storm/geo/hilbert.cc" "src/CMakeFiles/storm.dir/storm/geo/hilbert.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/geo/hilbert.cc.o.d"
  "/root/repo/src/storm/io/block_manager.cc" "src/CMakeFiles/storm.dir/storm/io/block_manager.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/io/block_manager.cc.o.d"
  "/root/repo/src/storm/io/buffer_pool.cc" "src/CMakeFiles/storm.dir/storm/io/buffer_pool.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/io/buffer_pool.cc.o.d"
  "/root/repo/src/storm/query/evaluator.cc" "src/CMakeFiles/storm.dir/storm/query/evaluator.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/evaluator.cc.o.d"
  "/root/repo/src/storm/query/lexer.cc" "src/CMakeFiles/storm.dir/storm/query/lexer.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/lexer.cc.o.d"
  "/root/repo/src/storm/query/optimizer.cc" "src/CMakeFiles/storm.dir/storm/query/optimizer.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/optimizer.cc.o.d"
  "/root/repo/src/storm/query/parser.cc" "src/CMakeFiles/storm.dir/storm/query/parser.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/parser.cc.o.d"
  "/root/repo/src/storm/query/session.cc" "src/CMakeFiles/storm.dir/storm/query/session.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/session.cc.o.d"
  "/root/repo/src/storm/query/table.cc" "src/CMakeFiles/storm.dir/storm/query/table.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/table.cc.o.d"
  "/root/repo/src/storm/query/update_manager.cc" "src/CMakeFiles/storm.dir/storm/query/update_manager.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/query/update_manager.cc.o.d"
  "/root/repo/src/storm/rtree/rtree.cc" "src/CMakeFiles/storm.dir/storm/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/rtree/rtree.cc.o.d"
  "/root/repo/src/storm/sampling/ls_tree.cc" "src/CMakeFiles/storm.dir/storm/sampling/ls_tree.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/sampling/ls_tree.cc.o.d"
  "/root/repo/src/storm/sampling/query_first.cc" "src/CMakeFiles/storm.dir/storm/sampling/query_first.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/sampling/query_first.cc.o.d"
  "/root/repo/src/storm/sampling/random_path.cc" "src/CMakeFiles/storm.dir/storm/sampling/random_path.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/sampling/random_path.cc.o.d"
  "/root/repo/src/storm/sampling/rs_tree.cc" "src/CMakeFiles/storm.dir/storm/sampling/rs_tree.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/sampling/rs_tree.cc.o.d"
  "/root/repo/src/storm/sampling/sample_first.cc" "src/CMakeFiles/storm.dir/storm/sampling/sample_first.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/sampling/sample_first.cc.o.d"
  "/root/repo/src/storm/storage/record_store.cc" "src/CMakeFiles/storm.dir/storm/storage/record_store.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/storage/record_store.cc.o.d"
  "/root/repo/src/storm/storage/value.cc" "src/CMakeFiles/storm.dir/storm/storage/value.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/storage/value.cc.o.d"
  "/root/repo/src/storm/util/logging.cc" "src/CMakeFiles/storm.dir/storm/util/logging.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/util/logging.cc.o.d"
  "/root/repo/src/storm/util/rng.cc" "src/CMakeFiles/storm.dir/storm/util/rng.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/util/rng.cc.o.d"
  "/root/repo/src/storm/util/stats.cc" "src/CMakeFiles/storm.dir/storm/util/stats.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/util/stats.cc.o.d"
  "/root/repo/src/storm/util/status.cc" "src/CMakeFiles/storm.dir/storm/util/status.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/util/status.cc.o.d"
  "/root/repo/src/storm/util/time.cc" "src/CMakeFiles/storm.dir/storm/util/time.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/util/time.cc.o.d"
  "/root/repo/src/storm/viz/render.cc" "src/CMakeFiles/storm.dir/storm/viz/render.cc.o" "gcc" "src/CMakeFiles/storm.dir/storm/viz/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
