// storm_server: the standalone STORM serving binary. Loads the synthetic
// demo data sets (the same tables storm_shell serves locally), binds the
// frame-protocol listener, and streams anytime results to RemoteClients
// until SIGINT/SIGTERM.
//
//   ./build/tools/storm_server --port 4317 --metrics-port 9105
//
// Then from another terminal:
//   ./build/examples/storm_shell
//   storm> \connect 127.0.0.1:4317
//
// or scrape the diagnostics plane: http://127.0.0.1:9105/metrics,
// /healthz, /statusz, /tracez, /flightz. docs/SERVER.md documents the
// protocol, admission control, and backpressure semantics;
// docs/OBSERVABILITY.md documents tracing and the flight recorder.
//
// SIGINT stops immediately; SIGTERM drains gracefully — the listener
// closes, new queries are shed, and in-flight streams get up to
// --drain-timeout-ms to finish before the hard stop. Either way the server
// dumps the flight recorder (the last ~1k structured events across every
// thread, in global order) to stderr — the crash-forensics path exercised
// by the chaos tests.
//
// Replicas are just identical processes: the same --shard-index/--num-shards
// pair loads the same deterministic demo partition, so a NetCoordinator
// replica group is N servers started with identical flags on different
// ports.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "storm/obs/flight_recorder.h"
#include "storm/storm.h"
#include "storm/util/failpoint.h"

namespace {

std::atomic<int> g_signal{0};

void HandleSignal(int sig) { g_signal.store(sig); }

// Arrival-order partitioning: shard k of n keeps records i where
// i % n == k. Every shard runs the same deterministic generators, so a
// fleet of `storm_server --num-shards 3 --shard-index k` processes holds
// exactly one disjoint partition of each demo table — the layout
// NetCoordinator's stratified merge assumes, and the same rule its
// round-robin InsertBatch produces online.
void LoadDemoTables(storm::Session* session, bool tiny, int shard_index,
                    int num_shards) {
  using namespace storm;
  auto keep = [&](std::vector<Value> docs) {
    if (num_shards <= 1) return docs;
    std::vector<Value> mine;
    for (size_t i = shard_index; i < docs.size();
         i += static_cast<size_t>(num_shards)) {
      mine.push_back(std::move(docs[i]));
    }
    return mine;
  };
  {
    TweetOptions o;
    o.num_tweets = tiny ? 2'000 : 100'000;
    TweetGenerator gen(o);
    std::vector<Value> docs;
    for (const Tweet& t : gen.Generate()) {
      docs.push_back(TweetGenerator::ToDocument(t));
    }
    (void)session->CreateTable("tweets", keep(std::move(docs)));
  }
  {
    WeatherOptions o;
    o.num_stations = tiny ? 40 : 400;
    o.readings_per_station = tiny ? 24 : 96;
    WeatherGenerator gen(o);
    auto stations = gen.GenerateStations();
    std::vector<Value> docs;
    for (const WeatherReading& r : gen.GenerateReadings(stations)) {
      docs.push_back(WeatherGenerator::ToDocument(r));
    }
    (void)session->CreateTable("mesowest", keep(std::move(docs)));
  }
  {
    OsmOptions o;
    o.num_points = tiny ? 5'000 : 200'000;
    OsmLikeGenerator gen(o);
    std::vector<Value> docs;
    for (const OsmPoint& p : gen.Generate()) {
      docs.push_back(OsmLikeGenerator::ToDocument(p));
    }
    (void)session->CreateTable("osm", keep(std::move(docs)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace storm;

  ServerOptions options;
  options.port = 4317;
  options.metrics_port = -1;
  bool tiny = false;
  int shard_index = 0;
  int num_shards = 1;
  double drain_timeout_ms = 5000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      options.metrics_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--query-threads") == 0 && i + 1 < argc) {
      options.query_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-queued") == 0 && i + 1 < argc) {
      options.max_queued_queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-sample-rate") == 0 &&
               i + 1 < argc) {
      options.trace_sample_rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      options.slow_query_threshold_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--shard-index") == 0 && i + 1 < argc) {
      shard_index = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--num-shards") == 0 && i + 1 < argc) {
      num_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0 &&
               i + 1 < argc) {
      drain_timeout_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--failpoint") == 0 && i + 1 < argc) {
      // Arms a process-local fault at startup (failpoint registries are
      // per-process, so this is how exactly one shard of a fleet gets
      // slow or flaky): --failpoint server.conn.slow:latency_ms=40
      auto parsed = ParseFailpointSpec(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--failpoint: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      Failpoints::Default().Configure(parsed->first, parsed->second);
      std::printf("armed failpoint %s\n", parsed->first.c_str());
    } else if (std::strcmp(argv[i], "--no-sample-cache") == 0) {
      options.sample_cache = false;
    } else if (std::strcmp(argv[i], "--sample-cache-bytes") == 0 &&
               i + 1 < argc) {
      options.sample_cache_bytes =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;  // small demo tables: fast startup for CI / smoke runs
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--metrics-port N] "
                   "[--query-threads N] [--max-queued N] "
                   "[--trace-sample-rate F] [--slow-query-ms F] "
                   "[--shard-index K --num-shards N] "
                   "[--drain-timeout-ms F] "
                   "[--no-sample-cache] [--sample-cache-bytes N] "
                   "[--failpoint site:key=value,...] [--tiny]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_shards < 1 || shard_index < 0 || shard_index >= num_shards) {
    std::fprintf(stderr, "need 0 <= --shard-index < --num-shards\n");
    return 2;
  }

  if (num_shards > 1) {
    std::printf("loading demo data sets%s (shard %d of %d)...\n",
                tiny ? " (tiny)" : "", shard_index, num_shards);
  } else {
    std::printf("loading demo data sets%s...\n", tiny ? " (tiny)" : "");
  }
  Session session;
  LoadDemoTables(&session, tiny, shard_index, num_shards);
  for (const std::string& name : session.TableNames()) {
    auto table = session.GetTable(name);
    if (table.ok()) {
      std::printf("  %-10s %llu records\n", name.c_str(),
                  static_cast<unsigned long long>((*table)->size()));
    }
  }

  StormServer server(&session, options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on port %d", server.port());
  if (server.metrics_port() >= 0) {
    std::printf(
        ", diagnostics on http://0.0.0.0:%d"
        "{/metrics,/healthz,/statusz,/tracez,/flightz}",
        server.metrics_port());
  }
  std::printf(" (SIGINT to stop, SIGTERM to drain)\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (g_signal.load() == SIGTERM) {
    // Graceful drain: stop accepting, shed new queries, and give in-flight
    // streams up to the timeout to deliver their final RESULT.
    std::printf("draining (up to %.0f ms)...\n", drain_timeout_ms);
    std::fflush(stdout);
    server.Drain(drain_timeout_ms);
  } else {
    std::printf("shutting down...\n");
    server.Stop();
  }

  // Crash/shutdown forensics: the most recent structured events from every
  // thread, merged into one global order.
  std::fprintf(stderr, "--- flight recorder (last events, oldest first) ---\n%s",
               FlightRecorder::Default().DumpText().c_str());
  std::fprintf(stderr, "--- end flight recorder ---\n");

  const auto& adm = server.admission();
  std::printf("served %llu queries (%llu shed); accounting drift: %s\n",
              static_cast<unsigned long long>(adm.admitted_total()),
              static_cast<unsigned long long>(adm.shed_total()),
              adm.admitted_total() == adm.released_total() && adm.in_flight() == 0
                  ? "none"
                  : "DETECTED");
  return 0;
}
