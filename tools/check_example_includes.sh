#!/usr/bin/env sh
# Checks that the examples compile against only public STORM headers.
#
# Public surface = storm/client.h, storm/storm.h, and the per-layer headers
# the umbrella re-exports. Engine internals — storm/wal/* and storm/rtree/*
# node machinery — must not leak into example code: an example needing them
# is a sign the facade is missing something.
#
# Usage: tools/check_example_includes.sh [examples_dir]
# Exits non-zero listing every offending include.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
examples_dir=${1:-"$repo_root/examples"}

status=0
for f in "$examples_dir"/*.cpp; do
  [ -e "$f" ] || continue
  bad=$(grep -nE '#include[[:space:]]*"storm/(wal|rtree)/' "$f" || true)
  if [ -n "$bad" ]; then
    echo "ERROR: $f includes internal headers:" >&2
    echo "$bad" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "OK: examples include only public headers"
fi
exit $status
