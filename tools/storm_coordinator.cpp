// storm_coordinator: the fleet-facing STORM serving binary. Connects to N
// storm_server shards holding disjoint partitions, and serves the same
// frame protocol itself — a RemoteClient cannot tell a coordinator from a
// single server. Queries fan out to every live shard and the shards'
// anytime PROGRESS streams merge into one correctly-weighted estimate;
// dead/slow/flapping shards are evicted, the result is annotated degraded
// with its surviving-weight coverage, and shards that recover are
// readmitted automatically (docs/SERVER.md, "Fleet serving").
//
//   ./build/tools/storm_server --port 4401 --shard-index 0 --num-shards 3 &
//   ./build/tools/storm_server --port 4402 --shard-index 1 --num-shards 3 &
//   ./build/tools/storm_server --port 4403 --shard-index 2 --num-shards 3 &
//   ./build/tools/storm_coordinator --port 4317 --shard 127.0.0.1:4401
//       --shard 127.0.0.1:4402 --shard 127.0.0.1:4403
//
// Then point any client at 4317:
//   ./build/tools/storm_query --connect 127.0.0.1:4317
//       "SELECT AVG(retweets) FROM tweets CONFIDENCE 0.95"
//
// With --replicas R the shard list is read as consecutive groups of R
// identical servers (same --shard-index/--num-shards flags, different
// ports): inserts fan to every replica of the owning partition, queries
// pick one live fresh replica per partition and fail over mid-stream if it
// dies — exact answers survive any single-replica death (docs/SERVER.md,
// "Replica groups").
//
// SIGINT stops immediately; SIGTERM drains — in-flight merged queries get
// up to --drain-timeout-ms to finish streaming before the hard stop.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storm/cluster/net_coordinator.h"
#include "storm/obs/flight_recorder.h"
#include "storm/server/server.h"

namespace {

std::atomic<int> g_signal{0};

void HandleSignal(int sig) { g_signal.store(sig); }

bool ParseEndpoint(const char* arg, storm::ShardEndpoint* out) {
  const char* colon = std::strrchr(arg, ':');
  if (colon == nullptr || colon == arg) return false;
  out->host.assign(arg, colon - arg);
  out->port = std::atoi(colon + 1);
  return out->port > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace storm;

  ServerOptions server_options;
  server_options.port = 4317;
  server_options.metrics_port = -1;
  NetCoordinatorOptions coord_options;
  std::vector<ShardEndpoint> shards;
  double drain_timeout_ms = 5000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      server_options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      server_options.metrics_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--query-threads") == 0 && i + 1 < argc) {
      server_options.query_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-queued") == 0 && i + 1 < argc) {
      server_options.max_queued_queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      ShardEndpoint ep;
      if (!ParseEndpoint(argv[++i], &ep)) {
        std::fprintf(stderr, "--shard wants host:port, got '%s'\n", argv[i]);
        return 2;
      }
      shards.push_back(std::move(ep));
    } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 && i + 1 < argc) {
      coord_options.heartbeat_interval_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--failure-threshold") == 0 &&
               i + 1 < argc) {
      coord_options.failure_threshold = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rpc-deadline-ms") == 0 &&
               i + 1 < argc) {
      coord_options.rpc_deadline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      coord_options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      coord_options.replicas = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--replay-limit") == 0 && i + 1 < argc) {
      coord_options.replay_limit_records =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0 &&
               i + 1 < argc) {
      drain_timeout_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s --shard host:port [--shard host:port ...] "
                   "[--port N] [--metrics-port N] [--query-threads N] "
                   "[--max-queued N] [--heartbeat-ms F] "
                   "[--failure-threshold N] [--rpc-deadline-ms F] "
                   "[--seed N] [--replicas R] [--replay-limit N] "
                   "[--drain-timeout-ms F]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards.empty()) {
    std::fprintf(stderr, "need at least one --shard host:port\n");
    return 2;
  }

  NetCoordinator coordinator(shards, coord_options);
  Status st = coordinator.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "coordinator start: %s\n", st.ToString().c_str());
    return 1;
  }
  if (coordinator.replicas() > 1) {
    std::printf(
        "coordinating %zu shards as %zu partitions x %zu replicas "
        "(%d live at start)\n",
        coordinator.shard_count(), coordinator.partition_count(),
        coordinator.replicas(), coordinator.live_shards());
  } else {
    std::printf("coordinating %zu shards (%d live at start)\n",
                coordinator.shard_count(), coordinator.live_shards());
  }

  StormServer server(&coordinator, server_options);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    coordinator.Stop();
    return 1;
  }
  std::printf("serving on port %d", server.port());
  if (server.metrics_port() >= 0) {
    std::printf(
        ", diagnostics on http://0.0.0.0:%d"
        "{/metrics,/healthz,/statusz,/tracez,/flightz}",
        server.metrics_port());
  }
  std::printf(" (SIGINT to stop, SIGTERM to drain)\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (g_signal.load() == SIGTERM) {
    std::printf("draining (up to %.0f ms)...\n", drain_timeout_ms);
    std::fflush(stdout);
    server.Drain(drain_timeout_ms);
  } else {
    std::printf("shutting down...\n");
    server.Stop();
  }
  coordinator.Stop();

  std::fprintf(stderr,
               "--- flight recorder (last events, oldest first) ---\n%s",
               FlightRecorder::Default().DumpText().c_str());
  std::fprintf(stderr, "--- end flight recorder ---\n");

  const auto& adm = server.admission();
  std::printf("served %llu queries (%llu shed); accounting drift: %s\n",
              static_cast<unsigned long long>(adm.admitted_total()),
              static_cast<unsigned long long>(adm.shed_total()),
              adm.admitted_total() == adm.released_total() &&
                      adm.in_flight() == 0
                  ? "none"
                  : "DETECTED");
  return 0;
}
