// storm_soak: the server soak harness CI runs. Starts a StormServer on an
// ephemeral port, then drives it with N concurrent RemoteClients sending
// mixed traffic — streamed queries, mid-stream cancels, abrupt socket
// drops mid-QUERY (no CANCEL, no await: the rudest client possible), batch
// inserts, pings, metrics scrapes — for STORM_SOAK_SECONDS (default 5). At
// the end it checks a clean shutdown and exact admission accounting:
//
//   admitted_total == released_total  and  in_flight == 0
//
// i.e. no shed-request accounting drift. Any protocol error, unexpected
// status, or drift makes the process exit nonzero, which fails the CI job.
//
//   STORM_SOAK_SECONDS=60 STORM_SOAK_CLIENTS=8 ./build/tools/storm_soak
//
// --overlap (or STORM_SOAK_OVERLAP=1) switches the streamed-query arm to
// panning viewports that share a hot region, so every client's queries
// overlap and the shared sample-reservoir cache (docs/CACHING.md) is
// constantly probed, published to, and invalidated by the insert arm —
// the cache's concurrency soak. The cache counters print at the end.
//
// STORM_FUZZ_SEED perturbs every worker's traffic mix (default 0x50AC), and
// is echoed up front so a red run reproduces exactly. Each worker traces a
// fraction of its queries; on failure the harness prints the slowest traced
// query's id and its joined client+server profile, so the triage starts from
// the trace rather than from a bare exit code.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storm/server/protocol.h"
#include "storm/server/socket_io.h"
#include "storm/storm.h"

namespace {

using namespace storm;

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0'
             ? std::strtoull(v, nullptr, 0)
             : fallback;
}

struct WorkerStats {
  uint64_t queries = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t abandoned = 0;
  uint64_t inserts = 0;
  uint64_t errors = 0;
  std::string first_error;
  // Slowest completed query's joined client+server profile, for the
  // trace summary a failing run prints.
  double slowest_ms = 0.0;
  std::shared_ptr<const QueryProfile> slowest_profile;
};

void Fail(WorkerStats* stats, const std::string& what) {
  ++stats->errors;
  if (stats->first_error.empty()) stats->first_error = what;
}

// The rudest client possible: dial, send one long QUERY frame, read a few
// bytes of the PROGRESS stream, then close the socket. No CANCEL, no
// await, no goodbye. The server must notice the dead peer mid-stream,
// cancel the query, and release its admission slot — the settled-accounting
// check at shutdown (admitted == released, in_flight == 0) catches any
// slot this path leaks.
void AbandonMidQuery(int port, WorkerStats* stats) {
  auto fd = TcpConnect("127.0.0.1", port);
  if (!fd.ok()) {
    Fail(stats, "abandon connect: " + fd.status().ToString());
    return;
  }
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM soak SAMPLES 2000000";
  req.progress_interval_ms = 1;
  std::string frame = EncodeFrame(FrameType::kQuery, /*id=*/1,
                                  EncodeQueryRequest(req));
  Status st = SendAll(fd->get(), frame.data(), frame.size());
  if (!st.ok()) {
    Fail(stats, "abandon send: " + st.ToString());
    return;
  }
  // Wait for the first streamed bytes so the query is provably running
  // (admitted, sampling) before the socket vanishes under it.
  char buf[64];
  (void)RecvSome(fd->get(), buf, sizeof(buf), /*timeout_ms=*/2000);
  ++stats->abandoned;
  // fd closes here — an abrupt RST/EOF from the server's point of view.
}

// --overlap traffic: panning 2.5x2.5 viewports whose origins walk a grid
// inside the shared hot region [2,8]^2, plus an occasional full hot-region
// overview. Every box lies inside the previous overview's box, so the
// sample-reservoir cache (docs/CACHING.md) sees constant cross-client
// overlap while the insert arm keeps bumping the table epoch under it —
// the publish/probe/invalidate races this soak exists to shake out.
std::string OverlapQuery(Rng* rng) {
  if (rng->UniformInt(0, 8) == 0) {
    return "SELECT AVG(v) FROM soak REGION(2, 2, 8, 8) SAMPLES 40000 "
           "USING RSTREE";
  }
  double ox = 2.0 + 0.5 * static_cast<double>(rng->UniformInt(0, 7));
  double oy = 2.0 + 0.5 * static_cast<double>(rng->UniformInt(0, 7));
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "SELECT AVG(v) FROM soak REGION(%.1f, %.1f, %.1f, %.1f) "
                "SAMPLES 20000 USING RSTREE",
                ox, oy, ox + 2.5, oy + 2.5);
  return buf;
}

void ClientWorker(int port, int worker, uint64_t seed, bool overlap,
                  std::atomic<bool>* stop, WorkerStats* stats) {
  Rng rng(seed + static_cast<uint64_t>(worker));
  RemoteClient client;
  Status st = client.Connect("127.0.0.1", port);
  if (!st.ok()) {
    Fail(stats, "connect: " + st.ToString());
    return;
  }
  client.set_progress_interval_ms(5);
  client.set_trace_sample_rate(0.05);

  while (!stop->load(std::memory_order_acquire)) {
    const int dice = static_cast<int>(rng.UniformInt(0, 10));
    if (dice < 5) {
      // Streamed query, run to completion.
      auto result = client.Execute(
          overlap ? OverlapQuery(&rng) : "SELECT AVG(v) FROM soak SAMPLES 20000",
          ExecOptions().WithProgress([](const QueryProgress&) { return true; }));
      if (result.ok()) {
        ++stats->queries;
        if (result->profile != nullptr &&
            result->profile->total_ms() > stats->slowest_ms) {
          stats->slowest_ms = result->profile->total_ms();
          stats->slowest_profile = result->profile;
        }
      } else if (result.status().code() == StatusCode::kUnavailable) {
        ++stats->shed;  // admission control at work, not an error
      } else {
        Fail(stats, "query: " + result.status().ToString());
      }
    } else if (dice < 7) {
      // Query cancelled from inside the progress stream.
      int batches = 0;
      auto result = client.Execute(
          "SELECT AVG(v) FROM soak SAMPLES 2000000",
          ExecOptions().WithProgress(
              [&batches](const QueryProgress&) { return ++batches < 2; }));
      if (result.ok()) {
        ++stats->cancelled;
      } else if (result.status().code() == StatusCode::kUnavailable) {
        ++stats->shed;
      } else {
        Fail(stats, "cancel: " + result.status().ToString());
      }
    } else if (dice < 9) {
      // Batch insert; the table keeps growing while queries sample it.
      std::vector<Value> docs;
      for (int i = 0; i < 8; ++i) {
        double x = rng.UniformDouble() * 10.0;
        double y = rng.UniformDouble() * 10.0;
        docs.push_back(*Value::Parse("{\"x\": " + std::to_string(x) +
                                     ", \"y\": " + std::to_string(y) +
                                     ", \"v\": " + std::to_string(x + y) +
                                     ", \"t\": 0}"));
      }
      BatchInsertResult r = client.InsertBatch("soak", docs);
      if (r.status.ok()) {
        ++stats->inserts;
      } else {
        Fail(stats, "insert: " + r.status.ToString());
      }
    } else if (dice == 9) {
      Status ping = client.Ping();
      if (!ping.ok()) Fail(stats, "ping: " + ping.ToString());
      auto metrics = client.Metrics();
      if (!metrics.ok()) Fail(stats, "metrics: " + metrics.status().ToString());
    } else {
      // Separate throwaway connection: the worker's own client stays sane.
      AbandonMidQuery(port, stats);
    }
    if (stats->errors > 10) return;  // hopeless; stop burning time
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = EnvInt("STORM_SOAK_SECONDS", 5);
  const int num_clients = EnvInt("STORM_SOAK_CLIENTS", 8);
  const uint64_t fuzz_seed = EnvU64("STORM_FUZZ_SEED", 0x50AC);
  bool overlap = EnvInt("STORM_SOAK_OVERLAP", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overlap") == 0) {
      overlap = true;
    } else {
      std::fprintf(stderr, "usage: %s [--overlap]\n", argv[0]);
      return 2;
    }
  }

  // Seed table: uniform points with a numeric attribute to aggregate.
  Session session;
  {
    Rng rng(7);
    std::vector<Value> docs;
    for (int i = 0; i < 50'000; ++i) {
      double x = rng.UniformDouble() * 10.0;
      double y = rng.UniformDouble() * 10.0;
      docs.push_back(*Value::Parse("{\"x\": " + std::to_string(x) +
                                   ", \"y\": " + std::to_string(y) +
                                   ", \"v\": " + std::to_string(x + y) +
                                   ", \"t\": 0}"));
    }
    Status st = session.CreateTable("soak", docs);
    if (!st.ok()) {
      std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  ServerOptions options;
  options.port = 0;
  options.query_threads = 4;
  options.max_queued_queries = 8;  // small queue: exercise load shedding
  StormServer server(&session, options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "soaking %d clients against port %d for %d s%s (STORM_FUZZ_SEED=%llu)\n",
      num_clients, server.port(), seconds,
      overlap ? " [overlap: shared hot region]" : "",
      static_cast<unsigned long long>(fuzz_seed));

  std::atomic<bool> stop{false};
  std::vector<WorkerStats> stats(static_cast<size_t>(num_clients));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_clients));
  for (int i = 0; i < num_clients; ++i) {
    workers.emplace_back(ClientWorker, server.port(), i, fuzz_seed, overlap,
                         &stop, &stats[i]);
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : workers) t.join();

  server.Stop();

  WorkerStats total;
  for (const WorkerStats& s : stats) {
    total.queries += s.queries;
    total.shed += s.shed;
    total.cancelled += s.cancelled;
    total.abandoned += s.abandoned;
    total.inserts += s.inserts;
    total.errors += s.errors;
    if (total.first_error.empty()) total.first_error = s.first_error;
    if (s.slowest_ms > total.slowest_ms) {
      total.slowest_ms = s.slowest_ms;
      total.slowest_profile = s.slowest_profile;
    }
  }
  const AdmissionController& adm = server.admission();
  std::printf(
      "done: %llu queries, %llu cancelled, %llu abandoned mid-stream, "
      "%llu shed, %llu insert batches, %llu errors\n",
      static_cast<unsigned long long>(total.queries),
      static_cast<unsigned long long>(total.cancelled),
      static_cast<unsigned long long>(total.abandoned),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.inserts),
      static_cast<unsigned long long>(total.errors));
  std::printf("admission: admitted=%llu released=%llu shed=%llu in_flight=%d\n",
              static_cast<unsigned long long>(adm.admitted_total()),
              static_cast<unsigned long long>(adm.released_total()),
              static_cast<unsigned long long>(adm.shed_total()),
              adm.in_flight());
  const SampleReservoirCache& cache = SampleReservoirCache::Default();
  std::printf(
      "sample cache: hits=%llu misses=%llu published=%llu evictions=%llu "
      "reservoirs=%zu bytes=%zu\n",
      static_cast<unsigned long long>(cache.hits()),
      static_cast<unsigned long long>(cache.misses()),
      static_cast<unsigned long long>(cache.published()),
      static_cast<unsigned long long>(cache.evictions()),
      cache.reservoirs(), cache.bytes());

  int rc = 0;
  if (total.errors > 0) {
    std::fprintf(stderr, "FAIL: %llu worker errors (first: %s)\n",
                 static_cast<unsigned long long>(total.errors),
                 total.first_error.c_str());
    rc = 1;
  }
  if (adm.admitted_total() != adm.released_total() || adm.in_flight() != 0) {
    std::fprintf(stderr, "FAIL: admission accounting drift\n");
    rc = 1;
  }
  if (server.active_connections() != 0) {
    std::fprintf(stderr, "FAIL: connections leaked across Stop()\n");
    rc = 1;
  }
  if (total.queries + total.cancelled == 0) {
    std::fprintf(stderr, "FAIL: no queries completed\n");
    rc = 1;
  }
  if (rc != 0) {
    // Start triage from the slowest traced query rather than a bare exit
    // code: its id correlates with server logs and /tracez, and the joined
    // profile shows where the time went on both sides of the wire.
    std::fprintf(stderr, "rerun with STORM_FUZZ_SEED=%llu to reproduce\n",
                 static_cast<unsigned long long>(fuzz_seed));
    if (total.slowest_profile != nullptr) {
      std::fprintf(stderr,
                   "slowest query: %.1f ms, trace %s; joined profile:\n%s",
                   total.slowest_ms,
                   total.slowest_profile->trace.trace_id_hex().c_str(),
                   total.slowest_profile->ToString().c_str());
    }
  }
  if (rc == 0) std::printf("PASS\n");
  return rc;
}
