// storm_query: one-shot command-line client — import a CSV/TSV/JSONL file
// and run a STORM query against it, streaming online estimates to stderr
// and printing the final answer to stdout.
//
//   storm_query data.csv "SELECT AVG(temp_c) FROM data REGION(-115,37,-105,43) ERROR 2%"
//   storm_query tweets.jsonl "SELECT TOPTERMS(10, text) FROM data" --quiet
//
// With `--connect host:port` instead of a file, the query runs against a
// remote storm_server (or storm_coordinator fronting a whole fleet — the
// wire protocol is identical), streaming the server's PROGRESS frames as
// the live estimate:
//
//   storm_query --connect 127.0.0.1:4317 "SELECT AVG(retweets) FROM tweets"
//
// In remote mode, `--insert-osm N` replaces the query: it streams N
// deterministic OSM-like records (a non-default seed, so they are distinct
// from any server's demo load) into the remote `osm` table via chunked
// INSERT_BATCH frames — the write-path driver the fleet chaos scripts use
// to exercise coordinator insert fan-out and replica replay:
//
//   storm_query --connect 127.0.0.1:4317 --insert-osm 600
//
// The table is always registered as "data" in file mode. Exit code 0 on
// success, 1 on any error. `--quiet` suppresses the progress stream;
// `--explain` prints the plan instead of running (equivalent to an EXPLAIN
// prefix); `--profile` dumps the query's span/IO/convergence trace as JSON
// to stdout after the answer.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "storm/server/remote_client.h"
#include "storm/storm.h"

namespace {

using namespace storm;

int Fail(const Status& st, const char* what) {
  std::fprintf(stderr, "storm_query: %s: %s\n", what, st.ToString().c_str());
  return 1;
}

void PrintFinal(const QueryResult& result) {
  if (result.explain_only) {
    std::printf("plan: %s (%s)\nestimated_cardinality: %.0f\n",
                result.strategy.c_str(), result.decision.reason.c_str(),
                result.decision.estimated_cardinality);
    return;
  }
  switch (result.task) {
    case QueryTask::kAggregate:
      if (result.groups.empty()) {
        std::printf("%s\n", result.ci.ToString().c_str());
      } else {
        for (const GroupRow& g : result.groups) {
          std::printf("%lld\t%s\n", static_cast<long long>(g.key),
                      g.ci.ToString().c_str());
        }
      }
      break;
    case QueryTask::kQuantile:
      std::printf("%s  interval [%g, %g]\n", result.ci.ToString().c_str(),
                  result.ci_lower, result.ci_upper);
      break;
    case QueryTask::kKde:
      std::printf("%s", RenderHeatmap(result.kde_map, result.kde_width,
                                      result.kde_height)
                            .c_str());
      break;
    case QueryTask::kTopTerms:
      for (const TermEstimate& t : result.terms) {
        std::printf("%s\t%.4f ± %.4f\n", t.term.c_str(), t.frequency.estimate,
                    t.frequency.half_width);
      }
      break;
    case QueryTask::kCluster:
      for (const Point2& c : result.centers) {
        std::printf("%g\t%g\n", c[0], c[1]);
      }
      break;
    case QueryTask::kTrajectory:
      for (const TimedPoint& f : result.trajectory) {
        std::printf("%g\t%g\t%g\n", f.t, f.position[0], f.position[1]);
      }
      break;
  }
  std::fprintf(stderr, "[%llu samples, %.1f ms, %s%s]\n",
               static_cast<unsigned long long>(result.samples),
               result.elapsed_ms, result.strategy.c_str(),
               result.exhausted ? ", exact" : "");
  if (result.degraded) {
    std::fprintf(stderr, "[degraded: ~%.0f%% of the data reachable (%s)]\n",
                 result.coverage * 100.0, result.decision.reason.c_str());
  }
}

int ConnectTo(const char* endpoint, RemoteClient* client) {
  const char* colon = std::strrchr(endpoint, ':');
  if (colon == nullptr || colon == endpoint) {
    std::fprintf(stderr, "--connect wants host:port, got '%s'\n", endpoint);
    return 1;
  }
  Status st = client->Connect(std::string(endpoint, colon - endpoint),
                              std::atoi(colon + 1));
  if (!st.ok()) return Fail(st, endpoint);
  return 0;
}

int RunRemoteInsert(const char* endpoint, uint64_t count, bool quiet) {
  RemoteClient client;
  if (int rc = ConnectTo(endpoint, &client); rc != 0) return rc;

  OsmOptions gen_options;
  gen_options.num_points = count;
  gen_options.seed = 7777;  // distinct stream from the demo load's default
  OsmLikeGenerator gen(gen_options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }

  const size_t kChunk = 200;
  uint64_t inserted = 0;
  for (size_t off = 0; off < docs.size(); off += kChunk) {
    std::vector<Value> chunk(
        docs.begin() + off,
        docs.begin() + std::min(off + kChunk, docs.size()));
    BatchInsertResult result = client.InsertBatch("osm", chunk);
    if (!result.status.ok()) return Fail(result.status, "insert");
    inserted += chunk.size();
    if (!quiet) {
      std::fprintf(stderr, "... inserted %llu/%llu\n",
                   static_cast<unsigned long long>(inserted),
                   static_cast<unsigned long long>(count));
    }
  }
  std::printf("inserted %llu records into osm\n",
              static_cast<unsigned long long>(inserted));
  return 0;
}

int RunRemote(const char* endpoint, const std::string& query, bool quiet,
              bool profile) {
  RemoteClient client;
  if (int rc = ConnectTo(endpoint, &client); rc != 0) return rc;

  uint64_t last = 0;
  ExecOptions options;
  options.profile = profile;
  options.progress = [&](const QueryProgress& p) {
    if (!quiet && p.samples >= last + 1024) {
      std::fprintf(stderr, "... k=%llu %s\n",
                   static_cast<unsigned long long>(p.samples),
                   p.ci.ToString().c_str());
      last = p.samples;
    }
    return true;
  };
  auto result = client.Execute(query, options);
  if (!result.ok()) return Fail(result.status(), "query");
  PrintFinal(*result);
  if (profile && result->profile != nullptr) {
    std::printf("%s\n", result->profile->ToJson().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: storm_query <file.csv|.tsv|.jsonl> \"QUERY\" "
                 "[--quiet] [--explain] [--profile]\n"
                 "       storm_query --connect host:port \"QUERY\" "
                 "[--quiet] [--explain] [--profile]\n"
                 "       storm_query --connect host:port --insert-osm N "
                 "[--quiet]\n"
                 "The table name in the query is always 'data'.\n");
    return 1;
  }
  bool remote = std::strcmp(argv[1], "--connect") == 0;
  if (remote && argc < 4) {
    std::fprintf(stderr, "usage: storm_query --connect host:port \"QUERY\"\n");
    return 1;
  }
  std::string path = argv[remote ? 2 : 1];
  std::string query = argv[remote ? 3 : 2];
  bool quiet = false;
  bool profile = false;
  if (remote && query == "--insert-osm") {
    if (argc < 5) {
      std::fprintf(stderr, "--insert-osm wants a record count\n");
      return 1;
    }
    const uint64_t count = std::strtoull(argv[4], nullptr, 10);
    for (int i = 5; i < argc; ++i) {
      quiet = quiet || std::strcmp(argv[i], "--quiet") == 0;
    }
    return RunRemoteInsert(path.c_str(), count, quiet);
  }
  for (int i = remote ? 4 : 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      query = "EXPLAIN " + query;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (remote) return RunRemote(path.c_str(), query, quiet, profile);

  Session session;
  Stopwatch load_watch;
  Status st = session.ImportFile("data", path);
  if (!st.ok()) return Fail(st, path.c_str());
  auto table = session.GetTable("data");
  if (table.ok() && !quiet) {
    std::fprintf(stderr, "loaded %llu records in %.0f ms (%s)\n",
                 static_cast<unsigned long long>((*table)->size()),
                 load_watch.ElapsedMillis(),
                 (*table)->schema().ToString().c_str());
  }

  uint64_t last = 0;
  auto result = session.Execute(
      query, ExecOptions().WithProgress([&](const QueryProgress& p) {
        if (!quiet && p.samples >= last + 1024) {
          std::fprintf(stderr, "... k=%llu %s\n",
                       static_cast<unsigned long long>(p.samples),
                       p.ci.ToString().c_str());
          last = p.samples;
        }
        return true;
      }));
  if (!result.ok()) return Fail(result.status(), "query");
  PrintFinal(*result);
  if (profile && result->profile != nullptr) {
    std::printf("%s\n", result->profile->ToJson().c_str());
  }
  return 0;
}
