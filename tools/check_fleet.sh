#!/usr/bin/env bash
# Fleet-serving smoke check, run by the CI `fleet` job.
#
# Brings up a real 3-shard fleet — three storm_server processes over
# disjoint thirds of the tiny demo tables, fronted by storm_coordinator
# serving the same frame protocol — and drives it through the full
# degradation cycle with storm_query as the client:
#
#   1. healthy:   COUNT(*) over all shards is exact (3/3, no degraded tag);
#   2. kill -9:   one shard (chosen by STORM_CHAOS_SEED) dies mid-fleet;
#                 after eviction the same query still answers, annotated
#                 degraded with its surviving-weight coverage and a 2/3
#                 strategy tag;
#   3. recovery:  the shard restarts on the same port, the heartbeat
#                 readmits it, and the query is exact 3/3 again;
#   4. shutdown:  SIGTERM must produce the flight-recorder dump and settled
#                 admission accounting ("drift: none") on the way down.
#
# Any wrong estimate, missing degradation tag, failed readmission, or
# accounting drift fails the script (and the CI job).
#
#   tools/check_fleet.sh [server_bin] [coordinator_bin] [query_bin]

set -euo pipefail

SERVER_BIN=${1:-./build/tools/storm_server}
COORD_BIN=${2:-./build/tools/storm_coordinator}
QUERY_BIN=${3:-./build/tools/storm_query}
SEED=${STORM_CHAOS_SEED:-1}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    if kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for f in "$workdir"/*.out; do
    echo "--- $f ---" >&2
    cat "$f" >&2 || true
  done
  exit 1
}

await_port() { # logfile budget_tenths -> prints port
  local log=$1 budget=${2:-300} i port
  for ((i = 0; i < budget; i++)); do
    port=$(sed -n 's/.*serving on port \([0-9][0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  return 1
}

start_shard() { # index port(0=ephemeral) -> pid via $shard_pid
  local index=$1 port=$2
  "$SERVER_BIN" --tiny --port "$port" --shard-index "$index" --num-shards 3 \
    >"$workdir/shard$index.out" 2>&1 &
  shard_pid=$!
  disown "$shard_pid"  # keep bash's job-control "Killed" noise out of the log
  await_port "$workdir/shard$index.out" >/dev/null || return 1
}

# --- 1. The fleet: three shards + the coordinator. ---
shard_ports=()
shard_pids=()
for i in 0 1 2; do
  start_shard "$i" 0 || fail "shard $i did not start"
  shard_ports+=("$(await_port "$workdir/shard$i.out")")
  shard_pids+=("$shard_pid")
  pids+=("$shard_pid")
done
echo "shards up on ports ${shard_ports[*]}"

"$COORD_BIN" --port 0 --seed "$SEED" \
  --heartbeat-ms 100 --failure-threshold 2 \
  --shard "127.0.0.1:${shard_ports[0]}" \
  --shard "127.0.0.1:${shard_ports[1]}" \
  --shard "127.0.0.1:${shard_ports[2]}" \
  >"$workdir/coord.out" 2>"$workdir/coord.err" &
coord_pid=$!
pids+=("$coord_pid")
coord_port=$(await_port "$workdir/coord.out") || fail "coordinator did not start"
grep -q "coordinating 3 shards" "$workdir/coord.out" \
  || fail "coordinator did not report its fleet"
echo "coordinator up on port $coord_port (seed $SEED)"

# The exhaustive plan: SAMPLES far above the table size flips the optimizer
# to query-first without replacement, so COUNT(*) over live shards is exact.
QUERY="SELECT COUNT(*) FROM osm SAMPLES 100000000"

run_query() { # outfile
  "$QUERY_BIN" --connect "127.0.0.1:$coord_port" "$QUERY" >"$1" 2>&1
}

# Healthy fleet: the tiny demo osm table is 5000 rows, split 3 ways.
run_query "$workdir/q1.out" || fail "healthy query failed"
grep -q "5000" "$workdir/q1.out" || fail "healthy COUNT is not exact 5000"
grep -q "(3/3" "$workdir/q1.out" || fail "healthy query not tagged 3/3"
grep -q "degraded" "$workdir/q1.out" && fail "healthy query tagged degraded"
echo "healthy: COUNT exact 5000, 3/3"

# --- 2. kill -9 one shard, seed-chosen; no goodbye, no FIN handshake. ---
victim=$((SEED % 3))
victim_port=${shard_ports[$victim]}
kill -9 "${shard_pids[$victim]}"
wait "${shard_pids[$victim]}" 2>/dev/null || true
echo "killed shard $victim (port $victim_port)"

# Eviction needs failure_threshold=2 consecutive misses at 100 ms cadence;
# poll by querying until the coordinator reports a degraded 2/3 answer.
degraded=0
for _ in $(seq 1 100); do
  run_query "$workdir/q2.out" || true
  if grep -q "(2/3" "$workdir/q2.out" && grep -q "degraded" "$workdir/q2.out"; then
    degraded=1
    break
  fi
  sleep 0.1
done
[[ "$degraded" == 1 ]] || fail "no degraded 2/3 answer after shard kill"
grep -q "5000" "$workdir/q2.out" && fail "degraded COUNT still claims 5000"
echo "degraded: $(grep -o '\[degraded[^]]*\]' "$workdir/q2.out" | head -1)"

# --- 3. restart the victim on the same port; heartbeat readmits it. ---
start_shard "$victim" "$victim_port" || fail "shard $victim did not restart"
pids+=("$shard_pid")
recovered=0
for _ in $(seq 1 100); do
  run_query "$workdir/q3.out" || true
  if grep -q "(3/3" "$workdir/q3.out" && grep -q "5000" "$workdir/q3.out"; then
    recovered=1
    break
  fi
  sleep 0.1
done
[[ "$recovered" == 1 ]] || fail "fleet did not recover to exact 3/3"
grep -q "degraded" "$workdir/q3.out" && fail "recovered query still degraded"
echo "recovered: COUNT exact 5000, 3/3"

# --- 4. clean shutdown: flight recorder + settled admission accounting. ---
kill -TERM "$coord_pid"
wait "$coord_pid" || fail "coordinator exited nonzero on SIGTERM"
grep -q -- "--- flight recorder" "$workdir/coord.err" \
  || fail "no flight-recorder dump on SIGTERM"
grep -q "accounting drift: none" "$workdir/coord.out" \
  || fail "admission accounting drifted"

echo "PASS: fleet survives kill -9, degrades honestly, readmits, settles"
