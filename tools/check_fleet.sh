#!/usr/bin/env bash
# Fleet-serving smoke check, run by the CI `fleet` job.
#
# Brings up a real 3-shard fleet — three storm_server processes over
# disjoint thirds of the tiny demo tables, fronted by storm_coordinator
# serving the same frame protocol — and drives it through the full
# degradation cycle with storm_query as the client:
#
#   1. healthy:   COUNT(*) over all shards is exact (3/3, no degraded tag);
#   2. kill -9:   one shard (chosen by STORM_CHAOS_SEED) dies mid-fleet;
#                 after eviction the same query still answers, annotated
#                 degraded with its surviving-weight coverage and a 2/3
#                 strategy tag;
#   3. recovery:  the shard restarts on the same port, the heartbeat
#                 readmits it, and the query is exact 3/3 again;
#   4. shutdown:  SIGTERM must produce the flight-recorder dump and settled
#                 admission accounting ("drift: none") on the way down.
#
# A second fleet then checks replica groups — 2 partitions x 2 replicas
# behind `storm_coordinator --replicas 2`:
#
#   5. healthy:   COUNT(*) is exact with a (2/2 partitions x2 replicas) tag;
#   6. kill -9:   one replica (seed-chosen) dies; the very next query must
#                 STILL be exact and non-degraded — the partition fails
#                 over to the surviving sibling, coverage stays 1.0;
#   7. replay:    storm_query --insert-osm streams inserts through the
#                 coordinator while the replica is down (the survivor
#                 applies them, the dead replica's share is queued), the
#                 replica restarts on the same port, and the per-replica
#                 direct COUNTs must converge — the replay queue caught
#                 the restarted replica up;
#   8. drain:     SIGTERM drains the replica coordinator: "draining" notice,
#                 flight-recorder dump, settled admission accounting.
#
# Any wrong estimate, missing degradation tag, failed readmission, lost
# insert, or accounting drift fails the script (and the CI job).
#
#   tools/check_fleet.sh [server_bin] [coordinator_bin] [query_bin]

set -euo pipefail

SERVER_BIN=${1:-./build/tools/storm_server}
COORD_BIN=${2:-./build/tools/storm_coordinator}
QUERY_BIN=${3:-./build/tools/storm_query}
SEED=${STORM_CHAOS_SEED:-1}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    if kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for f in "$workdir"/*.out; do
    echo "--- $f ---" >&2
    cat "$f" >&2 || true
  done
  exit 1
}

await_port() { # logfile budget_tenths -> prints port
  local log=$1 budget=${2:-300} i port
  for ((i = 0; i < budget; i++)); do
    port=$(sed -n 's/.*serving on port \([0-9][0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  return 1
}

start_shard() { # index port(0=ephemeral) -> pid via $shard_pid
  local index=$1 port=$2
  "$SERVER_BIN" --tiny --port "$port" --shard-index "$index" --num-shards 3 \
    >"$workdir/shard$index.out" 2>&1 &
  shard_pid=$!
  disown "$shard_pid"  # keep bash's job-control "Killed" noise out of the log
  await_port "$workdir/shard$index.out" >/dev/null || return 1
}

# --- 1. The fleet: three shards + the coordinator. ---
shard_ports=()
shard_pids=()
for i in 0 1 2; do
  start_shard "$i" 0 || fail "shard $i did not start"
  shard_ports+=("$(await_port "$workdir/shard$i.out")")
  shard_pids+=("$shard_pid")
  pids+=("$shard_pid")
done
echo "shards up on ports ${shard_ports[*]}"

"$COORD_BIN" --port 0 --seed "$SEED" \
  --heartbeat-ms 100 --failure-threshold 2 \
  --shard "127.0.0.1:${shard_ports[0]}" \
  --shard "127.0.0.1:${shard_ports[1]}" \
  --shard "127.0.0.1:${shard_ports[2]}" \
  >"$workdir/coord.out" 2>"$workdir/coord.err" &
coord_pid=$!
pids+=("$coord_pid")
coord_port=$(await_port "$workdir/coord.out") || fail "coordinator did not start"
grep -q "coordinating 3 shards" "$workdir/coord.out" \
  || fail "coordinator did not report its fleet"
echo "coordinator up on port $coord_port (seed $SEED)"

# The exhaustive plan: SAMPLES far above the table size flips the optimizer
# to query-first without replacement, so COUNT(*) over live shards is exact.
QUERY="SELECT COUNT(*) FROM osm SAMPLES 100000000"

run_query() { # outfile
  "$QUERY_BIN" --connect "127.0.0.1:$coord_port" "$QUERY" >"$1" 2>&1
}

# Healthy fleet: the tiny demo osm table is 5000 rows, split 3 ways.
run_query "$workdir/q1.out" || fail "healthy query failed"
grep -q "5000" "$workdir/q1.out" || fail "healthy COUNT is not exact 5000"
grep -q "(3/3" "$workdir/q1.out" || fail "healthy query not tagged 3/3"
grep -q "degraded" "$workdir/q1.out" && fail "healthy query tagged degraded"
echo "healthy: COUNT exact 5000, 3/3"

# --- 2. kill -9 one shard, seed-chosen; no goodbye, no FIN handshake. ---
victim=$((SEED % 3))
victim_port=${shard_ports[$victim]}
kill -9 "${shard_pids[$victim]}"
wait "${shard_pids[$victim]}" 2>/dev/null || true
echo "killed shard $victim (port $victim_port)"

# Eviction needs failure_threshold=2 consecutive misses at 100 ms cadence;
# poll by querying until the coordinator reports a degraded 2/3 answer.
degraded=0
for _ in $(seq 1 100); do
  run_query "$workdir/q2.out" || true
  if grep -q "(2/3" "$workdir/q2.out" && grep -q "degraded" "$workdir/q2.out"; then
    degraded=1
    break
  fi
  sleep 0.1
done
[[ "$degraded" == 1 ]] || fail "no degraded 2/3 answer after shard kill"
grep -q "5000" "$workdir/q2.out" && fail "degraded COUNT still claims 5000"
echo "degraded: $(grep -o '\[degraded[^]]*\]' "$workdir/q2.out" | head -1)"

# --- 3. restart the victim on the same port; heartbeat readmits it. ---
start_shard "$victim" "$victim_port" || fail "shard $victim did not restart"
pids+=("$shard_pid")
recovered=0
for _ in $(seq 1 100); do
  run_query "$workdir/q3.out" || true
  if grep -q "(3/3" "$workdir/q3.out" && grep -q "5000" "$workdir/q3.out"; then
    recovered=1
    break
  fi
  sleep 0.1
done
[[ "$recovered" == 1 ]] || fail "fleet did not recover to exact 3/3"
grep -q "degraded" "$workdir/q3.out" && fail "recovered query still degraded"
echo "recovered: COUNT exact 5000, 3/3"

# --- 4. clean shutdown: flight recorder + settled admission accounting. ---
kill -TERM "$coord_pid"
wait "$coord_pid" || fail "coordinator exited nonzero on SIGTERM"
grep -q -- "--- flight recorder" "$workdir/coord.err" \
  || fail "no flight-recorder dump on SIGTERM"
grep -q "accounting drift: none" "$workdir/coord.out" \
  || fail "admission accounting drifted"

echo "phase 1-4 PASS: fleet survives kill -9, degrades honestly, readmits, settles"

# --- 5. replica groups: 2 partitions x 2 replicas stay EXACT through death.
# Replicas of a partition are identical processes (same --shard-index, same
# deterministic demo data); the shard list is consecutive replica groups.
start_replica() { # name index port(0=ephemeral) -> pid via $shard_pid
  local name=$1 index=$2 port=$3
  "$SERVER_BIN" --tiny --port "$port" --shard-index "$index" --num-shards 2 \
    >"$workdir/replica_$name.out" 2>&1 &
  shard_pid=$!
  disown "$shard_pid"
  await_port "$workdir/replica_$name.out" >/dev/null || return 1
}

rep_names=(p0a p0b p1a p1b)
rep_idx=(0 0 1 1)
rep_ports=()
rep_pids=()
for i in 0 1 2 3; do
  start_replica "${rep_names[$i]}" "${rep_idx[$i]}" 0 \
    || fail "replica ${rep_names[$i]} did not start"
  rep_ports+=("$(await_port "$workdir/replica_${rep_names[$i]}.out")")
  rep_pids+=("$shard_pid")
  pids+=("$shard_pid")
done
echo "replica fleet up on ports ${rep_ports[*]}"

"$COORD_BIN" --port 0 --seed "$SEED" --replicas 2 \
  --heartbeat-ms 100 --failure-threshold 2 \
  --shard "127.0.0.1:${rep_ports[0]}" \
  --shard "127.0.0.1:${rep_ports[1]}" \
  --shard "127.0.0.1:${rep_ports[2]}" \
  --shard "127.0.0.1:${rep_ports[3]}" \
  >"$workdir/rcoord.out" 2>"$workdir/rcoord.err" &
rcoord_pid=$!
pids+=("$rcoord_pid")
rcoord_port=$(await_port "$workdir/rcoord.out") \
  || fail "replica coordinator did not start"
grep -q "2 partitions x 2 replicas" "$workdir/rcoord.out" \
  || fail "coordinator did not report its replica topology"
echo "replica coordinator up on port $rcoord_port"

run_rquery() { # outfile
  "$QUERY_BIN" --connect "127.0.0.1:$rcoord_port" "$QUERY" >"$1" 2>&1
}

run_rquery "$workdir/rq1.out" || fail "healthy replica query failed"
grep -q "5000" "$workdir/rq1.out" || fail "replica COUNT is not exact 5000"
grep -q "(2/2 partitions x2 replicas)" "$workdir/rq1.out" \
  || fail "replica query not tagged 2/2 partitions"
grep -q "degraded" "$workdir/rq1.out" && fail "healthy replica query degraded"
echo "replica healthy: COUNT exact 5000, 2/2 partitions"

# --- 6. kill -9 one replica of partition 0; the VERY NEXT query must still
# be exact — whether the coordinator has evicted it yet or not, the
# partition fails over to the surviving sibling. No degraded tag allowed.
rvictim=$((SEED % 2))
kill -9 "${rep_pids[$rvictim]}"
wait "${rep_pids[$rvictim]}" 2>/dev/null || true
echo "killed replica ${rep_names[$rvictim]} (port ${rep_ports[$rvictim]})"

run_rquery "$workdir/rq2.out" || fail "query during replica death failed"
grep -q "5000" "$workdir/rq2.out" \
  || fail "failover lost exactness (COUNT != 5000)"
grep -q "(2/2 partitions x2 replicas)" "$workdir/rq2.out" \
  || fail "failover query not tagged 2/2 partitions"
grep -q "degraded" "$workdir/rq2.out" \
  && fail "replica death degraded the answer (coverage must stay 1.0)"
echo "failover: replica down, COUNT still exact 5000, coverage 1.0"

# --- 7. insert-replay catch-up: stream inserts through the coordinator
# while the replica is down, restart it, and require the two partition-0
# replicas' direct COUNTs to converge (the replay queue drained into it).
"$QUERY_BIN" --connect "127.0.0.1:$rcoord_port" --insert-osm 600 --quiet \
  >"$workdir/rins.out" 2>&1 || fail "insert through coordinator failed"
grep -q "inserted 600 records" "$workdir/rins.out" \
  || fail "insert run did not confirm 600 records"

run_rquery "$workdir/rq3.out" || fail "post-insert query failed"
grep -q "5600" "$workdir/rq3.out" \
  || fail "post-insert COUNT is not exact 5600"
grep -q "degraded" "$workdir/rq3.out" && fail "post-insert query degraded"
echo "inserts: COUNT exact 5600 with one replica down"

start_replica "${rep_names[$rvictim]}" "${rep_idx[$rvictim]}" \
  "${rep_ports[$rvictim]}" || fail "replica did not restart"
pids+=("$shard_pid")

count_at() { # port -> prints the final COUNT estimate
  "$QUERY_BIN" --connect "127.0.0.1:$1" "$QUERY" 2>/dev/null \
    | head -1 | awk '{print $1}'
}
converged=0
for _ in $(seq 1 150); do
  a=$(count_at "${rep_ports[0]}" || true)
  b=$(count_at "${rep_ports[1]}" || true)
  if [[ -n "$a" && "$a" == "$b" && "$a" -gt 2500 ]]; then
    converged=1
    break
  fi
  sleep 0.1
done
[[ "$converged" == 1 ]] \
  || fail "replay did not converge (partition-0 replicas: ${a:-?} vs ${b:-?})"
echo "replay: restarted replica caught up ($a == $b records)"

# --- 8. drain the replica coordinator: notice, flight dump, settled books.
kill -TERM "$rcoord_pid"
wait "$rcoord_pid" || fail "replica coordinator exited nonzero on SIGTERM"
grep -q "draining" "$workdir/rcoord.out" \
  || fail "no draining notice on SIGTERM"
grep -q -- "--- flight recorder" "$workdir/rcoord.err" \
  || fail "no flight-recorder dump from replica coordinator"
grep -q "accounting drift: none" "$workdir/rcoord.out" \
  || fail "replica coordinator admission accounting drifted"

echo "PASS: fleet survives kill -9 twice over — plain shards degrade" \
     "honestly and readmit; replica groups stay exact and replay catch-up"
