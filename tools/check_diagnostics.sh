#!/usr/bin/env bash
# Diagnostics-plane smoke check, run by the CI `diagnostics` job.
#
# Starts a real storm_server (tiny data set, ephemeral ports, 100% trace
# sampling), drives a short remote workload through storm_shell, then curls
# every diagnostics endpoint:
#
#   /metrics  - Prometheus text: every line must parse (HELP/TYPE comments
#               or name{labels} value samples), no raw newlines in labels
#   /healthz  - JSON with "status"
#   /statusz  - JSON with build/admission/connection state
#   /tracez   - JSON array of recently sampled traces (non-empty at 100%
#               sampling after the workload)
#   /flightz  - JSON array of recent flight-recorder events
#
# Any non-200, malformed body, or a missing flight-recorder dump on SIGTERM
# fails the script (and the CI job).
#
#   tools/check_diagnostics.sh [server_bin] [shell_bin]

set -euo pipefail

SERVER_BIN=${1:-./build/tools/storm_server}
SHELL_BIN=${2:-./build/examples/storm_shell}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- server stdout ---" >&2
  cat "$workdir/stdout" >&2 || true
  echo "--- server stderr ---" >&2
  cat "$workdir/stderr" >&2 || true
  exit 1
}

"$SERVER_BIN" --tiny --port 0 --metrics-port 0 \
  --trace-sample-rate 1.0 --slow-query-ms 0.001 \
  >"$workdir/stdout" 2>"$workdir/stderr" &
server_pid=$!

for _ in $(seq 1 300); do
  grep -q "serving on port" "$workdir/stdout" 2>/dev/null && break
  kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
grep -q "serving on port" "$workdir/stdout" || fail "server did not start in time"

port=$(sed -n 's/.*serving on port \([0-9][0-9]*\).*/\1/p' "$workdir/stdout" | head -1)
http_port=$(sed -n 's|.*http://0\.0\.0\.0:\([0-9][0-9]*\).*|\1|p' "$workdir/stdout" | head -1)
[[ -n "$port" && -n "$http_port" ]] || fail "could not parse ports from server output"
echo "server up: protocol port $port, diagnostics port $http_port"

# Short remote workload: the diagnostics must describe real traffic. The
# shell's client samples every trace (STORM_TRACE_SAMPLE_RATE=1) so /tracez
# is guaranteed to hold entries afterwards.
printf '\\connect 127.0.0.1:%s\nSELECT AVG(altitude) FROM osm SAMPLES 2000\nSELECT COUNT(*) FROM tweets SAMPLES 2000\nSELECT AVG(temperature) FROM mesowest SAMPLES 1000\n\\quit\n' "$port" \
  | STORM_TRACE_SAMPLE_RATE=1 "$SHELL_BIN" >"$workdir/shell.out" 2>&1 \
  || fail "remote workload failed: $(cat "$workdir/shell.out")"
grep -q "samples" "$workdir/shell.out" || fail "workload produced no results"

for endpoint in metrics healthz statusz tracez flightz; do
  code=$(curl -fsS -o "$workdir/$endpoint.body" -w "%{http_code}" \
    "http://127.0.0.1:$http_port/$endpoint") \
    || fail "curl /$endpoint failed"
  [[ "$code" == "200" ]] || fail "/$endpoint returned HTTP $code"
  echo "GET /$endpoint -> 200 ($(wc -c < "$workdir/$endpoint.body") bytes)"
done

# /metrics: every line must be a comment or a well-formed sample.
python3 - "$workdir/metrics.body" <<'EOF'
import re, sys
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'              # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"'  # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})?'  # more labels
    r' (NaN|[-+]?(Inf|[0-9.eE+-]+))$')        # value
comment = re.compile(r'^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*$')
bad = []
body = open(sys.argv[1]).read()
for n, line in enumerate(body.splitlines(), 1):
    if not line:
        continue
    if line.startswith('#'):
        if not comment.match(line):
            bad.append((n, line))
    elif not sample.match(line):
        bad.append((n, line))
if not body.strip():
    sys.exit('metrics body is empty')
if bad:
    sys.exit('malformed Prometheus lines: %r' % bad[:5])
print('metrics: %d lines parse clean' % len(body.splitlines()))
EOF

# JSON endpoints must parse; /tracez must hold sampled traces (100% rate),
# /flightz must hold flight events from the workload.
python3 - "$workdir" <<'EOF'
import json, sys
d = sys.argv[1]
healthz = json.load(open(d + '/healthz.body'))
assert healthz.get('status') in ('ok', 'degraded'), healthz
statusz = json.load(open(d + '/statusz.body'))
for key in ('build', 'uptime_s', 'admission', 'connections'):
    assert key in statusz, 'statusz missing %r' % key
assert statusz['admission']['admitted'] >= 3, statusz['admission']
tracez = json.load(open(d + '/tracez.body'))
assert isinstance(tracez, list) and tracez, 'tracez empty at 100% sampling'
assert any(p.get('trace_id') for p in tracez), 'tracez entries lack trace ids'
flightz = json.load(open(d + '/flightz.body'))
assert isinstance(flightz, list) and flightz, 'flightz empty after workload'
events = {e.get('event') for e in flightz}
assert 'query_admit' in events, 'no query_admit in flight events: %r' % events
print('healthz/statusz/tracez/flightz: JSON parses, contents sane')
EOF

# SIGTERM must produce the flight-recorder dump on the way down.
kill -TERM "$server_pid"
wait "$server_pid" || fail "server exited nonzero on SIGTERM"
server_pid=""
grep -q -- "--- flight recorder" "$workdir/stderr" \
  || fail "no flight-recorder dump on SIGTERM"
grep -q -- "--- end flight recorder" "$workdir/stderr" \
  || fail "flight-recorder dump truncated"

echo "PASS: diagnostics plane healthy"
