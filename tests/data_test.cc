// Tests for the synthetic workload generators: determinism, domain bounds,
// document conversion, and the structural properties the experiments rely
// on (clustering skew, event windows, trajectory coherence, temperature
// ground truth).

#include <gtest/gtest.h>

#include <cmath>

#include "storm/data/electricity_gen.h"
#include "storm/data/osm_gen.h"
#include "storm/data/tweet_gen.h"
#include "storm/data/weather_gen.h"
#include "storm/util/stats.h"

namespace storm {
namespace {

// ---------------------------------------------------------------------------
// OSM-like points
// ---------------------------------------------------------------------------

TEST(OsmGenTest, DeterministicForSeed) {
  OsmOptions options;
  options.num_points = 1000;
  auto a = OsmLikeGenerator(options).Generate();
  auto b = OsmLikeGenerator(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].lon, b[i].lon);
    ASSERT_EQ(a[i].altitude, b[i].altitude);
  }
  options.seed = 999;
  auto c = OsmLikeGenerator(options).Generate();
  EXPECT_NE(a[0].lon, c[0].lon);
}

TEST(OsmGenTest, PointsInsideBounds) {
  OsmOptions options;
  options.num_points = 5000;
  for (const OsmPoint& p : OsmLikeGenerator(options).Generate()) {
    ASSERT_GE(p.lon, options.lon_min);
    ASSERT_LE(p.lon, options.lon_max);
    ASSERT_GE(p.lat, options.lat_min);
    ASSERT_LE(p.lat, options.lat_max);
  }
}

TEST(OsmGenTest, SpatiallySkewed) {
  // The generator must produce heavy clustering: the densest 5% of a grid
  // should hold far more than 5% of the mass.
  OsmOptions options;
  options.num_points = 20000;
  auto points = OsmLikeGenerator(options).Generate();
  constexpr int kGrid = 20;
  std::vector<uint64_t> cells(kGrid * kGrid, 0);
  for (const OsmPoint& p : points) {
    int x = std::min(kGrid - 1, static_cast<int>((p.lon - options.lon_min) /
                                                 (options.lon_max - options.lon_min) *
                                                 kGrid));
    int y = std::min(kGrid - 1, static_cast<int>((p.lat - options.lat_min) /
                                                 (options.lat_max - options.lat_min) *
                                                 kGrid));
    ++cells[static_cast<size_t>(y) * kGrid + x];
  }
  std::sort(cells.begin(), cells.end(), std::greater<>());
  uint64_t top5pct = 0;
  for (size_t i = 0; i < cells.size() / 20; ++i) top5pct += cells[i];
  EXPECT_GT(static_cast<double>(top5pct) / points.size(), 0.20);
}

TEST(OsmGenTest, AltitudeCorrelatesWithPosition) {
  // Terrain is smooth: nearby points have similar altitude (far below the
  // global spread).
  OsmOptions options;
  options.num_points = 5000;
  auto points = OsmLikeGenerator(options).Generate();
  RunningStat global, local;
  for (size_t i = 1; i < points.size(); ++i) {
    global.Push(points[i].altitude);
  }
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const OsmPoint& a = points[rng.Uniform(points.size())];
    // Find a nearby partner.
    for (size_t j = 0; j < points.size(); ++j) {
      const OsmPoint& b = points[j];
      if (&a != &b && std::fabs(a.lon - b.lon) < 0.2 &&
          std::fabs(a.lat - b.lat) < 0.2) {
        local.Push(std::fabs(a.altitude - b.altitude));
        break;
      }
    }
  }
  ASSERT_GT(local.count(), 100u);
  EXPECT_LT(local.mean(), global.stddev());
}

TEST(OsmGenTest, DocumentConversion) {
  OsmPoint p;
  p.id = 42;
  p.lon = -100.5;
  p.lat = 40.25;
  p.altitude = 1234.5;
  Value doc = OsmLikeGenerator::ToDocument(p);
  EXPECT_EQ(doc.Find("id")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(doc.Find("lon")->AsDouble(), -100.5);
  EXPECT_DOUBLE_EQ(doc.Find("altitude")->AsDouble(), 1234.5);
}

TEST(OsmGenTest, EntriesCarryAltitudeColumn) {
  OsmOptions options;
  options.num_points = 100;
  auto points = OsmLikeGenerator(options).Generate();
  std::vector<double> altitude;
  auto entries = OsmLikeGenerator::ToEntries(points, &altitude);
  ASSERT_EQ(entries.size(), 100u);
  ASSERT_EQ(altitude.size(), 100u);
  for (const auto& e : entries) {
    EXPECT_EQ(altitude[e.id], points[e.id].altitude);
    EXPECT_EQ(e.point[2], 0.0);  // purely spatial
  }
}

// ---------------------------------------------------------------------------
// Tweets
// ---------------------------------------------------------------------------

TEST(TweetGenTest, TimestampsMonotoneWithinSpan) {
  TweetOptions options;
  options.num_tweets = 5000;
  options.enable_event = false;
  auto tweets = TweetGenerator(options).Generate();
  for (size_t i = 1; i < tweets.size(); ++i) {
    ASSERT_LE(tweets[i - 1].t, tweets[i].t);
  }
  EXPECT_GE(tweets.front().t, options.t_min);
  EXPECT_LE(tweets.back().t, options.t_max);
}

TEST(TweetGenTest, EventWindowUsesEventVocabulary) {
  TweetOptions options;
  options.num_tweets = 50000;
  auto tweets = TweetGenerator(options).Generate();
  uint64_t in_event = 0, event_docs_with_snowish = 0;
  uint64_t outside_with_snowish = 0, outside = 0;
  auto has_event_word = [](const std::string& text) {
    return text.find("snow") != std::string::npos ||
           text.find("outage") != std::string::npos ||
           text.find("blizzard") != std::string::npos;
  };
  for (const Tweet& t : tweets) {
    bool inside = options.event_region.Contains(Point2(t.lon, t.lat)) &&
                  t.t >= options.event_t_min && t.t <= options.event_t_max;
    if (inside) {
      ++in_event;
      event_docs_with_snowish += has_event_word(t.text);
    } else {
      ++outside;
      outside_with_snowish += has_event_word(t.text);
    }
  }
  ASSERT_GT(in_event, 100u);  // the boost guarantees volume
  double inside_rate = static_cast<double>(event_docs_with_snowish) / in_event;
  double outside_rate = static_cast<double>(outside_with_snowish) / outside;
  // ~52% of event tweets mention one of the three probe words (0.6 word
  // rate over 3/18 of the vocabulary, 4-10 words); use a safe margin.
  EXPECT_GT(inside_rate, 0.35);
  EXPECT_LT(outside_rate, 0.01);
}

TEST(TweetGenTest, RegularUserTrajectoriesAreCoherent) {
  // Consecutive tweets of the same (regular) user are close in space most
  // of the time — the property trajectory reconstruction relies on.
  TweetOptions options;
  options.num_tweets = 30000;
  options.num_users = 50;
  options.enable_event = false;
  auto tweets = TweetGenerator(options).Generate();
  RunningStat hop;
  std::vector<int64_t> last_seen(50, -1);
  std::vector<Point2> last_pos(50);
  for (const Tweet& t : tweets) {
    size_t u = static_cast<size_t>(t.user);
    Point2 pos(t.lon, t.lat);
    if (last_seen[u] >= 0) hop.Push(last_pos[u].Distance(pos));
    last_seen[u] = static_cast<int64_t>(t.id);
    last_pos[u] = pos;
  }
  // Median-ish: mean hop should be far below the ~30-degree scale of
  // cross-country jumps.
  EXPECT_LT(hop.mean(), 3.0);
}

TEST(TweetGenTest, DocumentConversionRoundTrips) {
  TweetOptions options;
  options.num_tweets = 10;
  auto tweets = TweetGenerator(options).Generate();
  Value doc = TweetGenerator::ToDocument(tweets[3]);
  EXPECT_EQ(doc.Find("user")->AsInt(), tweets[3].user);
  EXPECT_EQ(doc.Find("text")->AsString(), tweets[3].text);
  auto entries = TweetGenerator::ToEntries(tweets);
  EXPECT_EQ(entries[3].point[2], tweets[3].t);
}

// ---------------------------------------------------------------------------
// Weather
// ---------------------------------------------------------------------------

TEST(WeatherGenTest, StationsCoverTheGrid) {
  WeatherOptions options;
  options.num_stations = 100;
  auto stations = WeatherGenerator(options).GenerateStations();
  ASSERT_EQ(stations.size(), 100u);
  // All four quadrants of the bbox are populated.
  int quadrants[4] = {};
  double mid_lon = (options.lon_min + options.lon_max) / 2;
  double mid_lat = (options.lat_min + options.lat_max) / 2;
  for (const WeatherStation& s : stations) {
    ++quadrants[(s.lon > mid_lon ? 1 : 0) + (s.lat > mid_lat ? 2 : 0)];
  }
  for (int q : quadrants) EXPECT_GT(q, 5);
}

TEST(WeatherGenTest, ReadingsFollowGroundTruth) {
  WeatherOptions options;
  options.num_stations = 50;
  options.readings_per_station = 20;
  WeatherGenerator gen(options);
  auto stations = gen.GenerateStations();
  auto readings = gen.GenerateReadings(stations);
  ASSERT_EQ(readings.size(), 1000u);
  RunningStat residual;
  for (const WeatherReading& r : readings) {
    const WeatherStation& s = stations[static_cast<size_t>(r.station_id)];
    double expected =
        WeatherGenerator::TrueTemperature(s.lon, s.lat, s.elevation, r.t);
    residual.Push(r.temperature - expected);
  }
  EXPECT_NEAR(residual.mean(), 0.0, 0.3);
  EXPECT_NEAR(residual.stddev(), 1.5, 0.4);
}

TEST(WeatherGenTest, ColderNorthAndHigher) {
  // Latitude gradient: northern stations are colder on average.
  WeatherOptions options;
  options.num_stations = 200;
  options.readings_per_station = 10;
  WeatherGenerator gen(options);
  auto stations = gen.GenerateStations();
  auto readings = gen.GenerateReadings(stations);
  RunningStat north, south;
  for (const WeatherReading& r : readings) {
    (r.lat > 40 ? north : south).Push(r.temperature);
  }
  EXPECT_LT(north.mean(), south.mean());
}

// ---------------------------------------------------------------------------
// Electricity
// ---------------------------------------------------------------------------

TEST(ElectricityGenTest, UsageHigherInTheCore) {
  ElectricityOptions options;
  options.num_units = 800;
  options.readings_per_unit = 10;
  auto readings = ElectricityGenerator(options).Generate();
  double core_lon = options.lon_min + 0.3 * (options.lon_max - options.lon_min);
  double core_lat = options.lat_min + 0.65 * (options.lat_max - options.lat_min);
  RunningStat core, edge;
  for (const ElectricityReading& r : readings) {
    double dist = std::hypot(r.lon - core_lon, r.lat - core_lat);
    (dist < 0.05 ? core : edge).Push(r.usage);
  }
  ASSERT_GT(core.count(), 50u);
  EXPECT_GT(core.mean(), edge.mean());
}

TEST(ElectricityGenTest, WinterHeatingTapersOff) {
  ElectricityOptions options;
  options.num_units = 300;
  options.readings_per_unit = 60;
  auto readings = ElectricityGenerator(options).Generate();
  double mid = (options.t_min + options.t_max) / 2;
  RunningStat early, late;
  for (const ElectricityReading& r : readings) {
    (r.t < mid ? early : late).Push(r.usage);
  }
  EXPECT_GT(early.mean(), late.mean());
}

TEST(ElectricityGenTest, NonNegativeUsage) {
  ElectricityOptions options;
  options.num_units = 200;
  options.readings_per_unit = 20;
  for (const ElectricityReading& r : ElectricityGenerator(options).Generate()) {
    ASSERT_GE(r.usage, 0.0);
  }
}

}  // namespace
}  // namespace storm
