// Tests for the simulated cluster: partitioning, routing consistency,
// distributed counts, merged-sampler uniformity and exhaustion, and the
// locality benefit of Hilbert-range partitioning.

#include <gtest/gtest.h>

#include <unordered_set>

#include "storm/cluster/coordinator.h"
#include "storm/util/stats.h"

namespace storm {
namespace {

using Entry = RTree<3>::Entry;

std::vector<Entry> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Entry> data;
  data.reserve(n);
  for (RecordId i = 0; i < n; ++i) {
    data.push_back({Point3(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100),
                           rng.UniformDouble(0, 1000)),
                    i});
  }
  return data;
}

class ClusterPartitioningTest : public ::testing::TestWithParam<Partitioning> {};

TEST_P(ClusterPartitioningTest, PartitionIsCompleteAndDisjoint) {
  auto data = MakeData(5000, 601);
  Cluster cluster(data, 4, GetParam(), {}, 603);
  EXPECT_EQ(cluster.num_shards(), 4);
  uint64_t total = 0;
  for (int s = 0; s < 4; ++s) total += cluster.shard(s).size();
  EXPECT_EQ(total, data.size());
  // Disjoint: drain every shard and union ids.
  std::unordered_set<RecordId> seen;
  for (int s = 0; s < 4; ++s) {
    auto sampler = cluster.shard(s).NewSampler(Rng(605));
    ASSERT_TRUE(
        sampler->Begin(Rect3::Everything(), SamplingMode::kWithoutReplacement)
            .ok());
    while (auto e = sampler->Next()) {
      EXPECT_TRUE(seen.insert(e->id).second) << "record on two shards";
    }
  }
  EXPECT_EQ(seen.size(), data.size());
}

TEST_P(ClusterPartitioningTest, DistributedCountMatchesBruteForce) {
  auto data = MakeData(5000, 607);
  Cluster cluster(data, 5, GetParam(), {}, 609);
  Rect3 q(Point3(20, 20, 100), Point3(70, 80, 900));
  uint64_t truth = 0;
  for (const Entry& e : data) {
    if (q.Contains(e.point)) ++truth;
  }
  Result<uint64_t> count = cluster.Count(q);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, truth);
}

TEST_P(ClusterPartitioningTest, MergedSamplerIsUniform) {
  auto data = MakeData(3000, 611);
  Cluster cluster(data, 4, GetParam(), {}, 613);
  Rect3 q(Point3(10, 10, 0), Point3(60, 60, 1000));
  std::vector<RecordId> population;
  for (const Entry& e : data) {
    if (q.Contains(e.point)) population.push_back(e.id);
  }
  ASSERT_GT(population.size(), 300u);
  std::unordered_map<RecordId, size_t> slot;
  for (size_t i = 0; i < population.size(); ++i) slot[population[i]] = i;
  auto sampler = cluster.NewSampler(Rng(615));
  ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithReplacement).ok());
  std::vector<uint64_t> counts(population.size(), 0);
  uint64_t draws = population.size() * 20;
  for (uint64_t i = 0; i < draws; ++i) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value());
    auto it = slot.find(e->id);
    ASSERT_NE(it, slot.end());
    ++counts[it->second];
  }
  double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
  EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4));
}

TEST_P(ClusterPartitioningTest, WithoutReplacementDrainsExactly) {
  auto data = MakeData(2000, 617);
  Cluster cluster(data, 3, GetParam(), {}, 619);
  Rect3 q(Point3(0, 0, 0), Point3(50, 100, 1000));
  std::unordered_set<RecordId> expected;
  for (const Entry& e : data) {
    if (q.Contains(e.point)) expected.insert(e.id);
  }
  auto sampler = cluster.NewSampler(Rng(621));
  ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithoutReplacement).ok());
  std::unordered_set<RecordId> seen;
  while (auto e = sampler->Next()) {
    EXPECT_TRUE(seen.insert(e->id).second);
  }
  EXPECT_TRUE(sampler->IsExhausted());
  EXPECT_EQ(seen, expected);
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_TRUE(c.exact);
  EXPECT_EQ(c.lower, expected.size());
}

TEST_P(ClusterPartitioningTest, UpdatesRouteConsistently) {
  auto data = MakeData(2000, 623);
  Cluster cluster(data, 4, GetParam(), {}, 625);
  Rng rng(627);
  // Insert new records, then erase them again: erase must find them.
  std::vector<Entry> extra;
  for (RecordId i = 5000; i < 5200; ++i) {
    Entry e{Point3(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100),
                   rng.UniformDouble(0, 1000)),
            i};
    cluster.Insert(e.point, e.id);
    extra.push_back(e);
  }
  EXPECT_EQ(cluster.size(), 2200u);
  for (const Entry& e : extra) {
    EXPECT_TRUE(cluster.Erase(e.point, e.id)) << e.id;
  }
  EXPECT_EQ(cluster.size(), 2000u);
  // Existing records must also be erasable (routing matches construction).
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster.Erase(data[static_cast<size_t>(i)].point,
                              data[static_cast<size_t>(i)].id))
        << i;
  }
}

TEST_P(ClusterPartitioningTest, EmptyQueryExhaustsImmediately) {
  auto data = MakeData(500, 629);
  Cluster cluster(data, 2, GetParam(), {}, 631);
  auto sampler = cluster.NewSampler(Rng(633));
  Rect3 nowhere(Point3(500, 500, 0), Point3(600, 600, 1));
  ASSERT_TRUE(sampler->Begin(nowhere, SamplingMode::kWithReplacement).ok());
  EXPECT_FALSE(sampler->Next().has_value());
  EXPECT_TRUE(sampler->IsExhausted());
}

INSTANTIATE_TEST_SUITE_P(Partitionings, ClusterPartitioningTest,
                         ::testing::Values(Partitioning::kHash,
                                           Partitioning::kHilbertRange),
                         [](const ::testing::TestParamInfo<Partitioning>& info) {
                           return info.param == Partitioning::kHash
                                      ? "Hash"
                                      : "HilbertRange";
                         });

TEST(ClusterLocalityTest, HilbertRangeTouchesFewerShardsThanHash) {
  auto data = MakeData(20000, 635);
  Cluster hash(data, 8, Partitioning::kHash, {}, 637);
  Cluster hilbert(data, 8, Partitioning::kHilbertRange, {}, 639);
  // Small localized queries.
  Rng rng(641);
  int hash_touched = 0, hilbert_touched = 0;
  for (int i = 0; i < 30; ++i) {
    double x = rng.UniformDouble(0, 90), y = rng.UniformDouble(0, 90);
    Rect3 q(Point3(x, y, 0), Point3(x + 5, y + 5, 1000));
    hash_touched += hash.ShardsTouched(q);
    hilbert_touched += hilbert.ShardsTouched(q);
  }
  // Hash spreads every region over all shards; Hilbert keeps locality.
  EXPECT_EQ(hash_touched, 30 * 8);
  EXPECT_LT(hilbert_touched, hash_touched);
}

TEST(ClusterTest, SingleShardDegeneratesGracefully) {
  auto data = MakeData(1000, 643);
  Cluster cluster(data, 1, Partitioning::kHilbertRange, {}, 645);
  EXPECT_EQ(cluster.num_shards(), 1);
  EXPECT_EQ(cluster.size(), 1000u);
  auto sampler = cluster.NewSampler(Rng(647));
  ASSERT_TRUE(
      sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement).ok());
  EXPECT_TRUE(sampler->Next().has_value());
}

}  // namespace
}  // namespace storm
