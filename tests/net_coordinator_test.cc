// Chaos suite for the networked coordinator: a NetCoordinator fanning
// queries out over real TCP sockets to shards that die (kill -9
// mid-stream), flap (evict → readmit), crawl (server.conn.slow
// failpoints), or are simply all gone. The invariants under every
// schedule:
//
//   - a best-so-far estimate (or a prompt, typed error) in every case —
//     the coordinator never hangs past its deadline;
//   - a shard dying mid-stream never biases the merged estimator: its
//     partials are dropped and the weights renormalize over survivors
//     (the chi-squared test pins the survivor estimates to their CIs);
//   - admission slots on every in-process shard settle exactly
//     (admitted == released, in_flight == 0) whatever the client did.
//
// Schedules are seeded via STORM_CHAOS_SEED (CI runs several seeds).
// Fleet fixtures (in-process and child-process shards) live in
// tests/fleet_util.h; STORM_SERVER_BIN arrives from tests/CMakeLists.txt.

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet_util.h"
#include "storm/cluster/net_coordinator.h"
#include "storm/server/protocol.h"
#include "storm/server/server.h"
#include "storm/storm.h"
#include "storm/util/failpoint.h"
#include "storm/util/stats.h"
#include "storm/util/stopwatch.h"

namespace storm {
namespace {

using namespace fleet_test;

// --- Wire back-compat for the cardinality block -------------------------

TEST(CoordinatorWireTest, ProgressCardinalityRoundTrips) {
  ProgressUpdate p;
  p.samples = 4096;
  p.elapsed_ms = 12.5;
  p.ci.estimate = 3.25;
  p.ci.half_width = 0.5;
  p.ci.confidence = 0.95;
  p.ci.samples = 4096;
  p.cardinality_estimate = 8123.25;
  p.cardinality_exact = true;

  auto decoded = DecodeProgressUpdate(EncodeProgressUpdate(p));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_DOUBLE_EQ(decoded->cardinality_estimate, 8123.25);
  EXPECT_TRUE(decoded->cardinality_exact);
  EXPECT_EQ(decoded->samples, 4096u);
}

TEST(CoordinatorWireTest, ProgressWithoutCardinalityBlockStillDecodes) {
  // A pre-cardinality peer's frame is the same payload minus the trailing
  // 9-byte block (double + u8); the decoder must treat it as absent.
  ProgressUpdate p;
  p.samples = 7;
  p.cardinality_estimate = 555.0;
  std::string wire = EncodeProgressUpdate(p);
  wire.resize(wire.size() - 9);

  auto decoded = DecodeProgressUpdate(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->samples, 7u);
  EXPECT_DOUBLE_EQ(decoded->cardinality_estimate, 0.0);
  EXPECT_FALSE(decoded->cardinality_exact);
}

TEST(CoordinatorWireTest, ResultCardinalityRoundTrips) {
  QueryResult r;
  r.task = QueryTask::kAggregate;
  r.ci.estimate = 42.0;
  r.ci.half_width = 1.5;
  r.ci.confidence = 0.95;
  r.samples = 1000;
  r.degraded = true;
  r.coverage = 0.5;
  r.cardinality_estimate = 31337.0;
  r.cardinality_exact = true;

  auto decoded = DecodeQueryResult(
      EncodeQueryResult(r, nullptr, /*include_cardinality=*/true));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_DOUBLE_EQ(decoded->cardinality_estimate, 31337.0);
  EXPECT_TRUE(decoded->cardinality_exact);
  EXPECT_TRUE(decoded->degraded);
  EXPECT_DOUBLE_EQ(decoded->coverage, 0.5);

  // Older generations: strip the cardinality block (9 bytes), then also
  // the profile marker (1 byte, the pre-cardinality tail). Both must
  // decode with the missing fields at their defaults.
  std::string wire = EncodeQueryResult(r, nullptr, /*include_cardinality=*/true);
  wire.resize(wire.size() - 9);
  auto no_card = DecodeQueryResult(wire);
  ASSERT_TRUE(no_card.ok()) << no_card.status();
  EXPECT_DOUBLE_EQ(no_card->cardinality_estimate, 0.0);
  EXPECT_FALSE(no_card->cardinality_exact);

  wire.resize(wire.size() - 1);
  auto pre_profile = DecodeQueryResult(wire);
  ASSERT_TRUE(pre_profile.ok()) << pre_profile.status();
  EXPECT_DOUBLE_EQ(pre_profile->ci.estimate, 42.0);
}

TEST(CoordinatorWireTest, ResultKeepsOldShapeUnlessClientOptedIn) {
  // Old decoders reject any bytes after the optional profile block, so the
  // cardinality block must be strictly opt-in: without it, the encoding is
  // byte-identical to the pre-cardinality release (ends at `coverage` when
  // there is no profile), which old decoders' strict trailing-bytes check
  // accepts.
  QueryResult r;
  r.task = QueryTask::kAggregate;
  r.ci.estimate = 42.0;
  r.coverage = 0.5;
  r.cardinality_estimate = 31337.0;

  std::string old_shape = EncodeQueryResult(r);
  std::string opted_in =
      EncodeQueryResult(r, nullptr, /*include_cardinality=*/true);
  // Opt-in appends exactly the presence byte + double + u8.
  ASSERT_EQ(opted_in.size(), old_shape.size() + 10);
  EXPECT_EQ(opted_in.compare(0, old_shape.size(), old_shape), 0);

  // Both decode; only the opted-in shape carries the cardinality.
  auto old_decoded = DecodeQueryResult(old_shape);
  ASSERT_TRUE(old_decoded.ok()) << old_decoded.status();
  EXPECT_DOUBLE_EQ(old_decoded->cardinality_estimate, 0.0);
  auto new_decoded = DecodeQueryResult(opted_in);
  ASSERT_TRUE(new_decoded.ok()) << new_decoded.status();
  EXPECT_DOUBLE_EQ(new_decoded->cardinality_estimate, 31337.0);
}

TEST(CoordinatorWireTest, WantCardinalityFlagRoundTripsAndDefaultsOff) {
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM t";
  req.want_cardinality = true;
  auto back = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->want_cardinality);

  // A request from an old client (no capability bit) decodes with the
  // capability off, so the server keeps the old RESULT shape for it.
  req.want_cardinality = false;
  auto old_client = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(old_client.ok()) << old_client.status();
  EXPECT_FALSE(old_client->want_cardinality);
}

// --- Mixed-version PING/PONG: the freshness block ------------------------
//
// The replica-freshness extension piggybacks on PONG (protocol.h): a new
// client appends a capability byte to PING, a new server answers with the
// echo + a tagged applied-records block. Every pairing of old/new client
// and server must keep working byte-for-byte.

TEST(PongWireTest, OldClientPingIsByteIdenticalToPlainEcho) {
  // A client that does not want freshness must emit exactly the historical
  // payload — old servers echo verbatim and old clients check strict
  // equality, so any extra byte would break them.
  EXPECT_EQ(EncodePingPayload("storm-ping", /*want_freshness=*/false),
            "storm-ping");
}

TEST(PongWireTest, OldServerVerbatimEchoDecodesAsFreshnessUnknown) {
  // Old server: echoes the capability byte back untouched. The new decoder
  // must recognize its own sent bytes and report freshness-unknown, not an
  // error — the replica is deprioritized, never evicted, for being old.
  const std::string sent = EncodePingPayload("storm-ping", true);
  ASSERT_EQ(sent.size(), std::strlen("storm-ping") + 1);
  auto fresh = DecodePongPayload(sent, sent, "storm-ping");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(fresh->known);
}

TEST(PongWireTest, FreshnessBlockRoundTrips) {
  PongFreshness fresh;
  fresh.known = true;
  fresh.applied_records = 123'456;
  fresh.applied_lsn = 789;
  const std::string sent = EncodePingPayload("storm-ping", true);
  const std::string payload = EncodePongPayload("storm-ping", &fresh);
  auto decoded = DecodePongPayload(payload, sent, "storm-ping");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->known);
  EXPECT_EQ(decoded->applied_records, 123'456u);
  EXPECT_EQ(decoded->applied_lsn, 789u);
}

TEST(PongWireTest, BytesPastTheFreshnessBlockAreIgnored) {
  // Forward compatibility: a future server may append further blocks after
  // the freshness one; today's decoder must take what it understands.
  PongFreshness fresh;
  fresh.known = true;
  fresh.applied_records = 7;
  const std::string sent = EncodePingPayload("storm-ping", true);
  std::string payload = EncodePongPayload("storm-ping", &fresh);
  payload += "\x7f""future-extension-bytes";
  auto decoded = DecodePongPayload(payload, sent, "storm-ping");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->known);
  EXPECT_EQ(decoded->applied_records, 7u);
}

TEST(PongWireTest, CorruptTrailerIsRejected) {
  // A trailer that matches neither the verbatim echo nor a freshness block
  // is a protocol error, not silently-unknown freshness.
  const std::string sent = EncodePingPayload("storm-ping", true);
  auto bad = DecodePongPayload(std::string("storm-ping") + "\x07junk", sent,
                               "storm-ping");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);

  // A mangled echo prefix is rejected outright.
  auto wrong = DecodePongPayload("not-the-echo", sent, "storm-ping");
  EXPECT_FALSE(wrong.ok());
}

TEST(PongWireTest, EndToEndAgainstLiveAndLegacyServers) {
  auto docs = MakeDocs(250, 11);
  // A current server answers with its applied-record count...
  auto fresh_shard = StartShard(docs, 0, 1);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fresh_shard.port).ok());
  auto fresh = client.PingFresh();
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(fresh->known);
  EXPECT_EQ(fresh->applied_records, 250u);
  client.Close();
  fresh_shard.server->Stop();

  // ...while a pre-freshness server (answer_ping_freshness=false emulates
  // one, echoing PING verbatim) decodes as freshness-unknown — and plain
  // Ping() keeps its strict-echo contract against both.
  ServerOptions legacy;
  legacy.answer_ping_freshness = false;
  auto old_shard = StartShard(docs, 0, 1, 0, legacy);
  RemoteClient old_client;
  ASSERT_TRUE(old_client.Connect("127.0.0.1", old_shard.port).ok());
  EXPECT_TRUE(old_client.Ping().ok());
  auto unknown = old_client.PingFresh();
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_FALSE(unknown->known);
  old_client.Close();
  old_shard.server->Stop();
}

// --- In-process fleets (fixtures: tests/fleet_util.h) -------------------

TEST(NetCoordinatorTest, HealthyFleetMergesExactly) {
  auto docs = MakeDocs(12'000, ChaosSeed() * 7919 + 11);
  double sum = 0.0;
  for (const Value& d : docs) sum += d.Find("v")->AsDouble();
  const double truth = sum / static_cast<double>(docs.size());

  std::vector<InProcShard> shards;
  std::vector<ShardEndpoint> endpoints;
  for (size_t k = 0; k < 3; ++k) {
    shards.push_back(StartShard(docs, k, 3));
    endpoints.push_back({"127.0.0.1", shards[k].port});
  }
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 3000));

  // COUNT(*): partitions add. The SAMPLES cap pushes the optimizer to the
  // exhaustive without-replacement plan, so every shard's count is exact.
  auto count =
      coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_NEAR(count->ci.estimate, 12'000.0, 1e-6);
  EXPECT_FALSE(count->degraded);
  EXPECT_DOUBLE_EQ(count->coverage, 1.0);

  // Full-table AVG: every shard exhausts exactly, weights are exact, so
  // the stratified merge reproduces the global mean to float precision.
  ExecOptions options;
  options.progress = [](const QueryProgress&) { return true; };
  auto avg =
      coordinator.Execute("SELECT AVG(v) FROM t SAMPLES 100000000", options);
  ASSERT_TRUE(avg.ok()) << avg.status();
  EXPECT_NEAR(avg->ci.estimate, truth, 1e-6);
  EXPECT_TRUE(avg->exhausted);
  EXPECT_FALSE(avg->degraded);
  EXPECT_NEAR(avg->cardinality_estimate, 12'000.0, 1e-6);
  EXPECT_NE(avg->strategy.find("net_coordinator(3/3"), std::string::npos)
      << avg->strategy;

  coordinator.Stop();
  for (size_t k = 0; k < shards.size(); ++k) {
    ExpectAdmissionSettled(*shards[k].server, "healthy fleet shard");
    shards[k].server->Stop();
  }
}

TEST(NetCoordinatorTest, NonAggregateTasksAreRefused) {
  auto docs = MakeDocs(500, 99);
  auto shard = StartShard(docs, 0, 1);
  NetCoordinator coordinator({{"127.0.0.1", shard.port}}, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());

  auto kde = coordinator.Execute("SELECT KDE(8, 8) FROM t", {});
  ASSERT_FALSE(kde.ok());
  EXPECT_EQ(kde.status().code(), StatusCode::kNotSupported);

  coordinator.Stop();
  shard.server->Stop();
}

TEST(NetCoordinatorTest, InsertBatchRoundRobinsAcrossShards) {
  auto docs = MakeDocs(900, 17);
  std::vector<InProcShard> shards;
  std::vector<ShardEndpoint> endpoints;
  for (size_t k = 0; k < 3; ++k) {
    shards.push_back(StartShard(docs, k, 3));
    endpoints.push_back({"127.0.0.1", shards[k].port});
  }
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 3000));

  auto extra = MakeDocs(30, 23);
  for (size_t i = 0; i < extra.size(); i += 10) {
    std::vector<Value> batch(extra.begin() + i, extra.begin() + i + 10);
    BatchInsertResult r = coordinator.InsertBatch("t", batch);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.ids.size(), 10u);
  }

  auto count =
      coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_NEAR(count->ci.estimate, 930.0, 1e-6);

  // Round-robin batches spread the growth across every shard.
  for (size_t k = 0; k < 3; ++k) {
    auto table = shards[k].session->GetTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->size(), 310u) << "shard " << k;
  }

  coordinator.Stop();
  for (auto& s : shards) s.server->Stop();
}

TEST(NetCoordinatorTest, AllShardsDeadFailsFastNotForever) {
  // Grab two ports that definitely have no listener behind them.
  std::vector<ShardEndpoint> endpoints;
  {
    std::vector<InProcShard> doomed;
    auto docs = MakeDocs(10, 5);
    for (size_t k = 0; k < 2; ++k) {
      doomed.push_back(StartShard(docs, k, 2));
      endpoints.push_back({"127.0.0.1", doomed[k].port});
    }
    for (auto& s : doomed) s.server->Stop();
  }

  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());  // a down fleet degrades, not throws

  Stopwatch watch;
  auto result = coordinator.Execute("SELECT AVG(v) FROM t", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status();
  EXPECT_LT(watch.ElapsedMillis(), 10'000.0) << "must fail promptly";
  coordinator.Stop();
}

TEST(NetCoordinatorTest, DeadlineDuringFanOutReturnsPromptly) {
  auto docs = MakeDocs(20'000, ChaosSeed() + 31);
  std::vector<InProcShard> shards;
  std::vector<ShardEndpoint> endpoints;
  for (size_t k = 0; k < 3; ++k) {
    shards.push_back(StartShard(docs, k, 3));
    endpoints.push_back({"127.0.0.1", shards[k].port});
  }
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 3000));

  // WITHIN asks every shard to sample for 30 s; the 400 ms query deadline
  // must carve per-shard deadlines that cut them off long before that,
  // and the merged result must carry the deadline flag.
  Stopwatch watch;
  ExecOptions options;
  options.deadline_ms = 400.0;
  options.progress = [](const QueryProgress&) { return true; };
  auto result =
      coordinator.Execute("SELECT AVG(v) FROM t WITHIN 30000 MS", options);
  const double elapsed = watch.ElapsedMillis();
  EXPECT_LT(elapsed, 6000.0) << "deadline must bound the fan-out";
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_FALSE(result->exhausted);
  EXPECT_GT(result->samples, 0u);

  coordinator.Stop();
  for (auto& s : shards) s.server->Stop();
}

TEST(NetCoordinatorTest, FlappingShardEvictsAndReadmits) {
  auto docs = MakeDocs(9'000, ChaosSeed() * 131 + 3);
  std::vector<InProcShard> shards;
  std::vector<ShardEndpoint> endpoints;
  for (size_t k = 0; k < 3; ++k) {
    shards.push_back(StartShard(docs, k, 3));
    endpoints.push_back({"127.0.0.1", shards[k].port});
  }
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 3000));

  for (int cycle = 0; cycle < 2; ++cycle) {
    // Down: the shard misses heartbeats, gets evicted, queries degrade.
    const int port = shards[1].port;
    shards[1].server->Stop();
    ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 5000))
        << "cycle " << cycle << ": eviction never happened";

    auto degraded =
        coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
    ASSERT_TRUE(degraded.ok()) << degraded.status();
    EXPECT_TRUE(degraded->degraded);
    EXPECT_NEAR(degraded->ci.estimate, 6'000.0, 1e-6);
    EXPECT_GT(degraded->coverage, 0.4);
    EXPECT_LT(degraded->coverage, 0.9);
    EXPECT_NE(degraded->strategy.find("(2/3"), std::string::npos)
        << degraded->strategy;

    // Up again on the same port: heartbeats succeed, shard readmitted.
    ServerOptions options;
    options.port = port;
    options.metrics_port = -1;
    shards[1].server =
        std::make_unique<StormServer>(shards[1].session.get(), options);
    ASSERT_TRUE(shards[1].server->Start().ok());
    ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 5000))
        << "cycle " << cycle << ": readmission never happened";

    auto healthy =
        coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
    ASSERT_TRUE(healthy.ok()) << healthy.status();
    EXPECT_FALSE(healthy->degraded);
    EXPECT_NEAR(healthy->ci.estimate, 9'000.0, 1e-6);
  }

  coordinator.Stop();
  for (size_t k = 0; k < shards.size(); ++k) {
    ExpectAdmissionSettled(*shards[k].server, "flapping fleet shard");
    shards[k].server->Stop();
  }
}

// Survivor estimates must stay unbiased and correctly sized after a shard
// is lost: run many region queries against a 2/3 fleet, convert each
// (estimate − truth) to a p-value through its own reported CI, and
// chi-square the p-values against uniform. Systematic bias from the lost
// shard (or mis-renormalized weights, or a wrong quadrature) shows up as
// mass piling into the tail bins.
TEST(NetCoordinatorTest, SurvivorEstimatesUnbiasedChiSquared) {
  const uint64_t seed = ChaosSeed();
  auto docs = MakeDocs(24'000, seed * 977 + 5);
  std::vector<InProcShard> shards;
  std::vector<ShardEndpoint> endpoints;
  for (size_t k = 0; k < 3; ++k) {
    shards.push_back(StartShard(docs, k, 3));
    endpoints.push_back({"127.0.0.1", shards[k].port});
  }
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 3000));

  // Lose shard 2 for good.
  shards[2].server->Stop();
  ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 5000));

  // The reachable population: shards 0 and 1 = records with i % 3 != 2.
  Rng regions(seed * 31 + 7);
  std::vector<uint64_t> bins(10, 0);
  uint64_t draws = 0;
  for (int round = 0; round < 60; ++round) {
    const double x1 = regions.UniformDouble(0, 35);
    const double y1 = regions.UniformDouble(0, 35);
    const double x2 = x1 + regions.UniformDouble(45, 64);
    const double y2 = y1 + regions.UniformDouble(45, 64);

    double sum = 0.0;
    uint64_t q = 0;
    for (size_t i = 0; i < docs.size(); ++i) {
      if (i % 3 == 2) continue;
      const double x = docs[i].Find("x")->AsDouble();
      const double y = docs[i].Find("y")->AsDouble();
      if (x < x1 || x > x2 || y < y1 || y > y2) continue;
      sum += docs[i].Find("v")->AsDouble();
      ++q;
    }
    ASSERT_GT(q, 3000u) << "region too small for a CLT-regime check";
    const double truth = sum / static_cast<double>(q);

    char query[256];
    std::snprintf(query, sizeof(query),
                  "SELECT AVG(v) FROM t REGION(%.4f, %.4f, %.4f, %.4f) "
                  "SAMPLES 1200",
                  x1, y1, x2, y2);
    auto result = coordinator.Execute(query, {});
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->degraded);
    ASSERT_FALSE(result->exhausted) << "estimate must still be stochastic";
    ASSERT_GT(result->ci.half_width, 0.0);

    const double z_conf =
        NormalQuantile(0.5 + result->ci.confidence / 2.0);
    const double z =
        (result->ci.estimate - truth) / (result->ci.half_width / z_conf);
    const double p = NormalCdf(z);
    size_t bin = static_cast<size_t>(p * 10.0);
    if (bin >= bins.size()) bin = bins.size() - 1;
    ++bins[bin];
    ++draws;
  }

  double stat = ChiSquareUniform(bins.data(), bins.size(), draws);
  EXPECT_LT(stat, ChiSquareCritical(bins.size() - 1, 1e-4))
      << "survivor estimates are biased or mis-sized (seed " << seed << ")";

  coordinator.Stop();
  shards[0].server->Stop();
  shards[1].server->Stop();
}

// --- Child-process shards: kill -9 mid-stream ---------------------------

TEST(NetCoordinatorChaosTest, KillNineMidStreamDropsShardKeepsStreaming) {
  // Three real storm_server processes over disjoint thirds of the tiny
  // demo tables. The victim's writer is slowed to 120 ms per frame so it
  // is provably still mid-stream when SIGKILL lands.
  std::vector<ChildShard> fleet;
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 0, 3));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 1, 3));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 2, 3, "--failpoint",
                             "server.conn.slow:latency_ms=120,code=ok"));
  for (const ChildShard& s : fleet) {
    ASSERT_GT(s.port, 0) << "shard did not come up: "
                         << ReadFileOrEmpty(s.stdout_path);
  }

  std::vector<ShardEndpoint> endpoints;
  for (const ChildShard& s : fleet) endpoints.push_back({"127.0.0.1", s.port});
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 10'000));

  // Ground truth over the survivors' partitions (shards 0 and 1): the
  // generators are deterministic, so recompute it in-process.
  double truth;
  {
    TweetOptions o;
    o.num_tweets = 2'000;  // --tiny
    TweetGenerator gen(o);
    auto tweets = gen.Generate();
    double sum = 0.0;
    uint64_t q = 0;
    for (size_t i = 0; i < tweets.size(); ++i) {
      if (i % 3 == 2) continue;
      sum += tweets[i].lat;
      ++q;
    }
    truth = sum / static_cast<double>(q);
  }

  std::atomic<bool> killed{false};
  ExecOptions options;
  options.deadline_ms = 20'000.0;
  options.progress = [&](const QueryProgress&) {
    // First merged progress: the fan-out is live, the victim is still
    // crawling through its frame queue. Kill it dead, no goodbye.
    if (!killed.exchange(true)) ReapShard(&fleet[2], SIGKILL);
    return true;
  };
  Stopwatch watch;
  auto result = coordinator.Execute(
      "SELECT AVG(lat) FROM tweets SAMPLES 100000000", options);
  const double elapsed = watch.ElapsedMillis();

  ASSERT_TRUE(killed.load()) << "query finished before any progress fired";
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(elapsed, 30'000.0);
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->strategy.find("(2/3"), std::string::npos)
      << result->strategy;
  EXPECT_GT(result->coverage, 0.4);
  EXPECT_LT(result->coverage, 0.9);
  // Survivors exhaust their partitions, so the merged estimate must equal
  // the survivors' exact mean — any residue of the dead shard's partials
  // (the bias the drop-and-renormalize rule exists to prevent) breaks it.
  EXPECT_NEAR(result->ci.estimate, truth, 1e-6);

  coordinator.Stop();
  ReapShard(&fleet[0], SIGTERM);
  ReapShard(&fleet[1], SIGTERM);
}

TEST(NetCoordinatorChaosTest, AllShardsDeadMidStreamReturnsLastKnownPartials) {
  // Every shard dies after contributing PROGRESS. With no survivor to
  // renormalize over, the anytime contract owes the caller the last
  // streamed partial merge — flagged degraded with coverage 0 — not a
  // default-constructed zero estimate. Both writers are slowed so they are
  // provably mid-stream when SIGKILL lands.
  std::vector<ChildShard> fleet;
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 0, 2, "--failpoint",
                             "server.conn.slow:latency_ms=200,code=ok"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 1, 2, "--failpoint",
                             "server.conn.slow:latency_ms=200,code=ok"));
  for (const ChildShard& s : fleet) {
    ASSERT_GT(s.port, 0) << "shard did not come up: "
                         << ReadFileOrEmpty(s.stdout_path);
  }

  std::vector<ShardEndpoint> endpoints;
  for (const ChildShard& s : fleet) endpoints.push_back({"127.0.0.1", s.port});
  NetCoordinator coordinator(endpoints, FastOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 10'000));

  std::atomic<bool> killed{false};
  uint64_t samples_at_kill = 0;
  ExecOptions options;
  options.deadline_ms = 20'000.0;
  options.progress = [&](const QueryProgress& p) {
    // First merged progress with real samples: partials exist, and every
    // shard's final RESULT is still >= one slowed frame away. Kill the
    // whole fleet.
    if (p.samples > 0 && !killed.exchange(true)) {
      samples_at_kill = p.samples;
      ReapShard(&fleet[0], SIGKILL);
      ReapShard(&fleet[1], SIGKILL);
    }
    return true;
  };
  Stopwatch watch;
  auto result = coordinator.Execute(
      "SELECT AVG(lat) FROM tweets SAMPLES 100000000", options);
  const double elapsed = watch.ElapsedMillis();

  ASSERT_TRUE(killed.load()) << "query finished before any progress fired";
  EXPECT_GT(samples_at_kill, 0u);
  EXPECT_LT(elapsed, 30'000.0) << "all-dead fallback must not hang";
  ASSERT_TRUE(result.ok()) << result.status();
  // The best-so-far contract: the streamed partials survive into the
  // result instead of a default-constructed MergedView.
  EXPECT_GT(result->samples, 0u);
  EXPECT_TRUE(std::isfinite(result->ci.estimate));
  EXPECT_TRUE(result->degraded);
  EXPECT_DOUBLE_EQ(result->coverage, 0.0);
  EXPECT_NE(result->strategy.find("last-known partials"), std::string::npos)
      << result->strategy;
}

// --- RemoteClient transparent reconnect (satellite) ---------------------

TEST(RemoteClientReconnectTest, ReconnectsAfterServerRestart) {
  auto docs = MakeDocs(400, 3);
  auto shard = StartShard(docs, 0, 1);
  const int port = shard.port;

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Ping().ok());

  Counter* reconnects = MetricsRegistry::Default().GetCounter(
      "storm_client_reconnects_total",
      "Successful transparent RemoteClient reconnects");
  const uint64_t before = reconnects->Value();

  // Bounce the server; the client's socket is now a dead fd. The next
  // requests must redial transparently rather than fail forever.
  shard.server->Stop();
  ServerOptions options;
  options.port = port;
  options.metrics_port = -1;
  shard.server = std::make_unique<StormServer>(shard.session.get(), options);
  ASSERT_TRUE(shard.server->Start().ok());

  // The first request may burn on the stale fd's buffered send; by the
  // second the dead socket is detected and redialed.
  bool recovered = false;
  for (int attempt = 0; attempt < 5 && !recovered; ++attempt) {
    recovered = client.Ping().ok();
  }
  EXPECT_TRUE(recovered) << "client never reconnected";
  EXPECT_GT(reconnects->Value(), before);

  auto result = client.Execute("SELECT AVG(v) FROM t SAMPLES 200");
  EXPECT_TRUE(result.ok()) << result.status();

  shard.server->Stop();
}

TEST(RemoteClientReconnectTest, BackoffSpacingIsSeededAndCapped) {
  // Redial attempts must be spaced by the capped exponential backoff, and
  // with a jitter seed the schedule must be exactly reproducible — chaos
  // runs depend on it. Bring a server up, connect, kill it, and time the
  // failing redial sequence against the schedule the seeded Rng predicts.
  auto docs = MakeDocs(50, 13);
  auto shard = StartShard(docs, 0, 1);

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", shard.port).ok());
  RetryPolicy policy{/*max_attempts=*/0, /*base_backoff_ms=*/40.0,
                     /*multiplier=*/3.0, /*max_backoff_ms=*/120.0,
                     /*jitter=*/0.5, /*deadline_ms=*/0.0};
  client.set_reconnect_backoff(policy);
  client.set_reconnect_jitter_seed(1234);
  client.set_max_reconnect_attempts(3);

  // The exact sleep schedule the client must follow: one BackoffMs draw
  // per attempt from the same seeded stream (40 → 120 → 120-capped bases,
  // each jittered into [b/2, b]).
  Rng expect_rng(1234);
  double expected_total = 0.0;
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const double b = policy.BackoffMs(attempt, &expect_rng);
    EXPECT_GE(b, attempt == 1 ? 20.0 : 60.0);
    EXPECT_LE(b, attempt == 1 ? 40.0 : 120.0);
    expected_total += b;
  }

  shard.server->Stop();  // every redial now gets connection-refused
  // The first failure after a server death can surface on the response
  // read (the doomed send lands in the TCP buffer), which closes the
  // socket without redialing. The NEXT request starts from a dead socket
  // and runs the full redial schedule; re-seeding pins it to draws 1..3
  // whether or not the throwaway ping touched the Rng.
  EXPECT_FALSE(client.Ping().ok());
  client.set_reconnect_jitter_seed(1234);
  Stopwatch watch;
  Status st = client.Ping();
  const double elapsed = watch.ElapsedMillis();
  EXPECT_FALSE(st.ok());
  // sleep_for guarantees at least the requested time; refused dials on
  // loopback add little. Anything far past the schedule means the client
  // ignored the policy (or slept the uncapped exponential).
  EXPECT_GE(elapsed, expected_total * 0.95) << "backoff schedule not honored";
  EXPECT_LT(elapsed, expected_total + 2000.0) << "backoff way past schedule";
}

// --- Failpoint spec parsing (the --failpoint startup flag) --------------

TEST(FailpointSpecTest, ParsesFullSpec) {
  auto parsed = ParseFailpointSpec(
      "server.conn.drop:probability=0.25,after_n=3,max_trips=7,"
      "latency_ms=12.5,seed=99,code=unavailable,message=chaos");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->first, "server.conn.drop");
  EXPECT_DOUBLE_EQ(parsed->second.probability, 0.25);
  EXPECT_EQ(parsed->second.after_n, 3u);
  EXPECT_EQ(parsed->second.max_trips, 7u);
  EXPECT_DOUBLE_EQ(parsed->second.latency_ms, 12.5);
  EXPECT_EQ(parsed->second.seed, 99u);
  EXPECT_EQ(parsed->second.code, StatusCode::kUnavailable);
  EXPECT_EQ(parsed->second.message, "chaos");
}

TEST(FailpointSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFailpointSpec("no-colon-here").ok());
  EXPECT_FALSE(ParseFailpointSpec(":probability=1").ok());
  EXPECT_FALSE(ParseFailpointSpec("site:probability").ok());
  EXPECT_FALSE(ParseFailpointSpec("site:bogus_key=1").ok());
  EXPECT_FALSE(ParseFailpointSpec("site:probability=nope").ok());
  EXPECT_FALSE(ParseFailpointSpec("site:code=not_a_code").ok());
}

TEST(FailpointSpecTest, StatusCodeNamesAcceptSeparators) {
  auto underscore = ParseFailpointSpec("s:code=io_error");
  ASSERT_TRUE(underscore.ok()) << underscore.status();
  EXPECT_EQ(underscore->second.code, StatusCode::kIOError);
  auto dash = ParseFailpointSpec("s:code=deadline-exceeded");
  ASSERT_TRUE(dash.ok()) << dash.status();
  EXPECT_EQ(dash->second.code, StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace storm
