// Shared fleet fixtures for the serving/coordinator test suites: in-process
// shards (Session + StormServer bound to port 0), child-process storm_server
// shards (fork/exec, SIGKILL-able mid-stream), and the polling helpers that
// wait for ports, liveness, and admission settlement. One copy here instead
// of one per test file — net_coordinator_test.cc, replica_test.cc, and
// flight_dump_test.cc all build their fleets from these.
//
// Everything binds port 0 and discovers the real port afterwards (from
// StormServer::port() in-process, from the child's "serving on port N"
// stdout line out-of-process), so parallel ctest jobs never collide.
//
// Child-process spawning needs the storm_server binary path; pass the
// STORM_SERVER_BIN compile definition (tests/CMakeLists.txt points it at
// $<TARGET_FILE:storm_server>) as `server_bin`.

#ifndef STORM_TESTS_FLEET_UTIL_H_
#define STORM_TESTS_FLEET_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "storm/cluster/net_coordinator.h"
#include "storm/server/server.h"
#include "storm/storm.h"

namespace storm {
namespace fleet_test {

/// Chaos schedules are seeded via STORM_CHAOS_SEED (CI runs several).
inline uint64_t ChaosSeed() {
  const char* env = std::getenv("STORM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

/// Synthetic docs: x/y/v uniform in [0, 100), t = 0.
inline std::vector<Value> MakeDocs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("t", Value::Double(0.0));
    docs.push_back(doc);
  }
  return docs;
}

/// Shard k of n holds records i with i % n == k — the same arrival-order
/// rule storm_server --shard-index uses, so in-process fleets and
/// child-process fleets partition identically. Replica groups reuse the
/// same (k, n) slice for every replica of partition k.
inline std::vector<Value> ShardSlice(const std::vector<Value>& docs, size_t k,
                                     size_t n) {
  std::vector<Value> slice;
  for (size_t i = k; i < docs.size(); i += n) slice.push_back(docs[i]);
  return slice;
}

struct InProcShard {
  std::unique_ptr<Session> session;
  std::unique_ptr<StormServer> server;
  int port = 0;
};

/// One in-process shard of an n-way fleet, serving slice k of `docs` as
/// table "t" on an ephemeral port. `base` customizes everything but the
/// port (e.g. answer_ping_freshness=false to emulate an old server).
inline InProcShard StartShard(const std::vector<Value>& docs, size_t k,
                              size_t n, int port = 0,
                              ServerOptions base = {}) {
  InProcShard shard;
  shard.session = std::make_unique<Session>();
  EXPECT_TRUE(shard.session->CreateTable("t", ShardSlice(docs, k, n)).ok());
  ServerOptions options = base;
  options.port = port;
  options.metrics_port = -1;
  shard.server = std::make_unique<StormServer>(shard.session.get(), options);
  EXPECT_TRUE(shard.server->Start().ok());
  shard.port = shard.server->port();
  return shard;
}

/// Admission slots must settle on every shard no matter how its clients
/// behaved; FinishQuery runs just after the final frame is queued, so give
/// the release a moment to land.
inline void ExpectAdmissionSettled(const StormServer& server,
                                   const char* who) {
  for (int i = 0; i < 100; ++i) {
    const AdmissionController& adm = server.admission();
    if (adm.admitted_total() == adm.released_total() &&
        adm.in_flight() == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const AdmissionController& adm = server.admission();
  ADD_FAILURE() << who << ": admission drift: admitted="
                << adm.admitted_total()
                << " released=" << adm.released_total()
                << " in_flight=" << adm.in_flight();
}

inline bool AwaitLiveShards(const NetCoordinator& coordinator, int want,
                            int budget_ms) {
  for (int waited = 0; waited < budget_ms; waited += 20) {
    if (coordinator.live_shards() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return coordinator.live_shards() == want;
}

/// Tight heartbeats and a low eviction threshold: fleet state transitions
/// land within a test-sized budget. Seeded from STORM_CHAOS_SEED.
inline NetCoordinatorOptions FastOptions() {
  NetCoordinatorOptions options;
  options.heartbeat_interval_ms = 50.0;
  options.failure_threshold = 2;
  options.heartbeat_timeout_ms = 1000.0;
  options.rpc_deadline_ms = 8000.0;
  options.seed = ChaosSeed();
  return options;
}

inline std::string ReadFileOrEmpty(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

/// Polls `path` until a "serving on port N" line appears (the server is up)
/// or the budget runs out. Returns -1 on timeout.
inline int AwaitServingPort(const std::string& path, int budget_ms) {
  for (int waited = 0; waited < budget_ms; waited += 50) {
    std::string out = ReadFileOrEmpty(path);
    size_t pos = out.find("serving on port ");
    if (pos != std::string::npos) {
      return std::atoi(out.c_str() + pos + std::strlen("serving on port "));
    }
    usleep(50 * 1000);
  }
  return -1;
}

struct ChildShard {
  pid_t pid = -1;
  int port = -1;
  std::string stdout_path;
};

/// fork/exec one storm_server --tiny shard; extra_arg/extra_val optionally
/// arm a failpoint (the registries are per-process, so this is how exactly
/// one shard of the fleet gets slow). `tag` names the stdout capture file;
/// replica fleets must pass distinct tags, since two replicas share an
/// index.
inline ChildShard SpawnShard(const char* server_bin, int index,
                             int num_shards,
                             const char* extra_arg = nullptr,
                             const char* extra_val = nullptr,
                             const char* tag = nullptr) {
  ChildShard shard;
  const std::string dir = ::testing::TempDir();
  const std::string name = tag != nullptr ? tag : std::to_string(index);
  shard.stdout_path = dir + "/fleet_shard_" + name + "." +
                      std::to_string(static_cast<long>(getpid()));
  std::remove(shard.stdout_path.c_str());

  shard.pid = fork();
  if (shard.pid == 0) {
    int out =
        open(shard.stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out < 0) _exit(41);
    dup2(out, STDOUT_FILENO);
    dup2(out, STDERR_FILENO);
    std::string idx = std::to_string(index);
    std::string n = std::to_string(num_shards);
    if (extra_arg != nullptr) {
      execl(server_bin, server_bin, "--tiny", "--port", "0", "--shard-index",
            idx.c_str(), "--num-shards", n.c_str(), extra_arg, extra_val,
            static_cast<char*>(nullptr));
    } else {
      execl(server_bin, server_bin, "--tiny", "--port", "0", "--shard-index",
            idx.c_str(), "--num-shards", n.c_str(),
            static_cast<char*>(nullptr));
    }
    _exit(42);
  }
  if (shard.pid > 0) {
    shard.port = AwaitServingPort(shard.stdout_path, 30'000);
  }
  return shard;
}

inline void ReapShard(ChildShard* shard, int sig) {
  if (shard->pid <= 0) return;
  kill(shard->pid, sig);
  int status = 0;
  waitpid(shard->pid, &status, 0);
  shard->pid = -1;
}

}  // namespace fleet_test
}  // namespace storm

#endif  // STORM_TESTS_FLEET_UTIL_H_
