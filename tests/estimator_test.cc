// Tests for the estimator module: confidence intervals (including the FPC
// and CI coverage), the online aggregator for every aggregate kind, group
// by, and stopping rules.

#include <gtest/gtest.h>

#include <cmath>

#include "storm/estimator/aggregate.h"
#include "storm/estimator/group_by.h"
#include "storm/estimator/quantile.h"
#include "storm/estimator/stopping.h"
#include "storm/sampling/rs_tree.h"
#include "storm/util/rng.h"

namespace storm {
namespace {

using Entry = RTree<2>::Entry;

// A small world with a known attribute: value(id) = id % 100, so the
// population mean over all N records is 49.5 exactly when N % 100 == 0.
class EstimatorEnv {
 public:
  static EstimatorEnv& Get() {
    static auto* env = new EstimatorEnv();
    return *env;
  }

  const std::vector<Entry>& data() const { return data_; }
  const RsTree<2>& rs() const { return *rs_; }

  double ValueOf(RecordId id) const { return static_cast<double>(id % 100); }

  AttributeFn<2> Attr() const {
    return [this](const Entry& e) { return ValueOf(e.id); };
  }

  double TrueMean(const Rect2& q) const {
    double sum = 0;
    uint64_t n = 0;
    for (const Entry& e : data_) {
      if (q.Contains(e.point)) {
        sum += ValueOf(e.id);
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }

  double TrueSum(const Rect2& q) const {
    double sum = 0;
    for (const Entry& e : data_) {
      if (q.Contains(e.point)) sum += ValueOf(e.id);
    }
    return sum;
  }

  uint64_t TrueCount(const Rect2& q) const {
    uint64_t n = 0;
    for (const Entry& e : data_) {
      if (q.Contains(e.point)) ++n;
    }
    return n;
  }

 private:
  EstimatorEnv() {
    Rng rng(301);
    for (RecordId i = 0; i < 10000; ++i) {
      data_.push_back(
          {Point2(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)), i});
    }
    rs_ = std::make_unique<RsTree<2>>(data_, RsTreeOptions{}, 303);
  }

  std::vector<Entry> data_;
  std::unique_ptr<RsTree<2>> rs_;
};

const Rect2 kQ(Point2(20, 20), Point2(80, 80));

// ---------------------------------------------------------------------------
// ConfidenceInterval plumbing
// ---------------------------------------------------------------------------

TEST(ConfidenceTest, MeanConfidenceShrinksWithK) {
  Rng rng(305);
  RunningStat s;
  double prev = std::numeric_limits<double>::infinity();
  for (int k = 0; k < 10000; ++k) {
    s.Push(rng.Normal(10, 3));
    if ((k + 1) % 2000 == 0) {
      double hw = MeanConfidence(s, 0.95).half_width;
      EXPECT_LT(hw, prev);
      prev = hw;
    }
  }
  // With k=10000, sigma=3: hw ≈ 1.96 * 3/100 ≈ 0.0588.
  EXPECT_NEAR(prev, 1.96 * 3.0 / 100.0, 0.01);
}

TEST(ConfidenceTest, TooFewSamplesGiveInfiniteWidth) {
  RunningStat s;
  EXPECT_TRUE(std::isinf(MeanConfidence(s, 0.95).half_width));
  s.Push(1.0);
  EXPECT_TRUE(std::isinf(MeanConfidence(s, 0.95).half_width));
}

TEST(ConfidenceTest, FpcCollapsesAtFullPopulation) {
  RunningStat s;
  Rng rng(307);
  for (int i = 0; i < 500; ++i) s.Push(rng.Normal(0, 1));
  ConfidenceInterval partial = MeanConfidence(s, 0.95, 1000, true);
  ConfidenceInterval no_fpc = MeanConfidence(s, 0.95, 0, false);
  EXPECT_LT(partial.half_width, no_fpc.half_width);  // FPC tightens
  ConfidenceInterval full = MeanConfidence(s, 0.95, 500, true);
  EXPECT_EQ(full.half_width, 0.0);
  EXPECT_TRUE(full.exact);
}

TEST(ConfidenceTest, RelativeError) {
  ConfidenceInterval ci;
  ci.estimate = 100;
  ci.half_width = 5;
  EXPECT_DOUBLE_EQ(ci.RelativeError(), 0.05);
  ci.estimate = 0;
  EXPECT_TRUE(std::isinf(ci.RelativeError()));
  ci.half_width = 0;
  EXPECT_EQ(ci.RelativeError(), 0.0);
}

TEST(ConfidenceTest, CoverageIsApproximatelyNominal) {
  // Draw 400 independent mean estimates of a known population and check
  // the 95% CI covers the truth ~95% of the time (accept 90-99%).
  Rng rng(309);
  std::vector<double> population(5000);
  double mu = 0;
  for (double& x : population) {
    x = rng.Exponential(0.2);  // skewed on purpose
    mu += x;
  }
  mu /= static_cast<double>(population.size());
  int covered = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    RunningStat s;
    for (int k = 0; k < 200; ++k) {
      s.Push(population[rng.Uniform(population.size())]);
    }
    ConfidenceInterval ci = MeanConfidence(s, 0.95);
    if (mu >= ci.lower() && mu <= ci.upper()) ++covered;
  }
  double rate = covered / static_cast<double>(kTrials);
  EXPECT_GE(rate, 0.90);
  EXPECT_LE(rate, 0.99);
}

TEST(ConfidenceTest, SumConfidenceScalesByCardinality) {
  RunningStat s;
  Rng rng(311);
  for (int i = 0; i < 1000; ++i) s.Push(rng.Normal(50, 10));
  ConfidenceInterval mean_ci = MeanConfidence(s, 0.95);
  ConfidenceInterval sum_ci = SumConfidence(s, 0.95, 10000.0, true);
  EXPECT_NEAR(sum_ci.estimate, 10000.0 * mean_ci.estimate, 1e-6);
  EXPECT_NEAR(sum_ci.half_width, 10000.0 * mean_ci.half_width, 1e-6);
  // Inexact cardinality inflates the interval.
  ConfidenceInterval fuzzy = SumConfidence(s, 0.95, 10000.0, false);
  EXPECT_GT(fuzzy.half_width, sum_ci.half_width * 10);
}

TEST(ConfidenceTest, SumConfidenceBoundedTightensWithBounds) {
  RunningStat s;
  Rng rng(312);
  for (int i = 0; i < 1000; ++i) s.Push(rng.Normal(50, 10));
  // Hard bounds [9000, 11000] around q̂=10000 beat the ±50% inflation.
  ConfidenceInterval crude = SumConfidence(s, 0.95, 10000.0, false);
  ConfidenceInterval bounded =
      SumConfidenceBounded(s, 0.95, 9000, 11000, 10000.0);
  EXPECT_LT(bounded.half_width, crude.half_width);
  // True sum for any q in the bounds stays inside the interval.
  for (uint64_t q : {9000u, 10000u, 11000u}) {
    double plausible = static_cast<double>(q) * s.mean();
    EXPECT_GE(plausible, bounded.lower() - 1e-6);
    EXPECT_LE(plausible, bounded.upper() + 1e-6);
  }
  // Exact bounds collapse to the plain exact-cardinality interval.
  ConfidenceInterval exact = SumConfidenceBounded(s, 0.95, 10000, 10000, 10000.0);
  ConfidenceInterval reference = SumConfidence(s, 0.95, 10000.0, true);
  EXPECT_DOUBLE_EQ(exact.half_width, reference.half_width);
  // Sentinel upper bound falls back to the crude inflation.
  ConfidenceInterval unbounded =
      SumConfidenceBounded(s, 0.95, 100, ~uint64_t{0}, 10000.0);
  EXPECT_DOUBLE_EQ(unbounded.half_width, crude.half_width);
}

// ---------------------------------------------------------------------------
// OnlineAggregator
// ---------------------------------------------------------------------------

TEST(OnlineAggregatorTest, AvgConvergesToTruth) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(313));
  OnlineAggregator<2> agg(sampler.get(), env.Attr(), AggregateKind::kAvg);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  ConfidenceInterval ci = agg.RunUntil(StoppingRule::Samples(3000));
  double truth = env.TrueMean(kQ);
  EXPECT_NEAR(ci.estimate, truth, 3 * ci.half_width + 1e-9);
  EXPECT_LT(ci.half_width, 2.0);
}

TEST(OnlineAggregatorTest, AvgExactOnExhaustion) {
  EstimatorEnv& env = EstimatorEnv::Get();
  Rect2 small(Point2(0, 0), Point2(15, 15));
  auto sampler = env.rs().NewSampler(Rng(317));
  OnlineAggregator<2> agg(sampler.get(), env.Attr(), AggregateKind::kAvg);
  ASSERT_TRUE(agg.Begin(small).ok());
  ConfidenceInterval ci = agg.RunUntil(StoppingRule{});  // run to exhaustion
  EXPECT_TRUE(ci.exact);
  EXPECT_EQ(ci.half_width, 0.0);
  EXPECT_NEAR(ci.estimate, env.TrueMean(small), 1e-9);
}

TEST(OnlineAggregatorTest, SumConvergesToTruth) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(319));
  OnlineAggregator<2> agg(sampler.get(), env.Attr(), AggregateKind::kSum);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  ConfidenceInterval ci = agg.RunUntil(StoppingRule::Samples(5000));
  double truth = env.TrueSum(kQ);
  EXPECT_NEAR(ci.estimate, truth, 0.1 * truth);
}

TEST(OnlineAggregatorTest, CountUsesCardinality) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(323));
  OnlineAggregator<2> agg(sampler.get(), nullptr, AggregateKind::kCount);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  agg.Step(2000);
  ConfidenceInterval ci = agg.Current();
  double truth = static_cast<double>(env.TrueCount(kQ));
  EXPECT_GE(truth, ci.estimate - ci.half_width - 1);
  EXPECT_LE(truth, ci.estimate + ci.half_width + 1);
}

TEST(OnlineAggregatorTest, VarianceAndStddev) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(327));
  OnlineAggregator<2> agg(sampler.get(), env.Attr(), AggregateKind::kVariance);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  agg.Step(5000);
  // Uniform over {0..99}: variance ≈ (100²-1)/12 ≈ 833.25.
  EXPECT_NEAR(agg.Current().estimate, 833.25, 80.0);
  auto sampler2 = env.rs().NewSampler(Rng(329));
  OnlineAggregator<2> agg2(sampler2.get(), env.Attr(), AggregateKind::kStddev);
  ASSERT_TRUE(agg2.Begin(kQ).ok());
  agg2.Step(5000);
  EXPECT_NEAR(agg2.Current().estimate, std::sqrt(833.25), 2.0);
}

TEST(OnlineAggregatorTest, MinMaxBestEffort) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(331));
  OnlineAggregator<2> agg(sampler.get(), env.Attr(), AggregateKind::kMax);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  agg.Step(3000);
  EXPECT_GE(agg.Current().estimate, 95.0);  // should have seen a 99-ish value
  EXPECT_LE(agg.Current().estimate, 99.0);
}

TEST(OnlineAggregatorTest, NanAttributesAreSkipped) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(333));
  // Records with odd ids have no attribute (NaN): the mean over evens only.
  AttributeFn<2> attr = [&env](const Entry& e) {
    if (e.id % 2 == 1) return std::numeric_limits<double>::quiet_NaN();
    return env.ValueOf(e.id);
  };
  OnlineAggregator<2> agg(sampler.get(), attr, AggregateKind::kAvg);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  agg.Step(4000);
  // Even ids: values 0,2,...,98 → mean 49.
  EXPECT_NEAR(agg.Current().estimate, 49.0, 3.0);
  EXPECT_LT(agg.samples_drawn(), 4000u);  // NaNs were not pushed
}

TEST(OnlineAggregatorTest, EmptyQueryExhaustsImmediately) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(337));
  OnlineAggregator<2> agg(sampler.get(), env.Attr(), AggregateKind::kAvg);
  ASSERT_TRUE(agg.Begin(Rect2(Point2(500, 500), Point2(600, 600))).ok());
  EXPECT_EQ(agg.Step(100), 0u);
  EXPECT_TRUE(agg.Exhausted());
}

// ---------------------------------------------------------------------------
// OnlineQuantile
// ---------------------------------------------------------------------------

TEST(OnlineQuantileTest, MedianConvergesWithCoveringInterval) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(351));
  OnlineQuantile<2> median(sampler.get(), env.Attr(), 0.5);
  ASSERT_TRUE(median.Begin(kQ).ok());
  median.Step(2000);
  // Values are ~uniform over {0..99}: the true median is ~49-50.
  ConfidenceInterval ci = median.Current();
  EXPECT_NEAR(ci.estimate, 49.5, 5.0);
  EXPECT_LE(median.ci_lower(), 50.0);
  EXPECT_GE(median.ci_upper(), 49.0);
  EXPECT_LT(median.ci_upper() - median.ci_lower(), 10.0);
}

TEST(OnlineQuantileTest, TailQuantile) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(353));
  OnlineQuantile<2> p90(sampler.get(), env.Attr(), 0.9);
  ASSERT_TRUE(p90.Begin(kQ).ok());
  p90.Step(4000);
  EXPECT_NEAR(p90.Current().estimate, 89.5, 4.0);
}

TEST(OnlineQuantileTest, IntervalShrinksWithSamples) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(357));
  OnlineQuantile<2> median(sampler.get(), env.Attr(), 0.5);
  ASSERT_TRUE(median.Begin(kQ).ok());
  median.Step(100);
  double early = median.ci_upper() - median.ci_lower();
  median.Step(3000);
  double late = median.ci_upper() - median.ci_lower();
  EXPECT_LT(late, early);
}

TEST(OnlineQuantileTest, FewSamplesGiveUnboundedInterval) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(359));
  OnlineQuantile<2> q(sampler.get(), env.Attr(), 0.5);
  ASSERT_TRUE(q.Begin(kQ).ok());
  q.Step(3);
  EXPECT_TRUE(std::isinf(q.Current().half_width));
}

TEST(OnlineQuantileTest, ExhaustionIsExact) {
  EstimatorEnv& env = EstimatorEnv::Get();
  Rect2 small(Point2(0, 0), Point2(12, 12));
  auto sampler = env.rs().NewSampler(Rng(361));
  OnlineQuantile<2> median(sampler.get(), env.Attr(), 0.5);
  ASSERT_TRUE(median.Begin(small).ok());
  ConfidenceInterval ci = median.RunUntil(StoppingRule{});
  EXPECT_TRUE(ci.exact);
  // Cross-check against the brute-force median of the window.
  std::vector<double> vals;
  for (const auto& e : env.data()) {
    if (small.Contains(e.point)) vals.push_back(env.ValueOf(e.id));
  }
  std::sort(vals.begin(), vals.end());
  ASSERT_FALSE(vals.empty());
  EXPECT_EQ(ci.estimate, vals[vals.size() / 2]);
}

// ---------------------------------------------------------------------------
// Stopping rules
// ---------------------------------------------------------------------------

TEST(StoppingRuleTest, SampleLimit) {
  StoppingRule rule = StoppingRule::Samples(100);
  ConfidenceInterval ci;
  ci.samples = 99;
  EXPECT_FALSE(rule.ShouldStop(ci, 0));
  ci.samples = 100;
  EXPECT_TRUE(rule.ShouldStop(ci, 0));
}

TEST(StoppingRuleTest, TimeBudget) {
  StoppingRule rule = StoppingRule::TimeBudgetMillis(50);
  ConfidenceInterval ci;
  EXPECT_FALSE(rule.ShouldStop(ci, 49));
  EXPECT_TRUE(rule.ShouldStop(ci, 50));
}

TEST(StoppingRuleTest, QualityTargetsNeedMinimumSamples) {
  StoppingRule rule = StoppingRule::RelativeError(0.10);
  ConfidenceInterval ci;
  ci.estimate = 100;
  ci.half_width = 1;  // 1% — would qualify
  ci.samples = 5;     // but too few samples
  EXPECT_FALSE(rule.ShouldStop(ci, 0));
  ci.samples = 30;
  EXPECT_TRUE(rule.ShouldStop(ci, 0));
}

TEST(StoppingRuleTest, ExactAlwaysStops) {
  StoppingRule rule;  // no clauses
  ConfidenceInterval ci;
  ci.exact = true;
  EXPECT_TRUE(rule.ShouldStop(ci, 0));
}

TEST(StoppingRuleTest, HalfWidthTarget) {
  StoppingRule rule = StoppingRule::HalfWidth(2.0);
  ConfidenceInterval ci;
  ci.samples = 100;
  ci.half_width = 2.5;
  EXPECT_FALSE(rule.ShouldStop(ci, 0));
  ci.half_width = 1.9;
  EXPECT_TRUE(rule.ShouldStop(ci, 0));
}

// ---------------------------------------------------------------------------
// GroupByAggregator
// ---------------------------------------------------------------------------

TEST(GroupByTest, PerGroupMeansConverge) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(341));
  // Group by id % 4; the per-group truth is the brute-force mean over the
  // qualifying records of that group.
  auto key = [](const Entry& e) { return static_cast<int64_t>(e.id % 4); };
  double sums[4] = {};
  uint64_t ns[4] = {};
  for (const Entry& e : env.data()) {
    if (kQ.Contains(e.point)) {
      sums[e.id % 4] += env.ValueOf(e.id);
      ++ns[e.id % 4];
    }
  }
  GroupByAggregator<2> agg(sampler.get(), key, env.Attr(), AggregateKind::kAvg);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  agg.Step(6000);
  auto groups = agg.Current();
  ASSERT_EQ(groups.size(), 4u);
  for (const auto& g : groups) {
    ASSERT_GE(g.key, 0);
    ASSERT_LT(g.key, 4);
    double truth = sums[g.key] / static_cast<double>(ns[g.key]);
    EXPECT_NEAR(g.ci.estimate, truth, 3 * g.ci.half_width + 1e-9)
        << "group " << g.key;
  }
}

TEST(GroupByTest, GroupSizesProportional) {
  EstimatorEnv& env = EstimatorEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(343));
  auto key = [](const Entry& e) { return static_cast<int64_t>(e.id % 5); };
  GroupByAggregator<2> agg(sampler.get(), key, nullptr, AggregateKind::kCount);
  ASSERT_TRUE(agg.Begin(kQ).ok());
  agg.Step(5000);
  double q = static_cast<double>(env.TrueCount(kQ));
  for (const auto& g : agg.Current()) {
    EXPECT_NEAR(g.group_size.estimate, q / 5.0, q / 5.0 * 0.25) << g.key;
  }
}

TEST(GroupByTest, ExhaustionGivesExactGroups) {
  EstimatorEnv& env = EstimatorEnv::Get();
  Rect2 small(Point2(0, 0), Point2(12, 12));
  auto sampler = env.rs().NewSampler(Rng(347));
  auto key = [](const Entry& e) { return static_cast<int64_t>(e.id % 2); };
  GroupByAggregator<2> agg(sampler.get(), key, env.Attr(), AggregateKind::kAvg);
  ASSERT_TRUE(agg.Begin(small).ok());
  while (agg.Step(512) > 0) {
  }
  ASSERT_TRUE(agg.Exhausted());
  for (const auto& g : agg.Current()) {
    EXPECT_TRUE(g.ci.exact);
    EXPECT_EQ(g.ci.half_width, 0.0);
  }
}

}  // namespace
}  // namespace storm
