// Unit and property tests for the R-tree substrate: structural invariants
// under bulk loading, inserts and deletes; query correctness against brute
// force; canonical-set properties; subtree sampling uniformity; simulated
// I/O accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "storm/rtree/rtree.h"
#include "storm/util/rng.h"
#include "storm/util/stats.h"

namespace storm {
namespace {

using Entry2 = RTree<2>::Entry;

std::vector<Entry2> RandomEntries(size_t n, uint64_t seed, double lo = 0,
                                  double hi = 100) {
  Rng rng(seed);
  std::vector<Entry2> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        {Point2(rng.UniformDouble(lo, hi), rng.UniformDouble(lo, hi)), i});
  }
  return out;
}

std::vector<RecordId> BruteForce(const std::vector<Entry2>& data, const Rect2& q) {
  std::vector<RecordId> ids;
  for (const Entry2& e : data) {
    if (q.Contains(e.point)) ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<RecordId> TreeReport(const RTree<2>& tree, const Rect2& q) {
  std::vector<RecordId> ids;
  for (const auto& e : tree.RangeReport(q)) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(RTreeTest, EmptyTree) {
  RTree<2> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.bounds().IsEmpty());
  EXPECT_TRUE(tree.RangeReport(Rect2::Everything()).empty());
  EXPECT_EQ(tree.RangeCount(Rect2::Everything()), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SingleInsert) {
  RTree<2> tree;
  tree.Insert(Point2(1, 2), 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  auto hits = tree.RangeReport(Rect2(Point2(0, 0), Point2(3, 3)));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 7u);
  EXPECT_TRUE(tree.RangeReport(Rect2(Point2(5, 5), Point2(6, 6))).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, InsertManyKeepsInvariants) {
  RTreeOptions options;
  options.max_entries = 8;
  RTree<2> tree(options);
  auto data = RandomEntries(3000, 101);
  for (const Entry2& e : data) tree.Insert(e.point, e.id);
  EXPECT_EQ(tree.size(), data.size());
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_GT(tree.Height(), 2);
}

TEST(RTreeTest, DuplicatePointsSupported) {
  RTree<2> tree;
  for (RecordId i = 0; i < 100; ++i) tree.Insert(Point2(5, 5), i);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.RangeCount(Rect2(Point2(5, 5), Point2(5, 5))), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
}

// Build-method × fanout parameterized correctness sweep.
struct BuildParam {
  enum Method { kInsert, kStr, kHilbert } method;
  int fanout;
};

class RTreeBuildTest : public ::testing::TestWithParam<BuildParam> {
 protected:
  RTree<2> Build(const std::vector<Entry2>& data) {
    RTreeOptions options;
    options.max_entries = GetParam().fanout;
    switch (GetParam().method) {
      case BuildParam::kStr:
        return RTree<2>::BulkLoadStr(data, options);
      case BuildParam::kHilbert:
        return RTree<2>::BulkLoadHilbert(data, options);
      case BuildParam::kInsert: {
        RTree<2> tree(options);
        for (const Entry2& e : data) tree.Insert(e.point, e.id);
        return tree;
      }
    }
    return RTree<2>(options);
  }
};

TEST_P(RTreeBuildTest, MatchesBruteForceOnRandomQueries) {
  auto data = RandomEntries(2500, 103);
  RTree<2> tree = Build(data);
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), data.size());
  Rng rng(105);
  for (int i = 0; i < 40; ++i) {
    Rect2 q = Rect2::FromCorners(
        Point2(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)),
        Point2(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)));
    EXPECT_EQ(TreeReport(tree, q), BruteForce(data, q)) << "query " << i;
    EXPECT_EQ(tree.RangeCount(q), BruteForce(data, q).size());
  }
}

TEST_P(RTreeBuildTest, CanonicalSetIsExactPartition) {
  auto data = RandomEntries(2000, 107);
  RTree<2> tree = Build(data);
  Rng rng(109);
  for (int i = 0; i < 20; ++i) {
    Rect2 q = Rect2::FromCorners(
        Point2(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)),
        Point2(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)));
    auto canonical = tree.CanonicalSet(q);
    // Covered nodes are fully inside and pairwise non-nested.
    uint64_t covered_total = 0;
    for (const auto* node : canonical.covered) {
      EXPECT_TRUE(q.Contains(node->mbr));
      covered_total += node->count;
    }
    for (const auto& e : canonical.residual) {
      EXPECT_TRUE(q.Contains(e.point));
    }
    EXPECT_EQ(canonical.count, covered_total + canonical.residual.size());
    EXPECT_EQ(canonical.count, BruteForce(data, q).size());
  }
}

TEST_P(RTreeBuildTest, SampleSubtreeIsUniformOverRoot) {
  auto data = RandomEntries(512, 111);
  RTree<2> tree = Build(data);
  ASSERT_NE(tree.root(), nullptr);
  Rng rng(113);
  std::vector<uint64_t> counts(data.size(), 0);
  constexpr uint64_t kDraws = 100000;
  for (uint64_t i = 0; i < kDraws; ++i) {
    ++counts[tree.SampleSubtree(tree.root(), &rng).id];
  }
  double stat = ChiSquareUniform(counts.data(), counts.size(), kDraws);
  EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Builds, RTreeBuildTest,
    ::testing::Values(BuildParam{BuildParam::kInsert, 8},
                      BuildParam{BuildParam::kInsert, 64},
                      BuildParam{BuildParam::kStr, 8},
                      BuildParam{BuildParam::kStr, 64},
                      BuildParam{BuildParam::kHilbert, 8},
                      BuildParam{BuildParam::kHilbert, 64}),
    [](const ::testing::TestParamInfo<BuildParam>& info) {
      const char* m = info.param.method == BuildParam::kInsert    ? "Insert"
                      : info.param.method == BuildParam::kStr     ? "Str"
                                                                  : "Hilbert";
      return std::string(m) + "Fanout" + std::to_string(info.param.fanout);
    });

TEST(RTreeTest, BulkLoadPacksTightly) {
  auto data = RandomEntries(4096, 115);
  RTreeOptions options;
  options.max_entries = 64;
  RTree<2> tree = RTree<2>::BulkLoadStr(data, options);
  // 4096/64 = 64 leaves + 1 root = 65 nodes; allow a little slack.
  EXPECT_LE(tree.NodeCount(), 70u);
  EXPECT_EQ(tree.Height(), 2);
}

TEST(RTreeTest, EraseRemovesAndKeepsInvariants) {
  RTreeOptions options;
  options.max_entries = 8;
  auto data = RandomEntries(1200, 117);
  RTree<2> tree = RTree<2>::BulkLoadStr(data, options);
  Rng rng(119);
  std::vector<Entry2> shuffled = data;
  rng.Shuffle(shuffled);
  // Erase half, verifying queries against brute force on the remainder.
  size_t half = shuffled.size() / 2;
  std::unordered_set<RecordId> erased;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(tree.Erase(shuffled[i].point, shuffled[i].id)) << i;
    erased.insert(shuffled[i].id);
  }
  EXPECT_EQ(tree.size(), data.size() - half);
  ASSERT_TRUE(tree.CheckInvariants());
  std::vector<Entry2> rest;
  for (const Entry2& e : data) {
    if (!erased.contains(e.id)) rest.push_back(e);
  }
  Rect2 q(Point2(20, 20), Point2(70, 70));
  EXPECT_EQ(TreeReport(tree, q), BruteForce(rest, q));
}

TEST(RTreeTest, EraseMissingReturnsFalse) {
  RTree<2> tree;
  tree.Insert(Point2(1, 1), 5);
  EXPECT_FALSE(tree.Erase(Point2(1, 1), 6));  // wrong id
  EXPECT_FALSE(tree.Erase(Point2(2, 2), 5));  // wrong point
  EXPECT_TRUE(tree.Erase(Point2(1, 1), 5));
  EXPECT_FALSE(tree.Erase(Point2(1, 1), 5));  // already gone
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, EraseEverythingThenReuse) {
  RTreeOptions options;
  options.max_entries = 4;
  RTree<2> tree(options);
  auto data = RandomEntries(300, 121);
  for (const Entry2& e : data) tree.Insert(e.point, e.id);
  for (const Entry2& e : data) ASSERT_TRUE(tree.Erase(e.point, e.id));
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
  tree.Insert(Point2(0, 0), 999);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, MixedInsertEraseChurn) {
  RTreeOptions options;
  options.max_entries = 6;
  RTree<2> tree(options);
  Rng rng(123);
  std::vector<Entry2> live;
  RecordId next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      Entry2 e{Point2(rng.UniformDouble(0, 50), rng.UniformDouble(0, 50)),
               next_id++};
      tree.Insert(e.point, e.id);
      live.push_back(e);
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(live.size()));
      ASSERT_TRUE(tree.Erase(live[victim].point, live[victim].id));
      live[victim] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  ASSERT_TRUE(tree.CheckInvariants());
  Rect2 q(Point2(10, 10), Point2(35, 35));
  EXPECT_EQ(TreeReport(tree, q), BruteForce(live, q));
}

TEST(RTreeTest, CountsMaintainedUnderUpdates) {
  RTreeOptions options;
  options.max_entries = 5;
  RTree<2> tree(options);
  auto data = RandomEntries(500, 125);
  for (const Entry2& e : data) {
    tree.Insert(e.point, e.id);
    ASSERT_EQ(tree.root()->count, tree.size());
  }
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Erase(data[i].point, data[i].id));
  }
  EXPECT_EQ(tree.size(), 300u);
  ASSERT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, RangeCountUsesAggregatesNotLeafScans) {
  auto data = RandomEntries(4096, 127);
  RTreeOptions options;
  options.max_entries = 16;
  RTree<2> tree = RTree<2>::BulkLoadStr(data, options);
  tree.ResetTouchCount();
  uint64_t count = tree.RangeCount(Rect2::Everything());
  EXPECT_EQ(count, data.size());
  // Everything is covered by the root: one node visit suffices.
  EXPECT_EQ(tree.nodes_touched(), 1u);
}

TEST(RTreeTest, SimulatedIoThroughBufferPool) {
  BlockManager disk(4096);
  BufferPool pool(&disk, 16);
  RTreeOptions options;
  options.max_entries = 16;
  options.pool = &pool;
  auto data = RandomEntries(2000, 129);
  RTree<2> tree = RTree<2>::BulkLoadStr(data, options);
  uint64_t pages = disk.stats().pages_allocated;
  EXPECT_EQ(pages, tree.NodeCount());
  IoStats before = disk.stats();
  tree.RangeReport(Rect2(Point2(0, 0), Point2(30, 30)));
  IoStats delta = disk.stats() - before;
  EXPECT_GT(delta.logical_reads, 0u);
}

TEST(RTreeTest, PagesFreedOnDestruction) {
  BlockManager disk(4096);
  BufferPool pool(&disk, 16);
  RTreeOptions options;
  options.pool = &pool;
  {
    RTree<2> tree = RTree<2>::BulkLoadStr(RandomEntries(500, 131), options);
    EXPECT_GT(disk.num_pages(), 0u);
  }
  EXPECT_EQ(disk.num_pages(), 0u);
}

TEST(RTreeTest, MoveSemantics) {
  auto data = RandomEntries(500, 133);
  RTree<2> a = RTree<2>::BulkLoadStr(data, {});
  RTree<2> b = std::move(a);
  EXPECT_EQ(b.size(), 500u);
  ASSERT_TRUE(b.CheckInvariants());
  RTree<2> c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 500u);
  Rect2 q(Point2(0, 0), Point2(50, 50));
  EXPECT_EQ(TreeReport(c, q), BruteForce(data, q));
}

TEST(RTree3Test, ThreeDimensionalQueries) {
  Rng rng(135);
  std::vector<RTree<3>::Entry> data;
  for (RecordId i = 0; i < 1000; ++i) {
    data.push_back({Point3(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10),
                           rng.UniformDouble(0, 1000)),
                    i});
  }
  RTree<3> tree = RTree<3>::BulkLoadHilbert(data, {});
  ASSERT_TRUE(tree.CheckInvariants());
  Rect3 q(Point3(2, 2, 100), Point3(8, 8, 600));
  uint64_t expected = 0;
  for (const auto& e : data) {
    if (q.Contains(e.point)) ++expected;
  }
  EXPECT_EQ(tree.RangeCount(q), expected);
  for (const auto& e : tree.RangeReport(q)) {
    EXPECT_TRUE(q.Contains(e.point));
  }
}

// Fuzz sweep: pathological data shapes × small fanouts, driven through a
// random insert/erase/query schedule and checked against a brute-force
// mirror at every step boundary.
struct FuzzParam {
  enum Shape { kUniform, kClustered, kCollinear, kDuplicates, kGridded } shape;
  int fanout;
};

const char* FuzzShapeName(FuzzParam::Shape shape) {
  switch (shape) {
    case FuzzParam::kUniform:
      return "Uniform";
    case FuzzParam::kClustered:
      return "Clustered";
    case FuzzParam::kCollinear:
      return "Collinear";
    case FuzzParam::kDuplicates:
      return "Duplicates";
    case FuzzParam::kGridded:
      return "Gridded";
  }
  return "?";
}

class RTreeFuzzTest : public ::testing::TestWithParam<FuzzParam> {
 protected:
  Point2 MakePoint(Rng* rng) {
    switch (GetParam().shape) {
      case FuzzParam::kUniform:
        return Point2(rng->UniformDouble(0, 100), rng->UniformDouble(0, 100));
      case FuzzParam::kClustered: {
        double cx = (rng->Uniform(4)) * 25.0 + 10;
        double cy = (rng->Uniform(4)) * 25.0 + 10;
        return Point2(rng->Normal(cx, 0.5), rng->Normal(cy, 0.5));
      }
      case FuzzParam::kCollinear: {
        double t = rng->UniformDouble(0, 100);
        return Point2(t, t * 0.5 + 3);
      }
      case FuzzParam::kDuplicates: {
        // Only 16 distinct locations.
        double x = static_cast<double>(rng->Uniform(4)) * 10;
        double y = static_cast<double>(rng->Uniform(4)) * 10;
        return Point2(x, y);
      }
      case FuzzParam::kGridded:
        return Point2(static_cast<double>(rng->Uniform(32)),
                      static_cast<double>(rng->Uniform(32)));
    }
    return Point2(0, 0);
  }
};

TEST_P(RTreeFuzzTest, RandomScheduleMatchesBruteForce) {
  RTreeOptions options;
  options.max_entries = GetParam().fanout;
  RTree<2> tree(options);
  std::vector<Entry2> live;
  Rng rng(777 + static_cast<uint64_t>(GetParam().fanout));
  RecordId next_id = 0;
  for (int round = 0; round < 12; ++round) {
    for (int step = 0; step < 250; ++step) {
      if (live.empty() || rng.Bernoulli(0.65)) {
        Entry2 e{MakePoint(&rng), next_id++};
        tree.Insert(e.point, e.id);
        live.push_back(e);
      } else {
        size_t victim = static_cast<size_t>(rng.Uniform(live.size()));
        ASSERT_TRUE(tree.Erase(live[victim].point, live[victim].id));
        live[victim] = live.back();
        live.pop_back();
      }
    }
    ASSERT_TRUE(tree.CheckInvariants()) << "round " << round;
    ASSERT_EQ(tree.size(), live.size());
    for (int qi = 0; qi < 5; ++qi) {
      Rect2 q = Rect2::FromCorners(
          Point2(rng.UniformDouble(-5, 105), rng.UniformDouble(-5, 105)),
          Point2(rng.UniformDouble(-5, 105), rng.UniformDouble(-5, 105)));
      ASSERT_EQ(TreeReport(tree, q), BruteForce(live, q))
          << "round " << round << " query " << qi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RTreeFuzzTest,
    ::testing::Values(FuzzParam{FuzzParam::kUniform, 4},
                      FuzzParam{FuzzParam::kUniform, 32},
                      FuzzParam{FuzzParam::kClustered, 4},
                      FuzzParam{FuzzParam::kClustered, 16},
                      FuzzParam{FuzzParam::kCollinear, 4},
                      FuzzParam{FuzzParam::kCollinear, 16},
                      FuzzParam{FuzzParam::kDuplicates, 4},
                      FuzzParam{FuzzParam::kDuplicates, 16},
                      FuzzParam{FuzzParam::kGridded, 8}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return std::string(FuzzShapeName(info.param.shape)) + "Fanout" +
             std::to_string(info.param.fanout);
    });

TEST(RTree3Test, ChurnWithTimeAxis) {
  // Spatio-temporal churn: inserts arrive in time order (the streaming
  // ingest pattern), deletes expire the oldest records, and windows over
  // (x, y, t) must stay exact throughout.
  RTreeOptions options;
  options.max_entries = 8;
  RTree<3> tree(options);
  Rng rng(991);
  std::vector<RTree<3>::Entry> live;
  RecordId next_id = 0;
  double now = 0.0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 300; ++i) {
      now += rng.Exponential(1.0);
      RTree<3>::Entry e{Point3(rng.UniformDouble(0, 10),
                               rng.UniformDouble(0, 10), now),
                        next_id++};
      tree.Insert(e.point, e.id);
      live.push_back(e);
    }
    // Expire the oldest ~100 records.
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.point[2] < b.point[2]; });
    for (int i = 0; i < 100 && !live.empty(); ++i) {
      ASSERT_TRUE(tree.Erase(live.front().point, live.front().id));
      live.erase(live.begin());
    }
    ASSERT_TRUE(tree.CheckInvariants()) << "round " << round;
    // A "recent history" window and a spatial window, vs brute force.
    Rect3 recent(Point3(0, 0, now - 100), Point3(10, 10, now + 1));
    Rect3 spatial(Point3(2, 2, 0), Point3(7, 7, now + 1));
    for (const Rect3& q : {recent, spatial}) {
      uint64_t expected = 0;
      for (const auto& e : live) {
        if (q.Contains(e.point)) ++expected;
      }
      ASSERT_EQ(tree.RangeCount(q), expected) << "round " << round;
    }
  }
}

TEST(RTreeTest, NodeVersionBumpsOnMutation) {
  RTree<2> tree;
  tree.Insert(Point2(1, 1), 1);
  uint64_t v0 = tree.root()->version;
  tree.Insert(Point2(2, 2), 2);
  EXPECT_GT(tree.root()->version, v0);
  uint64_t v1 = tree.root()->version;
  ASSERT_TRUE(tree.Erase(Point2(1, 1), 1));
  EXPECT_GT(tree.root()->version, v1);
}

}  // namespace
}  // namespace storm
