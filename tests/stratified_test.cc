// Stratified online-sampling engine (index-assisted stratification over the
// RS-tree canonical set + Neyman-allocated per-stratum estimation). Labeled
// `stratified` so CI can run it standalone (`ctest -L stratified`) under
// several STORM_PARALLEL_SEED values; it also runs as part of the default
// suite.
//
// Covered here: the partition (disjoint strata covering P ∩ Q exactly, exact
// populations), within-stratum uniformity (chi-square per stratum), the
// variance win over uniform sampling on spatially skewed data (the engine's
// reason to exist), seed determinism, worker-disjoint parallel merges, the
// STRATIFIED query hint + optimizer upgrade, and the wire-flag plumbing.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "storm/estimator/aggregate.h"
#include "storm/estimator/stratified.h"
#include "storm/query/parser.h"
#include "storm/sampling/stratified.h"
#include "storm/server/protocol.h"
#include "storm/storm.h"
#include "storm/util/stats.h"

namespace storm {
namespace {

using Entry = RTree<2>::Entry;
using Node = RTree<2>::Node;

uint64_t TestSeed() {
  const char* env = std::getenv("STORM_PARALLEL_SEED");
  if (env == nullptr) return 1234;
  return std::strtoull(env, nullptr, 10);
}

// Spatially skewed fixture: the attribute's mean AND variance depend on
// where the point lives. The left half is quiet (values near 10), the right
// half is loud (values near 1000 with large spread). Uniform sampling sees
// a bimodal population with huge variance; spatially coherent strata see
// two quiet sub-populations — exactly the gap Neyman allocation exploits.
struct SkewedData {
  std::vector<Entry> entries;
  std::vector<double> values;  // indexed by record id
  double true_mean = 0.0;
};

SkewedData MakeSkewed(int n, uint64_t seed) {
  Rng rng(seed);
  SkewedData d;
  d.entries.reserve(n);
  d.values.reserve(n);
  double sum = 0.0;
  for (RecordId i = 0; i < static_cast<RecordId>(n); ++i) {
    double x = rng.UniformDouble(0, 100);
    double y = rng.UniformDouble(0, 100);
    double v = x < 50 ? rng.Normal(10, 1) : rng.Normal(1000, 100);
    d.entries.push_back({Point2(x, y), i});
    d.values.push_back(v);
    sum += v;
  }
  d.true_mean = sum / n;
  return d;
}

std::vector<RecordId> InQuery(const std::vector<Entry>& data, const Rect2& q) {
  std::vector<RecordId> ids;
  for (const Entry& e : data) {
    if (q.Contains(e.point)) ids.push_back(e.id);
  }
  return ids;
}

// Collects the qualifying record ids under a stratum's canonical roots.
void CollectUnder(const Node* u, const Rect2& q, std::vector<RecordId>* out) {
  if (u->is_leaf) {
    for (const Entry& e : u->entries) {
      if (q.Contains(e.point)) out->push_back(e.id);
    }
    return;
  }
  for (const auto& c : u->children) {
    if (q.Intersects(c->mbr)) CollectUnder(c.get(), q, out);
  }
}

const Rect2 kWholeQuery(Point2(-1, -1), Point2(101, 101));
const Rect2 kPartialQuery(Point2(20, 15), Point2(85, 90));

class StratifiedSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeSkewed(20'000, TestSeed());
    RsTreeOptions options;
    options.rtree.max_entries = 32;
    rs_ = std::make_unique<RsTree<2>>(data_.entries, options, TestSeed() + 1);
  }

  SkewedData data_;
  std::unique_ptr<RsTree<2>> rs_;
};

TEST_F(StratifiedSamplerTest, StrataAreDisjointCoverTheQueryWithExactCounts) {
  StratifiedSampler<2> s(rs_.get(), SamplingOptions(), Rng(TestSeed() + 2));
  ASSERT_TRUE(s.Begin(kPartialQuery, SamplingMode::kWithReplacement).ok());
  std::vector<RecordId> truth = InQuery(data_.entries, kPartialQuery);
  ASSERT_GT(s.Strata(), 1u);
  ASSERT_LE(s.Strata(), SamplingOptions().max_strata);

  std::unordered_set<RecordId> seen;
  uint64_t population_sum = 0;
  for (size_t h = 0; h < s.Strata(); ++h) {
    std::vector<RecordId> members;
    for (const Node* root : s.StratumRoots(h)) {
      CollectUnder(root, kPartialQuery, &members);
    }
    EXPECT_EQ(members.size(), s.StratumPopulation(h)) << "stratum " << h;
    population_sum += s.StratumPopulation(h);
    for (RecordId id : members) {
      EXPECT_TRUE(seen.insert(id).second) << "record " << id << " in 2 strata";
    }
    CardinalityEstimate per = s.Cardinality(h);
    EXPECT_TRUE(per.exact);
    EXPECT_EQ(per.lower, s.StratumPopulation(h));
  }
  EXPECT_EQ(population_sum, truth.size());
  EXPECT_EQ(seen.size(), truth.size());
  CardinalityEstimate total = s.Cardinality();
  EXPECT_TRUE(total.exact);
  EXPECT_EQ(total.lower, truth.size());
  EXPECT_GE(total.estimate, static_cast<double>(total.lower));
  EXPECT_LE(total.estimate, static_cast<double>(total.upper));
}

TEST_F(StratifiedSamplerTest, FacadeWithoutReplacementDrainsExactly) {
  StratifiedSampler<2> s(rs_.get(), SamplingOptions(), Rng(TestSeed() + 3));
  ASSERT_TRUE(s.Begin(kPartialQuery, SamplingMode::kWithoutReplacement).ok());
  std::unordered_set<RecordId> seen;
  Entry buf[128];
  while (true) {
    uint64_t n = s.NextBatch(std::span<Entry>(buf, 128));
    if (n == 0) break;
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_TRUE(seen.insert(buf[i].id).second) << "duplicate " << buf[i].id;
    }
  }
  EXPECT_TRUE(s.IsExhausted());
  std::vector<RecordId> truth = InQuery(data_.entries, kPartialQuery);
  EXPECT_EQ(seen.size(), truth.size());
  EXPECT_EQ(seen, std::unordered_set<RecordId>(truth.begin(), truth.end()));
}

TEST_F(StratifiedSamplerTest, WithinStratumDrawsAreUniformChiSquared) {
  StratifiedSampler<2> s(rs_.get(), SamplingOptions(), Rng(TestSeed() + 4));
  ASSERT_TRUE(s.Begin(kPartialQuery, SamplingMode::kWithReplacement).ok());
  // Test the largest stratum: enough members for a well-powered test.
  size_t pick = 0;
  for (size_t h = 0; h < s.Strata(); ++h) {
    if (s.StratumPopulation(h) > s.StratumPopulation(pick)) pick = h;
  }
  std::vector<RecordId> members;
  for (const Node* root : s.StratumRoots(pick)) {
    CollectUnder(root, kPartialQuery, &members);
  }
  ASSERT_GE(members.size(), 64u);
  std::unordered_map<RecordId, size_t> index;
  for (size_t i = 0; i < members.size(); ++i) index[members[i]] = i;

  std::vector<uint64_t> counts(members.size(), 0);
  uint64_t draws = 0;
  const uint64_t target = 30 * members.size();
  Entry buf[256];
  while (draws < target) {
    uint64_t n = s.NextBatchFrom(
        pick, std::span<Entry>(buf, std::min<uint64_t>(256, target - draws)));
    ASSERT_GT(n, 0u);
    for (uint64_t i = 0; i < n; ++i) {
      auto it = index.find(buf[i].id);
      ASSERT_NE(it, index.end()) << "draw escaped its stratum";
      ++counts[it->second];
    }
    draws += n;
  }
  double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
  EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4));
}

TEST_F(StratifiedSamplerTest, SameSeedSameStream) {
  auto run = [this] {
    StratifiedSampler<2> s(rs_.get(), SamplingOptions(), Rng(TestSeed() + 5));
    EXPECT_TRUE(s.Begin(kPartialQuery, SamplingMode::kWithReplacement).ok());
    std::vector<RecordId> ids;
    Entry buf[64];
    for (int round = 0; round < 10; ++round) {
      uint64_t n = s.NextBatch(std::span<Entry>(buf, 64));
      for (uint64_t i = 0; i < n; ++i) ids.push_back(buf[i].id);
    }
    return ids;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Stratified estimator
// ---------------------------------------------------------------------------

TEST_F(StratifiedSamplerTest, CountIsExactImmediately) {
  StratifiedSampler<2> s(rs_.get(), SamplingOptions(), Rng(TestSeed() + 6));
  StratifiedAggregator<2> agg(&s, AttributeFn<2>(), AggregateKind::kCount);
  ASSERT_TRUE(agg.Begin(kPartialQuery).ok());
  ConfidenceInterval ci = agg.Current();
  EXPECT_TRUE(ci.exact);
  EXPECT_EQ(ci.half_width, 0.0);
  EXPECT_EQ(ci.estimate,
            static_cast<double>(InQuery(data_.entries, kPartialQuery).size()));
}

TEST_F(StratifiedSamplerTest, StratifiedCiBeatsUniformOnSkewedData) {
  const std::vector<double>* column = &data_.values;
  AttributeFn<2> attr = [column](const Entry& e) {
    return e.id < column->size() ? (*column)[e.id]
                                 : std::numeric_limits<double>::quiet_NaN();
  };
  const uint64_t kBudget = 4096;

  StratifiedSampler<2> ss(rs_.get(), SamplingOptions(), Rng(TestSeed() + 7));
  StratifiedAggregator<2> strat(&ss, attr, AggregateKind::kAvg);
  ASSERT_TRUE(strat.Begin(kWholeQuery, SamplingMode::kWithReplacement).ok());
  while (strat.samples_drawn() < kBudget) {
    ASSERT_GT(strat.Step(512), 0u);
  }

  auto us = rs_->NewSampler(Rng(TestSeed() + 8), /*shared_buffers=*/false);
  OnlineAggregator<2> uniform(us.get(), attr, AggregateKind::kAvg);
  ASSERT_TRUE(
      uniform.Begin(kWholeQuery, SamplingMode::kWithReplacement).ok());
  while (uniform.samples_drawn() < kBudget) {
    ASSERT_GT(uniform.Step(512), 0u);
  }

  ConfidenceInterval sci = strat.Current();
  ConfidenceInterval uci = uniform.Current();
  ASSERT_TRUE(std::isfinite(sci.half_width));
  ASSERT_TRUE(std::isfinite(uci.half_width));
  // Both unbiased...
  EXPECT_NEAR(sci.estimate, data_.true_mean, 40.0);
  EXPECT_NEAR(uci.estimate, data_.true_mean, 40.0);
  // ...but the stratified interval must be decisively tighter at the same
  // budget (acceptance: <= 0.7x; the spatial split typically gives far
  // more).
  EXPECT_LE(sci.half_width, 0.7 * uci.half_width)
      << "stratified hw " << sci.half_width << " vs uniform " << uci.half_width;
}

TEST_F(StratifiedSamplerTest, EstimatorIsSeedDeterministic) {
  const std::vector<double>* column = &data_.values;
  AttributeFn<2> attr = [column](const Entry& e) {
    return e.id < column->size() ? (*column)[e.id]
                                 : std::numeric_limits<double>::quiet_NaN();
  };
  auto run = [&] {
    StratifiedSampler<2> s(rs_.get(), SamplingOptions(), Rng(TestSeed() + 9));
    StratifiedAggregator<2> agg(&s, attr, AggregateKind::kAvg);
    EXPECT_TRUE(agg.Begin(kPartialQuery).ok());
    for (int i = 0; i < 8; ++i) agg.Step(256);
    return agg.Current();
  };
  ConfidenceInterval a = run();
  ConfidenceInterval b = run();
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.half_width, b.half_width);
  EXPECT_EQ(a.samples, b.samples);
}

TEST_F(StratifiedSamplerTest, WorkersOwnDisjointStrataAndMergeToFullCoverage) {
  const std::vector<double>* column = &data_.values;
  AttributeFn<2> attr = [column](const Entry& e) {
    return e.id < column->size() ? (*column)[e.id]
                                 : std::numeric_limits<double>::quiet_NaN();
  };
  // Two workers, each with its own sampler instance (the partition is
  // RNG-free, so stratum indices align) and disjoint strata.
  StratifiedSampler<2> s0(rs_.get(), SamplingOptions(), Rng(TestSeed() + 10));
  StratifiedSampler<2> s1(rs_.get(), SamplingOptions(), Rng(TestSeed() + 11));
  StratifiedAggregator<2> w0(&s0, attr, AggregateKind::kAvg, 0.95, 0, 2);
  StratifiedAggregator<2> w1(&s1, attr, AggregateKind::kAvg, 0.95, 1, 2);
  ASSERT_TRUE(w0.Begin(kWholeQuery, SamplingMode::kWithReplacement).ok());
  ASSERT_TRUE(w1.Begin(kWholeQuery, SamplingMode::kWithReplacement).ok());
  ASSERT_EQ(s0.Strata(), s1.Strata());
  for (int i = 0; i < 6; ++i) {
    w0.Step(512);
    w1.Step(512);
  }
  // Each worker alone has uncovered strata -> infinite half-width.
  if (s0.Strata() > 1) {
    EXPECT_TRUE(std::isinf(w0.Current().half_width));
    EXPECT_TRUE(std::isinf(w1.Current().half_width));
  }
  // Per-stratum sample counts must not overlap across workers.
  for (size_t h = 0; h < s0.Strata(); ++h) {
    EXPECT_TRUE(w0.stratum_stat(h).count() == 0 ||
                w1.stratum_stat(h).count() == 0)
        << "stratum " << h << " sampled by both workers";
  }
  w0.Merge(w1);
  ConfidenceInterval merged = w0.Current();
  ASSERT_TRUE(std::isfinite(merged.half_width));
  EXPECT_NEAR(merged.estimate, data_.true_mean, 60.0);
  EXPECT_EQ(merged.samples, w0.samples_drawn());
}

// ---------------------------------------------------------------------------
// Query language, optimizer, and wire plumbing
// ---------------------------------------------------------------------------

TEST(StratifiedQueryTest, ParserAcceptsStratifiedHint) {
  auto ast = ParseQuery("SELECT AVG(v) FROM t USING STRATIFIED");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->method, SamplerStrategy::kStratified);
  EXPECT_EQ(SamplerStrategyToString(SamplerStrategy::kStratified),
            std::string("STRATIFIED"));
}

std::vector<Value> MakeDocs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> docs;
  docs.reserve(n);
  for (int i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    double x = rng.UniformDouble(0, 100);
    doc.Set("x", Value::Double(x));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(x < 50 ? rng.Normal(10, 1)
                                      : rng.Normal(1000, 100)));
    docs.push_back(doc);
  }
  return docs;
}

TEST(StratifiedQueryTest, ExplainUpgradesEligibleAggregates) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed())).ok());
  // prefer_stratified waives the cost-model thresholds, so the upgrade is
  // deterministic regardless of the selectivity estimate.
  auto explain = session.Execute(
      "EXPLAIN SELECT AVG(v) FROM t",
      ExecOptions().WithSampling(SamplingOptions().WithPreferStratified(true)));
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_TRUE(explain->explain_only);
  EXPECT_EQ(explain->strategy, "STRATIFIED");
  // Quantiles cannot use the stratified estimator; no upgrade.
  auto quantile = session.Execute(
      "EXPLAIN SELECT QUANTILE(0.5, v) FROM t",
      ExecOptions().WithSampling(SamplingOptions().WithPreferStratified(true)));
  ASSERT_TRUE(quantile.ok()) << quantile.status();
  EXPECT_NE(quantile->strategy, "STRATIFIED");
}

TEST(StratifiedQueryTest, StratifiedQueryAnswersCorrectly) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed() + 1)).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 4000 USING STRATIFIED");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->strategy, "STRATIFIED");
  EXPECT_GT(result->samples, 0u);
  // True mean is ~505 (half the mass at 10, half at 1000).
  EXPECT_LT(std::abs(result->ci.estimate - 505.0),
            4.0 * result->ci.half_width + 10.0);
  // Exact-count side effect of the canonical partition.
  EXPECT_TRUE(result->cardinality_exact);
}

TEST(StratifiedQueryTest, SequentialStratifiedRunIsDeterministic) {
  // Determinism holds for a fixed, freshly built table: Table mixes a
  // per-table sampler sequence into each sampler's seed (repeat Executes on
  // one table are differently seeded by design), so compare two identically
  // built sessions rather than two runs on one session.
  const std::string q = "SELECT AVG(v) FROM t SAMPLES 2000 USING STRATIFIED";
  auto run_fresh = [&]() {
    Session session;
    EXPECT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed() + 2)).ok());
    return session.Execute(q);
  };
  auto a = run_fresh();
  auto b = run_fresh();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ci.estimate, b->ci.estimate);
  EXPECT_EQ(a->ci.half_width, b->ci.half_width);
  EXPECT_EQ(a->samples, b->samples);
}

TEST(StratifiedQueryTest, ParallelStratifiedMatchesTruth) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed() + 3)).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 8000 USING STRATIFIED",
      ExecOptions().WithParallelism(4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->strategy, "STRATIFIED");
  EXPECT_GT(result->samples, 0u);
  ASSERT_TRUE(std::isfinite(result->ci.half_width));
  EXPECT_LT(std::abs(result->ci.estimate - 505.0),
            4.0 * result->ci.half_width + 10.0);
}

TEST(StratifiedWireTest, WantStratifiedFlagRoundTripsAndStaysCompatible) {
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM t";
  req.want_stratified = true;
  auto decoded = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->want_stratified);
  EXPECT_EQ(decoded->query, req.query);

  // A pre-stratified client's request (flag absent) decodes to false.
  QueryRequest old;
  old.query = req.query;
  auto old_decoded = DecodeQueryRequest(EncodeQueryRequest(old));
  ASSERT_TRUE(old_decoded.ok());
  EXPECT_FALSE(old_decoded->want_stratified);

  // An even older payload with no flags byte at all still decodes.
  std::string truncated = EncodeQueryRequest(old);
  // query string + parallelism(u32) + deadline(double) + interval(u32):
  // everything after is the optional trace block; chop it.
  auto chopped = DecodeQueryRequest(
      std::string_view(truncated).substr(0, truncated.size() - 1));
  ASSERT_TRUE(chopped.ok());
  EXPECT_FALSE(chopped->want_stratified);
}

TEST(StratifiedWireTest, StratifiedStrategyTagRoundTripsInResults) {
  QueryResult res;
  res.task = QueryTask::kAggregate;
  res.strategy = "STRATIFIED";
  res.decision.strategy = SamplerStrategy::kStratified;
  res.decision.reason = "stratified over the canonical set";
  res.ci = {500.0, 3.0, 0.95, 4096};
  auto decoded = DecodeQueryResult(EncodeQueryResult(res));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->decision.strategy, SamplerStrategy::kStratified);
  EXPECT_EQ(decoded->strategy, "STRATIFIED");
}

}  // namespace
}  // namespace storm
