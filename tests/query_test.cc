// Tests for the query layer: lexer, parser, optimizer rules, table
// registration/updates, and end-to-end query evaluation through Session.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "storm/data/electricity_gen.h"
#include "storm/data/tweet_gen.h"
#include "storm/query/lexer.h"
#include "storm/query/session.h"

namespace storm {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = TokenizeQuery("SELECT avg(x1), 'str' -2.5e3 30 % *");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  ASSERT_EQ(t.size(), 12u);  // incl. kEnd
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_TRUE(t[1].IsKeyword("AVG"));  // case-insensitive keywords
  EXPECT_TRUE(t[2].Is(TokenType::kLParen));
  EXPECT_EQ(t[3].literal, "x1");  // original case preserved
  EXPECT_TRUE(t[4].Is(TokenType::kRParen));
  EXPECT_TRUE(t[5].Is(TokenType::kComma));
  EXPECT_EQ(t[6].literal, "str");
  EXPECT_DOUBLE_EQ(t[7].number, -2500.0);
  EXPECT_DOUBLE_EQ(t[8].number, 30.0);
  EXPECT_TRUE(t[9].Is(TokenType::kPercent));
  EXPECT_TRUE(t[10].Is(TokenType::kStar));
  EXPECT_TRUE(t[11].Is(TokenType::kEnd));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(TokenizeQuery("SELECT 'unterminated").ok());
  EXPECT_FALSE(TokenizeQuery("SELECT $$$").ok());
}

TEST(LexerTest, DottedIdentifiers) {
  auto tokens = TokenizeQuery("user.geo.lat");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].literal, "user.geo.lat");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, FullAggregateQuery) {
  auto ast = ParseQuery(
      "SELECT AVG(usage) FROM elec REGION(-74.05, 40.55, -73.70, 40.92) "
      "TIME('2014-01-05', '2014-03-05') CONFIDENCE 95% ERROR 2% "
      "WITHIN 1.5 S SAMPLES 5000 USING RSTREE");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->task, QueryTask::kAggregate);
  EXPECT_EQ(ast->aggregate, AggregateKind::kAvg);
  EXPECT_EQ(ast->attribute, "usage");
  EXPECT_EQ(ast->table, "elec");
  ASSERT_TRUE(ast->region.has_value());
  EXPECT_DOUBLE_EQ(ast->region->lo()[0], -74.05);
  ASSERT_TRUE(ast->time_range.has_value());
  EXPECT_EQ(ast->time_range->first, *ParseTimestamp("2014-01-05"));
  EXPECT_DOUBLE_EQ(ast->confidence, 0.95);
  EXPECT_DOUBLE_EQ(ast->target_relative_error, 0.02);
  EXPECT_DOUBLE_EQ(ast->time_budget_ms, 1500.0);
  EXPECT_EQ(ast->sample_limit, 5000u);
  EXPECT_EQ(ast->method, SamplerStrategy::kRsTree);
}

TEST(ParserTest, CountStar) {
  auto ast = ParseQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->aggregate, AggregateKind::kCount);
  EXPECT_EQ(ast->attribute, "*");
}

TEST(ParserTest, GroupBy) {
  auto ast = ParseQuery("SELECT AVG(temperature) FROM w GROUP BY station");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->group_by, "station");
}

TEST(ParserTest, AnalyticalHeads) {
  auto kde = ParseQuery("SELECT KDE(32, 48) FROM tweets");
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->task, QueryTask::kKde);
  EXPECT_EQ(kde->kde_width, 32);
  EXPECT_EQ(kde->kde_height, 48);

  auto terms = ParseQuery("SELECT TOPTERMS(15, text) FROM tweets");
  ASSERT_TRUE(terms.ok());
  EXPECT_EQ(terms->task, QueryTask::kTopTerms);
  EXPECT_EQ(terms->top_m, 15u);
  EXPECT_EQ(terms->text_field, "text");

  auto cluster = ParseQuery("SELECT CLUSTER(5) FROM tweets");
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(cluster->cluster_k, 5);

  auto traj = ParseQuery("SELECT TRAJECTORY(user, 42) FROM tweets");
  ASSERT_TRUE(traj.ok());
  EXPECT_EQ(traj->object_field, "user");
  EXPECT_EQ(traj->object_id, 42);
}

TEST(ParserTest, QuantileHeads) {
  auto median = ParseQuery("SELECT MEDIAN(usage) FROM elec");
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median->task, QueryTask::kQuantile);
  EXPECT_DOUBLE_EQ(median->quantile_phi, 0.5);
  EXPECT_EQ(median->attribute, "usage");

  auto p95 = ParseQuery("SELECT QUANTILE(95%, usage) FROM elec");
  ASSERT_TRUE(p95.ok());
  EXPECT_DOUBLE_EQ(p95->quantile_phi, 0.95);

  auto p9 = ParseQuery("SELECT QUANTILE(0.9, usage) FROM elec");
  ASSERT_TRUE(p9.ok());
  EXPECT_DOUBLE_EQ(p9->quantile_phi, 0.9);

  EXPECT_FALSE(ParseQuery("SELECT QUANTILE(1.5, x) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT QUANTILE(0, x) FROM t").ok());
}

TEST(ParserTest, DistributedHint) {
  auto ast = ParseQuery("SELECT COUNT(*) FROM t USING DISTRIBUTED");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->method, SamplerStrategy::kDistributed);
}

TEST(ParserTest, GroupByCell) {
  auto ast = ParseQuery("SELECT COUNT(*) FROM t GROUP BY CELL(8, 4)");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->GroupByCell());
  EXPECT_EQ(ast->cell_grid_x, 8);
  EXPECT_EQ(ast->cell_grid_y, 4);
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t GROUP BY CELL(0, 4)").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(*) FROM t GROUP BY CELL(10000, 10000)").ok());
}

TEST(ParserTest, TimeAcceptsEpochNumbers) {
  auto ast = ParseQuery("SELECT COUNT(*) FROM t TIME(100, 50)");
  ASSERT_TRUE(ast.ok());
  // Swapped bounds are normalized.
  EXPECT_EQ(ast->time_range->first, 50.0);
  EXPECT_EQ(ast->time_range->second, 100.0);
}

TEST(ParserTest, ErrorAbsoluteVsPercent) {
  auto abs = ParseQuery("SELECT AVG(x) FROM t ERROR 5");
  ASSERT_TRUE(abs.ok());
  EXPECT_DOUBLE_EQ(abs->target_half_width, 5.0);
  EXPECT_DOUBLE_EQ(abs->target_relative_error, 0.0);
  auto rel = ParseQuery("SELECT AVG(x) FROM t ERROR 5%");
  ASSERT_TRUE(rel.ok());
  EXPECT_DOUBLE_EQ(rel->target_relative_error, 0.05);
}

struct BadQuery {
  const char* name;
  const char* query;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, Rejects) {
  EXPECT_FALSE(ParseQuery(GetParam().query).ok()) << GetParam().query;
}

INSTANTIATE_TEST_SUITE_P(
    Bad, ParserErrorTest,
    ::testing::Values(
        BadQuery{"Empty", ""}, BadQuery{"NoSelect", "AVG(x) FROM t"},
        BadQuery{"NoFrom", "SELECT AVG(x)"},
        BadQuery{"StarInAvg", "SELECT AVG(*) FROM t"},
        BadQuery{"BadRegionArity", "SELECT AVG(x) FROM t REGION(1,2,3)"},
        BadQuery{"BadTime", "SELECT AVG(x) FROM t TIME('nope','2014-01-01')"},
        BadQuery{"BadConfidence", "SELECT AVG(x) FROM t CONFIDENCE 200%"},
        BadQuery{"GroupByKde", "SELECT KDE(8,8) FROM t GROUP BY a"},
        BadQuery{"UnknownMethod", "SELECT AVG(x) FROM t USING BTREE"},
        BadQuery{"Trailing", "SELECT AVG(x) FROM t BOGUS CLAUSE"},
        BadQuery{"ZeroKde", "SELECT KDE(0, 8) FROM t"},
        BadQuery{"NegativeWithin", "SELECT AVG(x) FROM t WITHIN -5 MS"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Session + evaluator end-to-end (shared tables)
// ---------------------------------------------------------------------------

class QueryEnv {
 public:
  static QueryEnv& Get() {
    static auto* env = new QueryEnv();
    return *env;
  }

  Session& session() { return session_; }
  const std::vector<ElectricityReading>& readings() const { return readings_; }
  const std::vector<Tweet>& tweets() const { return tweets_; }

 private:
  QueryEnv() {
    ElectricityOptions elec_options;
    elec_options.num_units = 300;
    elec_options.readings_per_unit = 40;
    ElectricityGenerator elec(elec_options);
    readings_ = elec.Generate();
    std::vector<Value> elec_docs;
    elec_docs.reserve(readings_.size());
    for (const auto& r : readings_) {
      elec_docs.push_back(ElectricityGenerator::ToDocument(r));
    }
    Status st = session_.CreateTable("elec", elec_docs);
    assert(st.ok());

    TweetOptions tweet_options;
    tweet_options.num_tweets = 8000;
    tweet_options.num_users = 60;
    TweetGenerator tw(tweet_options);
    tweets_ = tw.Generate();
    std::vector<Value> tweet_docs;
    tweet_docs.reserve(tweets_.size());
    for (const auto& t : tweets_) {
      tweet_docs.push_back(TweetGenerator::ToDocument(t));
    }
    st = session_.CreateTable("tweets", tweet_docs);
    assert(st.ok());
    (void)st;
  }

  Session session_;
  std::vector<ElectricityReading> readings_;
  std::vector<Tweet> tweets_;
};

TEST(SessionTest, TableLifecycle) {
  Session s;
  std::vector<Value> docs = *ParseJsonlString("{\"x\":1.0,\"y\":2.0}\n");
  ASSERT_TRUE(s.CreateTable("t", docs).ok());
  EXPECT_TRUE(s.HasTable("t"));
  EXPECT_TRUE(s.CreateTable("t", docs).code() == StatusCode::kAlreadyExists);
  EXPECT_EQ(s.TableNames(), std::vector<std::string>{"t"});
  ASSERT_TRUE(s.DropTable("t").ok());
  EXPECT_FALSE(s.HasTable("t"));
  EXPECT_TRUE(s.DropTable("t").IsNotFound());
}

TEST(SessionTest, QueryUnknownTableFails) {
  Session s;
  EXPECT_TRUE(s.Execute("SELECT COUNT(*) FROM ghost").status().IsNotFound());
}

TEST(SessionTest, UnknownAttributeFailsFast) {
  QueryEnv& env = QueryEnv::Get();
  for (const char* query :
       {"SELECT AVG(bogus) FROM elec", "SELECT MEDIAN(bogus) FROM elec",
        "SELECT AVG(usage) FROM elec GROUP BY bogus",
        "SELECT TRAJECTORY(bogus, 1) FROM elec"}) {
    auto result = env.session().Execute(query);
    ASSERT_FALSE(result.ok()) << query;
    EXPECT_TRUE(result.status().IsNotFound()) << query;
    EXPECT_NE(result.status().message().find("bogus"), std::string::npos);
  }
  // COUNT(*) needs no attribute and still works.
  EXPECT_TRUE(env.session().Execute("SELECT COUNT(*) FROM elec SAMPLES 10").ok());
}

TEST(SessionTest, AvgMatchesGroundTruth) {
  QueryEnv& env = QueryEnv::Get();
  Rect2 region(Point2(-74.0, 40.6), Point2(-73.8, 40.9));
  double t0 = *ParseTimestamp("2014-01-05"), t1 = *ParseTimestamp("2014-03-05");
  double sum = 0;
  uint64_t n = 0;
  for (const auto& r : env.readings()) {
    if (region.Contains(Point2(r.lon, r.lat)) && r.t >= t0 && r.t <= t1) {
      sum += r.usage;
      ++n;
    }
  }
  ASSERT_GT(n, 100u);
  double truth = sum / static_cast<double>(n);
  auto result = env.session().Execute(
      "SELECT AVG(usage) FROM elec REGION(-74.0, 40.6, -73.8, 40.9) "
      "TIME('2014-01-05', '2014-03-05') ERROR 1% CONFIDENCE 99%");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->ci.estimate, truth, truth * 0.05);
  EXPECT_GT(result->samples, 0u);
}

TEST(SessionTest, CountIsExactWithQueryFirst) {
  QueryEnv& env = QueryEnv::Get();
  double t0 = *ParseTimestamp("2014-01-05"), t1 = *ParseTimestamp("2014-03-05");
  uint64_t truth = 0;
  for (const auto& r : env.readings()) {
    if (r.t >= t0 && r.t <= t1) ++truth;
  }
  auto result = env.session().Execute(
      "SELECT COUNT(*) FROM elec TIME('2014-01-05', '2014-03-05') "
      "USING QUERYFIRST SAMPLES 10");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ci.exact);
  EXPECT_DOUBLE_EQ(result->ci.estimate, static_cast<double>(truth));
}

TEST(SessionTest, UsingHintIsHonored) {
  QueryEnv& env = QueryEnv::Get();
  for (const char* method : {"RSTREE", "LSTREE", "RANDOMPATH", "QUERYFIRST",
                             "SAMPLEFIRST"}) {
    auto result = env.session().Execute(
        std::string("SELECT AVG(usage) FROM elec SAMPLES 200 USING ") + method);
    ASSERT_TRUE(result.ok()) << method << ": " << result.status();
    EXPECT_EQ(result->strategy, method);
  }
}

TEST(SessionTest, GroupByPerUnitHour) {
  QueryEnv& env = QueryEnv::Get();
  auto result = env.session().Execute(
      "SELECT AVG(usage) FROM elec GROUP BY unit SAMPLES 4000");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->groups.size(), 50u);
  for (const auto& g : result->groups) {
    EXPECT_GE(g.key, 0);
    EXPECT_LT(g.key, 300);
  }
}

TEST(SessionTest, KdeQueryProducesMap) {
  QueryEnv& env = QueryEnv::Get();
  auto result = env.session().Execute(
      "SELECT KDE(16, 16) FROM tweets SAMPLES 2000");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->kde_width, 16);
  EXPECT_EQ(result->kde_map.size(), 256u);
  double mass = 0;
  for (double d : result->kde_map) mass += d;
  EXPECT_GT(mass, 0.0);
}

TEST(SessionTest, KdeErrorTargetStopsEarly) {
  QueryEnv& env = QueryEnv::Get();
  // A loose relative-error target must stop well before the backstop cap.
  auto result = env.session().Execute(
      "SELECT KDE(8, 8) FROM tweets ERROR 50% USING RSTREE");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->samples, 100'000u);
  EXPECT_GT(result->samples, 0u);
}

TEST(SessionTest, TopTermsFindsEventVocabulary) {
  QueryEnv& env = QueryEnv::Get();
  auto result = env.session().Execute(
      "SELECT TOPTERMS(8, text) FROM tweets REGION(-84.6, 33.5, -84.1, 34.0) "
      "TIME('2014-02-10 06:00:00', '2014-02-13 12:00:00') SAMPLES 3000");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->terms.empty());
  // The snowstorm vocabulary must dominate the window.
  bool saw_snow = false;
  for (const auto& t : result->terms) {
    if (t.term == "snow" || t.term == "ice" || t.term == "outage") {
      saw_snow = true;
    }
  }
  EXPECT_TRUE(saw_snow);
}

TEST(SessionTest, ClusterQueryReturnsCenters) {
  QueryEnv& env = QueryEnv::Get();
  auto result =
      env.session().Execute("SELECT CLUSTER(4) FROM tweets SAMPLES 2000");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->centers.size(), 4u);
}

TEST(SessionTest, TrajectoryQueryReturnsTimeSortedPath) {
  QueryEnv& env = QueryEnv::Get();
  auto result = env.session().Execute(
      "SELECT TRAJECTORY(user, 7) FROM tweets SAMPLES 8000");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->trajectory.size(), 5u);
  for (size_t i = 1; i < result->trajectory.size(); ++i) {
    EXPECT_LE(result->trajectory[i - 1].t, result->trajectory[i].t);
  }
}

TEST(SessionTest, ProgressCallbackSeesImprovingEstimates) {
  QueryEnv& env = QueryEnv::Get();
  std::vector<double> widths;
  auto result = env.session().Execute(
      "SELECT AVG(usage) FROM elec SAMPLES 3000 USING RSTREE",
      ExecOptions().WithProgress([&](const QueryProgress& p) {
        if (p.samples >= 64 && std::isfinite(p.ci.half_width)) {
          widths.push_back(p.ci.half_width);
        }
        return true;
      }));
  ASSERT_TRUE(result.ok());
  ASSERT_GT(widths.size(), 4u);
  EXPECT_LT(widths.back(), widths.front());
}

TEST(SessionTest, CancellationStopsQuery) {
  QueryEnv& env = QueryEnv::Get();
  int calls = 0;
  auto result = env.session().Execute(
      "SELECT AVG(usage) FROM elec SAMPLES 100000 USING RSTREE",
      ExecOptions().WithProgress([&](const QueryProgress&) { return ++calls < 3; }));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->cancelled);
  EXPECT_EQ(calls, 3);
  EXPECT_LE(result->samples, 3u * 64u);
}

TEST(SessionTest, TimeBudgetStopsQuery) {
  QueryEnv& env = QueryEnv::Get();
  auto result = env.session().Execute(
      "SELECT AVG(usage) FROM elec WITHIN 30 MS USING RSTREE");
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->elapsed_ms, 1000.0);  // generous for slow CI
}

TEST(ParserTest, ExplainPrefix) {
  auto ast = ParseQuery("EXPLAIN SELECT AVG(x) FROM t REGION(0,0,1,1)");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->explain);
  auto plain = ParseQuery("SELECT AVG(x) FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);
  EXPECT_FALSE(ParseQuery("EXPLAIN EXPLAIN SELECT AVG(x) FROM t").ok());
}

TEST(SessionTest, ExplainReturnsPlanWithoutSampling) {
  QueryEnv& env = QueryEnv::Get();
  auto result = env.session().Execute(
      "EXPLAIN SELECT AVG(usage) FROM elec REGION(-74.0, 40.6, -73.8, 40.9) "
      "TIME('2014-01-05', '2014-03-05')");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->explain_only);
  EXPECT_EQ(result->samples, 0u);
  EXPECT_FALSE(result->strategy.empty());
  EXPECT_GT(result->decision.estimated_cardinality, 0.0);
  EXPECT_FALSE(result->decision.reason.empty());
  // A USING hint shows up in the plan.
  auto hinted = env.session().Execute(
      "EXPLAIN SELECT AVG(usage) FROM elec USING LSTREE");
  ASSERT_TRUE(hinted.ok());
  EXPECT_EQ(hinted->strategy, "LSTREE");
}

TEST(SessionTest, AutoSampleFirstFailsOverInsteadOfStalling) {
  // A table whose data is so skewed that the geometric selectivity
  // estimate is wildly wrong: everything lives in a tiny corner of a huge
  // MBR, plus one far outlier stretching the bounds. The optimizer guesses
  // high selectivity for a query on the corner, picks SampleFirst... which
  // would stall; the failover keeps the query alive.
  Rng rng(541);
  std::vector<Value> docs;
  for (int i = 0; i < 20000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0.0, 1.0)));
    doc.Set("y", Value::Double(rng.UniformDouble(0.0, 1.0)));
    doc.Set("v", Value::Double(1.0));
    docs.push_back(doc);
  }
  Session s;
  TableConfig config;
  config.build_ls_tree = false;  // force the geometric fallback estimate
  ASSERT_TRUE(s.CreateTable("skewed", docs, {}, config).ok());
  // Query covers the full MBR in x/y but a time slab with nothing in it is
  // too contrived; instead query a sliver: optimizer (geometric, no LS
  // estimate) sees ~full coverage only when region covers the bounds, so
  // query the bounds but demand samples from a sliver via time — simpler:
  // directly verify that SampleFirst chosen on a healthy query still works
  // and that a USING SAMPLEFIRST query on a sliver gives up while AUTO does
  // not.
  auto hinted = s.Execute(
      "SELECT AVG(v) FROM skewed REGION(0.40, 0.40, 0.4002, 0.4002) "
      "SAMPLES 50 USING SAMPLEFIRST");
  ASSERT_TRUE(hinted.ok());
  // Hinted SampleFirst on a near-empty sliver: few or no samples (gave up).
  auto query_first = s.Execute(
      "SELECT COUNT(*) FROM skewed REGION(0.40, 0.40, 0.4002, 0.4002) "
      "USING QUERYFIRST");
  ASSERT_TRUE(query_first.ok());
  // AUTO on the same sliver must produce whatever exists there, exactly.
  auto sliver_count = query_first->ci.estimate;
  if (sliver_count > 0) {
    auto auto_q = s.Execute(
        "SELECT AVG(v) FROM skewed REGION(0.40, 0.40, 0.4002, 0.4002) "
        "SAMPLES 50");
    ASSERT_TRUE(auto_q.ok());
    EXPECT_GT(auto_q->samples, 0u);
  }
}

TEST(SessionTest, GroupByCellCountsMatchBruteForce) {
  QueryEnv& env = QueryEnv::Get();
  Rect2 region(Point2(-74.0, 40.6), Point2(-73.8, 40.9));
  // Brute-force 2x2 cell counts.
  uint64_t truth[4] = {};
  for (const auto& r : env.readings()) {
    Point2 p(r.lon, r.lat);
    if (!region.Contains(p)) continue;
    int cx = p[0] < -73.9 ? 0 : 1;
    int cy = p[1] < 40.75 ? 0 : 1;
    ++truth[cy * 2 + cx];
  }
  auto result = env.session().Execute(
      "SELECT COUNT(*) FROM elec REGION(-74.0, 40.6, -73.8, 40.9) "
      "GROUP BY CELL(2, 2) USING QUERYFIRST SAMPLES 1000000");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_LE(result->groups.size(), 4u);
  uint64_t total = 0;
  for (const auto& g : result->groups) {
    ASSERT_GE(g.key, 0);
    ASSERT_LT(g.key, 4);
    EXPECT_TRUE(g.ci.exact);
    EXPECT_DOUBLE_EQ(g.ci.estimate, static_cast<double>(truth[g.key]))
        << "cell " << g.key;
    total += truth[g.key];
  }
  EXPECT_EQ(total, truth[0] + truth[1] + truth[2] + truth[3]);
}

TEST(SessionTest, MedianQueryMatchesBruteForce) {
  QueryEnv& env = QueryEnv::Get();
  Rect2 region(Point2(-74.0, 40.6), Point2(-73.8, 40.9));
  std::vector<double> vals;
  for (const auto& r : env.readings()) {
    if (region.Contains(Point2(r.lon, r.lat))) vals.push_back(r.usage);
  }
  std::sort(vals.begin(), vals.end());
  ASSERT_GT(vals.size(), 100u);
  double truth = vals[vals.size() / 2];
  auto result = env.session().Execute(
      "SELECT MEDIAN(usage) FROM elec REGION(-74.0, 40.6, -73.8, 40.9) "
      "SAMPLES 3000");
  ASSERT_TRUE(result.ok()) << result.status();
  // The order-statistic interval should cover the truth.
  EXPECT_GE(truth, result->ci_lower);
  EXPECT_LE(truth, result->ci_upper);
  EXPECT_NEAR(result->ci.estimate, truth, truth * 0.1);
}

TEST(SessionTest, DistributedTableSampling) {
  Rng rng(521);
  std::vector<Value> docs;
  for (int i = 0; i < 5000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 10)));
    docs.push_back(doc);
  }
  Session s;
  TableConfig config;
  config.num_shards = 4;
  ASSERT_TRUE(s.CreateTable("sharded", docs, {}, config).ok());
  auto result = s.Execute(
      "SELECT AVG(v) FROM sharded REGION(10, 10, 90, 90) SAMPLES 3000 "
      "USING DISTRIBUTED");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->strategy, "DISTRIBUTED");
  EXPECT_NEAR(result->ci.estimate, 4.5, 0.5);
  // Unsharded tables reject the hint cleanly.
  Session s2;
  ASSERT_TRUE(s2.CreateTable("plain", docs).ok());
  auto bad = s2.Execute("SELECT AVG(v) FROM plain USING DISTRIBUTED");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, DistributedUpdatesStayConsistent) {
  Rng rng(523);
  std::vector<Value> docs;
  for (int i = 0; i < 1000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 10)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 10)));
    doc.Set("v", Value::Double(1.0));
    docs.push_back(doc);
  }
  Session s;
  TableConfig config;
  config.num_shards = 3;
  ASSERT_TRUE(s.CreateTable("t", docs, {}, config).ok());
  auto updater = s.Updates("t");
  ASSERT_TRUE(updater.ok());
  Value doc = Value::MakeObject();
  doc.Set("x", Value::Double(5.0));
  doc.Set("y", Value::Double(5.0));
  doc.Set("v", Value::Double(1.0));
  Result<RecordId> id = (*updater)->Insert(doc);
  ASSERT_TRUE(id.ok());
  auto table = s.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->cluster()->size(), 1001u);
  ASSERT_TRUE((*updater)->Delete(*id).ok());
  EXPECT_EQ((*table)->cluster()->size(), 1000u);
}

TEST(SessionTest, UpdatesVisibleToQueries) {
  Session s;
  std::vector<Value> docs;
  Rng rng(501);
  for (int i = 0; i < 500; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("lon", Value::Double(rng.UniformDouble(0, 1)));
    doc.Set("lat", Value::Double(rng.UniformDouble(0, 1)));
    doc.Set("timestamp", Value::Double(100.0));
    doc.Set("v", Value::Double(10.0));
    docs.push_back(doc);
  }
  ASSERT_TRUE(s.CreateTable("t", docs).ok());
  auto before = s.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->ci.estimate, 500.0);
  // Insert 100 more through the update manager.
  auto updater = s.Updates("t");
  ASSERT_TRUE(updater.ok());
  for (int i = 0; i < 100; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("lon", Value::Double(0.5));
    doc.Set("lat", Value::Double(0.5));
    doc.Set("timestamp", Value::Double(200.0));
    doc.Set("v", Value::Double(20.0));
    ASSERT_TRUE((*updater)->Insert(doc).ok());
  }
  auto after = s.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->ci.estimate, 600.0);
  // Time-scoped query sees only the new batch.
  auto recent = s.Execute("SELECT COUNT(*) FROM t TIME(150, 250) USING QUERYFIRST");
  ASSERT_TRUE(recent.ok());
  EXPECT_DOUBLE_EQ(recent->ci.estimate, 100.0);
  // Delete the new batch again.
  for (RecordId id = 500; id < 600; ++id) {
    ASSERT_TRUE((*updater)->Delete(id).ok());
  }
  EXPECT_EQ((*updater)->deletes_applied(), 100u);
  auto final_count = s.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(final_count.ok());
  EXPECT_DOUBLE_EQ(final_count->ci.estimate, 500.0);
}

// ---------------------------------------------------------------------------
// Query fuzz: randomly composed valid queries must parse, execute without
// crashing, and return estimates inside the attribute's physical range.
// ---------------------------------------------------------------------------

TEST(QueryFuzzTest, RandomQueriesExecuteSanely) {
  QueryEnv& env = QueryEnv::Get();
  Rng rng(601);
  const char* aggs[] = {"AVG", "SUM", "COUNT", "MIN", "MAX", "VARIANCE",
                        "STDDEV", "MEDIAN"};
  const char* methods[] = {"RSTREE",     "LSTREE",      "RANDOMPATH",
                           "QUERYFIRST", "SAMPLEFIRST", "AUTO"};
  for (int trial = 0; trial < 60; ++trial) {
    std::string agg = aggs[rng.Uniform(std::size(aggs))];
    std::string query = "SELECT " + agg;
    if (agg == "COUNT") {
      query += "(*)";
    } else {
      query += "(usage)";
    }
    query += " FROM elec";
    if (rng.Bernoulli(0.7)) {
      double x0 = rng.UniformDouble(-74.05, -73.75);
      double y0 = rng.UniformDouble(40.55, 40.85);
      query += " REGION(" + std::to_string(x0) + "," + std::to_string(y0) +
               "," + std::to_string(x0 + rng.UniformDouble(0.01, 0.3)) + "," +
               std::to_string(y0 + rng.UniformDouble(0.01, 0.3)) + ")";
    }
    if (rng.Bernoulli(0.5)) {
      query += " TIME('2014-01-10', '2014-03-20')";
    }
    if (rng.Bernoulli(0.3) && agg != "MEDIAN") {
      query += " GROUP BY unit";
    }
    if (rng.Bernoulli(0.3)) {
      query += " ERROR " + std::to_string(1 + rng.Uniform(10)) + "%";
    }
    query += " SAMPLES " + std::to_string(50 + rng.Uniform(1000));
    query += std::string(" USING ") + methods[rng.Uniform(std::size(methods))];

    auto result = env.session().Execute(query);
    ASSERT_TRUE(result.ok()) << query << " -> " << result.status();
    if (result->samples == 0) continue;  // empty window: nothing to check
    if (agg == "AVG" || agg == "MIN" || agg == "MAX" || agg == "MEDIAN") {
      if (result->groups.empty()) {
        EXPECT_GE(result->ci.estimate, 0.0) << query;
        EXPECT_LE(result->ci.estimate, 2500.0) << query;  // physical range
      }
      for (const auto& g : result->groups) {
        EXPECT_GE(g.ci.estimate, 0.0) << query;
        EXPECT_LE(g.ci.estimate, 2500.0) << query;
      }
    }
    if (agg == "COUNT" && result->groups.empty()) {
      EXPECT_GE(result->ci.estimate, 0.0) << query;
      EXPECT_LE(result->ci.estimate, 400000.0) << query;
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

class OptimizerEnv {
 public:
  static OptimizerEnv& Get() {
    static auto* env = new OptimizerEnv();
    return *env;
  }
  Table& table() { return *table_; }

 private:
  OptimizerEnv() {
    Rng rng(503);
    std::vector<Value> docs;
    // Planar synthetic coordinates: named x/y, not lat/lon (values exceed
    // the geographic range, which the binding guess validates).
    for (int i = 0; i < 30000; ++i) {
      Value doc = Value::MakeObject();
      doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
      doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
      doc.Set("v", Value::Double(1.0));
      docs.push_back(doc);
    }
    auto table = Table::Create("big", docs);
    if (!table.ok()) {
      std::fprintf(stderr, "table build failed: %s\n",
                   table.status().ToString().c_str());
      std::abort();
    }
    table_ = std::make_unique<Table>(std::move(table).ValueOrDie());
  }
  std::unique_ptr<Table> table_;
};

Rect3 Box(double x0, double y0, double x1, double y1) {
  return Rect3(Point3(x0, y0, -1e18), Point3(x1, y1, 1e18));
}

TEST(OptimizerTest, CardinalityEstimateIsClose) {
  OptimizerEnv& env = OptimizerEnv::Get();
  QueryOptimizer opt;
  Rect3 q = Box(0, 0, 50, 50);  // ~25% of uniform data
  double est = opt.EstimateCardinality(env.table(), q);
  EXPECT_NEAR(est, 7500.0, 2000.0);
}

TEST(OptimizerTest, LargeSelectivityPicksSampleFirst) {
  OptimizerEnv& env = OptimizerEnv::Get();
  QueryOptimizer opt;
  OptimizerDecision d = opt.Choose(env.table(), Box(0, 0, 100, 100), 100);
  EXPECT_EQ(d.strategy, SamplerStrategy::kSampleFirst);
}

TEST(OptimizerTest, SmallSelectivityPicksRsTree) {
  OptimizerEnv& env = OptimizerEnv::Get();
  QueryOptimizer opt;
  // ~2% selectivity (q̂ ≈ 675) with k ≪ q̂: the buffered index wins.
  OptimizerDecision d = opt.Choose(env.table(), Box(10, 10, 25, 25), 100);
  EXPECT_EQ(d.strategy, SamplerStrategy::kRsTree);
}

TEST(OptimizerTest, TinyResultWithModestKPicksQueryFirst) {
  OptimizerEnv& env = OptimizerEnv::Get();
  QueryOptimizer opt;
  // q̂ ≈ 75 and k = 100: the caller will consume the whole result anyway.
  OptimizerDecision d = opt.Choose(env.table(), Box(10, 10, 15, 15), 100);
  EXPECT_EQ(d.strategy, SamplerStrategy::kQueryFirst);
}

TEST(OptimizerTest, HugeKPicksQueryFirst) {
  OptimizerEnv& env = OptimizerEnv::Get();
  QueryOptimizer opt;
  OptimizerDecision d = opt.Choose(env.table(), Box(10, 10, 15, 15), 1'000'000);
  EXPECT_EQ(d.strategy, SamplerStrategy::kQueryFirst);
}

TEST(OptimizerTest, EmptyRegionPicksQueryFirst) {
  OptimizerEnv& env = OptimizerEnv::Get();
  QueryOptimizer opt;
  OptimizerDecision d = opt.Choose(env.table(), Box(500, 500, 600, 600), 100);
  EXPECT_EQ(d.strategy, SamplerStrategy::kQueryFirst);
}

}  // namespace
}  // namespace storm
