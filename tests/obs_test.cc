// Unit and integration tests for the observability layer: MetricsRegistry
// instruments and exposition, QueryProfile span traces, and the wiring of
// both through Session::Execute.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "storm/obs/metrics.h"
#include "storm/obs/trace.h"
#include "storm/query/session.h"
#include "storm/util/logging.h"
#include "storm/util/rng.h"

namespace storm {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_EQ(g.Value(), 1.5);
}

TEST(HistogramTest, BucketPlacementCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // boundary is inclusive (le semantics)
  h.Observe(5.0);    // <= 10
  h.Observe(1000.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("c", "help", {{"k", "1"}});
  Counter* b = reg.GetCounter("c", "", {{"k", "1"}});
  Counter* other = reg.GetCounter("c", "", {{"k", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsDetachedInstrument) {
  MetricsRegistry reg;
  // Swallow the expected error log while keeping it observable.
  std::string logged;
  SetLogSink([&](LogLevel, std::string_view line) { logged.assign(line); });
  reg.GetCounter("m", "")->Increment();
  Gauge* orphan = reg.GetGauge("m", "");
  SetLogSink({});
  ASSERT_NE(orphan, nullptr);
  orphan->Set(77.0);  // usable, but never exported
  std::string out = reg.ExposePrometheus();
  EXPECT_NE(out.find("m 1\n"), std::string::npos);
  EXPECT_EQ(out.find("77"), std::string::npos);
  EXPECT_NE(logged.find("already registered"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("storm_test_concurrent_total", "");
  Histogram* h = reg.GetHistogram("storm_test_concurrent_ms", "", {10.0});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h->sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("storm_test_total", "help text", {{"kind", "a"}})->Increment(3);
  reg.GetGauge("storm_test_gauge", "g")->Set(2.5);
  Histogram* h = reg.GetHistogram("storm_test_ms", "h", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
  EXPECT_EQ(reg.ExposePrometheus(),
            "# HELP storm_test_gauge g\n"
            "# TYPE storm_test_gauge gauge\n"
            "storm_test_gauge 2.5\n"
            "# HELP storm_test_ms h\n"
            "# TYPE storm_test_ms histogram\n"
            "storm_test_ms_bucket{le=\"1\"} 1\n"
            "storm_test_ms_bucket{le=\"10\"} 2\n"
            "storm_test_ms_bucket{le=\"+Inf\"} 3\n"
            "storm_test_ms_sum 105.5\n"
            "storm_test_ms_count 3\n"
            "# HELP storm_test_total help text\n"
            "# TYPE storm_test_total counter\n"
            "storm_test_total{kind=\"a\"} 3\n");
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("c", "", {{"k", "v"}})->Increment();
  Histogram* h = reg.GetHistogram("hist", "", {1.0});
  h->Observe(0.5);
  EXPECT_EQ(reg.ExposeJson(),
            "{\"metrics\":["
            "{\"name\":\"c\",\"type\":\"counter\",\"labels\":{\"k\":\"v\"},"
            "\"value\":1},"
            "{\"name\":\"hist\",\"type\":\"histogram\",\"labels\":{},"
            "\"count\":1,\"sum\":0.5,\"buckets\":[[1,1],[\"+Inf\",0]]}"
            "]}");
}

TEST(QueryProfileTest, SpansNestAndStampIoDeltas) {
  AtomicIoStats io;
  QueryProfile profile;
  profile.SetIoSource(&io);
  {
    QueryProfile::ScopedSpan outer = profile.Span("outer");
    io.logical_reads += 10;
    {
      QueryProfile::ScopedSpan inner = profile.Span("inner");
      inner.SetSamples(5);
      inner.SetNote("detail");
      io.logical_reads += 7;
    }
  }
  profile.Finish();
  const TraceSpan* root = profile.Find("query");
  const TraceSpan* outer = profile.Find("outer");
  const TraceSpan* inner = profile.Find("inner");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(root->depth, 0);
  EXPECT_EQ(outer->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(outer->io.logical_reads, 17u);
  EXPECT_EQ(inner->io.logical_reads, 7u);
  EXPECT_EQ(inner->samples, 5u);
  EXPECT_EQ(inner->note, "detail");
  // Finish propagates the deepest sample count to the root.
  EXPECT_EQ(profile.total_samples(), 5u);
  EXPECT_EQ(profile.Find("missing"), nullptr);
}

TEST(QueryProfileTest, InertSpanIsSafe) {
  QueryProfile::ScopedSpan inert = ProfileSpan(nullptr, "nothing");
  inert.SetSamples(3);
  inert.SetNote("ignored");
  inert.End();  // no crash, no effect
}

TEST(QueryProfileTest, ConvergenceDecimationStaysBounded) {
  QueryProfile profile;
  for (int i = 0; i < 100'000; ++i) {
    profile.AddConvergencePoint(i, static_cast<uint64_t>(i), 1.0, 1.0 / (i + 1),
                                100.0);
  }
  const auto& points = profile.convergence();
  ASSERT_LE(points.size(), QueryProfile::kMaxConvergencePoints);
  ASSERT_GE(points.size(), 2u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].samples, points[i].samples);
  }
  // The trajectory still starts at the beginning.
  EXPECT_EQ(points.front().samples, 0u);
}

TEST(QueryProfileTest, JsonAndStringRenderMetadata) {
  QueryProfile profile;
  profile.query = "SELECT COUNT(*) FROM \"t\"";
  profile.table = "t";
  profile.task = "aggregate";
  profile.sampler = "RSTREE";
  { QueryProfile::ScopedSpan s = profile.Span("phase"); }
  profile.AddConvergencePoint(1.0, 64, 10.0, 2.0, 100.0);
  profile.Finish();
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"query\":\"SELECT COUNT(*) FROM \\\"t\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"convergence\":[[" ), std::string::npos);
  std::string text = profile.ToString();
  EXPECT_NE(text.find("query profile"), std::string::npos);
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("convergence: 1 points"), std::string::npos);
}

TEST(ObsIntegrationTest, SessionExecuteBuildsProfile) {
  Rng rng(4242);
  std::vector<Value> docs;
  for (int i = 0; i < 5000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 100)));
    docs.push_back(doc);
  }
  Session session;
  ASSERT_TRUE(session.CreateTable("t", docs).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t REGION(10, 10, 90, 90) SAMPLES 2000 USING RSTREE");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->profile, nullptr);
  const QueryProfile& profile = *result->profile;

  // Every phase of the query path shows up as a span.
  for (const char* name :
       {"query", "parse", "execute", "optimize", "prepare", "sample_loop"}) {
    EXPECT_NE(profile.Find(name), nullptr) << name;
  }
  // The sample loop's count matches the result, and propagates to the root.
  ASSERT_GT(result->samples, 0u);
  EXPECT_EQ(profile.Find("sample_loop")->samples, result->samples);
  EXPECT_EQ(profile.total_samples(), result->samples);
  // The first query on a fresh table pulls pages through the record store
  // (lazy column build), so the root span's IO delta is non-zero and at
  // least as large as any child's.
  EXPECT_GT(profile.total_io().logical_reads, 0u);
  EXPECT_GE(profile.total_io().logical_reads,
            profile.Find("prepare")->io.logical_reads);
  EXPECT_EQ(profile.total_io().logical_reads,
            profile.total_io().pool_hits + profile.total_io().pool_misses);
  EXPECT_GT(profile.total_ms(), 0.0);
  // Convergence trajectory recorded; samples monotone, half-widths finite.
  ASSERT_FALSE(profile.convergence().empty());
  EXPECT_LE(profile.convergence().back().samples, result->samples);
  // Metadata filled by session + evaluator.
  EXPECT_EQ(profile.table, "t");
  EXPECT_EQ(profile.task, "aggregate");
  EXPECT_EQ(profile.sampler, "RSTREE");
  EXPECT_FALSE(profile.query.empty());

  // The default registry picked up sampler + query instruments.
  std::string prom = MetricsRegistry::Default().ExposePrometheus();
  EXPECT_NE(prom.find("storm_sampler_begins_total{sampler=\"RS-tree\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("storm_sampler_draws_total{sampler=\"RS-tree\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("storm_queries_total{task=\"aggregate\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("storm_query_duration_ms_bucket"), std::string::npos);
  EXPECT_NE(prom.find("storm_bufferpool_hits_total"), std::string::npos);
}

TEST(ObsIntegrationTest, ProfileJsonRoundsTripThroughExecute) {
  Rng rng(7);
  std::vector<Value> docs;
  for (int i = 0; i < 1000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 10)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 10)));
    doc.Set("v", Value::Double(1.0));
    docs.push_back(doc);
  }
  Session session;
  ASSERT_TRUE(session.CreateTable("p", docs).ok());
  auto result = session.Execute("SELECT COUNT(*) FROM p SAMPLES 500");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->profile, nullptr);
  std::string json = result->profile->ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"table\":\"p\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sample_loop\""), std::string::npos);
}

}  // namespace
}  // namespace storm
