// Unit and integration tests for the observability layer: MetricsRegistry
// instruments and exposition (Prometheus escaping, derived quantiles),
// QueryProfile span traces, trace-context propagation, the flight
// recorder, Chrome-trace export, and the wiring of all of it through
// Session::Execute.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storm/obs/flight_recorder.h"
#include "storm/obs/metrics.h"
#include "storm/obs/trace.h"
#include "storm/obs/trace_context.h"
#include "storm/obs/trace_export.h"
#include "storm/query/session.h"
#include "storm/util/logging.h"
#include "storm/util/rng.h"

namespace storm {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_EQ(g.Value(), 1.5);
}

TEST(HistogramTest, BucketPlacementCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // boundary is inclusive (le semantics)
  h.Observe(5.0);    // <= 10
  h.Observe(1000.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("c", "help", {{"k", "1"}});
  Counter* b = reg.GetCounter("c", "", {{"k", "1"}});
  Counter* other = reg.GetCounter("c", "", {{"k", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsDetachedInstrument) {
  MetricsRegistry reg;
  // Swallow the expected error log while keeping it observable.
  std::string logged;
  SetLogSink([&](LogLevel, std::string_view line) { logged.assign(line); });
  reg.GetCounter("m", "")->Increment();
  Gauge* orphan = reg.GetGauge("m", "");
  SetLogSink({});
  ASSERT_NE(orphan, nullptr);
  orphan->Set(77.0);  // usable, but never exported
  std::string out = reg.ExposePrometheus();
  EXPECT_NE(out.find("m 1\n"), std::string::npos);
  EXPECT_EQ(out.find("77"), std::string::npos);
  EXPECT_NE(logged.find("already registered"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("storm_test_concurrent_total", "");
  Histogram* h = reg.GetHistogram("storm_test_concurrent_ms", "", {10.0});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h->sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("storm_test_total", "help text", {{"kind", "a"}})->Increment(3);
  reg.GetGauge("storm_test_gauge", "g")->Set(2.5);
  Histogram* h = reg.GetHistogram("storm_test_ms", "h", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
  EXPECT_EQ(reg.ExposePrometheus(),
            "# HELP storm_test_gauge g\n"
            "# TYPE storm_test_gauge gauge\n"
            "storm_test_gauge 2.5\n"
            "# HELP storm_test_ms h\n"
            "# TYPE storm_test_ms histogram\n"
            "storm_test_ms_bucket{le=\"1\"} 1\n"
            "storm_test_ms_bucket{le=\"10\"} 2\n"
            "storm_test_ms_bucket{le=\"+Inf\"} 3\n"
            "storm_test_ms_sum 105.5\n"
            "storm_test_ms_count 3\n"
            "# HELP storm_test_total help text\n"
            "# TYPE storm_test_total counter\n"
            "storm_test_total{kind=\"a\"} 3\n");
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("c", "", {{"k", "v"}})->Increment();
  Histogram* h = reg.GetHistogram("hist", "", {1.0});
  h->Observe(0.5);
  EXPECT_EQ(reg.ExposeJson(),
            "{\"metrics\":["
            "{\"name\":\"c\",\"type\":\"counter\",\"labels\":{\"k\":\"v\"},"
            "\"value\":1},"
            "{\"name\":\"hist\",\"type\":\"histogram\",\"labels\":{},"
            "\"count\":1,\"sum\":0.5,\"p50\":0.5,\"p90\":0.9,\"p99\":0.99,"
            "\"buckets\":[[1,1],[\"+Inf\",0]]}"
            "]}");
}

TEST(QueryProfileTest, SpansNestAndStampIoDeltas) {
  AtomicIoStats io;
  QueryProfile profile;
  profile.SetIoSource(&io);
  {
    QueryProfile::ScopedSpan outer = profile.Span("outer");
    io.logical_reads += 10;
    {
      QueryProfile::ScopedSpan inner = profile.Span("inner");
      inner.SetSamples(5);
      inner.SetNote("detail");
      io.logical_reads += 7;
    }
  }
  profile.Finish();
  const TraceSpan* root = profile.Find("query");
  const TraceSpan* outer = profile.Find("outer");
  const TraceSpan* inner = profile.Find("inner");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(root->depth, 0);
  EXPECT_EQ(outer->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(outer->io.logical_reads, 17u);
  EXPECT_EQ(inner->io.logical_reads, 7u);
  EXPECT_EQ(inner->samples, 5u);
  EXPECT_EQ(inner->note, "detail");
  // Finish propagates the deepest sample count to the root.
  EXPECT_EQ(profile.total_samples(), 5u);
  EXPECT_EQ(profile.Find("missing"), nullptr);
}

TEST(QueryProfileTest, InertSpanIsSafe) {
  QueryProfile::ScopedSpan inert = ProfileSpan(nullptr, "nothing");
  inert.SetSamples(3);
  inert.SetNote("ignored");
  inert.End();  // no crash, no effect
}

TEST(QueryProfileTest, ConvergenceDecimationStaysBounded) {
  QueryProfile profile;
  for (int i = 0; i < 100'000; ++i) {
    profile.AddConvergencePoint(i, static_cast<uint64_t>(i), 1.0, 1.0 / (i + 1),
                                100.0);
  }
  const auto& points = profile.convergence();
  ASSERT_LE(points.size(), QueryProfile::kMaxConvergencePoints);
  ASSERT_GE(points.size(), 2u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].samples, points[i].samples);
  }
  // The trajectory still starts at the beginning.
  EXPECT_EQ(points.front().samples, 0u);
}

TEST(QueryProfileTest, JsonAndStringRenderMetadata) {
  QueryProfile profile;
  profile.query = "SELECT COUNT(*) FROM \"t\"";
  profile.table = "t";
  profile.task = "aggregate";
  profile.sampler = "RSTREE";
  { QueryProfile::ScopedSpan s = profile.Span("phase"); }
  profile.AddConvergencePoint(1.0, 64, 10.0, 2.0, 100.0);
  profile.Finish();
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"query\":\"SELECT COUNT(*) FROM \\\"t\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"convergence\":[[" ), std::string::npos);
  std::string text = profile.ToString();
  EXPECT_NE(text.find("query profile"), std::string::npos);
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("convergence: 1 points"), std::string::npos);
}

TEST(ObsIntegrationTest, SessionExecuteBuildsProfile) {
  Rng rng(4242);
  std::vector<Value> docs;
  for (int i = 0; i < 5000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 100)));
    docs.push_back(doc);
  }
  Session session;
  ASSERT_TRUE(session.CreateTable("t", docs).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t REGION(10, 10, 90, 90) SAMPLES 2000 USING RSTREE");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->profile, nullptr);
  const QueryProfile& profile = *result->profile;

  // Every phase of the query path shows up as a span.
  for (const char* name :
       {"query", "parse", "execute", "optimize", "prepare", "sample_loop"}) {
    EXPECT_NE(profile.Find(name), nullptr) << name;
  }
  // The sample loop's count matches the result, and propagates to the root.
  ASSERT_GT(result->samples, 0u);
  EXPECT_EQ(profile.Find("sample_loop")->samples, result->samples);
  EXPECT_EQ(profile.total_samples(), result->samples);
  // The first query on a fresh table pulls pages through the record store
  // (lazy column build), so the root span's IO delta is non-zero and at
  // least as large as any child's.
  EXPECT_GT(profile.total_io().logical_reads, 0u);
  EXPECT_GE(profile.total_io().logical_reads,
            profile.Find("prepare")->io.logical_reads);
  EXPECT_EQ(profile.total_io().logical_reads,
            profile.total_io().pool_hits + profile.total_io().pool_misses);
  EXPECT_GT(profile.total_ms(), 0.0);
  // Convergence trajectory recorded; samples monotone, half-widths finite.
  ASSERT_FALSE(profile.convergence().empty());
  EXPECT_LE(profile.convergence().back().samples, result->samples);
  // Metadata filled by session + evaluator.
  EXPECT_EQ(profile.table, "t");
  EXPECT_EQ(profile.task, "aggregate");
  EXPECT_EQ(profile.sampler, "RSTREE");
  EXPECT_FALSE(profile.query.empty());

  // The default registry picked up sampler + query instruments.
  std::string prom = MetricsRegistry::Default().ExposePrometheus();
  EXPECT_NE(prom.find("storm_sampler_begins_total{sampler=\"RS-tree\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("storm_sampler_draws_total{sampler=\"RS-tree\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("storm_queries_total{task=\"aggregate\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("storm_query_duration_ms_bucket"), std::string::npos);
  EXPECT_NE(prom.find("storm_bufferpool_hits_total"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusLabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.GetCounter("esc_total", "h", {{"q", "say \"hi\"\\\npath"}})->Increment();
  std::string out = reg.ExposePrometheus();
  // backslash -> \\, quote -> \", newline -> \n, per the exposition format.
  EXPECT_NE(out.find("esc_total{q=\"say \\\"hi\\\"\\\\\\npath\"} 1"),
            std::string::npos)
      << out;
  // No raw newline may survive inside a label value (it would split the
  // sample line and corrupt the whole scrape).
  for (size_t pos = out.find('{'); pos != std::string::npos;
       pos = out.find('{', pos + 1)) {
    size_t close = out.find('}', pos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(out.substr(pos, close - pos).find('\n'), std::string::npos);
  }
}

TEST(MetricsRegistryTest, HelpAndTypeEmittedForEveryFamily) {
  MetricsRegistry reg;
  reg.GetCounter("no_help_total", "")->Increment();
  reg.GetGauge("g", "multi\nline \\ help")->Set(1);
  std::string out = reg.ExposePrometheus();
  // Help falls back to the family name so every family carries HELP+TYPE.
  EXPECT_NE(out.find("# HELP no_help_total no_help_total\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE no_help_total counter\n"), std::string::npos);
  // HELP text escapes backslash and newline.
  EXPECT_NE(out.find("# HELP g multi\\nline \\\\ help\n"), std::string::npos);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 100.0, 1000.0});
  for (int i = 0; i < 90; ++i) h.Observe(5.0);    // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.Observe(50.0);   // bucket (10, 100]
  // p50 lands mid-way through the first bucket: rank 50 of 90 -> ~5.56.
  EXPECT_NEAR(h.Quantile(0.50), 10.0 * 50.0 / 90.0, 1e-9);
  // p99 lands in the second bucket: rank 99, 9 of 10 into it -> 91.
  EXPECT_NEAR(h.Quantile(0.99), 10.0 + 90.0 * 9.0 / 10.0, 1e-9);
  // Everything past the last finite bound clamps to it.
  Histogram inf({1.0});
  inf.Observe(5000.0);
  EXPECT_DOUBLE_EQ(inf.Quantile(0.99), 1.0);
  // Empty histogram: all quantiles are 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, HistogramQuantilesTextListsEveryHistogram) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_ms", "", {1.0, 10.0});
  for (int i = 0; i < 10; ++i) h->Observe(0.5);
  reg.GetCounter("not_a_histogram", "")->Increment();
  std::string text = reg.HistogramQuantilesText();
  EXPECT_NE(text.find("lat_ms: n=10"), std::string::npos) << text;
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_EQ(text.find("not_a_histogram"), std::string::npos);
}

// --- Trace context --------------------------------------------------------

TEST(TraceContextTest, MintChildAndScope) {
  EXPECT_FALSE(TraceContext().valid());
  EXPECT_FALSE(CurrentTraceContext().valid());

  TraceContext minted = TraceContext::Mint(true);
  EXPECT_TRUE(minted.valid());
  EXPECT_TRUE(minted.sampled);
  EXPECT_EQ(minted.trace_id_hex().size(), 32u);
  EXPECT_EQ(minted.span_id_hex().size(), 16u);

  TraceContext child = minted.Child();
  EXPECT_EQ(child.trace_id_hi, minted.trace_id_hi);
  EXPECT_EQ(child.trace_id_lo, minted.trace_id_lo);
  EXPECT_NE(child.span_id, minted.span_id);
  EXPECT_TRUE(child.sampled);

  {
    ScopedTraceContext scope(minted);
    EXPECT_TRUE(CurrentTraceContext() == minted);
    {
      ScopedTraceContext inner(child);
      EXPECT_TRUE(CurrentTraceContext() == child);
    }
    EXPECT_TRUE(CurrentTraceContext() == minted);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());

  // Distinct mints get distinct trace ids.
  EXPECT_FALSE(TraceContext::Mint(false) == TraceContext::Mint(false));
}

TEST(TraceContextTest, AmbientContextIsPerThread) {
  TraceContext mine = TraceContext::Mint(false);
  ScopedTraceContext scope(mine);
  bool other_thread_saw_invalid = false;
  std::thread t([&] {
    other_thread_saw_invalid = !CurrentTraceContext().valid();
  });
  t.join();
  EXPECT_TRUE(other_thread_saw_invalid);
  EXPECT_TRUE(CurrentTraceContext() == mine);
}

TEST(TraceContextTest, LogLinesCarryTheAmbientTraceId) {
  std::string captured;
  SetLogSink([&](LogLevel, std::string_view line) {
    captured.assign(line);
  });
  TraceContext trace = TraceContext::Mint(false);
  {
    ScopedTraceContext scope(trace);
    STORM_LOG(Warn) << "traced message";
  }
  std::string traced = captured;
  STORM_LOG(Warn) << "untraced message";
  std::string untraced = captured;
  SetLogSink({});
  EXPECT_NE(traced.find("{trace=" + trace.trace_id_hex() + "}"),
            std::string::npos)
      << traced;
  EXPECT_EQ(untraced.find("{trace="), std::string::npos);
}

// --- Flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, EventsComeBackInGlobalOrder) {
  FlightRecorder rec;
  rec.Record(FlightEvent::kMark, 1);
  rec.Record(FlightEvent::kMark, 2, 20, "second");
  rec.Record(FlightEvent::kConnOpen, 3);
  auto events = rec.Dump();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[1].a, 2u);
  EXPECT_EQ(events[1].b, 20u);
  EXPECT_EQ(events[1].label, "second");
  EXPECT_EQ(events[2].type, FlightEvent::kConnOpen);
  EXPECT_EQ(rec.recorded_total(), 3u);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsNewest) {
  FlightRecorder rec;
  constexpr uint64_t kTotal = 5000;  // well past one ring (1024 slots)
  for (uint64_t i = 0; i < kTotal; ++i) {
    rec.Record(FlightEvent::kMark, i);
  }
  auto events = rec.Dump();
  ASSERT_FALSE(events.empty());
  ASSERT_LE(events.size(), 1024u);
  // The newest event is always retained; retained events are contiguous
  // and ordered.
  EXPECT_EQ(events.back().a, kTotal - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
  }
  // max_events trims from the old end.
  auto last_ten = rec.Dump(10);
  ASSERT_EQ(last_ten.size(), 10u);
  EXPECT_EQ(last_ten.back().a, kTotal - 1);
  EXPECT_EQ(last_ten.front().a, kTotal - 10);
}

TEST(FlightRecorderTest, ConcurrentRecordAndDumpIsSafeAndOrdered) {
  FlightRecorder rec;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20'000;
  std::atomic<bool> stop{false};
  // A dump thread races the writers the whole time (the seqlock path).
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto events = rec.Dump();
      for (size_t i = 1; i < events.size(); ++i) {
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        rec.Record(FlightEvent::kMark, static_cast<uint64_t>(t), i, "w");
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  dumper.join();
  EXPECT_EQ(rec.recorded_total(), kThreads * kPerThread);
  // Every thread's newest events survive in one merged, ordered dump.
  auto events = rec.Dump();
  std::set<uint64_t> threads_seen;
  for (const auto& e : events) threads_seen.insert(e.a);
  EXPECT_EQ(threads_seen.size(), static_cast<size_t>(kThreads));
  std::string text = rec.DumpText(8);
  EXPECT_NE(text.find("mark"), std::string::npos);
  std::string json = rec.DumpJson(8);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// --- Trace export ---------------------------------------------------------

TEST(TraceExportTest, ChromeTraceJsonTagsBothSites) {
  QueryProfile client;
  client.trace = TraceContext::Mint(true);
  client.query = "SELECT AVG(v) FROM t";
  { QueryProfile::ScopedSpan s = client.Span("rpc_await"); }
  client.Finish();

  QueryProfile server;
  server.trace = client.trace.Child();
  { QueryProfile::ScopedSpan s = server.Span("sample_loop"); }
  server.Finish();
  client.MergeServerProfile(server);

  std::string json = ChromeTraceJson(client);
  // Both processes' spans carry the same client-minted trace id.
  const std::string id = client.trace.trace_id_hex();
  size_t first = json.find(id);
  ASSERT_NE(first, std::string::npos) << json;
  EXPECT_NE(json.find(id, first + 1), std::string::npos)
      << "trace id must appear on more than one span";
  // Local spans render as pid 1, server spans as pid 2.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceExportTest, TraceSinkKeepsMostRecentUpToCapacity) {
  TraceSink sink(2);
  for (int i = 0; i < 5; ++i) {
    QueryProfile p;
    p.query = "q" + std::to_string(i);
    p.trace = TraceContext::Mint(true);
    p.Finish();
    sink.Record(p);
  }
  auto recent = sink.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent.front()->query, "q3");
  EXPECT_EQ(recent.back()->query, "q4");
  EXPECT_EQ(sink.recorded_total(), 5u);
  std::string json = sink.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("q4"), std::string::npos);
  EXPECT_EQ(json.find("q1"), std::string::npos);
}

TEST(QueryProfileTest, MergeServerProfileGraftsSpansOneLevelDeeper) {
  QueryProfile client;
  { QueryProfile::ScopedSpan s = client.Span("rpc_await"); }
  client.Finish();

  QueryProfile server;
  server.table = "t";
  server.sampler = "RSTREE";
  {
    QueryProfile::ScopedSpan s = server.Span("sample_loop");
    s.SetSamples(640);
  }
  server.AddConvergencePoint(1.0, 640, 4.5, 0.1, 100.0);
  server.Finish();

  client.MergeServerProfile(server);
  const TraceSpan* remote_root = nullptr;
  for (const TraceSpan& s : client.spans()) {
    if (s.site == "server" && s.name == "query") remote_root = &s;
  }
  ASSERT_NE(remote_root, nullptr);
  EXPECT_EQ(remote_root->depth, 1);  // server root sits under the client root
  const TraceSpan* loop = client.Find("sample_loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->site, "server");
  EXPECT_EQ(loop->depth, 2);
  // Adopted metadata and samples propagate to the joined profile.
  EXPECT_EQ(client.table, "t");
  EXPECT_EQ(client.sampler, "RSTREE");
  EXPECT_EQ(client.total_samples(), 640u);
  ASSERT_EQ(client.convergence().size(), 1u);
  // The joined rendering distinguishes sites.
  EXPECT_NE(client.ToString().find("@server"), std::string::npos);
}

TEST(ObsIntegrationTest, ProfileJsonRoundsTripThroughExecute) {
  Rng rng(7);
  std::vector<Value> docs;
  for (int i = 0; i < 1000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 10)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 10)));
    doc.Set("v", Value::Double(1.0));
    docs.push_back(doc);
  }
  Session session;
  ASSERT_TRUE(session.CreateTable("p", docs).ok());
  auto result = session.Execute("SELECT COUNT(*) FROM p SAMPLES 500");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->profile, nullptr);
  std::string json = result->profile->ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"table\":\"p\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sample_loop\""), std::string::npos);
}

}  // namespace
}  // namespace storm
