// Tests for the sampler module (Definition 1): each strategy must return
// uniform samples from P ∩ Q, report cardinality knowledge honestly, handle
// empty queries, and (where supported) exhaust exactly in
// without-replacement mode. The uniformity sweep is the paper's core
// correctness claim, so it runs as a chi-square goodness-of-fit test per
// strategy via TEST_P.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "storm/estimator/confidence.h"
#include "storm/sampling/failover.h"
#include "storm/sampling/ls_tree.h"
#include "storm/sampling/query_first.h"
#include "storm/sampling/random_path.h"
#include "storm/sampling/rs_tree.h"
#include "storm/sampling/sample_first.h"
#include "storm/util/stats.h"

namespace storm {
namespace {

using Entry = RTree<2>::Entry;

// Shared fixture data: one clustered data set, all indexes built once.
class SamplerEnv {
 public:
  static const SamplerEnv& Get() {
    static const SamplerEnv* env = new SamplerEnv();
    return *env;
  }

  const std::vector<Entry>& data() const { return data_; }
  const RTree<2>& tree() const { return rs_->tree(); }
  const RsTree<2>& rs() const { return *rs_; }
  const LsTree<2>& ls() const { return *ls_; }

  std::vector<RecordId> InQuery(const Rect2& q) const {
    std::vector<RecordId> ids;
    for (const Entry& e : data_) {
      if (q.Contains(e.point)) ids.push_back(e.id);
    }
    return ids;
  }

 private:
  SamplerEnv() {
    Rng rng(201);
    data_.reserve(20000);
    for (RecordId i = 0; i < 20000; ++i) {
      // Two dense clusters plus uniform background: stresses canonical
      // sets with very unequal subtree sizes.
      double x, y;
      if (rng.Bernoulli(0.4)) {
        x = rng.Normal(25, 3);
        y = rng.Normal(25, 3);
      } else if (rng.Bernoulli(0.5)) {
        x = rng.Normal(75, 6);
        y = rng.Normal(60, 6);
      } else {
        x = rng.UniformDouble(0, 100);
        y = rng.UniformDouble(0, 100);
      }
      data_.push_back({Point2(x, y), i});
    }
    RsTreeOptions rs_options;
    rs_options.rtree.max_entries = 32;
    rs_ = std::make_unique<RsTree<2>>(data_, rs_options, 77);
    LsTreeOptions ls_options;
    ls_options.rtree.max_entries = 32;
    ls_ = std::make_unique<LsTree<2>>(data_, ls_options, 78);
  }

  std::vector<Entry> data_;
  std::unique_ptr<RsTree<2>> rs_;
  std::unique_ptr<LsTree<2>> ls_;
};

enum class Strategy { kQueryFirst, kSampleFirst, kRandomPath, kLsTree, kRsTree };

std::string StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kQueryFirst:
      return "QueryFirst";
    case Strategy::kSampleFirst:
      return "SampleFirst";
    case Strategy::kRandomPath:
      return "RandomPath";
    case Strategy::kLsTree:
      return "LsTree";
    case Strategy::kRsTree:
      return "RsTree";
  }
  return "?";
}

std::unique_ptr<SpatialSampler<2>> MakeSampler(Strategy s, uint64_t seed) {
  const SamplerEnv& env = SamplerEnv::Get();
  switch (s) {
    case Strategy::kQueryFirst:
      return std::make_unique<QueryFirstSampler<2>>(&env.tree(), Rng(seed));
    case Strategy::kSampleFirst:
      return std::make_unique<SampleFirstSampler<2>>(&env.data(), Rng(seed));
    case Strategy::kRandomPath:
      return std::make_unique<RandomPathSampler<2>>(&env.tree(), Rng(seed));
    case Strategy::kLsTree:
      return env.ls().NewSampler(Rng(seed));
    case Strategy::kRsTree:
      return env.rs().NewSampler(Rng(seed));
  }
  return nullptr;
}

// Queries chosen to exercise different coverage patterns.
const Rect2 kClusterQuery(Point2(20, 20), Point2(30, 30));   // dense cluster
const Rect2 kWideQuery(Point2(10, 10), Point2(90, 90));      // most of P
const Rect2 kSparseQuery(Point2(0, 80), Point2(15, 100));    // background only
const Rect2 kEmptyQuery(Point2(200, 200), Point2(210, 210)); // nothing

class SamplerStrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(SamplerStrategyTest, SamplesLieInsideQuery) {
  auto sampler = MakeSampler(GetParam(), 11);
  ASSERT_TRUE(sampler->Begin(kClusterQuery, SamplingMode::kWithReplacement).ok() ||
              GetParam() == Strategy::kLsTree);
  if (GetParam() == Strategy::kLsTree) {
    ASSERT_TRUE(sampler->Begin(kClusterQuery, SamplingMode::kWithoutReplacement).ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(kClusterQuery.Contains(e->point));
  }
}

TEST_P(SamplerStrategyTest, EmptyQueryTerminates) {
  auto sampler = MakeSampler(GetParam(), 13);
  SamplingMode mode = GetParam() == Strategy::kLsTree
                          ? SamplingMode::kWithoutReplacement
                          : SamplingMode::kWithReplacement;
  ASSERT_TRUE(sampler->Begin(kEmptyQuery, mode).ok());
  // Must return nullopt (possibly after a bounded number of attempts for
  // SampleFirst), never hang.
  EXPECT_FALSE(sampler->Next().has_value());
}

TEST_P(SamplerStrategyTest, UniformityChiSquare) {
  // Draw with replacement from the cluster query and compare the hit
  // distribution over qualifying records against uniform.
  //
  // LS-tree is excluded here: its level membership is fixed per index (the
  // coin flips happen at build time, exactly as in the paper), so samples
  // are only uniform over the randomness of index construction — covered by
  // LsTreeTest.UniformAcrossIndexBuilds below.
  if (GetParam() == Strategy::kLsTree) {
    GTEST_SKIP() << "per-index randomness; see UniformAcrossIndexBuilds";
  }
  const SamplerEnv& env = SamplerEnv::Get();
  std::vector<RecordId> population = env.InQuery(kClusterQuery);
  ASSERT_GT(population.size(), 500u);
  std::unordered_map<RecordId, size_t> slot;
  for (size_t i = 0; i < population.size(); ++i) slot[population[i]] = i;

  auto sampler = MakeSampler(GetParam(), 17);
  SamplingMode mode = GetParam() == Strategy::kLsTree
                          ? SamplingMode::kWithoutReplacement
                          : SamplingMode::kWithReplacement;
  ASSERT_TRUE(sampler->Begin(kClusterQuery, mode).ok());

  std::vector<uint64_t> counts(population.size(), 0);
  uint64_t draws = 0;
  if (mode == SamplingMode::kWithReplacement) {
    draws = population.size() * 20;
    for (uint64_t i = 0; i < draws; ++i) {
      auto e = sampler->Next();
      ASSERT_TRUE(e.has_value());
      auto it = slot.find(e->id);
      ASSERT_NE(it, slot.end()) << "sample outside population";
      ++counts[it->second];
    }
    double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
    EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4))
        << StrategyName(GetParam());
  } else {
    // Without replacement: repeated restarts; test uniformity of the first
    // 32 draws of each run (prefixes of a uniform WoR sample are uniform).
    constexpr int kRuns = 400;
    constexpr int kPrefix = 32;
    for (int run = 0; run < kRuns; ++run) {
      auto s = MakeSampler(GetParam(), 1000 + static_cast<uint64_t>(run));
      ASSERT_TRUE(s->Begin(kClusterQuery, mode).ok());
      for (int i = 0; i < kPrefix; ++i) {
        auto e = s->Next();
        ASSERT_TRUE(e.has_value());
        auto it = slot.find(e->id);
        ASSERT_NE(it, slot.end());
        ++counts[it->second];
        ++draws;
      }
    }
    double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
    EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4))
        << StrategyName(GetParam());
  }
}

TEST_P(SamplerStrategyTest, WithoutReplacementNoDuplicatesAndExhausts) {
  if (GetParam() == Strategy::kSampleFirst) {
    GTEST_SKIP() << "SampleFirst cannot prove exhaustion";
  }
  const SamplerEnv& env = SamplerEnv::Get();
  std::vector<RecordId> population = env.InQuery(kSparseQuery);
  ASSERT_GT(population.size(), 0u);
  auto sampler = MakeSampler(GetParam(), 19);
  ASSERT_TRUE(sampler->Begin(kSparseQuery, SamplingMode::kWithoutReplacement).ok());
  std::unordered_set<RecordId> seen;
  while (true) {
    auto e = sampler->Next();
    if (!e.has_value()) break;
    EXPECT_TRUE(seen.insert(e->id).second) << "duplicate id " << e->id;
  }
  EXPECT_TRUE(sampler->IsExhausted());
  std::unordered_set<RecordId> expected(population.begin(), population.end());
  EXPECT_EQ(seen, expected);
}

TEST_P(SamplerStrategyTest, CardinalityConvergesToTruth) {
  const SamplerEnv& env = SamplerEnv::Get();
  uint64_t truth = env.InQuery(kWideQuery).size();
  auto sampler = MakeSampler(GetParam(), 23);
  SamplingMode mode = GetParam() == Strategy::kLsTree
                          ? SamplingMode::kWithoutReplacement
                          : SamplingMode::kWithReplacement;
  ASSERT_TRUE(sampler->Begin(kWideQuery, mode).ok());
  // The estimate invariant holds before the first draw too.
  CardinalityEstimate at_begin = sampler->Cardinality();
  EXPECT_GE(at_begin.estimate, static_cast<double>(at_begin.lower));
  EXPECT_LE(at_begin.estimate, static_cast<double>(at_begin.upper));
  for (int i = 0; i < 3000; ++i) {
    if (!sampler->Next().has_value()) break;
  }
  CardinalityEstimate c = sampler->Cardinality();
  // Invariant for every strategy at every stage: the point estimate is
  // populated and never escapes the hard bounds (samplers Clamp() before
  // returning).
  EXPECT_GT(c.estimate, 0.0) << StrategyName(GetParam());
  EXPECT_GE(c.estimate, static_cast<double>(c.lower)) << StrategyName(GetParam());
  EXPECT_LE(c.estimate, static_cast<double>(c.upper)) << StrategyName(GetParam());
  if (c.exact) {
    EXPECT_EQ(c.lower, truth);
    EXPECT_EQ(c.upper, truth);
  } else {
    EXPECT_LE(c.lower, truth);
    EXPECT_GE(c.upper, truth);
    if (c.estimate > 0) {
      EXPECT_NEAR(c.estimate, static_cast<double>(truth),
                  0.35 * static_cast<double>(truth))
          << StrategyName(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SamplerStrategyTest,
                         ::testing::Values(Strategy::kQueryFirst,
                                           Strategy::kSampleFirst,
                                           Strategy::kRandomPath,
                                           Strategy::kLsTree, Strategy::kRsTree),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                           return StrategyName(info.param);
                         });

// ---------------------------------------------------------------------------
// Strategy-specific behaviour
// ---------------------------------------------------------------------------

TEST(QueryFirstTest, CardinalityExactImmediately) {
  const SamplerEnv& env = SamplerEnv::Get();
  QueryFirstSampler<2> s(&env.tree(), Rng(31));
  ASSERT_TRUE(s.Begin(kClusterQuery, SamplingMode::kWithReplacement).ok());
  CardinalityEstimate c = s.Cardinality();
  EXPECT_TRUE(c.exact);
  EXPECT_EQ(c.lower, env.InQuery(kClusterQuery).size());
}

TEST(SampleFirstTest, GivesUpOnEmptyQueryInsteadOfHanging) {
  const SamplerEnv& env = SamplerEnv::Get();
  SampleFirstSampler<2> s(&env.data(), Rng(37), /*max_attempts_per_sample=*/5000);
  ASSERT_TRUE(s.Begin(kEmptyQuery, SamplingMode::kWithReplacement).ok());
  EXPECT_FALSE(s.Next().has_value());
  EXPECT_TRUE(s.GaveUp());
  EXPECT_EQ(s.total_attempts(), 5000u);
}

TEST(SampleFirstTest, CardinalityEstimateFromAcceptance) {
  const SamplerEnv& env = SamplerEnv::Get();
  SampleFirstSampler<2> s(&env.data(), Rng(41));
  ASSERT_TRUE(s.Begin(kWideQuery, SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(s.Next().has_value());
  double truth = static_cast<double>(env.InQuery(kWideQuery).size());
  EXPECT_NEAR(s.Cardinality().estimate, truth, truth * 0.1);
}

TEST(LsTreeTest, UniformAcrossIndexBuilds) {
  // An LS-tree's coin flips are baked in at build time; uniformity of the
  // first k reported samples holds over the randomness of index
  // construction. Build many small LS-trees with different seeds and test
  // the pooled hit distribution.
  Rng rng(881);
  std::vector<Entry> data;
  for (RecordId i = 0; i < 600; ++i) {
    data.push_back(
        {Point2(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)), i});
  }
  Rect2 q(Point2(2, 2), Point2(8, 8));
  std::vector<RecordId> population;
  for (const Entry& e : data) {
    if (q.Contains(e.point)) population.push_back(e.id);
  }
  std::unordered_map<RecordId, size_t> slot;
  for (size_t i = 0; i < population.size(); ++i) slot[population[i]] = i;
  std::vector<uint64_t> counts(population.size(), 0);
  uint64_t draws = 0;
  constexpr int kBuilds = 500;
  constexpr int kPrefix = 16;
  LsTreeOptions options;
  options.min_level_size = 64;
  for (int b = 0; b < kBuilds; ++b) {
    LsTree<2> ls(data, options, 1000 + static_cast<uint64_t>(b));
    auto s = ls.NewSampler(Rng(2000 + static_cast<uint64_t>(b)));
    ASSERT_TRUE(s->Begin(q, SamplingMode::kWithoutReplacement).ok());
    for (int i = 0; i < kPrefix; ++i) {
      auto e = s->Next();
      ASSERT_TRUE(e.has_value());
      auto it = slot.find(e->id);
      ASSERT_NE(it, slot.end());
      ++counts[it->second];
      ++draws;
    }
  }
  double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
  EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4));
}

TEST(LsTreeTest, RejectsWithReplacement) {
  const SamplerEnv& env = SamplerEnv::Get();
  auto s = env.ls().NewSampler(Rng(43));
  EXPECT_TRUE(s->Begin(kClusterQuery, SamplingMode::kWithReplacement)
                  .IsNotSupported());
}

TEST(LsTreeTest, LevelsFormGeometricSeries) {
  const SamplerEnv& env = SamplerEnv::Get();
  const LsTree<2>& ls = env.ls();
  ASSERT_GE(ls.num_levels(), 3);
  EXPECT_EQ(ls.tree(0).size(), env.data().size());
  for (int i = 1; i < ls.num_levels(); ++i) {
    double expected = static_cast<double>(ls.tree(i - 1).size()) * 0.5;
    EXPECT_NEAR(static_cast<double>(ls.tree(i).size()), expected,
                5 * std::sqrt(expected) + 10)
        << "level " << i;
  }
  // Total space stays linear (expected 2N for ratio 1/2).
  EXPECT_LT(ls.TotalEntries(), env.data().size() * 3);
}

TEST(LsTreeTest, LevelMembershipIsNested) {
  const SamplerEnv& env = SamplerEnv::Get();
  const LsTree<2>& ls = env.ls();
  // Every record in level i+1 must be in level i (P_{i+1} ⊆ P_i).
  for (int i = 1; i < ls.num_levels(); ++i) {
    auto upper = ls.tree(i).RangeReport(Rect2::Everything());
    std::unordered_set<RecordId> lower_ids;
    for (const auto& e : ls.tree(i - 1).RangeReport(Rect2::Everything())) {
      lower_ids.insert(e.id);
    }
    for (const auto& e : upper) {
      ASSERT_TRUE(lower_ids.contains(e.id)) << "level " << i;
    }
  }
}

TEST(LsTreeTest, UpdatesMaintainLevels) {
  std::vector<Entry> data;
  Rng rng(211);
  for (RecordId i = 0; i < 5000; ++i) {
    data.push_back({Point2(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)), i});
  }
  LsTree<2> ls(data, {}, 91);
  // Insert new records.
  for (RecordId i = 5000; i < 6000; ++i) {
    ls.Insert(Point2(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)), i);
  }
  EXPECT_EQ(ls.size(), 6000u);
  // Delete some original ones.
  for (RecordId i = 0; i < 500; ++i) {
    ASSERT_TRUE(ls.Erase(data[i].point, data[i].id));
  }
  EXPECT_EQ(ls.size(), 5500u);
  // A full without-replacement drain returns exactly the live set.
  auto s = ls.NewSampler(Rng(93));
  ASSERT_TRUE(s->Begin(Rect2::Everything(), SamplingMode::kWithoutReplacement).ok());
  std::unordered_set<RecordId> seen;
  while (auto e = s->Next()) seen.insert(e->id);
  EXPECT_EQ(seen.size(), 5500u);
  EXPECT_FALSE(seen.contains(42u));     // deleted
  EXPECT_TRUE(seen.contains(5500u));    // inserted
}

TEST(RsTreeTest, BuffersRefillLazily) {
  const SamplerEnv& env = SamplerEnv::Get();
  // Fresh RS-tree so buffered_nodes starts at zero.
  RsTree<2> rs(env.data(), {}, 55);
  EXPECT_EQ(rs.buffered_nodes(), 0u);
  auto s = rs.NewSampler(Rng(57));
  ASSERT_TRUE(s->Begin(kClusterQuery, SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(s->Next().has_value());
  EXPECT_GT(rs.buffered_nodes(), 0u);
}

TEST(RsTreeTest, PrefillBuildsAllBuffers) {
  std::vector<Entry> data;
  Rng rng(221);
  for (RecordId i = 0; i < 2000; ++i) {
    data.push_back({Point2(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)), i});
  }
  RsTreeOptions options;
  options.prefill = true;
  RsTree<2> rs(data, options, 59);
  EXPECT_EQ(rs.buffered_nodes(), rs.tree().NodeCount());
}

TEST(RsTreeTest, UpdatesInvalidateBuffers) {
  std::vector<Entry> data;
  Rng rng(223);
  for (RecordId i = 0; i < 3000; ++i) {
    data.push_back({Point2(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)), i});
  }
  RsTree<2> rs(data, {}, 61);
  Rect2 q(Point2(2, 2), Point2(8, 8));
  // Warm the buffers.
  auto s = rs.NewSampler(Rng(63));
  ASSERT_TRUE(s->Begin(q, SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(s->Next().has_value());
  // Insert a batch of new points concentrated in the query.
  for (RecordId i = 3000; i < 3400; ++i) {
    rs.Insert(Point2(rng.UniformDouble(4, 6), rng.UniformDouble(4, 6)), i);
  }
  // New points must show up in fresh samples at roughly their share.
  auto s2 = rs.NewSampler(Rng(65));
  ASSERT_TRUE(s2->Begin(q, SamplingMode::kWithReplacement).ok());
  uint64_t fresh = 0, total = 5000;
  for (uint64_t i = 0; i < total; ++i) {
    auto e = s2->Next();
    ASSERT_TRUE(e.has_value());
    if (e->id >= 3000) ++fresh;
  }
  uint64_t q_count = rs.tree().RangeCount(q);
  double expected = 400.0 / static_cast<double>(q_count);
  EXPECT_NEAR(fresh / static_cast<double>(total), expected, expected * 0.3);
  // Deleted points must never be sampled again.
  for (RecordId i = 0; i < 100; ++i) {
    ASSERT_TRUE(rs.Erase(data[i].point, data[i].id));
  }
  auto s3 = rs.NewSampler(Rng(67));
  ASSERT_TRUE(s3->Begin(Rect2::Everything(), SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 5000; ++i) {
    auto e = s3->Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_GE(e->id, 100u) << "sampled a deleted record";
  }
}

TEST(RsTreeTest, WithoutReplacementUpperBoundStopsStream) {
  std::vector<Entry> data;
  Rng rng(227);
  for (RecordId i = 0; i < 1000; ++i) {
    data.push_back({Point2(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)), i});
  }
  RsTree<2> rs(data, {}, 71);
  auto s = rs.NewSampler(Rng(73));
  ASSERT_TRUE(s->Begin(Rect2::Everything(), SamplingMode::kWithoutReplacement).ok());
  std::unordered_set<RecordId> seen;
  while (auto e = s->Next()) seen.insert(e->id);
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_TRUE(s->IsExhausted());
}

// Statistical end-to-end check per strategy: a 95% CI built on that
// strategy's samples must cover the true mean ~95% of the time.
TEST_P(SamplerStrategyTest, ConfidenceIntervalCoverage) {
  const SamplerEnv& env = SamplerEnv::Get();
  // Attribute: a deterministic value per record with real variance.
  auto value_of = [](RecordId id) {
    uint64_t s = id;
    return static_cast<double>(SplitMix64(s) % 1000);
  };
  double truth = 0;
  uint64_t q_count = 0;
  for (const Entry& e : env.data()) {
    if (kWideQuery.Contains(e.point)) {
      truth += value_of(e.id);
      ++q_count;
    }
  }
  truth /= static_cast<double>(q_count);
  constexpr int kTrials = 150;
  constexpr int kSamplesPerTrial = 150;
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto sampler = MakeSampler(GetParam(), 5000 + static_cast<uint64_t>(trial));
    SamplingMode mode = GetParam() == Strategy::kLsTree
                            ? SamplingMode::kWithoutReplacement
                            : SamplingMode::kWithReplacement;
    ASSERT_TRUE(sampler->Begin(kWideQuery, mode).ok());
    RunningStat stat;
    for (int i = 0; i < kSamplesPerTrial; ++i) {
      auto e = sampler->Next();
      ASSERT_TRUE(e.has_value());
      stat.Push(value_of(e->id));
    }
    ConfidenceInterval ci = MeanConfidence(stat, 0.95);
    if (truth >= ci.lower() && truth <= ci.upper()) ++covered;
  }
  double rate = covered / static_cast<double>(kTrials);
  // LS-tree trials share one index, so coverage fluctuates more; accept a
  // wide band around the nominal 95%.
  EXPECT_GE(rate, GetParam() == Strategy::kLsTree ? 0.82 : 0.87)
      << StrategyName(GetParam());
  EXPECT_LE(rate, 1.0);
}

TEST(FailoverTest, SwitchesWhenPrimaryStalls) {
  const SamplerEnv& env = SamplerEnv::Get();
  // SampleFirst with a tiny attempt budget stalls on the sparse query;
  // the failover must hand the stream to the RS-tree and keep producing.
  auto primary = std::make_unique<SampleFirstSampler<2>>(&env.data(), Rng(81),
                                                         /*max_attempts=*/8);
  auto fallback = env.rs().NewSampler(Rng(83));
  FailoverSampler<2> sampler(std::move(primary), std::move(fallback));
  ASSERT_TRUE(sampler.Begin(kSparseQuery, SamplingMode::kWithReplacement).ok());
  int produced = 0;
  for (int i = 0; i < 200; ++i) {
    auto e = sampler.Next();
    if (!e.has_value()) break;
    EXPECT_TRUE(kSparseQuery.Contains(e->point));
    ++produced;
  }
  EXPECT_EQ(produced, 200);
  EXPECT_TRUE(sampler.switched());
  EXPECT_EQ(sampler.name(), "RS-tree");
}

TEST(FailoverTest, SwitchIncrementsFailoverMetric) {
  const SamplerEnv& env = SamplerEnv::Get();
  Counter* switches = MetricsRegistry::Default().GetCounter(
      "storm_failover_switches_total", "",
      {{"from", "SampleFirst"}, {"to", "RS-tree"}});
  uint64_t before = switches->Value();
  auto primary = std::make_unique<SampleFirstSampler<2>>(&env.data(), Rng(97),
                                                         /*max_attempts=*/8);
  auto fallback = env.rs().NewSampler(Rng(99));
  FailoverSampler<2> sampler(std::move(primary), std::move(fallback));
  ASSERT_TRUE(sampler.Begin(kSparseQuery, SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(sampler.Next().has_value());
  EXPECT_TRUE(sampler.switched());
  // Exactly one switch per stream, however many draws follow it.
  EXPECT_EQ(switches->Value(), before + 1);
}

TEST(FailoverTest, StaysOnPrimaryWhenHealthy) {
  const SamplerEnv& env = SamplerEnv::Get();
  auto primary = std::make_unique<SampleFirstSampler<2>>(&env.data(), Rng(85));
  auto fallback = env.rs().NewSampler(Rng(87));
  FailoverSampler<2> sampler(std::move(primary), std::move(fallback));
  ASSERT_TRUE(sampler.Begin(kWideQuery, SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(sampler.Next().has_value());
  EXPECT_FALSE(sampler.switched());
  EXPECT_EQ(sampler.name(), "SampleFirst");
}

TEST(FailoverTest, ExhaustedPrimaryEndsStream) {
  const SamplerEnv& env = SamplerEnv::Get();
  // QueryFirst on an empty query exhausts cleanly; no switch should occur.
  auto primary = std::make_unique<QueryFirstSampler<2>>(&env.tree(), Rng(89));
  auto fallback = env.rs().NewSampler(Rng(91));
  FailoverSampler<2> sampler(std::move(primary), std::move(fallback));
  ASSERT_TRUE(sampler.Begin(kEmptyQuery, SamplingMode::kWithReplacement).ok());
  EXPECT_FALSE(sampler.Next().has_value());
  EXPECT_FALSE(sampler.switched());
  EXPECT_TRUE(sampler.IsExhausted());
}

TEST(FailoverTest, RejectsWithoutReplacement) {
  const SamplerEnv& env = SamplerEnv::Get();
  auto primary = std::make_unique<SampleFirstSampler<2>>(&env.data(), Rng(93));
  auto fallback = env.rs().NewSampler(Rng(95));
  FailoverSampler<2> sampler(std::move(primary), std::move(fallback));
  EXPECT_TRUE(sampler.Begin(kWideQuery, SamplingMode::kWithoutReplacement)
                  .IsNotSupported());
}

TEST(RandomPathTest, TouchCountGrowsLinearlyWithK) {
  const SamplerEnv& env = SamplerEnv::Get();
  RandomPathSampler<2> s(&env.tree(), Rng(75));
  ASSERT_TRUE(s.Begin(kWideQuery, SamplingMode::kWithReplacement).ok());
  env.tree().ResetTouchCount();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(s.Next().has_value());
  uint64_t touches_100 = env.tree().nodes_touched();
  for (int i = 0; i < 900; ++i) ASSERT_TRUE(s.Next().has_value());
  uint64_t touches_1000 = env.tree().nodes_touched();
  // Ω(k) node visits: 10x the samples should cost ~10x the visits.
  EXPECT_GT(touches_1000, 5 * touches_100);
}

}  // namespace
}  // namespace storm
