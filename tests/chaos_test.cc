// Chaos tests: seeded fault schedules driven through the failpoint
// subsystem, proving every robustness path end to end — injected IO faults
// and checksum corruption, retry/backoff, shard death and eviction with
// degraded-mode renormalization (uniformity verified by chi-squared), query
// deadlines, and cooperative cancellation.
//
// The schedule seed defaults to 1 and can be overridden with the
// STORM_CHAOS_SEED environment variable; CI runs three fixed seeds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storm/cluster/coordinator.h"
#include "storm/io/buffer_pool.h"
#include "storm/obs/metrics.h"
#include "storm/query/session.h"
#include "storm/storage/record_store.h"
#include "storm/util/failpoint.h"
#include "storm/util/retry.h"
#include "storm/util/stats.h"
#include "storm/util/stopwatch.h"

namespace storm {
namespace {

using Entry = RTree<3>::Entry;

uint64_t ChaosSeed() {
  const char* env = std::getenv("STORM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

std::vector<Entry> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Entry> data;
  data.reserve(n);
  for (RecordId i = 0; i < n; ++i) {
    data.push_back({Point3(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100),
                           rng.UniformDouble(0, 1000)),
                    i});
  }
  return data;
}

/// Retry policy tuned for tests: real backoff shape, negligible wall time.
RetryPolicy FastRetry(int attempts = 2) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.base_backoff_ms = 0.01;
  p.max_backoff_ms = 0.05;
  return p;
}

/// Every test starts and ends with a disarmed registry; a leaked failpoint
/// would poison unrelated tests through the process-wide Default() instance.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Default().DisableAll(); }
  void TearDown() override { Failpoints::Default().DisableAll(); }
};

using FailpointTest = ChaosTest;
using IoChaosTest = ChaosTest;
using ClusterChaosTest = ChaosTest;
using QueryChaosTest = ChaosTest;
using ChaosScheduleTest = ChaosTest;

// ---------------------------------------------------------------------------
// Failpoint triggers
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, DisarmedSiteIsTransparent) {
  EXPECT_TRUE(Failpoints::Default().Evaluate("never.configured").ok());
  EXPECT_EQ(Failpoints::Default().hits("never.configured"), 0u);
  EXPECT_TRUE(Failpoints::Default().ArmedSites().empty());
}

TEST_F(FailpointTest, DefaultConfigTripsEveryHit) {
  ScopedFailpoint fp("chaos.always", {});
  for (int i = 0; i < 5; ++i) {
    Status st = Failpoints::Default().Evaluate("chaos.always");
    EXPECT_TRUE(st.IsIOError()) << st;
  }
  EXPECT_EQ(Failpoints::Default().hits("chaos.always"), 5u);
  EXPECT_EQ(Failpoints::Default().trips("chaos.always"), 5u);
}

TEST_F(FailpointTest, EveryNthTripsPeriodically) {
  FailpointConfig config;
  config.every_nth = 3;
  ScopedFailpoint fp("chaos.nth", config);
  int failures = 0;
  for (int i = 1; i <= 12; ++i) {
    bool failed = !Failpoints::Default().Evaluate("chaos.nth").ok();
    EXPECT_EQ(failed, i % 3 == 0) << "hit " << i;
    failures += failed ? 1 : 0;
  }
  EXPECT_EQ(failures, 4);
}

TEST_F(FailpointTest, AfterNDelaysEligibility) {
  FailpointConfig config;
  config.after_n = 4;
  ScopedFailpoint fp("chaos.after", config);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_TRUE(Failpoints::Default().Evaluate("chaos.after").ok()) << i;
  }
  EXPECT_FALSE(Failpoints::Default().Evaluate("chaos.after").ok());
}

TEST_F(FailpointTest, MaxTripsCapsInjection) {
  FailpointConfig config;
  config.max_trips = 2;
  ScopedFailpoint fp("chaos.capped", config);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    failures += Failpoints::Default().Evaluate("chaos.capped").ok() ? 0 : 1;
  }
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(Failpoints::Default().trips("chaos.capped"), 2u);
  EXPECT_EQ(Failpoints::Default().hits("chaos.capped"), 10u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicUnderSeed) {
  FailpointConfig config;
  config.probability = 0.3;
  config.seed = 42;
  auto run_schedule = [&] {
    Failpoints::Default().Configure("chaos.prob", config);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(!Failpoints::Default().Evaluate("chaos.prob").ok());
    }
    Failpoints::Default().Disable("chaos.prob");
    return pattern;
  };
  std::vector<bool> first = run_schedule();
  std::vector<bool> second = run_schedule();
  EXPECT_EQ(first, second);
  int trips = 0;
  for (bool t : first) trips += t ? 1 : 0;
  // Bernoulli(0.3) over 200 draws: expect ~60, accept a generous band.
  EXPECT_GT(trips, 30);
  EXPECT_LT(trips, 100);
}

TEST_F(FailpointTest, ConfiguredCodeAndMessageAreReturned) {
  FailpointConfig config;
  config.code = StatusCode::kUnavailable;
  config.message = "simulated outage";
  ScopedFailpoint fp("chaos.custom", config);
  Status st = Failpoints::Default().Evaluate("chaos.custom");
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(st.message(), "simulated outage");
}

TEST_F(FailpointTest, LatencyOnlyTripKeepsStatusOk) {
  FailpointConfig config;
  config.code = StatusCode::kOk;
  config.latency_ms = 5.0;
  ScopedFailpoint fp("chaos.slow", config);
  Stopwatch watch;
  EXPECT_TRUE(Failpoints::Default().Evaluate("chaos.slow").ok());
  EXPECT_GE(watch.ElapsedMillis(), 4.0);
  EXPECT_EQ(Failpoints::Default().trips("chaos.slow"), 1u);
}

TEST_F(FailpointTest, ScopedActivationDisarmsOnExit) {
  {
    ScopedFailpoint fp("chaos.scoped", {});
    EXPECT_FALSE(Failpoints::Default().Evaluate("chaos.scoped").ok());
    EXPECT_EQ(Failpoints::Default().ArmedSites(),
              std::vector<std::string>{"chaos.scoped"});
  }
  EXPECT_TRUE(Failpoints::Default().Evaluate("chaos.scoped").ok());
  EXPECT_TRUE(Failpoints::Default().ArmedSites().empty());
}

TEST_F(FailpointTest, TripsAreExportedAsMetrics) {
  Counter* metric = MetricsRegistry::Default().GetCounter(
      "storm_failpoint_trips_total", "", {{"site", "chaos.metric"}});
  uint64_t before = metric->Value();
  ScopedFailpoint fp("chaos.metric", {});
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(Failpoints::Default().Evaluate("chaos.metric").ok());
  }
  EXPECT_EQ(metric->Value(), before + 3);
}

// ---------------------------------------------------------------------------
// Retry with backoff
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, RetryRecoversFromTransientFault) {
  int calls = 0;
  Rng rng(7);
  Status st = RetryWithBackoff(FastRetry(4), &rng, [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("blip") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST_F(ChaosTest, RetryFailsFastOnNonTransientError) {
  int calls = 0;
  Rng rng(7);
  Status st = RetryWithBackoff(FastRetry(5), &rng, [&] {
    ++calls;
    return Status::Corruption("bit rot");
  });
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(calls, 1);
}

TEST_F(ChaosTest, RetryReturnsLastErrorWhenExhausted) {
  int calls = 0;
  Rng rng(7);
  Status st = RetryWithBackoff(FastRetry(3), &rng, [&] {
    ++calls;
    return Status::IOError("attempt " + std::to_string(calls));
  });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "attempt 3");
  EXPECT_EQ(calls, 3);
}

TEST_F(ChaosTest, RetryHonorsDeadlineAcrossAttempts) {
  RetryPolicy policy = FastRetry(1000);
  policy.deadline_ms = 5.0;
  int calls = 0;
  Rng rng(7);
  Status st = RetryWithBackoff(policy, &rng, [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st;
  // ~3 attempts fit in 5ms of 2ms calls; far fewer than the attempt budget.
  EXPECT_LT(calls, 10);
}

TEST_F(ChaosTest, RetryTreatsLateSuccessAsTimeout) {
  // RPC timeout semantics: an answer that lands past the deadline fails the
  // call even though the work succeeded (this is how a straggler shard gets
  // evicted by its per-shard deadline).
  RetryPolicy policy = FastRetry(3);
  policy.deadline_ms = 2.0;
  Rng rng(7);
  Status st = RetryWithBackoff(policy, &rng, [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return Status::OK();
  });
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st;
}

TEST_F(ChaosTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_backoff_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 6.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4, nullptr), 6.0);  // capped
  policy.jitter = 0.5;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    double b = policy.BackoffMs(2, &rng);
    EXPECT_GE(b, 1.0);
    EXPECT_LE(b, 2.0);
  }
}

// ---------------------------------------------------------------------------
// IO chaos: simulated disk faults, corruption, and latency
// ---------------------------------------------------------------------------

TEST_F(IoChaosTest, ReadFaultPropagatesThroughBufferPool) {
  BlockManager disk(256);
  PageId page = disk.Allocate();
  std::vector<std::byte> buf(disk.page_size(), std::byte{7});
  ASSERT_TRUE(disk.Write(page, buf.data()).ok());
  BufferPool pool(&disk, 2);
  {
    ScopedFailpoint fp(std::string(kFailpointBlockRead), {});
    Result<std::byte*> frame = pool.Pin(page);
    ASSERT_FALSE(frame.ok());
    EXPECT_TRUE(frame.status().IsIOError()) << frame.status();
  }
  // Fault cleared: the same pin succeeds and sees the stored bytes.
  Result<std::byte*> frame = pool.Pin(page);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ((*frame)[0], std::byte{7});
  EXPECT_TRUE(pool.Unpin(page, false).ok());
}

TEST_F(IoChaosTest, WriteFaultSurfacesOnFlush) {
  BlockManager disk(256);
  PageId page = disk.Allocate();
  BufferPool pool(&disk, 2);
  ASSERT_TRUE(
      pool.WithPage(page, true, [](std::byte* p) { p[0] = std::byte{9}; }).ok());
  {
    ScopedFailpoint fp(std::string(kFailpointBlockWrite), {});
    Status st = pool.Flush();
    EXPECT_TRUE(st.IsIOError()) << st;
  }
  // The frame stayed dirty; a healthy flush lands the write.
  ASSERT_TRUE(pool.Flush().ok());
  std::vector<std::byte> buf(disk.page_size());
  ASSERT_TRUE(disk.Read(page, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{9});
}

TEST_F(IoChaosTest, ChecksumCatchesAtRestCorruption) {
  BlockManager disk(128);
  PageId page = disk.Allocate();
  std::vector<std::byte> buf(disk.page_size());
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = std::byte{uint8_t(i)};
  ASSERT_TRUE(disk.Write(page, buf.data()).ok());
  Counter* failures = MetricsRegistry::Default().GetCounter(
      "storm_io_checksum_failures_total");
  uint64_t before = failures->Value();
  ASSERT_TRUE(disk.CorruptPageForTesting(page, 17).ok());
  Status st = disk.Read(page, buf.data());
  EXPECT_TRUE(st.IsCorruption()) << st;
  EXPECT_EQ(failures->Value(), before + 1);
  // Rewriting the page records a fresh checksum and clears the damage.
  ASSERT_TRUE(disk.Write(page, buf.data()).ok());
  EXPECT_TRUE(disk.Read(page, buf.data()).ok());
}

TEST_F(IoChaosTest, CorruptFailpointInjectsInFlightBitFlip) {
  BlockManager disk(128);
  PageId page = disk.Allocate();
  std::vector<std::byte> buf(disk.page_size(), std::byte{3});
  ASSERT_TRUE(disk.Write(page, buf.data()).ok());
  {
    ScopedFailpoint fp(std::string(kFailpointBlockCorrupt), {});
    Status st = disk.Read(page, buf.data());
    EXPECT_TRUE(st.IsCorruption()) << st;
  }
  // The stored page was never touched: the next read is clean.
  ASSERT_TRUE(disk.Read(page, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{3});
}

TEST_F(IoChaosTest, RecordStoreSurfacesDiskFaults) {
  RecordStoreOptions options;
  options.page_size = 256;
  options.pool_pages = 2;  // tiny pool: early pages get evicted to "disk"
  RecordStore store(options);
  std::vector<RecordId> ids;
  for (int i = 0; i < 100; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("i", Value::Double(i));
    doc.Set("pad", Value::String("xxxxxxxxxxxxxxxx"));
    Result<RecordId> id = store.Append(doc);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  {
    ScopedFailpoint fp(std::string(kFailpointBlockRead), {});
    Result<Value> doc = store.Get(ids.front());
    ASSERT_FALSE(doc.ok());
    EXPECT_TRUE(doc.status().IsIOError()) << doc.status();
  }
  Result<Value> doc = store.Get(ids.front());
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE(doc->Find("i"), nullptr);
  EXPECT_DOUBLE_EQ(doc->Find("i")->AsDouble(), 0.0);
}

TEST_F(IoChaosTest, InjectedLatencySlowsReadsWithoutFailingThem) {
  BlockManager disk(128);
  PageId page = disk.Allocate();
  std::vector<std::byte> buf(disk.page_size());
  FailpointConfig slow;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 5.0;
  ScopedFailpoint fp(std::string(kFailpointBlockRead), slow);
  Stopwatch watch;
  EXPECT_TRUE(disk.Read(page, buf.data()).ok());
  EXPECT_GE(watch.ElapsedMillis(), 4.0);
}

// ---------------------------------------------------------------------------
// Cluster chaos: shard death, stragglers, and degraded sampling
// ---------------------------------------------------------------------------

TEST_F(ClusterChaosTest, DeadShardAtPlanTimeDegradesCoverage) {
  auto data = MakeData(2000, 801);
  Cluster cluster(data, 4, Partitioning::kHash, {}, 803);
  cluster.mutable_shard(1)->Kill();
  DistributedSamplerOptions options;
  options.retry = FastRetry();
  auto sampler = cluster.NewSampler(Rng(805), options);
  ASSERT_TRUE(
      sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement).ok());
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_TRUE(c.degraded);
  EXPECT_FALSE(c.exact);
  // Hash partitioning splits ~evenly; losing 1 of 4 shards costs ~1/4.
  EXPECT_NEAR(c.coverage, 0.75, 0.1);
  // Every draw comes from a live shard.
  for (int i = 0; i < 500; ++i) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_NE(cluster.RouteOf(e->point, e->id), 1);
  }
}

// The acceptance scenario: kill 1 of 4 shards mid-query. The query must
// complete, the result must be marked degraded with coverage ~ 3/4, and the
// post-kill stream must be statistically uniform over the survivors.
TEST_F(ClusterChaosTest, MidQueryShardDeathKeepsStreamUniformOverSurvivors) {
  auto data = MakeData(2000, 807);
  Cluster cluster(data, 4, Partitioning::kHash, {}, 809);
  Rect3 q(Point3(5, 5, 0), Point3(95, 95, 1000));
  constexpr int kVictim = 2;
  std::vector<RecordId> survivors;
  std::unordered_map<RecordId, size_t> slot;
  for (const Entry& e : data) {
    if (q.Contains(e.point) && cluster.RouteOf(e.point, e.id) != kVictim) {
      slot[e.id] = survivors.size();
      survivors.push_back(e.id);
    }
  }
  ASSERT_GT(survivors.size(), 500u);

  DistributedSamplerOptions options;
  options.retry = FastRetry();
  auto sampler = cluster.NewSampler(Rng(811), options);
  ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithReplacement).ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(sampler->Next().has_value());
  cluster.mutable_shard(kVictim)->Kill();

  std::vector<uint64_t> counts(survivors.size(), 0);
  uint64_t draws = survivors.size() * 20;
  for (uint64_t i = 0; i < draws; ++i) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value()) << "stream must keep producing after the kill";
    EXPECT_NE(cluster.RouteOf(e->point, e->id), kVictim);
    auto it = slot.find(e->id);
    ASSERT_NE(it, slot.end());
    ++counts[it->second];
  }
  // Renormalized q_i/q merge: uniform over the live partition.
  double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
  EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4));

  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_TRUE(c.degraded);
  EXPECT_NEAR(c.coverage, 0.75, 0.1);
}

// Satellite: a shard that truthfully reports q_i = 0 is not a failure — the
// stream must stay non-degraded and exactly uniform over qualifying records;
// a *dead* shard is evicted and the stream renormalizes over live shards.
TEST_F(ClusterChaosTest, ZeroCountShardIsHealthyDeadShardIsEvicted) {
  auto data = MakeData(3000, 813);
  Cluster cluster(data, 4, Partitioning::kHilbertRange, {}, 815);
  // A localized query: Hilbert-range partitioning keeps it on few shards, so
  // at least one shard truthfully answers q_i = 0.
  Rect3 q(Point3(0, 0, 0), Point3(35, 35, 1000));
  int zero_shards = 0, populated_shard = -1;
  for (int s = 0; s < 4; ++s) {
    Result<uint64_t> count = cluster.shard(s).Count(q);
    ASSERT_TRUE(count.ok());
    if (*count == 0) {
      ++zero_shards;
    } else {
      populated_shard = s;
    }
  }
  ASSERT_GT(zero_shards, 0) << "query should miss at least one shard";
  ASSERT_GE(populated_shard, 0);

  auto uniformity = [&](const std::vector<RecordId>& population,
                        SpatialSampler<3>* sampler) {
    std::unordered_map<RecordId, size_t> slot;
    for (size_t i = 0; i < population.size(); ++i) slot[population[i]] = i;
    std::vector<uint64_t> counts(population.size(), 0);
    uint64_t draws = population.size() * 20;
    for (uint64_t i = 0; i < draws; ++i) {
      auto e = sampler->Next();
      ASSERT_TRUE(e.has_value());
      auto it = slot.find(e->id);
      ASSERT_NE(it, slot.end()) << "draw outside the expected population";
      ++counts[it->second];
    }
    double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
    EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4));
  };

  // Healthy cluster: q_i = 0 shards are skipped, not evicted.
  DistributedSamplerOptions options;
  options.retry = FastRetry();
  {
    std::vector<RecordId> qualifying;
    for (const Entry& e : data) {
      if (q.Contains(e.point)) qualifying.push_back(e.id);
    }
    ASSERT_GT(qualifying.size(), 100u);
    auto sampler = cluster.NewSampler(Rng(817), options);
    ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithReplacement).ok());
    uniformity(qualifying, sampler.get());
    CardinalityEstimate c = sampler->Cardinality();
    EXPECT_FALSE(c.degraded);
    EXPECT_DOUBLE_EQ(c.coverage, 1.0);
    EXPECT_TRUE(c.exact);
  }

  // Kill a populated shard: degraded, and exactly uniform over live shards.
  cluster.mutable_shard(populated_shard)->Kill();
  {
    std::vector<RecordId> live;
    for (const Entry& e : data) {
      if (q.Contains(e.point) &&
          cluster.RouteOf(e.point, e.id) != populated_shard) {
        live.push_back(e.id);
      }
    }
    auto sampler = cluster.NewSampler(Rng(819), options);
    if (live.empty()) {
      // The whole query region lived on the dead shard; nothing to merge.
      EXPECT_TRUE(sampler->Begin(q, SamplingMode::kWithReplacement).ok());
      EXPECT_FALSE(sampler->Next().has_value());
      return;
    }
    ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithReplacement).ok());
    uniformity(live, sampler.get());
    CardinalityEstimate c = sampler->Cardinality();
    EXPECT_TRUE(c.degraded);
    EXPECT_LT(c.coverage, 1.0);
  }
}

TEST_F(ClusterChaosTest, WithoutReplacementStaysDuplicateFreeUnderEviction) {
  auto data = MakeData(1500, 821);
  Cluster cluster(data, 3, Partitioning::kHash, {}, 823);
  Rect3 q(Point3(0, 0, 0), Point3(80, 100, 1000));
  constexpr int kVictim = 0;
  std::unordered_set<RecordId> survivor_records;
  for (const Entry& e : data) {
    if (q.Contains(e.point) && cluster.RouteOf(e.point, e.id) != kVictim) {
      survivor_records.insert(e.id);
    }
  }
  DistributedSamplerOptions options;
  options.retry = FastRetry();
  auto sampler = cluster.NewSampler(Rng(825), options);
  ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithoutReplacement).ok());
  std::unordered_set<RecordId> seen;
  for (int i = 0; i < 100; ++i) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(seen.insert(e->id).second) << "duplicate before kill";
  }
  cluster.mutable_shard(kVictim)->Kill();
  while (auto e = sampler->Next()) {
    EXPECT_TRUE(seen.insert(e->id).second) << "duplicate after kill";
  }
  EXPECT_TRUE(sampler->IsExhausted());
  // Every survivor record was delivered exactly once; records already drawn
  // from the dead shard before the kill stay valid.
  for (RecordId id : survivor_records) {
    EXPECT_TRUE(seen.contains(id)) << "survivor record " << id << " lost";
  }
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_TRUE(c.degraded);
  EXPECT_GT(c.coverage, 0.0);
  EXPECT_LT(c.coverage, 1.0);
}

TEST_F(ClusterChaosTest, StragglerShardIsEvictedByPerShardDeadline) {
  auto data = MakeData(1200, 827);
  Cluster cluster(data, 4, Partitioning::kHash, {}, 829);
  cluster.mutable_shard(3)->SetLatencyMs(20.0);
  DistributedSamplerOptions options;
  options.retry = FastRetry();
  options.retry.deadline_ms = 3.0;  // per-shard deadline << injected latency
  auto sampler = cluster.NewSampler(Rng(831), options);
  ASSERT_TRUE(
      sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement).ok());
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_TRUE(c.degraded);
  EXPECT_NEAR(c.coverage, 0.75, 0.1);
  for (int i = 0; i < 200; ++i) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_NE(cluster.RouteOf(e->point, e->id), 3);
  }
}

TEST_F(ClusterChaosTest, AllShardsDeadFailsUnavailable) {
  auto data = MakeData(400, 833);
  Cluster cluster(data, 2, Partitioning::kHash, {}, 835);
  cluster.mutable_shard(0)->Kill();
  cluster.mutable_shard(1)->Kill();
  DistributedSamplerOptions options;
  options.retry = FastRetry();
  auto sampler = cluster.NewSampler(Rng(837), options);
  Status st = sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement);
  EXPECT_TRUE(st.IsUnavailable()) << st;
  EXPECT_FALSE(sampler->Next().has_value());
}

TEST_F(ClusterChaosTest, RetriesRecoverFromTransientShardFaults) {
  auto data = MakeData(1000, 839);
  Cluster cluster(data, 4, Partitioning::kHash, {}, 841);
  // The first three plan-round Counts to land fail (the fan-out is
  // concurrent, so *which* shards absorb the trips is scheduling-dependent
  // — in the worst case one shard eats all three). Retries must always
  // recover, so the query plans against the full cluster with no
  // degradation.
  FailpointConfig flaky;
  flaky.max_trips = 3;
  flaky.code = StatusCode::kUnavailable;
  ScopedFailpoint fp(std::string(kFailpointShardCount), flaky);
  DistributedSamplerOptions options;
  options.retry = FastRetry(4);  // 1 first try + up to 3 absorbed trips
  auto sampler = cluster.NewSampler(Rng(843), options);
  ASSERT_TRUE(
      sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement).ok());
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_FALSE(c.degraded);
  EXPECT_DOUBLE_EQ(c.coverage, 1.0);
  EXPECT_EQ(c.lower, data.size());
  // Schedule-independent accounting: every trip costs exactly one retry,
  // so hits = 4 successful counts + 3 tripped ones whatever the order.
  EXPECT_EQ(Failpoints::Default().trips(std::string(kFailpointShardCount)), 3u);
  EXPECT_EQ(Failpoints::Default().hits(std::string(kFailpointShardCount)), 7u);
}

TEST_F(ClusterChaosTest, RevivedShardServesFollowingQueries) {
  auto data = MakeData(800, 845);
  Cluster cluster(data, 2, Partitioning::kHash, {}, 847);
  cluster.mutable_shard(1)->Kill();
  DistributedSamplerOptions options;
  options.retry = FastRetry();
  {
    auto sampler = cluster.NewSampler(Rng(849), options);
    ASSERT_TRUE(
        sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement).ok());
    EXPECT_TRUE(sampler->Cardinality().degraded);
  }
  cluster.mutable_shard(1)->Revive();
  auto sampler = cluster.NewSampler(Rng(851), options);
  ASSERT_TRUE(
      sampler->Begin(Rect3::Everything(), SamplingMode::kWithReplacement).ok());
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_FALSE(c.degraded);
  EXPECT_EQ(c.lower, data.size());
}

// ---------------------------------------------------------------------------
// Query-level chaos: deadlines, cancellation, degraded annotations
// ---------------------------------------------------------------------------

std::vector<Value> MakeDocs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 10)));
    docs.push_back(doc);
  }
  return docs;
}

TEST_F(QueryChaosTest, DeadlineReturnsBestSoFarEstimate) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(4000, 901)).ok());
  auto result =
      session.Execute("SELECT AVG(v) FROM t SAMPLES 1000000",
                      ExecOptions().WithDeadlineMs(1e-6));  // expires in batch 1
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_FALSE(result->cancelled);
  // Anytime semantics: the cutoff still yields a usable estimate.
  EXPECT_GT(result->samples, 0u);
  EXPECT_LT(result->samples, 1000000u);
  EXPECT_NEAR(result->ci.estimate, 4.5, 2.0);
}

TEST_F(QueryChaosTest, DeadlineClauseInQueryText) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(4000, 903)).ok());
  auto result =
      session.Execute("SELECT AVG(v) FROM t SAMPLES 1000000 DEADLINE 0.001 MS");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_GT(result->samples, 0u);
  // A roomy deadline never fires.
  auto relaxed =
      session.Execute("SELECT AVG(v) FROM t SAMPLES 500 DEADLINE 30 S");
  ASSERT_TRUE(relaxed.ok()) << relaxed.status();
  EXPECT_FALSE(relaxed->deadline_exceeded);
}

TEST_F(QueryChaosTest, CancelTokenStopsTheQuery) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(4000, 905)).ok());
  CancelToken token;
  token.Cancel();
  auto result = session.Execute("SELECT AVG(v) FROM t SAMPLES 1000000",
                                ExecOptions().WithCancel(&token));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->cancelled);
  EXPECT_FALSE(result->deadline_exceeded);
  token.Reset();
  EXPECT_FALSE(token.IsCancelled());
}

TEST_F(QueryChaosTest, DegradedDistributedQueryAnnotatesResult) {
  Session session;
  TableConfig config;
  config.num_shards = 4;
  config.partitioning = Partitioning::kHash;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(5000, 907), {}, config).ok());
  Result<Table*> table = session.GetTable("t");
  ASSERT_TRUE(table.ok());
  (*table)->mutable_cluster()->mutable_shard(2)->Kill();
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 2000 USING DISTRIBUTED");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_NEAR(result->coverage, 0.75, 0.15);
  // v is i%10 hashed across shards: the survivor partition still averages
  // close to the population mean.
  EXPECT_NEAR(result->ci.estimate, 4.5, 0.5);
}

// ---------------------------------------------------------------------------
// Seeded fault schedule (STORM_CHAOS_SEED): invariants under random chaos
// ---------------------------------------------------------------------------

TEST_F(ChaosScheduleTest, RandomScheduleUpholdsInvariants) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("STORM_CHAOS_SEED=" + std::to_string(seed));
  Rng schedule(seed);
  auto data = MakeData(3000, 911);
  Cluster cluster(data, 4, Partitioning::kHash, {}, 913);
  Rect3 q(Point3(5, 5, 0), Point3(95, 95, 1000));

  FailpointConfig draw_fault;
  draw_fault.probability = schedule.UniformDouble(0.005, 0.05);
  draw_fault.code = StatusCode::kUnavailable;
  draw_fault.seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  ScopedFailpoint fp(std::string(kFailpointShardDraw), draw_fault);

  const int kill_at = static_cast<int>(schedule.UniformInt(100, 1500));
  const int victim = static_cast<int>(schedule.UniformInt(0, 3));

  DistributedSamplerOptions options;
  options.retry = FastRetry(3);
  auto sampler = cluster.NewSampler(Rng(seed ^ 915), options);
  ASSERT_TRUE(sampler->Begin(q, SamplingMode::kWithReplacement).ok());

  int draws = 0;
  bool killed = false;
  for (int i = 0; i < 3000; ++i) {
    auto e = sampler->Next();
    if (!e.has_value()) break;  // every shard lost to the schedule
    ++draws;
    EXPECT_TRUE(q.Contains(e->point));
    if (killed) {
      EXPECT_NE(cluster.RouteOf(e->point, e->id), victim);
    }
    if (i == kill_at) {
      cluster.mutable_shard(victim)->Kill();
      killed = true;
    }
  }
  EXPECT_GT(draws, kill_at) << "stream died before the scheduled kill";
  CardinalityEstimate c = sampler->Cardinality();
  EXPECT_GE(c.coverage, 0.0);
  EXPECT_LE(c.coverage, 1.0);
  if (killed && draws == 3000) {
    EXPECT_TRUE(c.degraded);
    EXPECT_LT(c.coverage, 1.0);
  }
}

}  // namespace
}  // namespace storm
