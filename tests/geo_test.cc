// Unit and property tests for storm/geo: points, rectangles, and the
// Hilbert curve.

#include <gtest/gtest.h>

#include <set>

#include "storm/geo/hilbert.h"
#include "storm/geo/point.h"
#include "storm/geo/rect.h"
#include "storm/util/rng.h"

namespace storm {
namespace {

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

TEST(PointTest, ConstructionAndAccess) {
  Point2 p(1.5, -2.0);
  EXPECT_EQ(p[0], 1.5);
  EXPECT_EQ(p[1], -2.0);
  p[1] = 4.0;
  EXPECT_EQ(p[1], 4.0);
  Point3 q(1.0, 2.0, 3.0);
  EXPECT_EQ(q[2], 3.0);
}

TEST(PointTest, Distance) {
  Point2 a(0, 0), b(3, 4);
  EXPECT_DOUBLE_EQ(a.DistanceSquared(b), 25.0);
  EXPECT_DOUBLE_EQ(a.Distance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.Distance(a), 0.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ(Point2(1, 2), Point2(1, 2));
  EXPECT_FALSE(Point2(1, 2) == Point2(2, 1));
}

TEST(PointTest, ToString) {
  EXPECT_EQ(Point2(1, 2).ToString(), "(1, 2)");
}

// ---------------------------------------------------------------------------
// Rect
// ---------------------------------------------------------------------------

TEST(RectTest, DefaultIsEmpty) {
  Rect2 r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
  EXPECT_FALSE(r.Contains(Point2(0, 0)));
}

TEST(RectTest, ExpandFromEmptyYieldsPoint) {
  Rect2 r;
  r.Expand(Point2(3, 4));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(Point2(3, 4)));
  EXPECT_EQ(r.Area(), 0.0);  // degenerate
}

TEST(RectTest, FromCornersNormalizes) {
  Rect2 r = Rect2::FromCorners(Point2(5, 1), Point2(2, 7));
  EXPECT_EQ(r.lo(), Point2(2, 1));
  EXPECT_EQ(r.hi(), Point2(5, 7));
}

TEST(RectTest, ContainsPointClosedBounds) {
  Rect2 r(Point2(0, 0), Point2(10, 10));
  EXPECT_TRUE(r.Contains(Point2(0, 0)));
  EXPECT_TRUE(r.Contains(Point2(10, 10)));
  EXPECT_TRUE(r.Contains(Point2(5, 5)));
  EXPECT_FALSE(r.Contains(Point2(-0.001, 5)));
  EXPECT_FALSE(r.Contains(Point2(5, 10.001)));
}

TEST(RectTest, ContainsRect) {
  Rect2 outer(Point2(0, 0), Point2(10, 10));
  Rect2 inner(Point2(2, 2), Point2(8, 8));
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_TRUE(outer.Contains(Rect2()));   // empty in everything
  EXPECT_FALSE(Rect2().Contains(outer));  // nothing in empty
}

TEST(RectTest, Intersects) {
  Rect2 a(Point2(0, 0), Point2(5, 5));
  Rect2 b(Point2(5, 5), Point2(9, 9));  // corner touch counts
  Rect2 c(Point2(6, 0), Point2(9, 4));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(Rect2()));
}

TEST(RectTest, UnionAndIntersection) {
  Rect2 a(Point2(0, 0), Point2(4, 4));
  Rect2 b(Point2(2, 2), Point2(6, 6));
  Rect2 u = Rect2::Union(a, b);
  EXPECT_EQ(u.lo(), Point2(0, 0));
  EXPECT_EQ(u.hi(), Point2(6, 6));
  Rect2 x = Rect2::Intersection(a, b);
  EXPECT_EQ(x.lo(), Point2(2, 2));
  EXPECT_EQ(x.hi(), Point2(4, 4));
  Rect2 disjoint(Point2(10, 10), Point2(11, 11));
  EXPECT_TRUE(Rect2::Intersection(a, disjoint).IsEmpty());
}

TEST(RectTest, AreaMarginEnlargement) {
  Rect2 r(Point2(0, 0), Point2(4, 3));
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  Rect2 far(Point2(8, 0), Point2(9, 1));
  // Union is [0,9]x[0,3] = 27; enlargement = 27 - 12 = 15.
  EXPECT_DOUBLE_EQ(r.Enlargement(far), 15.0);
  EXPECT_DOUBLE_EQ(r.Enlargement(Rect2(Point2(1, 1), Point2(2, 2))), 0.0);
}

TEST(RectTest, CenterAndDistance) {
  Rect2 r(Point2(0, 0), Point2(4, 4));
  EXPECT_EQ(r.Center(), Point2(2, 2));
  EXPECT_DOUBLE_EQ(r.DistanceSquared(Point2(2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(r.DistanceSquared(Point2(7, 4)), 9.0);
  EXPECT_DOUBLE_EQ(r.DistanceSquared(Point2(-3, -4)), 25.0);
}

TEST(RectTest, EverythingContainsAll) {
  Rect3 all = Rect3::Everything();
  EXPECT_TRUE(all.Contains(Point3(1e300, -1e300, 0)));
  EXPECT_FALSE(all.IsEmpty());
}

TEST(RectTest, PropertyUnionContainsBoth) {
  Rng rng(61);
  for (int i = 0; i < 200; ++i) {
    Rect2 a = Rect2::FromCorners(
        Point2(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)),
        Point2(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)));
    Rect2 b = Rect2::FromCorners(
        Point2(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)),
        Point2(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)));
    Rect2 u = Rect2::Union(a, b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    Rect2 x = Rect2::Intersection(a, b);
    if (!x.IsEmpty()) {
      EXPECT_TRUE(a.Contains(x));
      EXPECT_TRUE(b.Contains(x));
      EXPECT_TRUE(a.Intersects(b));
    } else {
      // Disjoint or touching-empty: Intersects may still be true only for
      // measure-zero touching, which FromCorners rarely produces; accept
      // either, but containment must fail somewhere.
      EXPECT_FALSE(a.Contains(b) && b.Contains(a));
    }
  }
}

// ---------------------------------------------------------------------------
// Hilbert curve
// ---------------------------------------------------------------------------

TEST(HilbertTest, RoundTrip2DExhaustiveSmall) {
  constexpr int kBits = 4;  // 16x16 grid
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      uint32_t coords[2] = {x, y};
      uint64_t idx = HilbertIndexFromGrid(coords, 2, kBits);
      EXPECT_LT(idx, 256u);
      EXPECT_TRUE(seen.insert(idx).second) << "collision at " << x << "," << y;
      uint32_t back[2];
      HilbertGridFromIndex(idx, back, 2, kBits);
      EXPECT_EQ(back[0], x);
      EXPECT_EQ(back[1], y);
    }
  }
  EXPECT_EQ(seen.size(), 256u);  // bijective
}

TEST(HilbertTest, RoundTrip3DRandom) {
  constexpr int kBits = 7;
  Rng rng(67);
  for (int i = 0; i < 2000; ++i) {
    uint32_t coords[3], orig[3];
    for (int d = 0; d < 3; ++d) {
      orig[d] = coords[d] = static_cast<uint32_t>(rng.Uniform(1u << kBits));
    }
    uint64_t idx = HilbertIndexFromGrid(coords, 3, kBits);
    uint32_t back[3];
    HilbertGridFromIndex(idx, back, 3, kBits);
    for (int d = 0; d < 3; ++d) EXPECT_EQ(back[d], orig[d]);
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: successive curve positions
  // differ by exactly 1 in exactly one coordinate.
  constexpr int kBits = 5;
  constexpr uint64_t kCells = 1ull << (2 * kBits);
  uint32_t prev[2];
  HilbertGridFromIndex(0, prev, 2, kBits);
  for (uint64_t i = 1; i < kCells; ++i) {
    uint32_t cur[2];
    HilbertGridFromIndex(i, cur, 2, kBits);
    int manhattan = std::abs(static_cast<int>(cur[0]) - static_cast<int>(prev[0])) +
                    std::abs(static_cast<int>(cur[1]) - static_cast<int>(prev[1]));
    ASSERT_EQ(manhattan, 1) << "jump at index " << i;
    prev[0] = cur[0];
    prev[1] = cur[1];
  }
}

TEST(HilbertTest, BitsForDim) {
  EXPECT_EQ(HilbertBitsForDim(2), 31);
  EXPECT_EQ(HilbertBitsForDim(3), 21);
  EXPECT_EQ(HilbertBitsForDim(4), 15);
}

TEST(HilbertMapperTest, MapsCornersDistinctly) {
  Rect2 bounds(Point2(0, 0), Point2(100, 100));
  HilbertMapper<2> mapper(bounds, 8);
  std::set<uint64_t> idx = {
      mapper.Index(Point2(1, 1)), mapper.Index(Point2(99, 1)),
      mapper.Index(Point2(1, 99)), mapper.Index(Point2(99, 99))};
  EXPECT_EQ(idx.size(), 4u);
}

TEST(HilbertMapperTest, ClampsOutOfBounds) {
  Rect2 bounds(Point2(0, 0), Point2(10, 10));
  HilbertMapper<2> mapper(bounds, 8);
  EXPECT_EQ(mapper.Index(Point2(-5, -5)), mapper.Index(Point2(0, 0)));
  EXPECT_EQ(mapper.Index(Point2(100, 100)), mapper.Index(Point2(10, 10)));
}

TEST(HilbertMapperTest, LocalityNearbyPointsNearbyIndices) {
  // Statistical locality: for random nearby pairs, the index distance
  // should usually be much smaller than for random far pairs.
  Rect2 bounds(Point2(0, 0), Point2(1, 1));
  HilbertMapper<2> mapper(bounds, 16);
  Rng rng(71);
  double near_sum = 0, far_sum = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    Point2 a(rng.UniformDouble(), rng.UniformDouble());
    Point2 near(std::min(1.0, a[0] + 0.001), a[1]);
    Point2 far(rng.UniformDouble(), rng.UniformDouble());
    uint64_t ia = mapper.Index(a);
    auto dist = [&](uint64_t x, uint64_t y) {
      return static_cast<double>(x > y ? x - y : y - x);
    };
    near_sum += dist(ia, mapper.Index(near));
    far_sum += dist(ia, mapper.Index(far));
  }
  EXPECT_LT(near_sum / kTrials, far_sum / kTrials / 10.0);
}

// Round-trip across dimensions and bit widths.
struct HilbertParam {
  int dim;
  int bits;
};

class HilbertRoundTripTest : public ::testing::TestWithParam<HilbertParam> {};

TEST_P(HilbertRoundTripTest, RandomRoundTrip) {
  const auto [dim, bits] = GetParam();
  Rng rng(73 + static_cast<uint64_t>(dim * 100 + bits));
  std::vector<uint32_t> coords(static_cast<size_t>(dim));
  std::vector<uint32_t> orig(static_cast<size_t>(dim));
  for (int i = 0; i < 500; ++i) {
    for (int d = 0; d < dim; ++d) {
      orig[static_cast<size_t>(d)] = coords[static_cast<size_t>(d)] =
          static_cast<uint32_t>(rng.Uniform(uint64_t{1} << bits));
    }
    uint64_t idx = HilbertIndexFromGrid(coords.data(), dim, bits);
    ASSERT_LT(idx, uint64_t{1} << (dim * bits));
    std::vector<uint32_t> back(static_cast<size_t>(dim));
    HilbertGridFromIndex(idx, back.data(), dim, bits);
    for (int d = 0; d < dim; ++d) {
      ASSERT_EQ(back[static_cast<size_t>(d)], orig[static_cast<size_t>(d)])
          << "dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndBits, HilbertRoundTripTest,
    ::testing::Values(HilbertParam{2, 1}, HilbertParam{2, 8},
                      HilbertParam{2, 16}, HilbertParam{2, 31},
                      HilbertParam{3, 4}, HilbertParam{3, 12},
                      HilbertParam{3, 21}, HilbertParam{4, 8},
                      HilbertParam{4, 15}, HilbertParam{5, 12},
                      HilbertParam{6, 10}),
    [](const ::testing::TestParamInfo<HilbertParam>& info) {
      return "Dim" + std::to_string(info.param.dim) + "Bits" +
             std::to_string(info.param.bits);
    });

TEST(HilbertMapperTest, DegenerateBoundsDoNotCrash) {
  Rect2 bounds(Point2(5, 5), Point2(5, 5));  // zero-size box
  HilbertMapper<2> mapper(bounds, 8);
  EXPECT_EQ(mapper.Index(Point2(5, 5)), mapper.Index(Point2(7, 9)));
}

}  // namespace
}  // namespace storm
