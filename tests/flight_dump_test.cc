// Chaos test for the crash-forensics path: a real storm_server process is
// SIGTERMed mid-workload and must emit a flight-recorder dump — the last N
// structured events from every thread, merged into one global order — on
// its way down. This is the out-of-process complement to the in-process
// FlightRecorder tests in obs_test.cc: it proves the dump survives the
// actual signal → Stop() → DumpText() path of the serving binary.
//
// Also the graceful-drain path: SIGTERM with a query in flight must let
// the stream finish (up to --drain-timeout-ms) before the process exits —
// and the flight dump must still fire on the way down.
//
// The server binary's path arrives via the STORM_SERVER_BIN compile
// definition (tests/CMakeLists.txt points it at $<TARGET_FILE:storm_server>).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "fleet_util.h"
#include "storm/storm.h"

namespace storm {
namespace {

using fleet_test::AwaitServingPort;
using fleet_test::ReadFileOrEmpty;

TEST(FlightDumpChaosTest, SigtermMidWorkloadDumpsFlightRecorder) {
  // Pid-suffixed paths: a rerun must not pick up a previous run's output.
  const std::string dir = ::testing::TempDir();
  const std::string suffix = std::to_string(static_cast<long>(getpid()));
  const std::string stdout_path = dir + "/storm_server_stdout." + suffix;
  const std::string stderr_path = dir + "/storm_server_stderr." + suffix;
  std::remove(stdout_path.c_str());
  std::remove(stderr_path.c_str());

  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: stdout/stderr to files, then become the server. --tiny keeps
    // data load fast; port 0 avoids clashes with parallel ctest jobs.
    int out = open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    int err = open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out < 0 || err < 0) _exit(41);
    dup2(out, STDOUT_FILENO);
    dup2(err, STDERR_FILENO);
    execl(STORM_SERVER_BIN, STORM_SERVER_BIN, "--tiny", "--port", "0",
          "--trace-sample-rate", "1.0", static_cast<char*>(nullptr));
    _exit(42);  // exec failed
  }

  // Parent: wait for the server, drive a short workload so the recorder
  // holds real traffic (conn_open, frame_rx, query_admit, query_finish).
  const int port = AwaitServingPort(stdout_path, 30'000);
  ASSERT_GT(port, 0) << "server did not come up; stderr:\n"
                     << ReadFileOrEmpty(stderr_path);
  {
    RemoteClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    for (int i = 0; i < 5; ++i) {
      auto result = client.Execute("SELECT AVG(altitude) FROM osm SAMPLES 2000");
      EXPECT_TRUE(result.ok()) << result.status();
    }
  }

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const std::string dump = ReadFileOrEmpty(stderr_path);
  ASSERT_NE(dump.find("--- flight recorder"), std::string::npos) << dump;
  ASSERT_NE(dump.find("--- end flight recorder"), std::string::npos);

  // The dump holds the workload's events...
  EXPECT_NE(dump.find("conn_open"), std::string::npos) << dump;
  EXPECT_NE(dump.find("query_admit"), std::string::npos);
  EXPECT_NE(dump.find("query_finish"), std::string::npos);

  // ...in strictly increasing global sequence order across all threads.
  // Event lines render as "  #<seq>  <ts>ms t<thread> <event> ...".
  std::vector<uint64_t> seqs;
  size_t line_start = 0;
  while (line_start < dump.size()) {
    size_t line_end = dump.find('\n', line_start);
    if (line_end == std::string::npos) line_end = dump.size();
    size_t first = dump.find_first_not_of(' ', line_start);
    if (first != std::string::npos && first < line_end && dump[first] == '#') {
      seqs.push_back(std::strtoull(dump.c_str() + first + 1, nullptr, 10));
    }
    line_start = line_end + 1;
  }
  ASSERT_GE(seqs.size(), 10u) << dump;
  for (size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_LT(seqs[i - 1], seqs[i]) << "dump out of global order at line " << i;
  }
}

TEST(DrainChaosTest, SigtermLetsInFlightQueryFinishThenExits) {
  // SIGTERM must drain, not axe: the listener closes and new queries are
  // shed, but a stream already in flight keeps flowing until its final
  // RESULT (up to --drain-timeout-ms). The server's writer is slowed to
  // 100 ms per frame so the query is provably mid-stream when the signal
  // lands.
  fleet_test::ChildShard shard = fleet_test::SpawnShard(
      STORM_SERVER_BIN, 0, 1, "--failpoint",
      "server.conn.slow:latency_ms=100,code=ok", "drain");
  ASSERT_GT(shard.port, 0) << "server did not come up: "
                           << ReadFileOrEmpty(shard.stdout_path);

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", shard.port).ok());

  std::atomic<bool> signalled{false};
  ExecOptions options;
  options.deadline_ms = 20'000.0;
  options.progress = [&](const QueryProgress&) {
    // First streamed frame: the query is mid-flight. SIGTERM the server.
    if (!signalled.exchange(true)) kill(shard.pid, SIGTERM);
    return true;
  };
  auto result =
      client.Execute("SELECT AVG(lat) FROM tweets SAMPLES 100000000", options);
  ASSERT_TRUE(signalled.load()) << "query finished before any progress fired";
  // The drain window let the stream complete normally.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->cancelled);
  EXPECT_GT(result->samples, 0u);

  // The process exits 0 once the drain empties, and both the drain notice
  // and the flight-recorder dump made it out.
  int status = 0;
  ASSERT_EQ(waitpid(shard.pid, &status, 0), shard.pid);
  shard.pid = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  const std::string out = ReadFileOrEmpty(shard.stdout_path);
  EXPECT_NE(out.find("draining"), std::string::npos) << out;
  EXPECT_NE(out.find("--- flight recorder"), std::string::npos);
  EXPECT_NE(out.find("accounting drift: none"), std::string::npos) << out;

  // The listener went down with the signal: no new connections.
  RemoteClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", shard.port).ok());
}

}  // namespace
}  // namespace storm
