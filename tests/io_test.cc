// Unit tests for the simulated disk substrate: BlockManager and BufferPool.

#include <gtest/gtest.h>

#include <cstring>

#include "storm/io/block_manager.h"
#include "storm/io/buffer_pool.h"
#include "storm/util/failpoint.h"
#include "storm/util/rng.h"

namespace storm {
namespace {

std::vector<std::byte> Pattern(size_t size, uint8_t fill) {
  std::vector<std::byte> v(size);
  std::memset(v.data(), fill, size);
  return v;
}

TEST(BlockManagerTest, AllocateReadWrite) {
  BlockManager disk(64);
  PageId p = disk.Allocate();
  EXPECT_TRUE(disk.IsLive(p));
  EXPECT_EQ(disk.num_pages(), 1u);
  auto data = Pattern(64, 0xAB);
  ASSERT_TRUE(disk.Write(p, data.data()).ok());
  std::vector<std::byte> out(64);
  ASSERT_TRUE(disk.Read(p, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0);
}

TEST(BlockManagerTest, FreshPageIsZeroed) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  std::vector<std::byte> out(32);
  ASSERT_TRUE(disk.Read(p, out.data()).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(BlockManagerTest, FreeAndRecycleZeroes) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  auto data = Pattern(32, 0xFF);
  ASSERT_TRUE(disk.Write(p, data.data()).ok());
  ASSERT_TRUE(disk.Free(p).ok());
  EXPECT_FALSE(disk.IsLive(p));
  EXPECT_EQ(disk.num_pages(), 0u);
  PageId q = disk.Allocate();
  EXPECT_EQ(q, p);  // recycled
  std::vector<std::byte> out(32);
  ASSERT_TRUE(disk.Read(q, out.data()).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(BlockManagerTest, ErrorsOnDeadPages) {
  BlockManager disk(32);
  std::vector<std::byte> buf(32);
  EXPECT_TRUE(disk.Read(99, buf.data()).IsIOError());
  EXPECT_TRUE(disk.Write(99, buf.data()).IsIOError());
  PageId p = disk.Allocate();
  ASSERT_TRUE(disk.Free(p).ok());
  EXPECT_TRUE(disk.Free(p).IsInvalidArgument());  // double free
  EXPECT_TRUE(disk.Read(p, buf.data()).IsIOError());
}

TEST(BlockManagerTest, CountsPhysicalIo) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  std::vector<std::byte> buf(32);
  ASSERT_TRUE(disk.Read(p, buf.data()).ok());
  ASSERT_TRUE(disk.Write(p, buf.data()).ok());
  ASSERT_TRUE(disk.Read(p, buf.data()).ok());
  EXPECT_EQ(disk.stats().physical_reads, 2u);
  EXPECT_EQ(disk.stats().physical_writes, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 1u);
}

TEST(BufferPoolTest, HitAvoidsPhysicalRead) {
  BlockManager disk(32);
  BufferPool pool(&disk, 4);
  PageId p = disk.Allocate();
  ASSERT_TRUE(pool.Pin(p).ok());
  ASSERT_TRUE(pool.Unpin(p, false).ok());
  ASSERT_TRUE(pool.Pin(p).ok());
  ASSERT_TRUE(pool.Unpin(p, false).ok());
  EXPECT_EQ(disk.stats().pool_misses, 1u);
  EXPECT_EQ(disk.stats().pool_hits, 1u);
  EXPECT_EQ(disk.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  BlockManager disk(8);
  BufferPool pool(&disk, 2);
  PageId a = disk.Allocate(), b = disk.Allocate(), c = disk.Allocate();
  // Dirty page a.
  {
    Result<std::byte*> f = pool.Pin(a);
    ASSERT_TRUE(f.ok());
    std::memset(*f, 0x77, 8);
    ASSERT_TRUE(pool.Unpin(a, true).ok());
  }
  ASSERT_TRUE(pool.Pin(b).ok());
  ASSERT_TRUE(pool.Unpin(b, false).ok());
  // Pool full (a, b); pinning c evicts a (LRU) and writes it back.
  ASSERT_TRUE(pool.Pin(c).ok());
  ASSERT_TRUE(pool.Unpin(c, false).ok());
  EXPECT_EQ(disk.stats().evictions, 1u);
  EXPECT_EQ(disk.stats().physical_writes, 1u);
  std::vector<std::byte> out(8);
  ASSERT_TRUE(disk.Read(a, out.data()).ok());
  EXPECT_EQ(out[0], std::byte{0x77});
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BlockManager disk(8);
  BufferPool pool(&disk, 2);
  PageId a = disk.Allocate(), b = disk.Allocate(), c = disk.Allocate();
  ASSERT_TRUE(pool.Pin(a).ok());  // stays pinned
  ASSERT_TRUE(pool.Pin(b).ok());
  ASSERT_TRUE(pool.Unpin(b, false).ok());
  ASSERT_TRUE(pool.Pin(c).ok());  // evicts b, not a
  EXPECT_TRUE(pool.Pin(disk.Allocate()).status().code() ==
              StatusCode::kResourceExhausted);  // a and c pinned, no frames
  ASSERT_TRUE(pool.Unpin(a, false).ok());
  ASSERT_TRUE(pool.Unpin(c, false).ok());
}

TEST(BufferPoolTest, UnpinErrors) {
  BlockManager disk(8);
  BufferPool pool(&disk, 2);
  PageId a = disk.Allocate();
  EXPECT_TRUE(pool.Unpin(a, false).IsInvalidArgument());  // never pinned
  ASSERT_TRUE(pool.Pin(a).ok());
  ASSERT_TRUE(pool.Unpin(a, false).ok());
  EXPECT_EQ(pool.Unpin(a, false).code(), StatusCode::kFailedPrecondition);
}

TEST(BufferPoolTest, PinCountNesting) {
  BlockManager disk(8);
  BufferPool pool(&disk, 1);
  PageId a = disk.Allocate();
  ASSERT_TRUE(pool.Pin(a).ok());
  ASSERT_TRUE(pool.Pin(a).ok());  // same page: no new frame needed
  ASSERT_TRUE(pool.Unpin(a, false).ok());
  // Still pinned once; the sole frame cannot be evicted.
  PageId b = disk.Allocate();
  EXPECT_EQ(pool.Pin(b).status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.Unpin(a, false).ok());
  EXPECT_TRUE(pool.Pin(b).ok());
  ASSERT_TRUE(pool.Unpin(b, false).ok());
}

TEST(BufferPoolTest, FlushWritesAllDirty) {
  BlockManager disk(8);
  BufferPool pool(&disk, 4);
  PageId a = disk.Allocate(), b = disk.Allocate();
  for (PageId p : {a, b}) {
    Result<std::byte*> f = pool.Pin(p);
    ASSERT_TRUE(f.ok());
    std::memset(*f, 0x11, 8);
    ASSERT_TRUE(pool.Unpin(p, true).ok());
  }
  EXPECT_EQ(disk.stats().physical_writes, 0u);
  ASSERT_TRUE(pool.Flush().ok());
  EXPECT_EQ(disk.stats().physical_writes, 2u);
  ASSERT_TRUE(pool.Flush().ok());  // clean now
  EXPECT_EQ(disk.stats().physical_writes, 2u);
}

TEST(BufferPoolTest, WithPageRoundTrip) {
  BlockManager disk(16);
  BufferPool pool(&disk, 2);
  PageId p = disk.Allocate();
  ASSERT_TRUE(pool.WithPage(p, true, [](std::byte* f) { f[3] = std::byte{0x42}; })
                  .ok());
  std::byte seen{0};
  ASSERT_TRUE(pool.WithPage(p, false, [&](std::byte* f) { seen = f[3]; }).ok());
  EXPECT_EQ(seen, std::byte{0x42});
}

TEST(BufferPoolTest, EvictDropsWithoutWriteback) {
  BlockManager disk(8);
  BufferPool pool(&disk, 2);
  PageId a = disk.Allocate();
  {
    Result<std::byte*> f = pool.Pin(a);
    ASSERT_TRUE(f.ok());
    std::memset(*f, 0x99, 8);
    ASSERT_TRUE(pool.Unpin(a, true).ok());
  }
  ASSERT_TRUE(pool.Evict(a).ok());
  EXPECT_EQ(disk.stats().physical_writes, 0u);  // dirty data dropped
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST(BufferPoolStressTest, RandomOpsMatchReferenceModel) {
  // Random pin/unpin/write traffic through a tiny pool; the page contents
  // observed through the pool must always match a plain in-memory mirror.
  BlockManager disk(16);
  BufferPool pool(&disk, 3);
  Rng rng(909);
  constexpr int kPages = 12;
  std::vector<PageId> pages;
  std::vector<std::vector<uint8_t>> mirror(kPages, std::vector<uint8_t>(16, 0));
  for (int i = 0; i < kPages; ++i) pages.push_back(disk.Allocate());
  for (int step = 0; step < 5000; ++step) {
    int p = static_cast<int>(rng.Uniform(kPages));
    bool write = rng.Bernoulli(0.4);
    Result<std::byte*> frame = pool.Pin(pages[static_cast<size_t>(p)]);
    ASSERT_TRUE(frame.ok());
    // Verify current contents.
    ASSERT_EQ(std::memcmp(*frame, mirror[static_cast<size_t>(p)].data(), 16), 0)
        << "page " << p << " step " << step;
    if (write) {
      uint8_t v = static_cast<uint8_t>(rng.Uniform(256));
      size_t off = static_cast<size_t>(rng.Uniform(16));
      (*frame)[off] = static_cast<std::byte>(v);
      mirror[static_cast<size_t>(p)][off] = v;
    }
    ASSERT_TRUE(pool.Unpin(pages[static_cast<size_t>(p)], write).ok());
  }
  ASSERT_TRUE(pool.Flush().ok());
  // Verify everything straight from the disk.
  for (int p = 0; p < kPages; ++p) {
    std::vector<std::byte> out(16);
    ASSERT_TRUE(disk.Read(pages[static_cast<size_t>(p)], out.data()).ok());
    ASSERT_EQ(std::memcmp(out.data(), mirror[static_cast<size_t>(p)].data(), 16),
              0);
  }
}

// --- Volatile write cache: Sync/SyncPage/Crash semantics ---

TEST(BlockManagerDurabilityTest, WritesAreVolatileUntilSync) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  auto old_data = Pattern(32, 0xAA);
  ASSERT_TRUE(disk.Write(p, old_data.data()).ok());
  ASSERT_TRUE(disk.Sync().ok());
  EXPECT_EQ(disk.unsynced_pages(), 0u);

  auto new_data = Pattern(32, 0xBB);
  ASSERT_TRUE(disk.Write(p, new_data.data()).ok());
  EXPECT_EQ(disk.unsynced_pages(), 1u);
  // Readers see the new content immediately (a page cache, not a queue)...
  std::vector<std::byte> out(32);
  ASSERT_TRUE(disk.Read(p, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), new_data.data(), 32), 0);
  // ...but power loss rolls back to the last synced image.
  disk.Crash();
  EXPECT_EQ(disk.unsynced_pages(), 0u);
  ASSERT_TRUE(disk.Read(p, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), old_data.data(), 32), 0);
}

TEST(BlockManagerDurabilityTest, SyncPageMakesExactlyThatPageDurable) {
  BlockManager disk(32);
  PageId a = disk.Allocate();
  PageId b = disk.Allocate();
  ASSERT_TRUE(disk.Sync().ok());
  auto data_a = Pattern(32, 0x11);
  auto data_b = Pattern(32, 0x22);
  ASSERT_TRUE(disk.Write(a, data_a.data()).ok());
  ASSERT_TRUE(disk.Write(b, data_b.data()).ok());
  ASSERT_TRUE(disk.SyncPage(a).ok());  // the WAL's group-commit fdatasync
  EXPECT_EQ(disk.unsynced_pages(), 1u);

  disk.Crash();
  std::vector<std::byte> out(32);
  ASSERT_TRUE(disk.Read(a, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data_a.data(), 32), 0);
  ASSERT_TRUE(disk.Read(b, out.data()).ok());
  for (std::byte byte : out) EXPECT_EQ(byte, std::byte{0});  // rolled back
}

TEST(BlockManagerDurabilityTest, CrashDiscardsUnsyncedAllocations) {
  BlockManager disk(32);
  PageId survivor = disk.Allocate();
  ASSERT_TRUE(disk.Sync().ok());
  PageId doomed = disk.Allocate();
  auto data = Pattern(32, 0xCC);
  ASSERT_TRUE(disk.Write(doomed, data.data()).ok());
  ASSERT_EQ(disk.num_pages(), 2u);

  disk.Crash();
  EXPECT_EQ(disk.num_pages(), 1u);
  EXPECT_TRUE(disk.IsLive(survivor));
  EXPECT_FALSE(disk.IsLive(doomed));
  std::vector<std::byte> buf(32);
  EXPECT_FALSE(disk.Read(doomed, buf.data()).ok());
  // The discarded id is recyclable again.
  EXPECT_EQ(disk.Allocate(), doomed);
}

TEST(BlockManagerDurabilityTest, CrashResurrectsUnsyncedFrees) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  auto data = Pattern(32, 0xDD);
  ASSERT_TRUE(disk.Write(p, data.data()).ok());
  ASSERT_TRUE(disk.Sync().ok());
  ASSERT_TRUE(disk.Free(p).ok());
  EXPECT_FALSE(disk.IsLive(p));

  disk.Crash();  // the free never reached the platter
  EXPECT_TRUE(disk.IsLive(p));
  std::vector<std::byte> out(32);
  ASSERT_TRUE(disk.Read(p, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 32), 0);
}

// Regression: recycling a freed page must re-zero its bytes AND invalidate
// the CRC recorded for the previous tenant — otherwise the first Read of
// the recycled page would either leak stale data or fail its checksum.
TEST(BlockManagerDurabilityTest, RecycledPageIsZeroedWithFreshCrc) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  auto data = Pattern(32, 0xEE);
  ASSERT_TRUE(disk.Write(p, data.data()).ok());
  ASSERT_TRUE(disk.Sync().ok());
  ASSERT_TRUE(disk.Free(p).ok());
  ASSERT_TRUE(disk.Sync().ok());

  PageId q = disk.Allocate();
  ASSERT_EQ(q, p);
  std::vector<std::byte> out(32);
  Status read = disk.Read(q, out.data());
  ASSERT_TRUE(read.ok()) << "stale CRC survived recycling: " << read.ToString();
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
  // And the zeroed image is what a crash preserves once synced.
  ASSERT_TRUE(disk.Sync().ok());
  disk.Crash();
  ASSERT_TRUE(disk.Read(q, out.data()).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(BlockManagerDurabilityTest, TornCrashPersistsSeededPrefix) {
  BlockManager disk(64);
  PageId p = disk.Allocate();
  auto old_data = Pattern(64, 0xAA);
  ASSERT_TRUE(disk.Write(p, old_data.data()).ok());
  ASSERT_TRUE(disk.Sync().ok());
  auto new_data = Pattern(64, 0xBB);
  ASSERT_TRUE(disk.Write(p, new_data.data()).ok());

  disk.SeedCrashRng(12345);
  {
    ScopedFailpoint torn(std::string(kFailpointCrashTorn), {});
    disk.Crash();
  }
  // The torn image is a strict prefix of the new content over the old: the
  // first byte is always new, the last byte always old, and the page CRC is
  // recomputed over the torn bytes — Read must succeed (detection is the
  // WAL's job, as on a real disk).
  std::vector<std::byte> out(64);
  Status read = disk.Read(p, out.data());
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(out[0], std::byte{0xBB});
  EXPECT_EQ(out[63], std::byte{0xAA});
  size_t boundary = 0;
  while (boundary < 64 && out[boundary] == std::byte{0xBB}) ++boundary;
  for (size_t i = boundary; i < 64; ++i) EXPECT_EQ(out[i], std::byte{0xAA});
}

TEST(BlockManagerDurabilityTest, SyncFailpointPropagates) {
  BlockManager disk(32);
  PageId p = disk.Allocate();
  ASSERT_TRUE(disk.Sync().ok());  // the allocation itself is durable
  auto data = Pattern(32, 0x44);
  ASSERT_TRUE(disk.Write(p, data.data()).ok());
  {
    FailpointConfig fp;
    fp.max_trips = 1;
    ScopedFailpoint arm(std::string(kFailpointBlockSync), fp);
    EXPECT_FALSE(disk.Sync().ok());
  }
  // The failed sync durably persisted nothing.
  disk.Crash();
  std::vector<std::byte> out(32);
  ASSERT_TRUE(disk.Read(p, out.data()).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(IoStatsTest, DiffAndToString) {
  IoStats a, b;
  a.physical_reads = 10;
  a.pool_hits = 5;
  b.physical_reads = 3;
  b.pool_hits = 1;
  IoStats d = a - b;
  EXPECT_EQ(d.physical_reads, 7u);
  EXPECT_EQ(d.pool_hits, 4u);
  EXPECT_NE(d.ToString().find("physical_reads=7"), std::string::npos);
}

TEST(IoStatsTest, SumIsFieldWise) {
  IoStats a, b;
  a.physical_reads = 10;
  a.logical_reads = 12;
  a.pool_hits = 5;
  b.physical_reads = 3;
  b.logical_reads = 4;
  b.evictions = 2;
  IoStats s = a + b;
  EXPECT_EQ(s.physical_reads, 13u);
  EXPECT_EQ(s.logical_reads, 16u);
  EXPECT_EQ(s.pool_hits, 5u);
  EXPECT_EQ(s.evictions, 2u);
  s += a;
  EXPECT_EQ(s.physical_reads, 23u);
  // Snapshot-diff round trip: (a + b) - b == a.
  IoStats back = (a + b) - b;
  EXPECT_EQ(back.physical_reads, a.physical_reads);
  EXPECT_EQ(back.logical_reads, a.logical_reads);
  EXPECT_EQ(back.pool_hits, a.pool_hits);
}

TEST(IoStatsTest, HitRate) {
  IoStats s;
  EXPECT_EQ(s.hit_rate(), 0.0);  // no reads yet: defined as zero
  s.logical_reads = 8;
  s.pool_hits = 6;
  s.pool_misses = 2;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

TEST(IoStatsTest, HitRateThroughBufferPool) {
  BlockManager disk(32);
  BufferPool pool(&disk, 4);
  PageId p = disk.Allocate();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Pin(p).ok());
    ASSERT_TRUE(pool.Unpin(p, false).ok());
  }
  // 1 miss then 3 hits.
  EXPECT_DOUBLE_EQ(disk.stats().hit_rate(), 0.75);
}

}  // namespace
}  // namespace storm
