// Shared sample-reservoir cache (cross-query sample sharing,
// docs/CACHING.md). Labeled `cache` so CI can run it standalone
// (`ctest -L cache`) under ThreadSanitizer with several
// STORM_PARALLEL_SEED values; it also runs as part of the default suite.
//
// Covered here: publish/probe round trips with spatial rejection, the
// statistical contract (cache-served + subsampled streams stay uniform —
// chi-square against fresh draws' distribution), epoch invalidation on
// insert/delete with post-mutation answers staying exact, LRU eviction
// under the byte bound, seed determinism with the cache enabled, the
// USING NOCACHE hint + ExecOptions knob + EXPLAIN report, and the
// no-cache wire flag.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storm/cache/cached_sampler.h"
#include "storm/server/protocol.h"
#include "storm/storm.h"
#include "storm/util/stats.h"

namespace storm {
namespace {

using Entry = RTree<3>::Entry;

uint64_t TestSeed() {
  const char* env = std::getenv("STORM_PARALLEL_SEED");
  if (env == nullptr) return 1234;
  return std::strtoull(env, nullptr, 10);
}

/// A 3-d query box bounded in x/y, unbounded in time — the shape every
/// REGION(...) query produces.
Rect3 Box(double x1, double y1, double x2, double y2) {
  Rect3 everything = Rect3::Everything();
  Point3 lo = everything.lo(), hi = everything.hi();
  lo[0] = x1;
  lo[1] = y1;
  hi[0] = x2;
  hi[1] = y2;
  return Rect3(lo, hi);
}

/// `n` iid uniform draws over box [x1,x2] x [y1,y2] (t = 0), ids dense.
std::vector<Entry> UniformDraws(int n, double x1, double y1, double x2,
                                double y2, Rng* rng) {
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back({Point3(rng->UniformDouble(x1, x2),
                              rng->UniformDouble(y1, y2), 0.0),
                       static_cast<RecordId>(i)});
  }
  return entries;
}

std::vector<Value> MakeDocs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 10)));
    docs.push_back(doc);
  }
  return docs;
}

// ---------------------------------------------------------------------------
// Unit: the reservoir store itself.

TEST(SampleCacheTest, PublishThenProbeServesOnlyQualifyingEntries) {
  SampleReservoirCache cache;
  Rng rng(TestSeed());
  cache.Publish("t", /*epoch=*/7, Box(0, 0, 100, 100),
                UniformDraws(8000, 0, 0, 100, 100, &rng));
  EXPECT_EQ(cache.reservoirs(), 1u);

  // A covered sub-range hits; every served entry lies inside it.
  Rect3 q = Box(30, 30, 70, 70);
  auto probe = cache.ProbeCovering("t", 7, q, rng);
  ASSERT_TRUE(probe.hit);
  EXPECT_GT(probe.samples.size(), 0u);
  for (const Entry& e : probe.samples) {
    EXPECT_TRUE(q.Contains(e.point));
  }
  // Roughly the area fraction of the draws qualify (0.16 of 8000).
  EXPECT_GT(probe.samples.size(), 800u);
  EXPECT_LT(probe.samples.size(), 2000u);
  EXPECT_EQ(cache.hits(), 1u);

  // A range poking outside every reservoir misses.
  auto miss = cache.ProbeCovering("t", 7, Box(90, 90, 110, 110), rng);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(cache.misses(), 1u);

  // Same region, different table: miss.
  auto other = cache.ProbeCovering("u", 7, q, rng);
  EXPECT_FALSE(other.hit);
}

TEST(SampleCacheTest, SmallPublishesAreSuppressed) {
  SampleReservoirCache cache;  // default min_publish_samples = 512
  Rng rng(TestSeed());
  cache.Publish("t", 1, Box(0, 0, 100, 100),
                UniformDraws(100, 0, 0, 100, 100, &rng));
  EXPECT_EQ(cache.reservoirs(), 0u);
  EXPECT_EQ(cache.published(), 0u);
}

TEST(SampleCacheTest, SameKeyRepublishKeepsTheLargerReservoir) {
  SampleReservoirCache cache;
  Rng rng(TestSeed());
  Rect3 region = Box(0, 0, 100, 100);
  cache.Publish("t", 1, region, UniformDraws(4000, 0, 0, 100, 100, &rng));
  // A smaller same-key publish is dropped...
  cache.Publish("t", 1, region, UniformDraws(1000, 0, 0, 100, 100, &rng));
  EXPECT_EQ(cache.reservoirs(), 1u);
  auto probe = cache.ProbeCovering("t", 1, region, rng);
  ASSERT_TRUE(probe.hit);
  EXPECT_EQ(probe.reservoir_samples, 4000u);
  // ...a larger one replaces.
  cache.Publish("t", 1, region, UniformDraws(6000, 0, 0, 100, 100, &rng));
  EXPECT_EQ(cache.reservoirs(), 1u);
  auto bigger = cache.ProbeCovering("t", 1, region, rng);
  ASSERT_TRUE(bigger.hit);
  EXPECT_EQ(bigger.reservoir_samples, 6000u);
}

TEST(SampleCacheTest, EpochBumpInvalidatesAndPurgesStaleReservoirs) {
  SampleReservoirCache cache;
  Rng rng(TestSeed());
  cache.Publish("t", 3, Box(0, 0, 100, 100),
                UniformDraws(4000, 0, 0, 100, 100, &rng));
  EXPECT_EQ(cache.reservoirs(), 1u);
  EXPECT_TRUE(cache.HasCovering("t", 3, Box(20, 20, 60, 60)));

  // The table moved to epoch 4 (an insert): the old reservoir can never
  // match again and the probe purges it on sight.
  EXPECT_FALSE(cache.HasCovering("t", 4, Box(20, 20, 60, 60)));
  auto probe = cache.ProbeCovering("t", 4, Box(20, 20, 60, 60), rng);
  EXPECT_FALSE(probe.hit);
  EXPECT_EQ(cache.reservoirs(), 0u);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(SampleCacheTest, EvictsLeastRecentlyUsedUnderByteBound) {
  SampleCacheOptions options;
  // Room for ~3 reservoirs of 2000 entries (32 B each) + overhead.
  options.max_bytes = 200 * 1024;
  options.min_publish_samples = 512;
  SampleReservoirCache cache(options);
  Rng rng(TestSeed());
  // Distinct keys: disjoint regions on one table, same epoch.
  for (int i = 0; i < 6; ++i) {
    double x0 = 100.0 * i;
    cache.Publish("t", 1, Box(x0, 0, x0 + 100, 100),
                  UniformDraws(2000, x0, 0, x0 + 100, 100, &rng));
  }
  EXPECT_LE(cache.bytes(), options.max_bytes);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LT(cache.reservoirs(), 6u);
  // The oldest (least recently used) region is gone, the newest survives.
  EXPECT_FALSE(cache.HasCovering("t", 1, Box(10, 10, 20, 20)));
  EXPECT_TRUE(cache.HasCovering("t", 1, Box(510, 10, 520, 20)));
}

// The statistical contract: entries drained from a covering reservoir and
// rejected to a smaller range are uniform over that range. Chi-square over
// a 4x4 grid of equal-area cells.
TEST(SampleCacheTest, ProbedSubrangeStreamIsUniformChiSquared) {
  SampleReservoirCache cache;
  Rng rng(TestSeed());
  cache.Publish("t", 1, Box(0, 0, 100, 100),
                UniformDraws(60000, 0, 0, 100, 100, &rng));
  Rect3 q = Box(30, 30, 70, 70);
  auto probe = cache.ProbeCovering("t", 1, q, rng);
  ASSERT_TRUE(probe.hit);
  ASSERT_GT(probe.samples.size(), 4000u);

  constexpr size_t kGrid = 4;
  uint64_t counts[kGrid * kGrid] = {};
  for (const Entry& e : probe.samples) {
    auto cx = std::min(kGrid - 1, static_cast<size_t>((e.point[0] - 30.0) /
                                                      (40.0 / kGrid)));
    auto cy = std::min(kGrid - 1, static_cast<size_t>((e.point[1] - 30.0) /
                                                      (40.0 / kGrid)));
    ++counts[cy * kGrid + cx];
  }
  double stat = ChiSquareUniform(counts, kGrid * kGrid, probe.samples.size());
  EXPECT_LT(stat, ChiSquareCritical(kGrid * kGrid - 1, 1e-4));
}

// ---------------------------------------------------------------------------
// CachedSampler over a real table: drain-then-top-up, and the combined
// (cached + live) stream stays uniform.

TEST(CachedSamplerTest, DrainsCoveringReservoirThenTopsUpLiveAndStaysUniform) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed())).ok());
  Table* table = *session.GetTable("t");
  SampleReservoirCache cache;

  // Overview pass: a with-replacement query over the full extent publishes
  // its stream on destruction.
  {
    auto inner = table->NewSampler(SamplerStrategy::kRsTree, TestSeed());
    ASSERT_TRUE(inner.ok());
    CachedSampler overview(std::move(*inner), &cache, "t", table->epoch(),
                           Rng(TestSeed() + 1));
    ASSERT_TRUE(
        overview.Begin(Box(0, 0, 100, 100), SamplingMode::kWithReplacement)
            .ok());
    Entry buf[512];
    uint64_t drawn = 0;
    while (drawn < 12'000) {
      uint64_t got = overview.NextBatch(std::span<Entry>(buf, 512));
      ASSERT_GT(got, 0u);
      drawn += got;
    }
    EXPECT_FALSE(overview.cache_hit());  // nothing was cached yet
  }
  EXPECT_EQ(cache.reservoirs(), 1u);

  // Pan pass: a covered sub-viewport drains the reservoir first, then tops
  // up through the live sampler. Every sample is in range either way.
  Rect3 pan = Box(25, 25, 75, 75);
  auto inner = table->NewSampler(SamplerStrategy::kRsTree, TestSeed() + 2);
  ASSERT_TRUE(inner.ok());
  CachedSampler sampler(std::move(*inner), &cache, "t", table->epoch(),
                        Rng(TestSeed() + 3));
  ASSERT_TRUE(sampler.Begin(pan, SamplingMode::kWithReplacement).ok());

  constexpr size_t kGrid = 4;
  uint64_t counts[kGrid * kGrid] = {};
  Entry buf[512];
  uint64_t drawn = 0;
  while (drawn < 8'000) {
    uint64_t got = sampler.NextBatch(std::span<Entry>(buf, 512));
    ASSERT_GT(got, 0u);
    for (uint64_t i = 0; i < got; ++i) {
      ASSERT_TRUE(pan.Contains(buf[i].point));
      auto cx = std::min(kGrid - 1, static_cast<size_t>(
                                        (buf[i].point[0] - 25.0) /
                                        (50.0 / kGrid)));
      auto cy = std::min(kGrid - 1, static_cast<size_t>(
                                        (buf[i].point[1] - 25.0) /
                                        (50.0 / kGrid)));
      ++counts[cy * kGrid + cx];
    }
    drawn += got;
  }
  EXPECT_TRUE(sampler.cache_hit());
  EXPECT_GT(sampler.cached_served(), 0u);
  EXPECT_GT(sampler.total_served(), sampler.cached_served());
  EXPECT_EQ(cache.hits(), 1u);

  // The combined cached + live stream is uniform over the pan viewport.
  // (The table's points are uniform over [0,100]^2, so P ∩ pan is uniform
  // over the pan box up to sampling noise in the fixture itself; an
  // equal-area chi-square at alpha = 1e-4 absorbs that.)
  double stat = ChiSquareUniform(counts, kGrid * kGrid, drawn);
  EXPECT_LT(stat, ChiSquareCritical(kGrid * kGrid - 1, 1e-4));
}

// ---------------------------------------------------------------------------
// Query-level behaviour through Session::Execute.

TEST(CacheQueryTest, SecondBoundedQueryServesFromCache) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed())).ok());
  SampleReservoirCache cache;
  ExecOptions options =
      ExecOptions().WithSampling(SamplingOptions().WithCache(&cache));
  const std::string q =
      "SELECT AVG(v) FROM t REGION(0, 0, 100, 100) SAMPLES 5000 USING RSTREE";

  auto first = session.Execute(q, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->cache_eligible);
  EXPECT_EQ(first->cache_samples, 0u);  // cold cache
  EXPECT_EQ(cache.reservoirs(), 1u);    // ...but the query published

  auto second = session.Execute(q, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_eligible);
  EXPECT_GT(second->cache_samples, 0u);
  EXPECT_LE(second->cache_samples, second->samples);
  // Both are valid estimates of the same mean (v is i%10, mean 4.5).
  EXPECT_NEAR(second->ci.estimate, 4.5, 4.0 * second->ci.half_width + 0.05);
}

TEST(CacheQueryTest, InsertAndDeleteInvalidateAndAnswersStayExact) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(5'000, TestSeed())).ok());
  SampleReservoirCache cache;
  ExecOptions options =
      ExecOptions().WithSampling(SamplingOptions().WithCache(&cache));
  const std::string bounded =
      "SELECT AVG(v) FROM t REGION(0, 0, 100, 100) SAMPLES 2000 USING RSTREE";

  ASSERT_TRUE(session.Execute(bounded, options).ok());
  auto warm = session.Execute(bounded, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->cache_samples, 0u);  // the cache is live

  // An insert moves the table to a fresh epoch: the next query must not see
  // any pre-insert reservoir (correctness over reuse).
  UpdateManager* updates = *session.Updates("t");
  BatchInsertResult inserted = updates->InsertBatch(MakeDocs(100, 999));
  ASSERT_TRUE(inserted.status.ok());
  auto after_insert = session.Execute(bounded, options);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_EQ(after_insert->cache_samples, 0u);

  // Unbounded COUNT runs without-replacement to exhaustion: exact, and it
  // sees every inserted record.
  auto count = session.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_DOUBLE_EQ(count->ci.estimate, 5100.0);

  // A delete bumps the epoch again and the exact answer tracks it.
  ASSERT_TRUE(updates->Delete(inserted.ids.front()).ok());
  auto after_delete = session.Execute(bounded, options);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(after_delete->cache_samples, 0u);
  auto recount = session.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(recount.ok());
  EXPECT_DOUBLE_EQ(recount->ci.estimate, 5099.0);
}

TEST(CacheQueryTest, SeedDeterminismHoldsWithCacheEnabled) {
  const std::string overview =
      "SELECT AVG(v) FROM t REGION(0, 0, 100, 100) SAMPLES 5000 USING RSTREE";
  const std::string pan =
      "SELECT AVG(v) FROM t REGION(25, 25, 75, 75) SAMPLES 3000 USING RSTREE";
  auto run = [&](double* first, double* second, uint64_t* cached) {
    Session session;
    ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed())).ok());
    SampleReservoirCache cache;
    ExecOptions options =
        ExecOptions().WithSampling(SamplingOptions().WithCache(&cache));
    auto a = session.Execute(overview, options);
    ASSERT_TRUE(a.ok()) << a.status();
    auto b = session.Execute(pan, options);
    ASSERT_TRUE(b.ok()) << b.status();
    *first = a->ci.estimate;
    *second = b->ci.estimate;
    *cached = b->cache_samples;
  };
  double first1 = 0, second1 = 0, first2 = 0, second2 = 0;
  uint64_t cached1 = 0, cached2 = 0;
  run(&first1, &second1, &cached1);
  run(&first2, &second2, &cached2);
  EXPECT_DOUBLE_EQ(first1, first2);
  EXPECT_DOUBLE_EQ(second1, second2);
  EXPECT_EQ(cached1, cached2);
  EXPECT_GT(cached1, 0u);  // the pan actually served from the cache
}

TEST(CacheQueryTest, NoCacheHintAndKnobDisableEligibility) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(5'000, TestSeed())).ok());
  SampleReservoirCache cache;

  // USING NOCACHE (with or without an explicit method).
  auto hint = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 1000 USING RSTREE NOCACHE",
      ExecOptions().WithSampling(SamplingOptions().WithCache(&cache)));
  ASSERT_TRUE(hint.ok()) << hint.status();
  EXPECT_FALSE(hint->cache_eligible);
  auto bare = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 1000 USING NOCACHE",
      ExecOptions().WithSampling(SamplingOptions().WithCache(&cache)));
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_FALSE(bare->cache_eligible);

  // The ExecOptions opt-out knob.
  auto knob = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 1000 USING RSTREE",
      ExecOptions().WithSampling(
          SamplingOptions().WithCache(&cache).WithSampleCache(false)));
  ASSERT_TRUE(knob.ok()) << knob.status();
  EXPECT_FALSE(knob->cache_eligible);
  EXPECT_EQ(cache.reservoirs(), 0u);  // nothing ever published

  // EXPLAIN reports cache eligibility.
  auto explain = session.Execute(
      "EXPLAIN SELECT AVG(v) FROM t SAMPLES 1000 USING RSTREE",
      ExecOptions().WithSampling(SamplingOptions().WithCache(&cache)));
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_TRUE(explain->explain_only);
  EXPECT_NE(explain->decision.reason.find("sample cache"), std::string::npos);
  auto explain_off = session.Execute(
      "EXPLAIN SELECT AVG(v) FROM t SAMPLES 1000 USING RSTREE NOCACHE",
      ExecOptions().WithSampling(SamplingOptions().WithCache(&cache)));
  ASSERT_TRUE(explain_off.ok());
  EXPECT_NE(explain_off->decision.reason.find("sample cache: off"),
            std::string::npos);
}

TEST(CacheWireTest, NoCacheFlagRoundTripsAndStaysCompatible) {
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM t";
  req.no_cache = true;
  auto decoded = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->no_cache);
  EXPECT_EQ(decoded->query, req.query);

  // A pre-cache client's request (flag absent) decodes to false — the
  // server keeps caching, which is the compatible default.
  QueryRequest old;
  old.query = req.query;
  auto old_decoded = DecodeQueryRequest(EncodeQueryRequest(old));
  ASSERT_TRUE(old_decoded.ok());
  EXPECT_FALSE(old_decoded->no_cache);
}

}  // namespace
}  // namespace storm
