// Tests for the visualizer module: heatmaps, sparklines, convergence
// charts, trajectory plots and PGM export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storm/viz/render.h"

namespace storm {
namespace {

TEST(HeatmapTest, NormalizesAndOrientsNorthUp) {
  // 2x2 grid, row-major with y=1 the north row.
  std::vector<double> grid = {0.0, 1.0,   // south row: y=0
                              10.0, 5.0}; // north row: y=1
  std::string out = RenderHeatmap(grid, 2, 2);
  // North row first; max cell (10.0) gets the hottest ramp char '@'.
  // Ramp " .:-=+*#%@": 10.0 -> '@' (max), 5.0 -> '+' (idx 5), 1.0 -> '.'
  // (idx 1), 0 -> ' '.
  ASSERT_EQ(out, "|@+|\n| .|\n") << out;
}

TEST(HeatmapTest, AllZeroGrid) {
  std::vector<double> grid(9, 0.0);
  std::string out = RenderHeatmap(grid, 3, 3);
  EXPECT_EQ(out, "|   |\n|   |\n|   |\n");
}

TEST(SparklineTest, MonotoneSeries) {
  std::string spark = RenderSparkline({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(spark, "▁▂▃▄▅▆▇█");
  EXPECT_EQ(RenderSparkline({}), "");
  // Constant series renders the lowest block throughout.
  EXPECT_EQ(RenderSparkline({5, 5, 5}), "▁▁▁");
}

TEST(ConvergenceTest, BandNarrowsAroundEstimate) {
  std::vector<ConfidenceInterval> history;
  for (int k = 1; k <= 4; ++k) {
    ConfidenceInterval ci;
    ci.estimate = 50;
    ci.half_width = 40.0 / k;
    ci.samples = static_cast<uint64_t>(k * 100);
    history.push_back(ci);
  }
  std::string chart = RenderConvergence(history, 41);
  // Four lines, each with a '*' and a '-' band; later bands are narrower.
  std::vector<size_t> widths;
  size_t pos = 0;
  for (int line = 0; line < 4; ++line) {
    size_t end = chart.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    std::string row = chart.substr(pos, end - pos);
    EXPECT_NE(row.find('*'), std::string::npos);
    widths.push_back(static_cast<size_t>(
        std::count(row.begin(), row.end(), '-')));
    pos = end + 1;
  }
  EXPECT_GT(widths[0], widths[1]);
  EXPECT_GT(widths[1], widths[3]);
}

TEST(ConvergenceTest, InfiniteWidthRendersEstimateOnly) {
  ConfidenceInterval ci;
  ci.estimate = 10;
  ci.half_width = std::numeric_limits<double>::infinity();
  std::string chart = RenderConvergence({ci}, 20);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_EQ(chart.find('-'), std::string::npos);
}

TEST(TrajectoryRenderTest, MarksInTimeOrder) {
  std::vector<TimedPoint> path;
  for (int i = 0; i < 10; ++i) {
    path.push_back(TimedPoint{static_cast<double>(i),
                              Point2(static_cast<double>(i), 0.0)});
  }
  Rect2 bounds(Point2(0, -1), Point2(10, 1));
  std::string out = RenderTrajectory(path, bounds, 20, 3);
  // First fix labeled '1', last labeled '#' (wraps past '9').
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  // '1' appears left of '#'.
  size_t row_start = out.rfind('\n', out.find('1'));
  (void)row_start;
  EXPECT_LT(out.find('1') % 22, out.find('#') % 22);
}

TEST(TrajectoryRenderTest, OutOfBoundsFixesSkipped) {
  std::vector<TimedPoint> path = {TimedPoint{0, Point2(100, 100)}};
  Rect2 bounds(Point2(0, 0), Point2(1, 1));
  std::string out = RenderTrajectory(path, bounds, 5, 2);
  EXPECT_EQ(out.find('1'), std::string::npos);
}

TEST(PgmTest, WritesValidHeaderAndPayload) {
  std::string path = ::testing::TempDir() + "/storm_viz_test.pgm";
  std::vector<double> grid = {0, 0.5, 1.0, 0.25};
  ASSERT_TRUE(WritePgm(path, grid, 2, 2).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic, dims;
  std::getline(in, magic);
  EXPECT_EQ(magic, "P5");
  int w, h, maxval;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 2);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // the single whitespace after the header
  unsigned char px[4];
  in.read(reinterpret_cast<char*>(px), 4);
  ASSERT_TRUE(in.good());
  // Image row 0 is the north grid row (1.0, 0.25).
  EXPECT_EQ(px[0], 255);
  EXPECT_EQ(px[1], 63);
  EXPECT_EQ(px[2], 0);
  EXPECT_EQ(px[3], 127);
  std::remove(path.c_str());
}

TEST(PgmTest, RejectsBadDimensions) {
  EXPECT_TRUE(WritePgm("/tmp/x.pgm", {1.0, 2.0}, 3, 3).IsInvalidArgument());
}

}  // namespace
}  // namespace storm
