// Parallel online-sampling engine and consolidated API (ExecOptions,
// storm::Client). Labeled `parallel` so CI can run it standalone under
// ThreadSanitizer (`ctest -L parallel`) with several STORM_PARALLEL_SEED
// values.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storm/client.h"
#include "storm/storm.h"
#include "storm/util/thread_pool.h"

namespace storm {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("STORM_PARALLEL_SEED");
  if (env == nullptr) return 1234;
  return std::strtoull(env, nullptr, 10);
}

/// Synthetic docs: uniform positions, v = i mod 10 (mean 4.5), k = i mod 8.
std::vector<Value> MakeDocs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> docs;
  docs.reserve(n);
  for (int i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 10)));
    doc.Set("k", Value::Double(static_cast<double>(i % 8)));
    docs.push_back(doc);
  }
  return docs;
}

TEST(ThreadPoolTest, RunsSubmittedTasksOnWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&hits] { hits.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolTest, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

TEST(ParallelExecTest, ParallelAggregateMatchesSequentialEstimate) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(40'000, TestSeed())).ok());
  const std::string q = "SELECT AVG(v) FROM t SAMPLES 30000 USING RSTREE";
  auto seq = session.Execute(q);
  ASSERT_TRUE(seq.ok()) << seq.status();
  auto par = session.Execute(q, ExecOptions().WithParallelism(4));
  ASSERT_TRUE(par.ok()) << par.status();
  // Both are unbiased estimates of the same population mean (4.5).
  EXPECT_NEAR(seq->ci.estimate, 4.5, 0.5);
  EXPECT_NEAR(par->ci.estimate, 4.5, 0.5);
  EXPECT_GT(par->samples, 0u);
  EXPECT_GT(par->ci.half_width, 0.0);
  // The merged CI is consistent: it covers the true mean (generously —
  // a 95% interval fails 1-in-20 runs, so assert 4 half-widths).
  EXPECT_LT(std::abs(par->ci.estimate - 4.5), 4.0 * par->ci.half_width + 0.05);
}

TEST(ParallelExecTest, ParallelGroupByCoversEveryGroup) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(40'000, TestSeed() + 1)).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t GROUP BY k SAMPLES 16000 USING RSTREE",
      ExecOptions().WithParallelism(4));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->groups.size(), 8u);
  for (const GroupRow& g : result->groups) {
    // Group j holds v in {j, j+8} with v = i%10, k = i%8: the per-group
    // means are distinct and well separated from the global mean for most
    // groups; just check each group's estimate is in the value range and
    // its sample count is non-trivial.
    EXPECT_GE(g.ci.estimate, 0.0);
    EXPECT_LE(g.ci.estimate, 9.0);
    EXPECT_GT(g.samples, 100u);
  }
}

TEST(ParallelExecTest, MergedWorkerSamplesAreUniformChiSquared) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(40'000, TestSeed() + 2)).ok());
  auto result = session.Execute(
      "SELECT COUNT(*) FROM t GROUP BY k SAMPLES 16000 USING RSTREE",
      ExecOptions().WithParallelism(4));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->groups.size(), 8u);
  // k = i mod 8 puts exactly 1/8 of the population in each group; the
  // merged multi-worker with-replacement stream must hit the groups
  // uniformly. Chi-squared with 7 dof: P(X > 29) < 1e-4.
  uint64_t total = 0;
  for (const GroupRow& g : result->groups) total += g.samples;
  ASSERT_GT(total, 4000u);
  double expected = static_cast<double>(total) / 8.0;
  double chi2 = 0.0;
  for (const GroupRow& g : result->groups) {
    double d = static_cast<double>(g.samples) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 29.0) << "merged sample stream is not uniform across "
                           "equal-sized groups (chi2=" << chi2 << ")";
}

TEST(ParallelExecTest, ParallelismOneIsDeterministicForIdenticalTables) {
  // parallelism = 1 runs the classic sequential loop; for two identical
  // fresh tables the sampler seeds and hence the whole trajectory match.
  auto run = [] {
    Session session;
    EXPECT_TRUE(session.CreateTable("t", MakeDocs(20'000, 77)).ok());
    auto r = session.Execute(
        "SELECT AVG(v) FROM t SAMPLES 2000 USING RSTREE",
        ExecOptions().WithParallelism(1));
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? std::make_pair(r->ci.estimate, r->samples)
                  : std::make_pair(0.0, uint64_t{0});
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ParallelExecTest, ParallelQuantileMergesValueShards) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(40'000, TestSeed() + 3)).ok());
  auto result = session.Execute(
      "SELECT MEDIAN(v) FROM t SAMPLES 12000 USING RSTREE",
      ExecOptions().WithParallelism(4));
  ASSERT_TRUE(result.ok()) << result.status();
  // v is uniform over {0..9}: the median estimate lands mid-range.
  EXPECT_GE(result->ci.estimate, 3.0);
  EXPECT_LE(result->ci.estimate, 6.0);
  EXPECT_GT(result->samples, 0u);
}

TEST(ParallelExecTest, ParallelHonorsDeadline) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(30'000, TestSeed() + 4)).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 1000000000 ERROR 0.00001% USING RSTREE",
      ExecOptions().WithParallelism(4).WithDeadlineMs(15));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_GT(result->samples, 0u);
  EXPECT_LT(result->elapsed_ms, 5000.0);  // generous for slow CI
}

TEST(ParallelExecTest, ParallelHonorsCancelToken) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(30'000, TestSeed() + 5)).ok());
  CancelToken token;
  token.Cancel();
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 1000000000 ERROR 0.00001% USING RSTREE",
      ExecOptions().WithParallelism(4).WithCancel(&token));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->cancelled);
}

TEST(ParallelExecTest, ParallelProgressRunsOnCoordinatorAndCanCancel) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(30'000, TestSeed() + 6)).ok());
  std::thread::id coordinator = std::this_thread::get_id();
  std::atomic<int> calls{0};
  std::atomic<bool> wrong_thread{false};
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 1000000000 ERROR 0.00001% USING RSTREE",
      ExecOptions().WithParallelism(4).WithProgress(
          [&](const QueryProgress&) {
            if (std::this_thread::get_id() != coordinator) {
              wrong_thread.store(true);
            }
            return calls.fetch_add(1) < 3;
          }));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->cancelled);
  EXPECT_FALSE(wrong_thread.load());
  EXPECT_GE(calls.load(), 1);
}

TEST(ParallelExecTest, LsTreeFallsBackToSequentialLoop) {
  // LS-tree sampling is without-replacement only; the parallel engine
  // requires with-replacement streams, so USING LSTREE quietly runs the
  // sequential loop even at parallelism > 1.
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed() + 7)).ok());
  auto result = session.Execute(
      "SELECT AVG(v) FROM t SAMPLES 3000 USING LSTREE",
      ExecOptions().WithParallelism(4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->strategy, "LSTREE");
  EXPECT_NEAR(result->ci.estimate, 4.5, 0.6);
}

TEST(ParallelExecTest, ConcurrentExecutesDuringInsertStorm) {
  // N query threads (each itself running parallel workers) race one
  // writer hammering inserts: the table's reader-writer latch must keep
  // every query on a consistent snapshot. Run under TSan via
  // `ctest -L parallel`.
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(20'000, TestSeed() + 8)).ok());
  Result<UpdateManager*> updates = session.Updates("t");
  ASSERT_TRUE(updates.ok());

  std::atomic<bool> stop_writer{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    Rng rng(TestSeed() + 99);
    int i = 0;
    while (!stop_writer.load(std::memory_order_acquire)) {
      Value doc = Value::MakeObject();
      doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
      doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
      doc.Set("v", Value::Double(static_cast<double>(i % 10)));
      doc.Set("k", Value::Double(static_cast<double>(i % 8)));
      if (!(*updates)->Insert(doc).ok()) {
        failures.fetch_add(1);
        break;
      }
      ++i;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&session, &failures, r] {
      for (int i = 0; i < 4; ++i) {
        auto result = session.Execute(
            "SELECT AVG(v) FROM t SAMPLES 2000 USING RSTREE",
            ExecOptions().WithParallelism(1 + r).WithProfile(false));
        if (!result.ok() || result->samples == 0 ||
            result->ci.estimate < 0.0 || result->ci.estimate > 9.0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  // The writer made progress and queries still see a consistent table.
  auto after = session.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->ci.estimate, 20'000.0);
}

TEST(ExecOptionsTest, BuilderSettersChain) {
  CancelToken token;
  bool called = false;
  ExecOptions options = ExecOptions()
                            .WithParallelism(8)
                            .WithDeadlineMs(250.0)
                            .WithCancel(&token)
                            .WithProfile(false)
                            .WithProgress([&called](const QueryProgress&) {
                              called = true;
                              return true;
                            });
  EXPECT_EQ(options.parallelism, 8);
  EXPECT_DOUBLE_EQ(options.deadline_ms, 250.0);
  EXPECT_EQ(options.cancel, &token);
  EXPECT_FALSE(options.profile);
  ASSERT_TRUE(options.progress);
  options.progress(QueryProgress{});
  EXPECT_TRUE(called);
}

TEST(ExecOptionsTest, ProfileOffSkipsProfileCollection) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(5'000, TestSeed() + 9)).ok());
  auto with = session.Execute("SELECT AVG(v) FROM t SAMPLES 500");
  ASSERT_TRUE(with.ok());
  EXPECT_NE(with->profile, nullptr);
  auto without = session.Execute("SELECT AVG(v) FROM t SAMPLES 500",
                                 ExecOptions().WithProfile(false));
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->profile, nullptr);
}

// The pre-ExecOptions positional overloads are gone; progress rides in
// ExecOptions, for both the text and the pre-parsed entry points.
TEST(ExecOptionsTest, ProgressViaExecOptionsOnBothEntryPoints) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(5'000, TestSeed() + 10)).ok());
  int calls = 0;
  auto result = session.Execute("SELECT AVG(v) FROM t SAMPLES 1000",
                                ExecOptions().WithProgress(
                                    [&calls](const QueryProgress&) {
                                      ++calls;
                                      return true;
                                    }));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(calls, 0);

  auto ast = ParseQuery("SELECT AVG(v) FROM t SAMPLES 500");
  ASSERT_TRUE(ast.ok());
  auto via_ast = session.ExecuteAst(*ast, ExecOptions().WithProgress(nullptr));
  ASSERT_TRUE(via_ast.ok()) << via_ast.status();
  EXPECT_GT(via_ast->samples, 0u);
}

TEST(ClientFacadeTest, EndToEndThroughTheUmbrella) {
  Client db;
  ASSERT_TRUE(db.CreateTable("t", MakeDocs(10'000, TestSeed() + 11)).ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"t"});

  auto result = db.Execute("SELECT AVG(v) FROM t SAMPLES 2000",
                           ExecOptions().WithParallelism(2));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->ci.estimate, 4.5, 1.0);

  Value doc = Value::MakeObject();
  doc.Set("x", Value::Double(1.0));
  doc.Set("y", Value::Double(2.0));
  doc.Set("v", Value::Double(3.0));
  doc.Set("k", Value::Double(4.0));
  Result<RecordId> id = db.Insert("t", doc);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_TRUE(db.Delete("t", *id).ok());

  BatchInsertResult batch = db.InsertBatch("t", {doc, doc});
  EXPECT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.ids.size(), 2u);
  BatchInsertResult missing = db.InsertBatch("ghost", {doc});
  EXPECT_TRUE(missing.status.IsNotFound());

  // Durability controls surface the same preconditions as Session.
  EXPECT_FALSE(db.SimulateCrash("t").ok());  // non-durable: nothing to crash
  EXPECT_TRUE(db.session().HasTable("t"));  // escape hatch reaches the engine
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_FALSE(db.HasTable("t"));
}

TEST(ParallelExecTest, PerWorkerSampleCountersAreRegistered) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", MakeDocs(10'000, TestSeed() + 12)).ok());
  auto result = session.Execute("SELECT AVG(v) FROM t SAMPLES 4000 USING RSTREE",
                                ExecOptions().WithParallelism(2));
  ASSERT_TRUE(result.ok()) << result.status();
  std::string prom = MetricsRegistry::Default().ExposePrometheus();
  EXPECT_NE(prom.find("storm_parallel_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("storm_parallel_worker_samples_total"), std::string::npos);
}

}  // namespace
}  // namespace storm
