// Tests for the data connector: CSV/TSV parsing, JSON-lines, schema
// discovery (type lattice, binding guess), timestamps, and the importer.

#include <gtest/gtest.h>

#include "storm/connector/csv.h"
#include "storm/connector/free_data.h"
#include "storm/connector/importer.h"
#include "storm/connector/jsonl.h"
#include "storm/connector/schema_discovery.h"

namespace storm {
namespace {

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, BasicTypedParsing) {
  auto docs = ParseCsvString("name,age,score,active\nalice,30,9.5,true\nbob,25,8,false\n");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 2u);
  const Value& alice = (*docs)[0];
  EXPECT_EQ(alice.Find("name")->AsString(), "alice");
  EXPECT_EQ(alice.Find("age")->AsInt(), 30);
  EXPECT_DOUBLE_EQ(alice.Find("score")->AsDouble(), 9.5);
  EXPECT_TRUE(alice.Find("active")->AsBool());
  EXPECT_FALSE((*docs)[1].Find("active")->AsBool());
}

TEST(CsvTest, QuotedFieldsAndEscapedQuotes) {
  auto docs = ParseCsvString(
      "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)[0].Find("a")->AsString(), "hello, world");
  EXPECT_EQ((*docs)[0].Find("b")->AsString(), "say \"hi\"");
}

TEST(CsvTest, NewlineInsideQuotes) {
  auto docs = ParseCsvString("a,b\n\"line1\nline2\",2\n");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);
  EXPECT_EQ((*docs)[0].Find("a")->AsString(), "line1\nline2");
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  auto docs = ParseCsvString("a,b,c\n1,,3\n");
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE((*docs)[0].Find("b")->is_null());
}

TEST(CsvTest, NoHeaderSynthesizesColumns) {
  CsvOptions options;
  options.has_header = false;
  auto docs = ParseCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 2u);
  EXPECT_EQ((*docs)[1].Find("c0")->AsInt(), 3);
  EXPECT_EQ((*docs)[1].Find("c1")->AsInt(), 4);
}

TEST(CsvTest, TabDelimiter) {
  CsvOptions options;
  options.delimiter = '\t';
  auto docs = ParseCsvString("x\ty\n1\t2\n", options);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)[0].Find("y")->AsInt(), 2);
}

TEST(CsvTest, RaggedRowFails) {
  auto docs = ParseCsvString("a,b\n1,2,3\n");
  EXPECT_FALSE(docs.ok());
  EXPECT_EQ(docs.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvString("a\n\"oops\n").ok());
}

TEST(CsvTest, CrLfHandled) {
  auto docs = ParseCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);
  EXPECT_EQ((*docs)[0].Find("b")->AsInt(), 2);
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::vector<Value> docs;
  Value a = Value::MakeObject();
  a.Set("name", Value::String("has,comma"));
  a.Set("n", Value::Int(1));
  docs.push_back(a);
  Value b = Value::MakeObject();
  b.Set("name", Value::String("plain"));
  b.Set("n", Value::Int(2));
  docs.push_back(b);
  std::string csv = WriteCsvString(docs);
  auto back = ParseCsvString(csv);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].Find("name")->AsString(), "has,comma");
  EXPECT_EQ((*back)[1].Find("n")->AsInt(), 2);
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

TEST(JsonlTest, ParsesLinesSkipsBlanks) {
  auto docs = ParseJsonlString("{\"a\":1}\n\n  \n{\"a\":2}\r\n{\"a\":3}");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 3u);
  EXPECT_EQ((*docs)[2].Find("a")->AsInt(), 3);
}

TEST(JsonlTest, ErrorCarriesLineNumber) {
  auto docs = ParseJsonlString("{\"a\":1}\n{broken\n");
  ASSERT_FALSE(docs.ok());
  EXPECT_NE(docs.status().message().find("line 2"), std::string::npos);
}

TEST(JsonlTest, WriteRoundTrip) {
  std::vector<Value> docs;
  for (int i = 0; i < 5; ++i) {
    Value v = Value::MakeObject();
    v.Set("i", Value::Int(i));
    docs.push_back(v);
  }
  auto back = ParseJsonlString(WriteJsonlString(docs));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 5u);
  EXPECT_EQ((*back)[4].Find("i")->AsInt(), 4);
}

// ---------------------------------------------------------------------------
// Schema discovery
// ---------------------------------------------------------------------------

TEST(SchemaDiscoveryTest, TypeLattice) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"a\":1,\"b\":true,\"c\":\"x\"}"));
  d.Observe(*Value::Parse("{\"a\":2.5,\"b\":false,\"c\":\"y\"}"));
  d.Observe(*Value::Parse("{\"a\":null,\"b\":1,\"d\":3}"));
  Schema s = d.Discover();
  EXPECT_EQ(s.documents, 3u);
  EXPECT_EQ(s.Find("a")->type, FieldType::kDouble);  // int ∪ double
  EXPECT_TRUE(s.Find("a")->nullable);                // saw null
  EXPECT_EQ(s.Find("b")->type, FieldType::kString);  // bool ∪ int collapses
  EXPECT_EQ(s.Find("c")->type, FieldType::kString);
  EXPECT_TRUE(s.Find("c")->nullable);  // missing from doc 3
  EXPECT_TRUE(s.Find("d")->nullable);  // missing from docs 1-2
  EXPECT_EQ(s.Find("nope"), nullptr);
}

TEST(SchemaDiscoveryTest, NestedFieldsFlattened) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"user\":{\"geo\":{\"lat\":40.7,\"lon\":-74.0}}}"));
  Schema s = d.Discover();
  ASSERT_NE(s.Find("user.geo.lat"), nullptr);
  EXPECT_EQ(s.Find("user.geo.lat")->type, FieldType::kDouble);
}

TEST(SchemaDiscoveryTest, NumericRanges) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"v\":10}"));
  d.Observe(*Value::Parse("{\"v\":-3}"));
  d.Observe(*Value::Parse("{\"v\":7}"));
  Schema s = d.Discover();
  EXPECT_DOUBLE_EQ(s.Find("v")->min, -3);
  EXPECT_DOUBLE_EQ(s.Find("v")->max, 10);
}

TEST(SchemaDiscoveryTest, GuessBindingByName) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse(
      "{\"lat\":40.7,\"lon\":-74.0,\"timestamp\":1392076800,\"v\":1}"));
  auto binding = SchemaDiscovery::GuessBinding(d.Discover());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->x_field, "lon");
  EXPECT_EQ(binding->y_field, "lat");
  EXPECT_EQ(binding->t_field, "timestamp");
}

TEST(SchemaDiscoveryTest, GuessBindingNested) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"geo\":{\"latitude\":33.7,\"longitude\":-84.4}}"));
  auto binding = SchemaDiscovery::GuessBinding(d.Discover());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->x_field, "geo.longitude");
  EXPECT_EQ(binding->y_field, "geo.latitude");
  EXPECT_FALSE(binding->HasTime());
}

TEST(SchemaDiscoveryTest, FallbackToFirstNumericPair) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"px\":3.0,\"py\":4.0,\"label\":\"a\"}"));
  auto binding = SchemaDiscovery::GuessBinding(d.Discover());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->x_field, "px");
  EXPECT_EQ(binding->y_field, "py");
}

TEST(SchemaDiscoveryTest, NoNumericFieldsNoBinding) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"a\":\"x\",\"b\":\"y\"}"));
  EXPECT_FALSE(SchemaDiscovery::GuessBinding(d.Discover()).has_value());
}

TEST(SchemaDiscoveryTest, RejectsOutOfRangeLatitude) {
  SchemaDiscovery d;
  d.Observe(*Value::Parse("{\"lat\":4000.0,\"lon\":-74.0}"));
  EXPECT_FALSE(SchemaDiscovery::GuessBinding(d.Discover()).has_value());
}

// ---------------------------------------------------------------------------
// Free data module
// ---------------------------------------------------------------------------

TEST(FreeDataTest, FlattenAndUnflattenRoundTrip) {
  Value doc = *Value::Parse(
      "{\"user\":{\"geo\":{\"lat\":1.5,\"lon\":-2.5},\"name\":\"a\"},"
      "\"id\":7,\"tags\":[1,2]}");
  Value flat = FlattenDocument(doc);
  ASSERT_TRUE(flat.is_object());
  ASSERT_NE(flat.Find("user.geo.lat"), nullptr);
  EXPECT_DOUBLE_EQ(flat.Find("user.geo.lat")->AsDouble(), 1.5);
  EXPECT_NE(flat.Find("id"), nullptr);
  EXPECT_NE(flat.Find("tags"), nullptr);  // arrays stay values
  EXPECT_EQ(flat.Find("user"), nullptr);  // nesting removed
  Value back = UnflattenDocument(flat);
  EXPECT_EQ(back, doc);
}

TEST(FreeDataTest, NonObjectPassthrough) {
  EXPECT_EQ(FlattenDocument(Value::Int(5)), Value::Int(5));
  EXPECT_EQ(UnflattenDocument(Value::String("x")), Value::String("x"));
}

TEST(FreeDataTest, ConflictingKeysFavorObjects) {
  Value flat = Value::MakeObject();
  flat.Set("a", Value::Int(1));        // scalar "a"
  flat.Set("a.b", Value::Int(2));      // also an object "a"
  Value nested = UnflattenDocument(flat);
  const Value* a = nested.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_object());
  EXPECT_EQ(a->Find("b")->AsInt(), 2);
}

TEST(FreeDataTest, FlattenedCsvExportRoundTrip) {
  // The practical pipeline: nested JSONL → flatten → CSV → parse → values.
  auto docs = ParseJsonlString(
      "{\"geo\":{\"lat\":40.0,\"lon\":-74.0},\"v\":1}\n"
      "{\"geo\":{\"lat\":41.0,\"lon\":-73.0},\"v\":2}\n");
  ASSERT_TRUE(docs.ok());
  std::vector<Value> flat;
  for (const Value& d : *docs) flat.push_back(FlattenDocument(d));
  std::string csv = WriteCsvString(flat);
  auto rows = ParseCsvString(csv);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[1].Find("geo.lat")->AsDouble(), 41.0);
}

// ---------------------------------------------------------------------------
// Timestamps
// ---------------------------------------------------------------------------

TEST(TimestampTest, ParsesKnownDates) {
  EXPECT_EQ(ParseTimestamp("1970-01-01"), 0.0);
  EXPECT_EQ(ParseTimestamp("1970-01-02"), 86400.0);
  EXPECT_EQ(ParseTimestamp("2014-02-10"), 1391990400.0);
  EXPECT_EQ(ParseTimestamp("2014-02-10 06:00:00"), 1392012000.0);
  EXPECT_EQ(ParseTimestamp("2014-02-10T06:00:00Z"), 1392012000.0);
  EXPECT_EQ(ParseTimestamp("2014-02-10T06:00:00.500"), 1392012000.5);
  EXPECT_EQ(ParseTimestamp("1392012000"), 1392012000.0);
  EXPECT_EQ(ParseTimestamp(" 2014-02-10 "), 1391990400.0);
}

TEST(TimestampTest, RejectsBadInput) {
  EXPECT_FALSE(ParseTimestamp("").has_value());
  EXPECT_FALSE(ParseTimestamp("not a date").has_value());
  EXPECT_FALSE(ParseTimestamp("2014-13-40").has_value());
  EXPECT_FALSE(ParseTimestamp("2014-02-10 25:00:00").has_value());
  EXPECT_FALSE(ParseTimestamp("2014-02-10Txx:00:00").has_value());
}

TEST(TimestampTest, FormatRoundTrip) {
  for (double epoch : {0.0, 1392012000.0, 1700000000.0}) {
    std::string text = FormatTimestamp(epoch);
    auto back = ParseTimestamp(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(*back, epoch) << text;
  }
  EXPECT_EQ(FormatTimestamp(1392012000.0), "2014-02-10 06:00:00");
}

// ---------------------------------------------------------------------------
// Importer
// ---------------------------------------------------------------------------

TEST(ImporterTest, ImportsIntoStoreWithAutoBinding) {
  auto docs = ParseJsonlString(
      "{\"lat\":40.0,\"lon\":-74.0,\"timestamp\":\"2014-01-05\",\"v\":1}\n"
      "{\"lat\":41.0,\"lon\":-73.0,\"timestamp\":\"2014-01-06\",\"v\":2}\n");
  ASSERT_TRUE(docs.ok());
  RecordStore store;
  Importer importer(&store);
  auto result = importer.ImportDocuments(*docs);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->imported, 2u);
  EXPECT_EQ(result->skipped, 0u);
  ASSERT_EQ(result->entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result->entries[0].point[0], -74.0);
  EXPECT_DOUBLE_EQ(result->entries[0].point[1], 40.0);
  EXPECT_EQ(result->entries[0].point[2], *ParseTimestamp("2014-01-05"));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ImporterTest, IndexInPlaceUsesPositions) {
  auto docs = ParseJsonlString(
      "{\"x\":1.0,\"y\":2.0}\n{\"x\":3.0,\"y\":4.0}\n");
  ASSERT_TRUE(docs.ok());
  Importer importer(nullptr);
  auto result = importer.ImportDocuments(*docs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries[1].id, 1u);
  EXPECT_FALSE(result->binding.HasTime());
  EXPECT_EQ(result->entries[1].point[2], 0.0);  // no time axis
}

TEST(ImporterTest, SkipsBadDocumentsWhenAsked) {
  auto docs = ParseJsonlString(
      "{\"lat\":40.0,\"lon\":-74.0}\n"
      "{\"lat\":\"oops\",\"lon\":-74.0}\n"
      "{\"lon\":-73.0}\n");
  ASSERT_TRUE(docs.ok());
  Importer importer(nullptr);
  auto result = importer.ImportDocuments(*docs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->imported, 1u);
  EXPECT_EQ(result->skipped, 2u);
  // Strict mode fails instead.
  ImportOptions strict;
  strict.skip_bad_documents = false;
  EXPECT_FALSE(importer.ImportDocuments(*docs, strict).ok());
}

TEST(ImporterTest, ExplicitBindingOverridesGuess) {
  auto docs = ParseJsonlString("{\"a\":1.0,\"b\":2.0,\"lat\":40.0,\"lon\":-74.0}\n");
  ASSERT_TRUE(docs.ok());
  ImportOptions options;
  options.binding.x_field = "a";
  options.binding.y_field = "b";
  Importer importer(nullptr);
  auto result = importer.ImportDocuments(*docs, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->entries[0].point[0], 1.0);
  EXPECT_DOUBLE_EQ(result->entries[0].point[1], 2.0);
}

TEST(ImporterTest, StringTimestampsParsed) {
  auto docs = ParseJsonlString(
      "{\"lat\":1.0,\"lon\":2.0,\"time\":\"2014-02-10T12:30:00\"}\n");
  ASSERT_TRUE(docs.ok());
  Importer importer(nullptr);
  auto result = importer.ImportDocuments(*docs);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->binding.HasTime());
  EXPECT_EQ(result->entries[0].point[2], *ParseTimestamp("2014-02-10 12:30:00"));
}

TEST(ImporterTest, UndiscoverableSchemaFails) {
  auto docs = ParseJsonlString("{\"name\":\"x\"}\n");
  ASSERT_TRUE(docs.ok());
  Importer importer(nullptr);
  EXPECT_TRUE(importer.ImportDocuments(*docs).status().IsInvalidArgument());
}

}  // namespace
}  // namespace storm
