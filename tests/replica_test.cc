// Chaos suite for replica groups: a NetCoordinator running partitions of R
// replicas must keep answers EXACT through any single-replica death — the
// partition's stream fails over to a live sibling mid-query (coverage stays
// 1.0), inserts fan to every replica, and a replica that missed inserts is
// caught up from the bounded replay queue on readmission. Degradation is
// reserved for a fully dead partition; a replica whose replay queue
// overflowed is permanently routed around, never silently served stale.
//
// Mid-stream kills use child-process shards + SIGKILL (an in-process
// Stop() sends a polite cancelled-but-OK RESULT, which would count as
// finished); fixtures live in tests/fleet_util.h. Schedules are seeded via
// STORM_CHAOS_SEED; deterministic_retry_jitter pins replica selection to
// slot 0 so the chaos schedule knows which replica serves.

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet_util.h"
#include "storm/cluster/net_coordinator.h"
#include "storm/server/server.h"
#include "storm/storm.h"
#include "storm/util/stopwatch.h"

namespace storm {
namespace {

using namespace fleet_test;

NetCoordinatorOptions ReplicaOptions(int replicas) {
  NetCoordinatorOptions options = FastOptions();
  options.replicas = replicas;
  // Pin replica selection (slot 0 of every partition) and retry jitter:
  // the kill schedules below must know which replica is serving.
  options.deterministic_retry_jitter = true;
  return options;
}

bool AwaitReplayDrained(const NetCoordinator& coordinator, size_t index,
                        int budget_ms) {
  for (int waited = 0; waited < budget_ms; waited += 20) {
    if (coordinator.shard_replay_pending(index) == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return coordinator.shard_replay_pending(index) == 0;
}

TEST(ReplicaGroupTest, StartRejectsShardCountNotMultipleOfReplicas) {
  NetCoordinatorOptions options = ReplicaOptions(2);
  NetCoordinator coordinator(
      {{"127.0.0.1", 1}, {"127.0.0.1", 2}, {"127.0.0.1", 3}}, options);
  Status st = coordinator.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ReplicaGroupTest, InsertsFanToAllReplicasAndQueriesStayExact) {
  // 2 partitions x 2 replicas, in-process. Replicas of a partition serve
  // the same slice; inserts must land on BOTH replicas of the owning
  // partition, and a COUNT stays exact through any single replica death.
  auto docs = MakeDocs(4'000, ChaosSeed() * 53 + 1);
  std::vector<InProcShard> fleet;
  std::vector<ShardEndpoint> endpoints;
  for (size_t p = 0; p < 2; ++p) {
    for (size_t r = 0; r < 2; ++r) {
      fleet.push_back(StartShard(docs, p, 2));
      endpoints.push_back({"127.0.0.1", fleet.back().port});
    }
  }
  NetCoordinator coordinator(endpoints, ReplicaOptions(2));
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 4, 3000));
  EXPECT_EQ(coordinator.partition_count(), 2u);
  EXPECT_EQ(coordinator.live_partitions(), 2);

  auto extra = MakeDocs(40, 77);
  for (size_t i = 0; i < extra.size(); i += 10) {
    std::vector<Value> batch(extra.begin() + i, extra.begin() + i + 10);
    BatchInsertResult r = coordinator.InsertBatch("t", batch);
    ASSERT_TRUE(r.status.ok()) << r.status;
  }

  // Every replica of a partition holds the identical record count: the
  // original slice plus every batch routed to its partition.
  for (size_t p = 0; p < 2; ++p) {
    auto a = fleet[p * 2].session->GetTable("t");
    auto b = fleet[p * 2 + 1].session->GetTable("t");
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ((*a)->size(), (*b)->size()) << "partition " << p;
    EXPECT_EQ((*a)->size(), 2'000u + 20u) << "partition " << p;
  }

  // COUNT over the fleet counts each partition once, not per-replica.
  auto count =
      coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_NEAR(count->ci.estimate, 4'040.0, 1e-6);
  EXPECT_FALSE(count->degraded);
  EXPECT_NE(count->strategy.find("(2/2 partitions x2 replicas)"),
            std::string::npos)
      << count->strategy;

  // Kill one replica of partition 0 outright: the sibling answers, the
  // result stays exact and non-degraded.
  fleet[0].server->Stop();
  ASSERT_TRUE(AwaitLiveShards(coordinator, 3, 5000));
  EXPECT_EQ(coordinator.live_partitions(), 2);
  auto after = coordinator.Execute(
      "SELECT COUNT(*) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NEAR(after->ci.estimate, 4'040.0, 1e-6);
  EXPECT_FALSE(after->degraded);
  EXPECT_DOUBLE_EQ(after->coverage, 1.0);

  coordinator.Stop();
  for (size_t i = 1; i < fleet.size(); ++i) fleet[i].server->Stop();
}

TEST(ReplicaChaosTest, MidStreamReplicaDeathFailsOverWithCoverageOne) {
  // 2 partitions x 2 replicas as real processes. The serving replica of
  // partition 0 (slot 0 — deterministic_retry_jitter pins selection) is
  // slowed to 120 ms per frame, then SIGKILLed at the first merged
  // progress. The coordinator must discard its partials, re-issue the
  // stream on the sibling, and return an EXACT, non-degraded answer.
  std::vector<ChildShard> fleet;
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 0, 2, "--failpoint",
                             "server.conn.slow:latency_ms=120,code=ok",
                             "p0a"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 0, 2, nullptr, nullptr, "p0b"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 1, 2, nullptr, nullptr, "p1a"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 1, 2, nullptr, nullptr, "p1b"));
  for (const ChildShard& s : fleet) {
    ASSERT_GT(s.port, 0) << "shard did not come up: "
                         << ReadFileOrEmpty(s.stdout_path);
  }

  std::vector<ShardEndpoint> endpoints;
  for (const ChildShard& s : fleet) endpoints.push_back({"127.0.0.1", s.port});
  NetCoordinator coordinator(endpoints, ReplicaOptions(2));
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 4, 10'000));

  // Ground truth over the WHOLE table: the tiny demo generators are
  // deterministic, so recompute in-process. Failover means the merged
  // answer must match exactly — not renormalize around a lost partition.
  double truth;
  {
    TweetOptions o;
    o.num_tweets = 2'000;  // --tiny
    TweetGenerator gen(o);
    auto tweets = gen.Generate();
    double sum = 0.0;
    for (const Tweet& t : tweets) sum += t.lat;
    truth = sum / static_cast<double>(tweets.size());
  }

  std::atomic<bool> killed{false};
  ExecOptions options;
  options.deadline_ms = 30'000.0;
  options.progress = [&](const QueryProgress& p) {
    // First merged progress with samples: partition 0's slow replica is
    // provably mid-stream. Kill it dead, no goodbye.
    if (p.samples > 0 && !killed.exchange(true)) {
      ReapShard(&fleet[0], SIGKILL);
    }
    return true;
  };
  Stopwatch watch;
  auto result = coordinator.Execute(
      "SELECT AVG(lat) FROM tweets SAMPLES 100000000", options);
  const double elapsed = watch.ElapsedMillis();

  ASSERT_TRUE(killed.load()) << "query finished before any progress fired";
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(elapsed, 40'000.0);
  // The failover contract: exact coverage, no degradation, and the merged
  // estimate equals the full-table truth (both partitions exhausted).
  EXPECT_FALSE(result->degraded) << result->decision.reason;
  EXPECT_DOUBLE_EQ(result->coverage, 1.0);
  EXPECT_NEAR(result->ci.estimate, truth, 1e-6);
  EXPECT_NE(result->strategy.find("(2/2 partitions x2 replicas)"),
            std::string::npos)
      << result->strategy;

  coordinator.Stop();
  ReapShard(&fleet[1], SIGTERM);
  ReapShard(&fleet[2], SIGTERM);
  ReapShard(&fleet[3], SIGTERM);
}

TEST(ReplicaChaosTest, WholePartitionDeadDegradesCoverageByItsWeight) {
  // Both replicas of partition 0 SIGKILLed mid-stream: no sibling to fail
  // over to, so the coordinator falls back to drop-and-renormalize — the
  // answer is the surviving partition's, flagged degraded with coverage
  // ~0.5 (equal-size partitions).
  std::vector<ChildShard> fleet;
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 0, 2, "--failpoint",
                             "server.conn.slow:latency_ms=120,code=ok",
                             "q0a"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 0, 2, "--failpoint",
                             "server.conn.slow:latency_ms=120,code=ok",
                             "q0b"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 1, 2, nullptr, nullptr, "q1a"));
  fleet.push_back(SpawnShard(STORM_SERVER_BIN, 1, 2, nullptr, nullptr, "q1b"));
  for (const ChildShard& s : fleet) {
    ASSERT_GT(s.port, 0) << "shard did not come up: "
                         << ReadFileOrEmpty(s.stdout_path);
  }

  std::vector<ShardEndpoint> endpoints;
  for (const ChildShard& s : fleet) endpoints.push_back({"127.0.0.1", s.port});
  NetCoordinator coordinator(endpoints, ReplicaOptions(2));
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 4, 10'000));

  std::atomic<bool> killed{false};
  ExecOptions options;
  options.deadline_ms = 30'000.0;
  options.progress = [&](const QueryProgress& p) {
    if (p.samples > 0 && !killed.exchange(true)) {
      ReapShard(&fleet[0], SIGKILL);
      ReapShard(&fleet[1], SIGKILL);
    }
    return true;
  };
  auto result = coordinator.Execute(
      "SELECT AVG(lat) FROM tweets SAMPLES 100000000", options);

  ASSERT_TRUE(killed.load()) << "query finished before any progress fired";
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_GT(result->coverage, 0.3);
  EXPECT_LT(result->coverage, 0.7);
  EXPECT_NE(result->strategy.find("(1/2 partitions x2 replicas)"),
            std::string::npos)
      << result->strategy;

  coordinator.Stop();
  ReapShard(&fleet[2], SIGTERM);
  ReapShard(&fleet[3], SIGTERM);
}

TEST(ReplicaChaosTest, FlappingReplicaReplaysMissedInsertsToConvergence) {
  // One partition, two in-process replicas. Replica B goes down, an insert
  // storm lands (fanned to A, queued for B), B comes back on the same
  // port — the heartbeat must readmit it and drain the replay queue until
  // both replicas hold identical record counts.
  auto docs = MakeDocs(1'000, ChaosSeed() * 97 + 3);
  InProcShard a = StartShard(docs, 0, 1);
  InProcShard b = StartShard(docs, 0, 1);
  const int b_port = b.port;

  NetCoordinator coordinator(
      {{"127.0.0.1", a.port}, {"127.0.0.1", b_port}}, ReplicaOptions(2));
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 3000));

  b.server->Stop();
  ASSERT_TRUE(AwaitLiveShards(coordinator, 1, 5000)) << "eviction missed";

  // Insert storm while B is down: every batch lands on A and is queued
  // for B's replay (index 1 = slot 1 of partition 0).
  auto extra = MakeDocs(300, 23);
  for (size_t i = 0; i < extra.size(); i += 25) {
    std::vector<Value> batch(extra.begin() + i, extra.begin() + i + 25);
    BatchInsertResult r = coordinator.InsertBatch("t", batch);
    ASSERT_TRUE(r.status.ok()) << r.status;
  }
  EXPECT_EQ(coordinator.shard_replay_pending(1), 300u);
  {
    auto table = a.session->GetTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->size(), 1'300u);
  }

  // B returns on the same port; readmission drains the queue in order.
  ServerOptions options;
  options.port = b_port;
  options.metrics_port = -1;
  b.server = std::make_unique<StormServer>(b.session.get(), options);
  ASSERT_TRUE(b.server->Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 5000)) << "readmission missed";
  ASSERT_TRUE(AwaitReplayDrained(coordinator, 1, 5000))
      << "replay never drained; pending="
      << coordinator.shard_replay_pending(1);

  // Convergence: equal per-replica record counts, and the fleet COUNT
  // reflects every insert exactly once.
  auto ta = a.session->GetTable("t");
  auto tb = b.session->GetTable("t");
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_EQ((*ta)->size(), 1'300u);
  EXPECT_EQ((*tb)->size(), 1'300u);
  EXPECT_FALSE(coordinator.shard_stale(1));

  auto count =
      coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_NEAR(count->ci.estimate, 1'300.0, 1e-6);
  EXPECT_FALSE(count->degraded);

  coordinator.Stop();
  ExpectAdmissionSettled(*a.server, "replay fleet replica A");
  ExpectAdmissionSettled(*b.server, "replay fleet replica B");
  a.server->Stop();
  b.server->Stop();
}

TEST(ReplicaGroupTest, ReplayOverflowMarksReplicaStaleAndRoutesAround) {
  // A replay queue past replay_limit_records must mark the replica
  // permanently stale — bounded memory beats unbounded catch-up — and the
  // fleet keeps serving exact answers from the sibling.
  auto docs = MakeDocs(500, 41);
  InProcShard a = StartShard(docs, 0, 1);
  InProcShard b = StartShard(docs, 0, 1);

  NetCoordinatorOptions options = ReplicaOptions(2);
  options.replay_limit_records = 50;  // tiny: the storm overflows it
  NetCoordinator coordinator(
      {{"127.0.0.1", a.port}, {"127.0.0.1", b.port}}, options);
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 3000));

  b.server->Stop();
  ASSERT_TRUE(AwaitLiveShards(coordinator, 1, 5000));

  auto extra = MakeDocs(120, 59);
  for (size_t i = 0; i < extra.size(); i += 20) {
    std::vector<Value> batch(extra.begin() + i, extra.begin() + i + 20);
    BatchInsertResult r = coordinator.InsertBatch("t", batch);
    ASSERT_TRUE(r.status.ok()) << r.status;
  }

  // 40 records queued, then the third batch would cross 50: overflow.
  EXPECT_TRUE(coordinator.shard_stale(1));
  EXPECT_EQ(coordinator.shard_replay_pending(1), 0u) << "queue not cleared";
  EXPECT_EQ(coordinator.live_partitions(), 1);

  // The stale replica is routed around even after its process returns:
  // queries keep full coverage via the sibling, and a checkpoint refuses
  // (the stale replica's snapshot would be incomplete).
  auto count =
      coordinator.Execute("SELECT COUNT(*) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_NEAR(count->ci.estimate, 620.0, 1e-6);
  EXPECT_FALSE(count->degraded);
  EXPECT_DOUBLE_EQ(count->coverage, 1.0);

  Status ckpt = coordinator.Checkpoint("t");
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.code(), StatusCode::kUnavailable);
  EXPECT_NE(ckpt.message().find("stale"), std::string::npos) << ckpt;

  coordinator.Stop();
  a.server->Stop();
}

TEST(ReplicaGroupTest, FreshnessUnknownReplicaIsDeprioritizedNotEvicted) {
  // Replica A emulates a pre-freshness server (PING echoed verbatim): the
  // coordinator must prefer the freshness-reporting sibling B for queries,
  // but still keep A admitted — and still serve from A when B dies.
  auto docs = MakeDocs(800, 67);
  ServerOptions legacy;
  legacy.answer_ping_freshness = false;
  InProcShard a = StartShard(docs, 0, 1, 0, legacy);
  InProcShard b = StartShard(docs, 0, 1);

  NetCoordinator coordinator(
      {{"127.0.0.1", a.port}, {"127.0.0.1", b.port}}, ReplicaOptions(2));
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_TRUE(AwaitLiveShards(coordinator, 2, 3000));
  // Both live; only B's freshness is known.
  EXPECT_FALSE(coordinator.shard_freshness_known(0));
  ASSERT_TRUE(coordinator.shard_freshness_known(1));
  EXPECT_EQ(coordinator.shard_applied_records(1), 800u);

  // Process-global metrics can't tell replicas apart, but per-server
  // admission counters can: the query must land on B, not A.
  auto result =
      coordinator.Execute("SELECT AVG(v) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->degraded);
  EXPECT_EQ(b.server->admission().admitted_total(), 1u)
      << "fresh replica must be preferred";
  EXPECT_EQ(a.server->admission().admitted_total(), 0u)
      << "freshness-unknown replica must be deprioritized";

  // Deprioritized, NOT evicted: when B dies, A serves — exact, coverage 1.
  b.server->Stop();
  ASSERT_TRUE(AwaitLiveShards(coordinator, 1, 5000));
  auto fallback =
      coordinator.Execute("SELECT AVG(v) FROM t SAMPLES 100000000", {});
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_FALSE(fallback->degraded);
  EXPECT_DOUBLE_EQ(fallback->coverage, 1.0);
  EXPECT_GE(a.server->admission().admitted_total(), 1u);

  coordinator.Stop();
  a.server->Stop();
}

}  // namespace
}  // namespace storm
