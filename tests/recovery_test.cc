// Crash-recovery tests for the durability subsystem: WAL framing and
// group commit, checkpoint atomicity (superblock flip), volatile-cache
// crash semantics, torn-write tolerance, and the seeded crash-recovery
// harness — a randomized workload with power loss injected at ~200 seeded
// points (including mid-WAL-append and mid-checkpoint via failpoints),
// recovered and compared against a shadow ground truth, with chi-squared
// uniformity checks on post-recovery sampling.
//
// The crash-point seed defaults to 1 and can be overridden with the
// STORM_CRASH_SEED environment variable; CI runs three fixed seeds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storm/obs/metrics.h"
#include "storm/query/session.h"
#include "storm/query/table.h"
#include "storm/util/failpoint.h"
#include "storm/util/rng.h"
#include "storm/util/stats.h"
#include "storm/wal/checkpoint.h"
#include "storm/wal/superblock.h"
#include "storm/wal/wal.h"

namespace storm {
namespace {

uint64_t CrashSeed() {
  const char* env = std::getenv("STORM_CRASH_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

/// Integer-valued coordinates so doc JSON round-trips byte-identically
/// (shadow comparison is on serialized form).
Value MakeDoc(Rng& rng, int serial) {
  Value doc = Value::MakeObject();
  doc.Set("x", Value::Int(rng.UniformInt(0, 999)));
  doc.Set("y", Value::Int(rng.UniformInt(0, 999)));
  doc.Set("t", Value::Int(rng.UniformInt(0, 999)));
  doc.Set("val", Value::Int(serial));
  return doc;
}

ImportOptions ExplicitBinding() {
  ImportOptions o;
  o.binding.x_field = "x";
  o.binding.y_field = "y";
  o.binding.t_field = "t";
  return o;
}

TableConfig DurableConfig(size_t page_size = 1024, size_t pool_pages = 4) {
  TableConfig config;
  config.durable = true;
  config.store.page_size = page_size;
  config.store.pool_pages = pool_pages;
  return config;
}

std::vector<Value> MakeDocs(Rng& rng, int n, int first_serial = 0) {
  std::vector<Value> docs;
  docs.reserve(n);
  for (int i = 0; i < n; ++i) docs.push_back(MakeDoc(rng, first_serial + i));
  return docs;
}

/// Live contents of a table's store, id -> serialized document.
std::map<RecordId, std::string> Contents(const Table& t) {
  std::map<RecordId, std::string> out;
  Status st = t.store().Scan([&](RecordId id, const Value& doc) {
    out[id] = doc.ToJson();
    return true;
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// The one in-flight operation whose WAL append crashed before its sync
/// was acknowledged. After recovery it may legitimately be absent (the
/// usual case) or fully applied (its torn frame happened to persist
/// completely) — never partially.
struct PendingOp {
  enum Kind { kInsert, kBatch, kDelete } kind = kInsert;
  RecordId first_id = kInvalidRecordId;  ///< predicted insert id / deleted id
  std::vector<std::string> docs;         ///< serialized, for inserts
  std::string deleted_doc;               ///< for deletes (to resurrect)
};

std::map<RecordId, std::string> ApplyPending(
    std::map<RecordId, std::string> shadow, const PendingOp& op) {
  switch (op.kind) {
    case PendingOp::kInsert:
    case PendingOp::kBatch: {
      RecordId id = op.first_id;
      for (const std::string& doc : op.docs) shadow[id++] = doc;
      break;
    }
    case PendingOp::kDelete:
      shadow.erase(op.first_id);
      break;
  }
  return shadow;
}

void ExpectMatchesShadow(const Table& t,
                         const std::map<RecordId, std::string>& shadow,
                         const std::optional<PendingOp>& pending,
                         const std::string& context) {
  std::map<RecordId, std::string> actual = Contents(t);
  if (actual == shadow) return;
  if (pending.has_value() && actual == ApplyPending(shadow, *pending)) return;
  // Produce an actionable diff rather than a bare FAIL.
  std::string diff;
  for (const auto& [id, doc] : shadow) {
    if (!actual.contains(id)) {
      diff += "  lost acked record " + std::to_string(id) + "\n";
    } else if (actual.at(id) != doc) {
      diff += "  record " + std::to_string(id) + " mutated\n";
    }
  }
  for (const auto& [id, doc] : actual) {
    if (!shadow.contains(id)) {
      diff += "  unexpected record " + std::to_string(id) + "\n";
    }
  }
  FAIL() << context << ": recovered table diverges from shadow"
         << (pending.has_value() ? " (and from shadow+pending)" : "") << "\n"
         << diff;
}

/// Index/store consistency: every index agrees with the store on the live
/// record set.
void ExpectInternallyConsistent(const Table& t) {
  EXPECT_EQ(t.size(), t.store().size());
  EXPECT_EQ(t.entries().size(), t.store().size());
  for (const Table::Entry& e : t.entries()) {
    EXPECT_TRUE(t.store().Exists(e.id)) << "index holds dead record " << e.id;
  }
}

/// Draws ~20x the population with replacement through the RS-tree sampler
/// and checks per-record uniformity by chi-squared at alpha = 1e-4.
void ExpectUniformSampling(const Table& t, uint64_t seed) {
  if (t.size() < 10) return;  // too small for a meaningful test
  std::unordered_map<RecordId, size_t> slot;
  for (const Table::Entry& e : t.entries()) {
    slot.emplace(e.id, slot.size());
  }
  auto sampler = t.NewSampler(SamplerStrategy::kRsTree, seed);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rect3 everything(Point3(-1, -1, -1), Point3(1000, 1000, 1000));
  ASSERT_TRUE((*sampler)->Begin(everything, SamplingMode::kWithReplacement).ok());
  std::vector<uint64_t> counts(slot.size(), 0);
  uint64_t draws = slot.size() * 20;
  for (uint64_t i = 0; i < draws; ++i) {
    auto e = (*sampler)->Next();
    ASSERT_TRUE(e.has_value());
    auto it = slot.find(e->id);
    ASSERT_NE(it, slot.end()) << "sampled a record outside the table";
    ++counts[it->second];
  }
  double stat = ChiSquareUniform(counts.data(), counts.size(), draws);
  EXPECT_LT(stat, ChiSquareCritical(counts.size() - 1, 1e-4))
      << "post-recovery sampling is not uniform";
}

/// Every test starts and ends with a disarmed failpoint registry.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Default().DisableAll(); }
  void TearDown() override { Failpoints::Default().DisableAll(); }
};

using RecoveryEdgeTest = RecoveryTest;
using RecoveryHarnessTest = RecoveryTest;

// ---------------------------------------------------------------------------
// Basics: checkpoint-only and WAL-replay recovery
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, CheckpointOnlyRecoveryEmptyWal) {
  Rng rng(101);
  auto created = Table::Create("t", MakeDocs(rng, 30), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::optional<Table> table(std::move(*created));
  auto shadow = Contents(*table);
  ASSERT_EQ(shadow.size(), 30u);
  auto disk = table->disk();
  ASSERT_NE(disk, nullptr);

  // Process death, then power loss: no update ever touched the WAL.
  table.reset();
  disk->Crash();
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->name(), "t");
  ExpectMatchesShadow(*recovered, shadow, std::nullopt, "checkpoint-only");
  ExpectInternallyConsistent(*recovered);
  EXPECT_EQ(recovered->binding().x_field, "x");
  EXPECT_EQ(recovered->binding().t_field, "t");
}

TEST_F(RecoveryTest, WalReplayRestoresAckedUpdates) {
  Rng rng(202);
  auto created = Table::Create("t", MakeDocs(rng, 20), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::optional<Table> table(std::move(*created));
  // Acked updates after the initial checkpoint live only in the WAL.
  for (int i = 0; i < 15; ++i) {
    auto id = table->Insert(MakeDoc(rng, 100 + i));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  ASSERT_TRUE(table->Delete(3).ok());
  ASSERT_TRUE(table->Delete(27).ok());
  BatchInsertResult batch = table->InsertBatch(MakeDocs(rng, 4, 200));
  ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
  EXPECT_TRUE(batch.atomic);
  ASSERT_EQ(batch.ids.size(), 4u);
  auto shadow = Contents(*table);
  auto disk = table->disk();

  table.reset();
  disk->Crash();
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectMatchesShadow(*recovered, shadow, std::nullopt, "wal replay");
  ExpectInternallyConsistent(*recovered);
  // Record ids replayed densely: the next insert continues the sequence.
  auto next = recovered->Insert(MakeDoc(rng, 999));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 39u);  // 20 imported + 15 + 4 batch
}

TEST_F(RecoveryTest, CheckpointTruncatesWalAndSurvivesCrash) {
  Rng rng(303);
  auto created = Table::Create("t", MakeDocs(rng, 12), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table->Insert(MakeDoc(rng, 50 + i)).ok());
  }
  ASSERT_TRUE(table->Checkpoint().ok());
  // Post-checkpoint tail: these two live only in the fresh WAL.
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 98)).ok());
  ASSERT_TRUE(table->Delete(0).ok());
  auto shadow = Contents(*table);
  auto disk = table->disk();

  table.reset();
  disk->Crash();
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectMatchesShadow(*recovered, shadow, std::nullopt, "post-checkpoint tail");
}

TEST_F(RecoveryTest, GracefulShutdownIsAlsoRecoverable) {
  // Sync-everything shutdown (no crash): recovery still works, proving the
  // checkpoint is a complete description, not just a crash fallback.
  Rng rng(404);
  auto created = Table::Create("t", MakeDocs(rng, 16), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 77)).ok());
  auto shadow = Contents(*table);
  auto disk = table->disk();
  table.reset();  // pool destructor flushes; nothing is ever rolled back
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectMatchesShadow(*recovered, shadow, std::nullopt, "graceful shutdown");
}

// ---------------------------------------------------------------------------
// Edge cases: torn tails, mid-checkpoint crashes, double recovery
// ---------------------------------------------------------------------------

TEST_F(RecoveryEdgeTest, TornFinalWalRecordIsIgnoredNotAnError) {
  Rng rng(505);
  auto created = Table::Create("t", MakeDocs(rng, 10), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 60)).ok());  // acked
  auto shadow = Contents(*table);
  auto disk = table->disk();

  // The next insert dies after its frame reaches the page cache but before
  // the group-commit sync: unacknowledged.
  PendingOp pending;
  pending.kind = PendingOp::kInsert;
  pending.first_id = table->store().next_id();
  Value doc = MakeDoc(rng, 61);
  pending.docs.push_back(doc.ToJson());
  {
    FailpointConfig fp;
    fp.max_trips = 1;
    ScopedFailpoint arm(std::string(kFailpointWalAppendPartial), fp);
    auto id = table->Insert(doc);
    ASSERT_FALSE(id.ok()) << "failpoint should have failed the append";
  }

  // Crash with every unsynced page torn (a prefix persists).
  table.reset();
  disk->SeedCrashRng(0xC0FFEE);
  {
    ScopedFailpoint torn(std::string(kFailpointCrashTorn), {});
    disk->Crash();
  }
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok())
      << "torn final record must be ignored, got " << recovered.status().ToString();
  ExpectMatchesShadow(*recovered, shadow, pending, "torn tail");
  ExpectInternallyConsistent(*recovered);
}

TEST_F(RecoveryEdgeTest, MidCheckpointCrashFallsBackToPreviousCheckpoint) {
  Rng rng(606);
  auto created = Table::Create("t", MakeDocs(rng, 14), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(table->Insert(MakeDoc(rng, 30 + i)).ok());
  }
  auto shadow = Contents(*table);
  auto disk = table->disk();

  // The checkpoint writes its blob and fresh WAL, then dies before the
  // superblock flip. The previous checkpoint + WAL must still govern.
  {
    FailpointConfig fp;
    fp.max_trips = 1;
    ScopedFailpoint arm(std::string(kFailpointCheckpointPartial), fp);
    EXPECT_FALSE(table->Checkpoint().ok());
  }
  table.reset();
  disk->Crash();
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectMatchesShadow(*recovered, shadow, std::nullopt, "mid-checkpoint crash");
}

TEST_F(RecoveryEdgeTest, DoubleRecoveryIsIdempotent) {
  Rng rng(707);
  auto created = Table::Create("t", MakeDocs(rng, 18), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 91)).ok());
  ASSERT_TRUE(table->Delete(2).ok());
  auto shadow = Contents(*table);
  auto disk = table->disk();

  table.reset();
  disk->Crash();
  auto first = Table::Recover(disk);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ExpectMatchesShadow(*first, shadow, std::nullopt, "first recovery");

  // Crash immediately again — recovery's own checkpoint must be complete.
  std::optional<Table> hold(std::move(*first));
  hold.reset();
  disk->Crash();
  auto second = Table::Recover(disk);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectMatchesShadow(*second, shadow, std::nullopt, "second recovery");
  ExpectInternallyConsistent(*second);
}

TEST_F(RecoveryEdgeTest, RecoverNeverFormattedDiskFails) {
  auto disk = std::make_shared<BlockManager>(512);
  auto recovered = Table::Recover(disk);
  EXPECT_FALSE(recovered.ok());
}

TEST_F(RecoveryEdgeTest, ShardedTableRecoversWithCluster) {
  Rng rng(808);
  TableConfig config = DurableConfig();
  config.num_shards = 3;
  auto created =
      Table::Create("t", MakeDocs(rng, 40), ExplicitBinding(), config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::optional<Table> table(std::move(*created));
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 70)).ok());
  auto shadow = Contents(*table);
  auto disk = table->disk();

  table.reset();
  disk->Crash();
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectMatchesShadow(*recovered, shadow, std::nullopt, "sharded");
  ASSERT_NE(recovered->cluster(), nullptr)
      << "recovery must rebuild the shard cluster";
  ExpectUniformSampling(*recovered, 811);
}

// ---------------------------------------------------------------------------
// Batch atomicity and structural partial-failure reporting
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, DurableBatchIsAllOrNothingAcrossCrash) {
  Rng rng(909);
  auto created = Table::Create("t", MakeDocs(rng, 10), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  auto shadow = Contents(*table);
  auto disk = table->disk();

  // The batch commits as one WAL record; its sync never happens.
  PendingOp pending;
  pending.kind = PendingOp::kBatch;
  pending.first_id = table->store().next_id();
  std::vector<Value> docs = MakeDocs(rng, 5, 300);
  for (const Value& d : docs) pending.docs.push_back(d.ToJson());
  {
    FailpointConfig fp;
    fp.max_trips = 1;
    ScopedFailpoint arm(std::string(kFailpointWalAppendPartial), fp);
    BatchInsertResult r = table->InsertBatch(docs);
    EXPECT_FALSE(r.status.ok());
    EXPECT_TRUE(r.atomic);
    EXPECT_TRUE(r.ids.empty()) << "atomic failure must apply nothing";
  }
  table.reset();
  disk->SeedCrashRng(42);
  {
    FailpointConfig torn;
    torn.probability = 0.5;
    torn.seed = 43;
    ScopedFailpoint arm(std::string(kFailpointCrashTorn), torn);
    disk->Crash();
  }
  auto recovered = Table::Recover(disk);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Either no batch document survived or every one did — never a prefix
  // of the batch.
  ExpectMatchesShadow(*recovered, shadow, pending, "crashed batch");
}

TEST_F(RecoveryTest, ValidationRejectsBatchBeforeWal) {
  Rng rng(1010);
  auto created = Table::Create("t", MakeDocs(rng, 8), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  auto shadow = Contents(*table);

  std::vector<Value> docs = MakeDocs(rng, 3, 400);
  Value bad = Value::MakeObject();
  bad.Set("x", Value::String("not-a-number"));
  docs.insert(docs.begin() + 1, bad);
  BatchInsertResult r = table->InsertBatch(docs);
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.atomic);
  EXPECT_TRUE(r.ids.empty());
  EXPECT_NE(r.status.ToString().find("document 1"), std::string::npos)
      << "failure should name the offending document: " << r.status.ToString();
  // Nothing was logged: the table is untouched, no crash needed to prove it.
  ExpectMatchesShadow(*table, shadow, std::nullopt, "validation reject");
}

TEST_F(RecoveryTest, NonDurableBatchReportsAppliedIdsStructurally) {
  Rng rng(1111);
  auto created =
      Table::Create("t", MakeDocs(rng, 8), ExplicitBinding(), TableConfig{});
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));

  std::vector<Value> docs = MakeDocs(rng, 2, 500);
  Value bad = Value::MakeObject();
  bad.Set("x", Value::String("nope"));
  docs.push_back(bad);
  docs.push_back(MakeDoc(rng, 502));
  BatchInsertResult r = table->InsertBatch(docs);
  EXPECT_FALSE(r.status.ok());
  EXPECT_FALSE(r.atomic) << "non-durable batches stop partway";
  ASSERT_EQ(r.ids.size(), 2u) << "ids applied before the failure, structurally";
  for (RecordId id : r.ids) EXPECT_TRUE(table->store().Exists(id));
}

// ---------------------------------------------------------------------------
// Session-level durability controls
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, SessionCheckpointCrashRecoverRoundTrip) {
  Session session;
  Rng rng(1212);
  ASSERT_TRUE(session
                  .CreateTable("fleet", MakeDocs(rng, 25), ExplicitBinding(),
                               DurableConfig())
                  .ok());
  auto updates = session.Updates("fleet");
  ASSERT_TRUE(updates.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*updates)->Insert(MakeDoc(rng, 40 + i)).ok());
  }
  ASSERT_TRUE(session.Checkpoint("fleet").ok());
  ASSERT_TRUE((*updates)->Delete(1).ok());

  ASSERT_TRUE(session.SimulateCrash("fleet").ok());
  EXPECT_FALSE(session.HasTable("fleet"));
  EXPECT_FALSE(session.Recover("missing").ok());
  ASSERT_TRUE(session.Recover("fleet").ok());
  ASSERT_TRUE(session.HasTable("fleet"));

  auto result = session.Execute("SELECT COUNT(*) FROM fleet SAMPLES 2000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 25 imported + 5 inserted - 1 deleted = 29 records.
  auto table = session.GetTable("fleet");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 29u);

  // Crash controls reject non-durable tables.
  ASSERT_TRUE(session.CreateTable("plain", MakeDocs(rng, 5), ExplicitBinding())
                  .ok());
  EXPECT_FALSE(session.SimulateCrash("plain").ok());
  EXPECT_FALSE(session.Checkpoint("plain").ok());
}

// ---------------------------------------------------------------------------
// WAL metrics
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, WalMetricsGrowWithAppends) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* appends = reg.GetCounter("storm_wal_appends_total");
  Counter* bytes = reg.GetCounter("storm_wal_bytes_total");
  Counter* syncs = reg.GetCounter("storm_wal_syncs_total");
  uint64_t appends0 = appends->Value();
  uint64_t bytes0 = bytes->Value();
  uint64_t syncs0 = syncs->Value();

  Rng rng(1313);
  auto created = Table::Create("t", MakeDocs(rng, 6), ExplicitBinding(),
                               DurableConfig());
  ASSERT_TRUE(created.ok());
  std::optional<Table> table(std::move(*created));
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 1)).ok());
  ASSERT_TRUE(table->Insert(MakeDoc(rng, 2)).ok());
  BatchInsertResult batch = table->InsertBatch(MakeDocs(rng, 3, 10));
  ASSERT_TRUE(batch.status.ok());

  // 2 single inserts + 1 batch record = 3 appends; one sync each.
  EXPECT_EQ(appends->Value() - appends0, 3u);
  EXPECT_EQ(syncs->Value() - syncs0, 3u);
  EXPECT_GT(bytes->Value() - bytes0, 0u);
}

// ---------------------------------------------------------------------------
// The seeded crash-recovery harness (the tentpole test)
// ---------------------------------------------------------------------------

TEST_F(RecoveryHarnessTest, SeededCrashRecoveryHarness) {
  const uint64_t seed = CrashSeed();
  SCOPED_TRACE("STORM_CRASH_SEED=" + std::to_string(seed));
  constexpr int kCrashPoints = 200;

  for (int point = 0; point < kCrashPoints; ++point) {
    SCOPED_TRACE("crash point " + std::to_string(point));
    Rng rng(seed * 1'000'003 + point);
    // Crash flavor: 0 = clean power loss between ops, 1 = mid-WAL-append,
    // 2 = mid-checkpoint, 3 = torn unsynced pages, 4 = clean append reject.
    const int flavor = point % 5;

    auto created = Table::Create("t", MakeDocs(rng, 24), ExplicitBinding(),
                                 DurableConfig(/*page_size=*/1024,
                                               /*pool_pages=*/4));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::optional<Table> table(std::move(*created));
    auto disk = table->disk();
    disk->SeedCrashRng(seed ^ (point * 0x9E3779B9ULL));
    std::map<RecordId, std::string> shadow = Contents(*table);
    std::optional<PendingOp> pending;

    const int ops = static_cast<int>(rng.UniformInt(4, 16));
    const int fail_at =
        (flavor == 1 || flavor == 2 || flavor == 4)
            ? static_cast<int>(rng.UniformInt(0, ops - 1))
            : -1;
    int serial = 1000 + point;
    for (int op = 0; op < ops; ++op) {
      // Arm the flavor's failpoint only around the chosen op.
      std::optional<ScopedFailpoint> arm;
      if (op == fail_at) {
        FailpointConfig fp;
        fp.max_trips = 1;
        if (flavor == 1) arm.emplace(std::string(kFailpointWalAppendPartial), fp);
        if (flavor == 4) arm.emplace(std::string(kFailpointWalAppend), fp);
        if (flavor == 2) arm.emplace(std::string(kFailpointCheckpointPartial), fp);
      }

      const int kind = (op == fail_at && flavor == 2)
                           ? 3  // force a checkpoint op at the failure site
                           : static_cast<int>(rng.UniformInt(0, 9));
      if (kind <= 5) {  // single insert
        Value doc = MakeDoc(rng, serial++);
        RecordId predicted = table->store().next_id();
        auto id = table->Insert(doc);
        if (id.ok()) {
          shadow[*id] = doc.ToJson();
        } else if (op == fail_at && flavor == 1) {
          pending = PendingOp{PendingOp::kInsert, predicted, {doc.ToJson()}, ""};
        }
      } else if (kind <= 6) {  // delete a random live record
        if (!shadow.empty()) {
          auto victim = shadow.begin();
          std::advance(victim,
                       rng.Uniform(static_cast<uint64_t>(shadow.size())));
          RecordId id = victim->first;
          std::string doc = victim->second;
          Status st = table->Delete(id);
          if (st.ok()) {
            shadow.erase(id);
          } else if (op == fail_at && flavor == 1) {
            pending = PendingOp{PendingOp::kDelete, id, {}, doc};
          }
        }
      } else if (kind <= 7) {  // batch insert
        const int n = static_cast<int>(rng.UniformInt(2, 4));
        std::vector<Value> docs = MakeDocs(rng, n, serial);
        serial += n;
        RecordId first = table->store().next_id();
        BatchInsertResult r = table->InsertBatch(docs);
        if (r.status.ok()) {
          for (size_t i = 0; i < r.ids.size(); ++i) {
            shadow[r.ids[i]] = docs[i].ToJson();
          }
        } else {
          EXPECT_TRUE(r.ids.empty()) << "durable batches are atomic";
          if (op == fail_at && flavor == 1) {
            PendingOp p;
            p.kind = PendingOp::kBatch;
            p.first_id = first;
            for (const Value& d : docs) p.docs.push_back(d.ToJson());
            pending = p;
          }
        }
      } else {  // checkpoint
        Status st = table->Checkpoint();
        if (op == fail_at && flavor == 2) {
          EXPECT_FALSE(st.ok()) << "partial-checkpoint failpoint must trip";
        } else {
          EXPECT_TRUE(st.ok()) << st.ToString();
        }
      }

      if (op == fail_at) break;  // crash right after the failed op
    }

    // Power loss: process death first (buffer pool flushes land in the
    // volatile cache), then the crash discards everything unsynced.
    table.reset();
    if (flavor == 3) {
      FailpointConfig torn;
      torn.probability = 0.5;
      torn.seed = seed ^ (point * 7919);
      ScopedFailpoint arm(std::string(kFailpointCrashTorn), torn);
      disk->Crash();
    } else {
      disk->Crash();
    }

    auto recovered = Table::Recover(disk);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectMatchesShadow(*recovered, shadow, pending, "harness");
    ExpectInternallyConsistent(*recovered);

    // The recovered table must remain fully usable.
    Value post = MakeDoc(rng, serial++);
    auto post_id = recovered->Insert(post);
    ASSERT_TRUE(post_id.ok()) << post_id.status().ToString();
    auto got = recovered->store().Get(*post_id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->ToJson(), post.ToJson());

    // Periodically (it is the expensive half), prove post-recovery sampling
    // is still uniform over the recovered record set.
    if (point % 25 == 0) {
      ExpectUniformSampling(*recovered, seed ^ point);
    }
  }
}

}  // namespace
}  // namespace storm
