// Serving layer: frame protocol round-trips, the streamed anytime-result
// contract (PROGRESS cadence, CANCEL, deadlines), admission control,
// slow-consumer backpressure, connection-drop failpoints, and seeded
// garbage-input fuzzing over the lexer, parser, and frame decoder.
// Labeled `server` so CI can run it standalone under ThreadSanitizer
// (`ctest -L server`) with several STORM_FUZZ_SEED values.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storm/obs/flight_recorder.h"
#include "storm/obs/trace_export.h"
#include "storm/query/lexer.h"
#include "storm/storm.h"
#include "storm/wal/codec.h"

namespace storm {
namespace {

uint64_t FuzzSeed() {
  const char* env = std::getenv("STORM_FUZZ_SEED");
  if (env == nullptr) return 1;
  return std::strtoull(env, nullptr, 10);
}

/// Synthetic docs: uniform positions, v = i mod 10 (mean 4.5).
std::vector<Value> MakeDocs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> docs;
  docs.reserve(n);
  for (int i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 10)));
    docs.push_back(doc);
  }
  return docs;
}

/// A query that keeps sampling until cancelled or deadlined: the error
/// target is unreachable and the cap is far past the anytime horizon.
/// QUANTILE costs ~15 µs per drawn sample (AVG is ~1000x cheaper), so on
/// a kLongDocs table the sampling loop runs for over a second — long
/// enough that cancels, deadlines, and shutdowns land mid-stream. The
/// quantile targets x, which is continuous: over the 10-point discrete v
/// the median CI can collapse to zero width and stop the query early.
constexpr char kLongQuery[] =
    "SELECT QUANTILE(0.5, x) FROM t SAMPLES 500000000 ERROR 0.000001%";
constexpr int kLongDocs = 100'000;

/// Server + session + connected client, torn down in order.
struct TestServer {
  explicit TestServer(ServerOptions options = {}, int docs = 20'000) {
    EXPECT_TRUE(session.CreateTable("t", MakeDocs(docs, FuzzSeed())).ok());
    options.port = 0;
    server = std::make_unique<StormServer>(&session, options);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~TestServer() { server->Stop(); }

  int port() const { return server->port(); }

  Session session;
  std::unique_ptr<StormServer> server;
};

/// Raw frame-level client, for driving the protocol below RemoteClient:
/// pipelined requests, duplicate ids, deliberately corrupt bytes.
struct RawConn {
  Status Connect(int port) {
    auto fd = TcpConnect("127.0.0.1", port);
    STORM_RETURN_NOT_OK(fd.status());
    sock = std::move(*fd);
    return Status::OK();
  }
  Status Send(FrameType type, uint64_t id, std::string_view payload) {
    std::string frame = EncodeFrame(type, id, payload);
    return SendAll(sock.get(), frame.data(), frame.size());
  }
  Status SendRaw(std::string_view bytes) {
    return SendAll(sock.get(), bytes.data(), bytes.size());
  }
  /// Blocks until one frame arrives (10 s cap).
  Result<Frame> ReadFrame() {
    char chunk[4096];
    for (int spins = 0; spins < 200; ++spins) {
      Frame frame;
      STORM_ASSIGN_OR_RETURN(size_t consumed, TryDecodeFrame(buf, &frame));
      if (consumed > 0) {
        buf.erase(0, consumed);
        return frame;
      }
      STORM_ASSIGN_OR_RETURN(size_t got,
                             RecvSome(sock.get(), chunk, sizeof(chunk), 50));
      buf.append(chunk, got);
    }
    return Status::DeadlineExceeded("no frame within the test budget");
  }

  UniqueFd sock;
  std::string buf;
};

// --- Protocol round trips -------------------------------------------------

TEST(ProtocolTest, FrameRoundTripEveryType) {
  for (FrameType type :
       {FrameType::kQuery, FrameType::kCancel, FrameType::kInsertBatch,
        FrameType::kCheckpoint, FrameType::kPing, FrameType::kMetrics,
        FrameType::kProgress, FrameType::kResult, FrameType::kError,
        FrameType::kInsertResult, FrameType::kOk, FrameType::kPong,
        FrameType::kMetricsText}) {
    std::string payload = "payload-" + std::to_string(static_cast<int>(type));
    std::string wire = EncodeFrame(type, 42, payload);
    Frame frame;
    auto consumed = TryDecodeFrame(wire, &frame);
    ASSERT_TRUE(consumed.ok()) << consumed.status();
    EXPECT_EQ(*consumed, wire.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.id, 42u);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM t SAMPLES 100";
  req.parallelism = 4;
  req.deadline_ms = 250.5;
  req.progress_interval_ms = 20;
  auto back = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->query, req.query);
  EXPECT_EQ(back->parallelism, 4);
  EXPECT_DOUBLE_EQ(back->deadline_ms, 250.5);
  EXPECT_EQ(back->progress_interval_ms, 20u);
}

TEST(ProtocolTest, WireErrorAndProgressRoundTrip) {
  auto err = DecodeWireError(
      EncodeWireError(Status::DeadlineExceeded("budget blown")));
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_EQ(err->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(err->ToStatus().message(), "budget blown");

  ProgressUpdate p;
  p.samples = 4096;
  p.elapsed_ms = 12.25;
  p.ci.estimate = 4.5;
  p.ci.half_width = 0.125;
  p.ci.confidence = 0.95;
  p.ci.samples = 4096;
  auto back = DecodeProgressUpdate(EncodeProgressUpdate(p));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->samples, 4096u);
  EXPECT_DOUBLE_EQ(back->ci.estimate, 4.5);
  EXPECT_DOUBLE_EQ(back->ci.half_width, 0.125);
}

TEST(ProtocolTest, QueryResultRoundTripCarriesEveryTaskSurface) {
  QueryResult r;
  r.task = QueryTask::kAggregate;
  r.strategy = "RSTREE";
  r.decision.estimated_cardinality = 1000;
  r.decision.estimated_selectivity = 0.25;
  r.decision.reason = "selective box";
  r.ci.estimate = 4.5;
  r.ci.half_width = 0.01;
  r.ci.confidence = 0.95;
  r.ci.samples = 9000;
  GroupRow g;
  g.key = 7;
  g.ci.estimate = 1.5;
  g.group_size.estimate = 120;
  g.samples = 64;
  r.groups.push_back(g);
  r.kde_map = {0.0, 0.5, 1.0, 0.25};
  r.kde_width = 2;
  r.kde_height = 2;
  r.kde_max_half_width = 0.03;
  TermEstimate term;
  term.term = "storm";
  term.frequency.estimate = 0.2;
  r.terms.push_back(term);
  r.samples = 9000;
  r.elapsed_ms = 33.5;
  r.exhausted = false;
  r.cancelled = true;
  r.deadline_exceeded = true;
  r.degraded = true;
  r.coverage = 0.75;

  auto back = DecodeQueryResult(EncodeQueryResult(r));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->task, QueryTask::kAggregate);
  EXPECT_EQ(back->strategy, "RSTREE");
  EXPECT_EQ(back->decision.reason, "selective box");
  EXPECT_DOUBLE_EQ(back->ci.estimate, 4.5);
  ASSERT_EQ(back->groups.size(), 1u);
  EXPECT_EQ(back->groups[0].key, 7);
  EXPECT_EQ(back->kde_map.size(), 4u);
  ASSERT_EQ(back->terms.size(), 1u);
  EXPECT_EQ(back->terms[0].term, "storm");
  EXPECT_TRUE(back->cancelled);
  EXPECT_TRUE(back->deadline_exceeded);
  EXPECT_TRUE(back->degraded);
  EXPECT_DOUBLE_EQ(back->coverage, 0.75);
  EXPECT_EQ(back->profile, nullptr);  // profiles stay server-side
}

TEST(ProtocolTest, DecoderRejectsCorruptOversizedAndUnknownFrames) {
  std::string wire = EncodeFrame(FrameType::kPing, 1, "hello");
  Frame frame;

  // Truncated: every proper prefix asks for more bytes, never errors.
  for (size_t n = 0; n < wire.size(); ++n) {
    auto consumed = TryDecodeFrame(std::string_view(wire).substr(0, n), &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix " << n << ": " << consumed.status();
    EXPECT_EQ(*consumed, 0u) << "prefix " << n;
  }

  // A flipped payload bit fails the CRC.
  std::string corrupt = wire;
  corrupt[corrupt.size() - 6] ^= 0x40;
  EXPECT_FALSE(TryDecodeFrame(corrupt, &frame).ok());

  // An unknown type byte is rejected even with a valid length.
  std::string unknown = wire;
  unknown[4] = static_cast<char>(0xEE);
  EXPECT_FALSE(TryDecodeFrame(unknown, &frame).ok());

  // An oversized length prefix is rejected before any allocation.
  std::string oversized(8, '\0');
  uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(oversized.data(), &huge, sizeof(huge));
  EXPECT_FALSE(TryDecodeFrame(oversized, &frame).ok());
}

// --- The streamed anytime-result contract --------------------------------

TEST(ServerTest, PingMetricsAndLiveness) {
  TestServer ts;
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("storm_server_connections_total"), std::string::npos);
}

TEST(ServerTest, ProgressStreamsAndCITightens) {
  TestServer ts;
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  client.set_progress_interval_ms(1);

  std::vector<double> half_widths;
  std::vector<uint64_t> sample_counts;
  auto result = client.Execute(
      "SELECT QUANTILE(0.5, x) FROM t SAMPLES 60000 ERROR 0.000001%",
      ExecOptions().WithProgress([&](const QueryProgress& p) {
        if (p.samples > 0) {
          half_widths.push_back(p.ci.half_width);
          sample_counts.push_back(p.samples);
        }
        return true;
      }));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(half_widths.size(), 2u) << "expected a streamed PROGRESS cadence";
  EXPECT_LT(half_widths.back(), half_widths.front())
      << "the anytime CI must tighten as samples accumulate";
  for (size_t i = 1; i < sample_counts.size(); ++i) {
    EXPECT_GE(sample_counts[i], sample_counts[i - 1])
        << "PROGRESS frames must arrive in sample order";
  }
  // The median of x ~ Uniform(0, 100) is near 50.
  EXPECT_NEAR(result->ci.estimate, 50.0, 5.0);
  EXPECT_GT(result->samples, 0u);
}

TEST(ServerTest, CancelFromProgressReturnsBestSoFar) {
  TestServer ts(ServerOptions{}, kLongDocs);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  client.set_progress_interval_ms(1);

  std::atomic<int> batches{0};
  auto result = client.Execute(
      kLongQuery, ExecOptions().WithProgress([&](const QueryProgress&) {
        return ++batches < 3;  // cancel from inside the stream
      }));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->cancelled);
  EXPECT_LT(result->samples, 500'000'000u);
  EXPECT_GT(result->samples, 0u) << "cancel must return the best-so-far state";
}

TEST(ServerTest, CancelTokenPropagatesOverTheWire) {
  TestServer ts(ServerOptions{}, kLongDocs);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  CancelToken token;
  std::thread firer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  auto result = client.Execute(kLongQuery, ExecOptions().WithCancel(&token));
  firer.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->cancelled);
}

TEST(ServerTest, DeadlinePropagatesToTheEngine) {
  TestServer ts(ServerOptions{}, kLongDocs);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  Stopwatch watch;
  auto result = client.Execute(kLongQuery, ExecOptions().WithDeadlineMs(100));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_LT(watch.ElapsedMillis(), 5000.0)
      << "a 100 ms deadline must not run anywhere near the sample cap";
}

TEST(ServerTest, MalformedQueryReturnsStatusAndConnectionSurvives) {
  TestServer ts;
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  auto bad = client.Execute("SELECT AVG( FROM t");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto oversized = client.Execute("SELECT AVG(v) FROM t -- " +
                                  std::string(kMaxQueryBytes, 'x'));
  EXPECT_FALSE(oversized.ok());

  // The connection is still healthy: errors are frames, not teardowns.
  EXPECT_TRUE(client.Ping().ok());
  auto good = client.Execute("SELECT AVG(v) FROM t SAMPLES 500");
  EXPECT_TRUE(good.ok()) << good.status();
}

TEST(ServerTest, InsertBatchIsVisibleToSubsequentQueries) {
  TestServer ts(ServerOptions{}, /*docs=*/2'000);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  auto before = client.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(before.ok()) << before.status();

  std::vector<Value> docs = MakeDocs(500, FuzzSeed() + 1);
  BatchInsertResult r = client.InsertBatch("t", docs);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.ids.size(), 500u);
  EXPECT_TRUE(r.atomic);

  auto after = client.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NEAR(after->ci.estimate - before->ci.estimate, 500.0, 1.0);

  // A malformed document rejects the batch with a Status, not a crash.
  BatchInsertResult bad = client.InsertBatch("t", {Value::Double(3.0)});
  EXPECT_FALSE(bad.status.ok());
}

// --- Admission control and backpressure ----------------------------------

TEST(ServerTest, AdmissionShedsBeyondTheQueueWithUnavailable) {
  ServerOptions options;
  options.query_threads = 1;
  options.max_queued_queries = 0;
  TestServer ts(options, kLongDocs);

  RawConn conn;
  ASSERT_TRUE(conn.Connect(ts.port()).ok());

  // Pipeline three queries at a server with one slot and no queue: the
  // first occupies the slot, the rest must shed immediately.
  QueryRequest req;
  req.query = kLongQuery;
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(conn.Send(FrameType::kQuery, id, EncodeQueryRequest(req)).ok());
  }
  int shed = 0;
  for (int i = 0; i < 2; ++i) {
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_EQ(frame->type, FrameType::kError);
    auto err = DecodeWireError(frame->payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, StatusCode::kUnavailable);
    ++shed;
  }
  EXPECT_EQ(shed, 2);
  EXPECT_GE(ts.server->admission().shed_total(), 2u);

  // Cancel the survivor and drain its RESULT.
  ASSERT_TRUE(conn.Send(FrameType::kCancel, 1, {}).ok());
  auto result = conn.ReadFrame();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->type, FrameType::kResult);

  // Exact accounting at quiescence: every admit was released, nothing leaks.
  const AdmissionController& adm = ts.server->admission();
  for (int spins = 0; spins < 100 && adm.in_flight() != 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(adm.in_flight(), 0);
  EXPECT_EQ(adm.admitted_total(), adm.released_total());
}

TEST(ServerTest, DuplicateRequestIdIsRejected) {
  TestServer ts(ServerOptions{}, kLongDocs);
  RawConn conn;
  ASSERT_TRUE(conn.Connect(ts.port()).ok());

  QueryRequest req;
  req.query = kLongQuery;
  ASSERT_TRUE(conn.Send(FrameType::kQuery, 9, EncodeQueryRequest(req)).ok());
  ASSERT_TRUE(conn.Send(FrameType::kQuery, 9, EncodeQueryRequest(req)).ok());

  auto frame = conn.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, FrameType::kError);
  auto err = DecodeWireError(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, StatusCode::kInvalidArgument);

  ASSERT_TRUE(conn.Send(FrameType::kCancel, 9, {}).ok());
  auto result = conn.ReadFrame();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->type, FrameType::kResult);
}

TEST(ServerTest, SlowConsumerDegradesProgressCadenceNotResults) {
  ServerOptions options;
  options.write_buffer_soft_limit = 256;  // a frame or two
  TestServer ts(options);

  // Every write stalls 5 ms: the writer drains far slower than the sampler
  // produces PROGRESS, so the soft limit must start dropping them.
  FailpointConfig slow;
  slow.probability = 1.0;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 5.0;
  ScopedFailpoint fp("server.conn.slow", slow);

  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* dropped = reg.GetCounter("storm_server_progress_dropped_total",
                                    "PROGRESS frames dropped");
  uint64_t dropped_before = dropped->Value();

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  client.set_progress_interval_ms(1);
  int updates = 0;
  auto result = client.Execute(
      "SELECT QUANTILE(0.5, x) FROM t SAMPLES 100000000 ERROR 0.000001%",
      ExecOptions().WithProgress([&updates](const QueryProgress&) {
        ++updates;
        return true;
      }));
  // The RESULT frame is never dropped, whatever happened to PROGRESS.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->ci.estimate, 50.0, 5.0);
  EXPECT_GT(dropped->Value(), dropped_before)
      << "backpressure should have dropped at least one PROGRESS frame";
}

TEST(ServerTest, ConnectionDropFailpointCleansUpServerSide) {
  TestServer ts(ServerOptions{}, kLongDocs);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  // Drop the connection at the 3rd written frame, mid-PROGRESS-stream.
  FailpointConfig drop;
  drop.every_nth = 3;
  drop.code = StatusCode::kIOError;
  drop.max_trips = 1;
  ScopedFailpoint fp("server.conn.drop", drop);

  client.set_progress_interval_ms(1);
  auto result = client.Execute(
      kLongQuery,
      ExecOptions().WithProgress([](const QueryProgress&) { return true; }));
  EXPECT_FALSE(result.ok()) << "the stream died mid-query";

  // The server must reap the connection and settle its accounting: the
  // in-flight query is cancelled, released, and nothing leaks.
  const AdmissionController& adm = ts.server->admission();
  for (int spins = 0; spins < 500; ++spins) {
    if (adm.in_flight() == 0 && ts.server->active_connections() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(adm.in_flight(), 0);
  EXPECT_EQ(ts.server->active_connections(), 0u);
  EXPECT_EQ(adm.admitted_total(), adm.released_total());
}

TEST(ServerTest, StopMidStreamDoesNotHang) {
  auto ts = std::make_unique<TestServer>(ServerOptions{}, kLongDocs);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts->port()).ok());
  client.set_progress_interval_ms(1);

  std::thread query([&client] {
    // Either an error (connection torn down) or a cancelled best-so-far
    // result is acceptable; hanging is not (the test would time out).
    (void)client.Execute(kLongQuery, ExecOptions().WithProgress(
                                         [](const QueryProgress&) {
                                           return true;
                                         }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ts->server->Stop();
  query.join();
  EXPECT_EQ(ts->server->active_connections(), 0u);
  const AdmissionController& adm = ts->server->admission();
  EXPECT_EQ(adm.in_flight(), 0);
  EXPECT_EQ(adm.admitted_total(), adm.released_total());
}

TEST(ServerTest, HttpMetricsEndpointServesPrometheusText) {
  ServerOptions options;
  options.metrics_port = 0;
  TestServer ts(options);
  ASSERT_GE(ts.server->metrics_port(), 0);

  auto fetch = [&](const std::string& request) {
    auto sock = TcpConnect("127.0.0.1", ts.server->metrics_port());
    EXPECT_TRUE(sock.ok());
    EXPECT_TRUE(SendAll(sock->get(), request.data(), request.size()).ok());
    std::string response;
    char buf[4096];
    while (true) {
      auto got = RecvSome(sock->get(), buf, sizeof(buf), 2000);
      if (!got.ok() || *got == 0) break;
      response.append(buf, *got);
    }
    return response;
  };

  std::string ok = fetch("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("storm_server_connections_total"), std::string::npos);

  std::string missing = fetch("GET /else HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

// --- Distributed tracing and the diagnostics plane -----------------------

TEST(ProtocolTest, QueryRequestCarriesTraceAndStaysBackCompat) {
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM t SAMPLES 100";
  req.want_profile = true;
  req.trace = TraceContext::Mint(true);
  auto back = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->want_profile);
  EXPECT_TRUE(back->trace == req.trace);
  EXPECT_TRUE(back->trace.sampled);

  // A pre-trace client's payload ends after progress_interval_ms; the
  // decoder keeps defaults instead of failing.
  ByteWriter legacy;
  legacy.PutString("SELECT COUNT(*) FROM t");
  legacy.PutU32(1);
  legacy.PutDouble(0.0);
  legacy.PutU32(0);
  auto old = DecodeQueryRequest(legacy.data());
  ASSERT_TRUE(old.ok()) << old.status();
  EXPECT_FALSE(old->want_profile);
  EXPECT_FALSE(old->trace.valid());
}

TEST(ProtocolTest, QueryProfileWireRoundTripIsByteExact) {
  QueryProfile profile;
  profile.query = "SELECT AVG(v) FROM t REGION(0, 0, 50, 50) SAMPLES 4096";
  profile.table = "t";
  profile.task = "aggregate";
  profile.sampler = "RSTREE";
  profile.trace = TraceContext::Mint(true);
  AtomicIoStats io;
  profile.SetIoSource(&io);
  {
    QueryProfile::ScopedSpan outer = profile.Span("execute");
    io.logical_reads += 17;
    io.pool_hits += 12;
    io.pool_misses += 5;
    {
      QueryProfile::ScopedSpan loop = profile.Span("sample_loop");
      loop.SetSamples(4096);
      loop.SetNote("RS-tree accepted");
    }
  }
  profile.AddConvergencePoint(0.5, 1024, 4.4, 0.3, 120.5);
  profile.AddConvergencePoint(1.5, 4096, 4.5, 0.1, 118.25);
  profile.Finish();

  std::string wire = EncodeQueryProfile(profile);
  auto decoded = DecodeQueryProfile(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  // The decoded profile re-encodes to the identical bytes: every span
  // field (doubles included — the codec is bit-exact), every convergence
  // point, the metadata, and the trace identity survive.
  EXPECT_EQ(EncodeQueryProfile(*decoded), wire);
  EXPECT_TRUE(decoded->trace == profile.trace);
  ASSERT_EQ(decoded->spans().size(), profile.spans().size());
  const TraceSpan* loop = decoded->Find("sample_loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->samples, 4096u);
  EXPECT_EQ(loop->note, "RS-tree accepted");
  EXPECT_EQ(decoded->Find("execute")->io.logical_reads, 17u);
  ASSERT_EQ(decoded->convergence().size(), 2u);
  EXPECT_DOUBLE_EQ(decoded->convergence()[1].cardinality_estimate, 118.25);

  // Trailing garbage is rejected, not ignored.
  EXPECT_FALSE(DecodeQueryProfile(wire + "x").ok());
}

TEST(ServerTest, JoinedProfileCarriesClientTraceAcrossTheWire) {
  TestServer ts;
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  // The client mints the trace; passing it via ExecOptions pins the id so
  // the test can grep for it.
  TraceContext minted = TraceContext::Mint(true);
  auto result = client.Execute("SELECT AVG(v) FROM t SAMPLES 5000",
                               ExecOptions().WithTrace(minted));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->profile, nullptr);
  const QueryProfile& joined = *result->profile;

  // One trace spans both processes.
  EXPECT_EQ(joined.trace.trace_id_hex(), minted.trace_id_hex());
  bool saw_client_span = false;
  bool saw_server_span = false;
  for (const TraceSpan& s : joined.spans()) {
    if (s.site.empty()) saw_client_span = true;
    if (s.site == "server") saw_server_span = true;
  }
  EXPECT_TRUE(saw_client_span);
  EXPECT_TRUE(saw_server_span);
  // The server's engine-side spans made the trip.
  ASSERT_NE(joined.Find("sample_loop"), nullptr);
  EXPECT_EQ(joined.Find("sample_loop")->site, "server");
  ASSERT_NE(joined.Find("rpc_await"), nullptr);
  EXPECT_GT(joined.total_samples(), 0u);

  // The exported Chrome trace carries the client-minted id on spans from
  // both processes (pid 1 = client, pid 2 = server).
  std::string chrome = ChromeTraceJson(joined);
  const std::string id = minted.trace_id_hex();
  EXPECT_NE(chrome.find(id), std::string::npos);
  size_t client_pid = chrome.find("\"pid\":1");
  size_t server_pid = chrome.find("\"pid\":2");
  EXPECT_NE(client_pid, std::string::npos);
  EXPECT_NE(server_pid, std::string::npos);
  // Each event object carrying a pid also carries the trace id in args.
  for (size_t pos : {client_pid, server_pid}) {
    size_t end = chrome.find('}', chrome.find("\"args\"", pos));
    ASSERT_NE(end, std::string::npos);
    EXPECT_NE(chrome.substr(pos, end - pos).find(id), std::string::npos);
  }

  // Sampled trace: the client-side sink retained the joined profile.
  bool in_sink = false;
  for (const auto& p : TraceSink::Default().Recent()) {
    if (p->trace.trace_id_hex() == id) in_sink = true;
  }
  EXPECT_TRUE(in_sink);
}

TEST(ServerTest, UnsampledQueryStillJoinsProfilesWhenRequested) {
  TestServer ts;
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  client.set_trace_sample_rate(0.0);
  auto result = client.Execute("SELECT AVG(v) FROM t SAMPLES 2000");
  ASSERT_TRUE(result.ok()) << result.status();
  // want_profile rides the explicit request path, independent of sampling.
  ASSERT_NE(result->profile, nullptr);
  EXPECT_TRUE(result->profile->trace.valid());
  EXPECT_FALSE(result->profile->trace.sampled);
  EXPECT_NE(result->profile->Find("sample_loop"), nullptr);
}

TEST(ServerTest, HealthzAndStatuszReflectServerState) {
  ServerOptions options;
  options.slow_query_threshold_ms = 0.0001;  // everything is "slow"
  TestServer ts(options);
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  std::string healthz = ts.server->HealthzJson();
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"uptime_s\":"), std::string::npos);

  TraceContext minted = TraceContext::Mint(true);
  auto result = client.Execute("SELECT AVG(v) FROM t SAMPLES 5000",
                               ExecOptions().WithTrace(minted));
  ASSERT_TRUE(result.ok()) << result.status();

  std::string statusz = ts.server->StatuszJson();
  EXPECT_NE(statusz.find("\"build\":"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("\"admission\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"connections\":"), std::string::npos);
  // The finished query crossed the (absurdly low) slow threshold, so the
  // slow-query ring has it, trace id included.
  EXPECT_NE(statusz.find("\"slow_queries\":"), std::string::npos);
  EXPECT_NE(statusz.find(minted.trace_id_hex()), std::string::npos);
}

TEST(ServerTest, DiagnosticsEndpointsServeConcurrentlyUnderLoad) {
  ServerOptions options;
  options.metrics_port = 0;
  options.trace_sample_rate = 1.0;  // every clientless query hits /tracez
  auto ts = std::make_unique<TestServer>(options, kLongDocs);
  ASSERT_GE(ts->server->metrics_port(), 0);
  const int http_port = ts->server->metrics_port();

  auto fetch = [http_port](const std::string& path) {
    std::string response;
    auto sock = TcpConnect("127.0.0.1", http_port);
    if (!sock.ok()) return response;
    std::string request = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    if (!SendAll(sock->get(), request.data(), request.size()).ok()) {
      return response;
    }
    char buf[4096];
    while (true) {
      auto got = RecvSome(sock->get(), buf, sizeof(buf), 2000);
      if (!got.ok() || *got == 0) break;
      response.append(buf, *got);
    }
    return response;
  };

  // Query traffic streams while three scraper threads hammer every
  // endpoint — the TSan target for the diagnostics plane.
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int c = 0; c < 2; ++c) {
    load.emplace_back([&ts, &stop] {
      RemoteClient client;
      if (!client.Connect("127.0.0.1", ts->port()).ok()) return;
      client.set_progress_interval_ms(1);
      while (!stop.load(std::memory_order_acquire)) {
        (void)client.Execute("SELECT AVG(v) FROM t SAMPLES 20000");
      }
    });
  }
  std::atomic<int> bad_responses{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&fetch, &bad_responses] {
      const char* paths[] = {"/metrics", "/healthz", "/statusz", "/tracez",
                             "/flightz"};
      for (int round = 0; round < 8; ++round) {
        for (const char* path : paths) {
          std::string response = fetch(path);
          if (response.find("200 OK") == std::string::npos) ++bad_responses;
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : load) t.join();
  EXPECT_EQ(bad_responses.load(), 0);

  // Spot-check body shapes once the load is off.
  EXPECT_NE(fetch("/metrics").find("# TYPE"), std::string::npos);
  EXPECT_NE(fetch("/healthz").find("\"status\""), std::string::npos);
  EXPECT_NE(fetch("/statusz").find("\"admission\""), std::string::npos);
  std::string tracez = fetch("/tracez");
  EXPECT_NE(tracez.find("\r\n\r\n["), std::string::npos) << tracez;
  std::string flightz = fetch("/flightz");
  EXPECT_NE(flightz.find("\r\n\r\n["), std::string::npos);
  EXPECT_NE(flightz.find("query_admit"), std::string::npos);
  ts->server->Stop();
}

// --- Untrusted-input hardening -------------------------------------------

TEST(HardeningTest, ParserRejectsHugeNumericLiteralsWithoutUB) {
  for (const char* query : {
           "SELECT KDE(1e300, 5) FROM t",
           "SELECT KDE(5, -1e300) FROM t",
           "SELECT TOPTERMS(1e300) FROM t",
           "SELECT TOPTERMS(0) FROM t",
           "SELECT CLUSTER(1e300) FROM t",
           "SELECT CLUSTER(-3) FROM t",
           "SELECT TRAJECTORY(id, 1e300) FROM t",
           "SELECT TRAJECTORY(id, -1e300) FROM t",
           "SELECT AVG(v) FROM t SAMPLES 1e300",
           "SELECT AVG(v) FROM t SAMPLES 0",
           "SELECT AVG(v) FROM t GROUP BY CELL(1e300, 2)",
           "SELECT AVG(v) FROM t GROUP BY CELL(2, 1e300)",
       }) {
    auto ast = ParseQuery(query);
    EXPECT_FALSE(ast.ok()) << query;
    EXPECT_EQ(ast.status().code(), StatusCode::kInvalidArgument) << query;
  }
}

TEST(HardeningTest, LexerCapsQueryLength) {
  std::string huge(kMaxQueryBytes + 1, 'a');
  auto tokens = TokenizeQuery(huge);
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(HardeningTest, FuzzLexerAndParserNeverCrash) {
  Rng rng(FuzzSeed());
  const std::string alphabet =
      "SELECT AVG(v) FROM t REGION(1,2,3,4) SAMPLES 100 ERROR 5% "
      "'\\\"(),*%.eE+-0123456789\x01\xff\x80 \t\n";
  for (int iter = 0; iter < 2'000; ++iter) {
    std::string input;
    const int len = static_cast<int>(rng.UniformInt(0, 160));
    for (int i = 0; i < len; ++i) {
      input.push_back(
          alphabet[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(alphabet.size()) - 1))]);
    }
    // Must return a Status (ok or error) — never crash, hang, or UB.
    (void)ParseQuery(input);
  }
  // Mutations of a valid query: single-byte flips over every position.
  const std::string valid =
      "SELECT QUANTILE(0.9, v) FROM t REGION(-10, -10, 10, 10) "
      "CONFIDENCE 95% SAMPLES 1000 USING RSTREE";
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = valid;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(valid.size()) - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    (void)ParseQuery(mutated);
  }
}

TEST(HardeningTest, FuzzFrameDecoderNeverCrash) {
  Rng rng(FuzzSeed() + 0xF2A);
  Frame frame;
  // Pure garbage.
  for (int iter = 0; iter < 2'000; ++iter) {
    std::string bytes;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    auto consumed = TryDecodeFrame(bytes, &frame);
    if (consumed.ok()) {
      EXPECT_LE(*consumed, bytes.size());
    }
  }
  // Bit flips over valid frames: decode must yield a frame or a Status.
  QueryRequest req;
  req.query = "SELECT AVG(v) FROM t";
  std::string valid = EncodeFrame(FrameType::kQuery, 77, EncodeQueryRequest(req));
  for (int iter = 0; iter < 1'000; ++iter) {
    std::string mutated = valid;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(valid.size()) - 1));
    mutated[pos] ^= static_cast<char>(1 << rng.UniformInt(0, 7));
    auto consumed = TryDecodeFrame(mutated, &frame);
    if (consumed.ok() && *consumed > 0) {
      // Survived the CRC (flip in the length prefix can do that): the
      // payload decoders must still bound-check everything.
      (void)DecodeQueryRequest(frame.payload);
    }
  }
  // Every payload decoder over garbage bytes.
  for (int iter = 0; iter < 1'000; ++iter) {
    std::string bytes;
    const int len = static_cast<int>(rng.UniformInt(0, 96));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    (void)DecodeQueryRequest(bytes);
    (void)DecodeInsertBatchRequest(bytes);
    (void)DecodeProgressUpdate(bytes);
    (void)DecodeWireError(bytes);
    (void)DecodeInsertBatchReply(bytes);
    (void)DecodeQueryResult(bytes);
  }
}

TEST(ServerTest, GarbageBytesOnTheWireGetErrorThenDisconnect) {
  TestServer ts;
  RawConn conn;
  ASSERT_TRUE(conn.Connect(ts.port()).ok());

  // A frame with a corrupted CRC: the server answers with ERROR (id 0,
  // best effort) and drops the connection — the stream cannot be resynced.
  std::string wire = EncodeFrame(FrameType::kPing, 5, "boom");
  wire[wire.size() - 1] ^= 0x01;
  ASSERT_TRUE(conn.SendRaw(wire).ok());

  auto frame = conn.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kError);
  auto err = DecodeWireError(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, StatusCode::kCorruption);

  // The server hangs up after the error frame.
  auto next = conn.ReadFrame();
  EXPECT_FALSE(next.ok());
}

}  // namespace
}  // namespace storm
