// Tests for the storage engine: the JSON Value document model (parser,
// serializer, accessors) and the paged RecordStore.

#include <gtest/gtest.h>

#include <cmath>

#include "storm/storage/record_store.h"
#include "storm/storage/value.h"
#include "storm/util/rng.h"

namespace storm {
namespace {

// ---------------------------------------------------------------------------
// Value basics
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);  // numeric widening
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Int(1).is_number());
  EXPECT_TRUE(Value::Double(1).is_number());
  EXPECT_FALSE(Value::String("1").is_number());
}

TEST(ValueTest, ObjectSetFindAndPath) {
  Value doc = Value::MakeObject();
  doc.Set("name", Value::String("storm"));
  Value user = Value::MakeObject();
  user.Set("lat", Value::Double(40.76));
  user.Set("lon", Value::Double(-111.89));
  doc.Set("user", std::move(user));
  ASSERT_NE(doc.Find("name"), nullptr);
  EXPECT_EQ(doc.Find("name")->AsString(), "storm");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  ASSERT_NE(doc.FindPath("user.lat"), nullptr);
  EXPECT_DOUBLE_EQ(doc.FindPath("user.lat")->AsDouble(), 40.76);
  EXPECT_EQ(doc.FindPath("user.zip"), nullptr);
  EXPECT_EQ(doc.FindPath("user.lat.deeper"), nullptr);
}

TEST(ValueTest, ArrayAppend) {
  Value arr = Value::MakeArray();
  arr.Append(Value::Int(1));
  arr.Append(Value::String("two"));
  ASSERT_EQ(arr.AsArray().size(), 2u);
  EXPECT_EQ(arr.AsArray()[1].AsString(), "two");
}

TEST(ValueTest, SetOnNullCreatesObject) {
  Value v;
  v.Set("k", Value::Int(1));
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("k")->AsInt(), 1);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.0));  // type-sensitive
  Value a = Value::MakeObject();
  a.Set("x", Value::Int(1));
  Value b = Value::MakeObject();
  b.Set("x", Value::Int(1));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// JSON serialization / parsing
// ---------------------------------------------------------------------------

struct JsonCase {
  const char* name;
  const char* json;
};

class JsonRoundTripTest : public ::testing::TestWithParam<JsonCase> {};

TEST_P(JsonRoundTripTest, ParseSerializeParseIsStable) {
  Result<Value> first = Value::Parse(GetParam().json);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string serialized = first->ToJson();
  Result<Value> second = Value::Parse(serialized);
  ASSERT_TRUE(second.ok()) << second.status() << " for " << serialized;
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(serialized, second->ToJson());
}

INSTANTIATE_TEST_SUITE_P(
    Docs, JsonRoundTripTest,
    ::testing::Values(
        JsonCase{"Null", "null"}, JsonCase{"True", "true"},
        JsonCase{"False", "false"}, JsonCase{"Zero", "0"},
        JsonCase{"NegInt", "-42"}, JsonCase{"BigInt", "9007199254740993"},
        JsonCase{"Double", "3.14159"}, JsonCase{"Exp", "1.5e-8"},
        JsonCase{"NegExp", "-2E+3"}, JsonCase{"EmptyString", "\"\""},
        JsonCase{"String", "\"hello world\""},
        JsonCase{"Escapes", "\"a\\\"b\\\\c\\nd\\te\""},
        JsonCase{"Unicode", "\"caf\\u00e9 \\u2603\""},
        JsonCase{"EmptyArray", "[]"}, JsonCase{"EmptyObject", "{}"},
        JsonCase{"Array", "[1,2.5,\"x\",null,true]"},
        JsonCase{"Nested", "{\"a\":{\"b\":[{\"c\":1}]},\"d\":[[1],[2]]}"},
        JsonCase{"Tweet",
                 "{\"id\":12,\"user\":7,\"lon\":-84.39,\"lat\":33.75,"
                 "\"timestamp\":1392076800,\"text\":\"snow day\"}"}),
    [](const ::testing::TestParamInfo<JsonCase>& info) {
      return info.param.name;
    });

struct BadJsonCase {
  const char* name;
  const char* json;
};

class JsonErrorTest : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(JsonErrorTest, RejectsMalformedInput) {
  Result<Value> r = Value::Parse(GetParam().json);
  EXPECT_FALSE(r.ok()) << "accepted: " << GetParam().json;
}

INSTANTIATE_TEST_SUITE_P(
    Bad, JsonErrorTest,
    ::testing::Values(BadJsonCase{"Empty", ""}, BadJsonCase{"Garbage", "@!#"},
                      BadJsonCase{"Trailing", "1 2"},
                      BadJsonCase{"UnclosedObject", "{\"a\":1"},
                      BadJsonCase{"UnclosedArray", "[1,2"},
                      BadJsonCase{"UnclosedString", "\"abc"},
                      BadJsonCase{"MissingColon", "{\"a\" 1}"},
                      BadJsonCase{"BareKey", "{a:1}"},
                      BadJsonCase{"TrailingComma", "[1,2,]"},
                      BadJsonCase{"BadEscape", "\"\\q\""},
                      BadJsonCase{"BadUnicode", "\"\\u12g4\""},
                      BadJsonCase{"BadLiteral", "tru"},
                      BadJsonCase{"BadNumber", "1.2.3"}),
    [](const ::testing::TestParamInfo<BadJsonCase>& info) {
      return info.param.name;
    });

TEST(JsonTest, DeepNestingIsBounded) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Value::Parse(deep).ok());
}

TEST(JsonTest, IntegerOverflowFallsBackToDouble) {
  Result<Value> v = Value::Parse("99999999999999999999999999");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
}

TEST(JsonTest, NanSerializesAsNull) {
  Value v = Value::Double(std::nan(""));
  EXPECT_EQ(v.ToJson(), "null");
}

TEST(JsonTest, ControlCharactersEscaped) {
  std::string raw = "a";
  raw.push_back('\x01');
  raw += "b";
  Value v = Value::String(raw);
  EXPECT_EQ(v.ToJson(), "\"a\\u0001b\"");
  Result<Value> back = Value::Parse(v.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), raw);
}

// Property test: random documents survive serialize/parse round trips.
namespace {

Value RandomValue(Rng* rng, int depth) {
  int kind = static_cast<int>(rng->Uniform(depth >= 3 ? 5 : 7));
  switch (kind) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->Bernoulli(0.5));
    case 2:
      return Value::Int(rng->UniformInt(-1'000'000'000, 1'000'000'000));
    case 3: {
      double d = rng->Normal(0, 1e6);
      return Value::Double(d);
    }
    case 4: {
      std::string s;
      uint64_t len = rng->Uniform(20);
      for (uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->UniformInt(32, 126)));
      }
      return Value::String(std::move(s));
    }
    case 5: {
      Value arr = Value::MakeArray();
      uint64_t len = rng->Uniform(5);
      for (uint64_t i = 0; i < len; ++i) {
        arr.Append(RandomValue(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Value obj = Value::MakeObject();
      uint64_t len = rng->Uniform(5);
      for (uint64_t i = 0; i < len; ++i) {
        obj.Set("k" + std::to_string(i), RandomValue(rng, depth + 1));
      }
      return obj;
    }
  }
}

}  // namespace

TEST(JsonPropertyTest, RandomDocumentsRoundTrip) {
  Rng rng(808);
  for (int i = 0; i < 300; ++i) {
    Value doc = RandomValue(&rng, 0);
    std::string json = doc.ToJson();
    Result<Value> back = Value::Parse(json);
    ASSERT_TRUE(back.ok()) << json << ": " << back.status();
    ASSERT_EQ(doc, *back) << json;
    // Second trip is byte-stable (canonical form).
    ASSERT_EQ(back->ToJson(), json);
  }
}

// ---------------------------------------------------------------------------
// RecordStore
// ---------------------------------------------------------------------------

Value Doc(int64_t id, const std::string& text) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("text", Value::String(text));
  return v;
}

TEST(RecordStoreTest, AppendGetRoundTrip) {
  RecordStore store;
  Result<RecordId> id = store.Append(Doc(1, "hello"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  Result<Value> doc = store.Get(*id);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("text")->AsString(), "hello");
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecordStoreTest, IdsAreDense) {
  RecordStore store;
  for (int i = 0; i < 100; ++i) {
    Result<RecordId> id = store.Append(Doc(i, "x"));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<RecordId>(i));
  }
  EXPECT_EQ(store.next_id(), 100u);
}

TEST(RecordStoreTest, SpillsAcrossPages) {
  RecordStoreOptions options;
  options.page_size = 256;
  RecordStore store(options);
  std::string big(100, 'x');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Append(Doc(i, big)).ok());
  }
  EXPECT_GT(store.io_stats().pages_allocated, 10u);
  for (RecordId i = 0; i < 50; ++i) {
    Result<Value> doc = store.Get(i);
    ASSERT_TRUE(doc.ok()) << i;
    EXPECT_EQ(doc->Find("id")->AsInt(), static_cast<int64_t>(i));
  }
}

TEST(RecordStoreTest, OversizedDocumentRejected) {
  RecordStoreOptions options;
  options.page_size = 128;
  RecordStore store(options);
  EXPECT_TRUE(store.Append(Doc(1, std::string(500, 'y'))).status()
                  .IsInvalidArgument());
  EXPECT_EQ(store.size(), 0u);
}

TEST(RecordStoreTest, DeleteTombstones) {
  RecordStore store;
  ASSERT_TRUE(store.Append(Doc(0, "a")).ok());
  ASSERT_TRUE(store.Append(Doc(1, "b")).ok());
  ASSERT_TRUE(store.Delete(0).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Exists(0));
  EXPECT_TRUE(store.Exists(1));
  EXPECT_TRUE(store.Get(0).status().IsNotFound());
  EXPECT_TRUE(store.Delete(0).IsNotFound());   // double delete
  EXPECT_TRUE(store.Delete(99).IsNotFound());  // never existed
}

TEST(RecordStoreTest, ScanSkipsTombstonesAndStops) {
  RecordStore store;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.Append(Doc(i, "d")).ok());
  ASSERT_TRUE(store.Delete(3).ok());
  ASSERT_TRUE(store.Delete(7).ok());
  std::vector<RecordId> seen;
  ASSERT_TRUE(store.Scan([&](RecordId id, const Value&) {
                     seen.push_back(id);
                     return true;
                   }).ok());
  EXPECT_EQ(seen, (std::vector<RecordId>{0, 1, 2, 4, 5, 6, 8, 9}));
  // Early stop.
  seen.clear();
  ASSERT_TRUE(store.Scan([&](RecordId id, const Value&) {
                     seen.push_back(id);
                     return seen.size() < 3;
                   }).ok());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RecordStoreTest, GoesThroughBufferPool) {
  RecordStoreOptions options;
  options.page_size = 512;
  options.pool_pages = 2;  // tiny pool to force eviction traffic
  RecordStore store(options);
  std::string payload(200, 'z');
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(store.Append(Doc(i, payload)).ok());
  IoStats before = store.io_stats();
  // Read in a pattern that cannot fit in 2 frames.
  for (int round = 0; round < 3; ++round) {
    for (RecordId i = 0; i < 40; i += 7) {
      ASSERT_TRUE(store.Get(i).ok());
    }
  }
  IoStats delta = store.io_stats() - before;
  EXPECT_GT(delta.pool_misses, 0u);
  EXPECT_GT(delta.evictions, 0u);
}

TEST(RecordStoreTest, ScanPropagatesCorruptionNamingTheRecord) {
  RecordStoreOptions options;
  options.page_size = 256;
  options.pool_pages = 2;
  RecordStore store(options);
  std::string payload(90, 'c');
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(store.Append(Doc(i, payload)).ok());

  // Push every frame to disk, then damage a byte of page 0 behind the
  // pool's back (simulated bit rot under record 0).
  ASSERT_TRUE(store.pool()->Flush().ok());
  ASSERT_TRUE(store.pool()->Evict(0).ok());
  ASSERT_TRUE(store.disk()->CorruptPageForTesting(0, 8).ok());

  Status st = store.Scan([](RecordId, const Value&) { return true; });
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("record 0"), std::string::npos)
      << "scan failure must name the failing record: " << st.ToString();
  // Get on the damaged record reports the same corruption; undamaged pages
  // are still readable directly.
  EXPECT_TRUE(store.Get(0).status().IsCorruption());
  EXPECT_TRUE(store.Get(7).ok());
}

TEST(RecordStoreTest, StateRoundTripsThroughExportRestore) {
  RecordStoreOptions options;
  options.page_size = 256;
  RecordStore original(options);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(original.Append(Doc(i, "s")).ok());
  ASSERT_TRUE(original.Delete(5).ok());
  ASSERT_TRUE(original.pool()->Flush().ok());
  RecordStore::State state = original.ExportState();

  // A second store over the same disk adopts the directory wholesale.
  RecordStoreOptions reopen;
  reopen.page_size = 256;
  reopen.disk = original.shared_disk();
  RecordStore restored(reopen);
  ASSERT_TRUE(restored.RestoreState(std::move(state)).ok());
  EXPECT_EQ(restored.size(), 11u);
  EXPECT_EQ(restored.next_id(), 12u);
  EXPECT_FALSE(restored.Exists(5));
  for (RecordId id = 0; id < 12; ++id) {
    if (id == 5) continue;
    Result<Value> doc = restored.Get(id);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(doc->Find("id")->AsInt(), static_cast<int64_t>(id));
  }
  // The cursor came along too: new appends continue the dense id sequence.
  Result<RecordId> next = restored.Append(Doc(12, "s"));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 12u);

  // A state naming pages the disk does not hold is rejected.
  RecordStore::State bogus;
  bogus.directory.push_back({/*page=*/9999, 0, 4, /*live=*/true});
  bogus.live_records = 1;
  RecordStore fresh(options);
  EXPECT_TRUE(fresh.RestoreState(std::move(bogus)).IsCorruption());
}

TEST(RecordStoreTest, UnicodeDocumentsSurviveStorage) {
  RecordStore store;
  Value doc = Value::MakeObject();
  doc.Set("text", Value::String("snöstorm ❄ Atlanta"));
  Result<RecordId> id = store.Append(doc);
  ASSERT_TRUE(id.ok());
  Result<Value> back = store.Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Find("text")->AsString(), "snöstorm ❄ Atlanta");
}

}  // namespace
}  // namespace storm
