// End-to-end integration tests replaying the paper's demo scenarios:
// the §1 interactive-exploration story (query, watch the CI tighten, change
// the query mid-flight), the data-import component, the updates component,
// and cross-index agreement between strategies on the same question.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "storm/data/electricity_gen.h"
#include "storm/data/tweet_gen.h"
#include "storm/data/weather_gen.h"
#include "storm/query/session.h"

namespace storm {
namespace {

TEST(IntegrationTest, InteractiveExplorationStory) {
  // The §1 NYC electricity example: start a query, get an online estimate
  // with a CI, decide we're happy, cancel, and issue a different query —
  // without waiting for the first to finish.
  ElectricityOptions options;
  options.num_units = 400;
  options.readings_per_unit = 60;
  ElectricityGenerator gen(options);
  auto readings = gen.Generate();
  std::vector<Value> docs;
  for (const auto& r : readings) docs.push_back(ElectricityGenerator::ToDocument(r));
  Session session;
  ASSERT_TRUE(session.CreateTable("elec", docs).ok());

  // Query 1: area A, Jan 5 - Mar 5. Stop as soon as relative error < 2%.
  bool cancelled_early = false;
  auto q1 = session.Execute(
      "SELECT AVG(usage) FROM elec REGION(-74.02, 40.70, -73.93, 40.80) "
      "TIME('2014-01-05', '2014-03-05') USING RSTREE",
      ExecOptions().WithProgress([&](const QueryProgress& p) {
        if (p.samples >= 30 && p.ci.RelativeError() < 0.02) {
          cancelled_early = true;
          return false;  // user satisfied; moves on
        }
        return true;
      }));
  ASSERT_TRUE(q1.ok()) << q1.status();
  EXPECT_TRUE(cancelled_early);
  EXPECT_TRUE(q1->cancelled);
  EXPECT_GT(q1->ci.estimate, 0.0);

  // Query 2 immediately after: different area and time range.
  auto q2 = session.Execute(
      "SELECT AVG(usage) FROM elec REGION(-74.05, 40.55, -73.70, 40.92) "
      "TIME('2014-01-15', '2014-03-12') ERROR 1.5% CONFIDENCE 95%");
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_LE(q2->ci.RelativeError(), 0.016);

  // Sanity: both estimates are in the plausible usage band.
  EXPECT_GT(q1->ci.estimate, 500.0);
  EXPECT_LT(q1->ci.estimate, 1500.0);
  EXPECT_GT(q2->ci.estimate, 500.0);
  EXPECT_LT(q2->ci.estimate, 1500.0);
}

TEST(IntegrationTest, StrategiesAgreeOnTheSameQuestion) {
  WeatherOptions options;
  options.num_stations = 150;
  options.readings_per_station = 48;
  WeatherGenerator gen(options);
  auto stations = gen.GenerateStations();
  auto readings = gen.GenerateReadings(stations);
  std::vector<Value> docs;
  for (const auto& r : readings) docs.push_back(WeatherGenerator::ToDocument(r));
  Session session;
  ASSERT_TRUE(session.CreateTable("weather", docs).ok());

  double exact = 0.0;
  std::vector<double> estimates;
  for (const char* method :
       {"QUERYFIRST", "SAMPLEFIRST", "RANDOMPATH", "LSTREE", "RSTREE"}) {
    auto r = session.Execute(
        std::string("SELECT AVG(temperature) FROM weather "
                    "REGION(-110, 30, -80, 45) TIME('2014-02-01', "
                    "'2014-03-01') SAMPLES 4000 USING ") +
        method);
    ASSERT_TRUE(r.ok()) << method << ": " << r.status();
    estimates.push_back(r->ci.estimate);
    if (std::string(method) == "QUERYFIRST") exact = r->ci.estimate;
  }
  for (size_t i = 0; i < estimates.size(); ++i) {
    EXPECT_NEAR(estimates[i], exact, 1.5) << "strategy " << i;
  }
}

TEST(IntegrationTest, FileImportPipeline) {
  // Write a CSV and a JSONL file, import both through Session::ImportFile,
  // and query them — the demo's "data import" component.
  std::string csv_path = ::testing::TempDir() + "/storm_import_test.csv";
  {
    std::ofstream out(csv_path);
    out << "lat,lon,timestamp,reading\n";
    for (int i = 0; i < 200; ++i) {
      out << (40.0 + i * 0.001) << "," << (-74.0 + i * 0.001)
          << ",2014-01-" << (1 + i % 28 < 10 ? "0" : "") << (1 + i % 28)
          << "," << (100 + i) << "\n";
    }
  }
  Session session;
  ASSERT_TRUE(session.ImportFile("csvdata", csv_path).ok());
  auto count = session.Execute("SELECT COUNT(*) FROM csvdata USING QUERYFIRST");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_DOUBLE_EQ(count->ci.estimate, 200.0);

  std::string jsonl_path = ::testing::TempDir() + "/storm_import_test.jsonl";
  {
    std::ofstream out(jsonl_path);
    for (int i = 0; i < 100; ++i) {
      out << "{\"lat\":" << (33.0 + i * 0.01) << ",\"lon\":" << (-84.0)
          << ",\"v\":" << i << "}\n";
    }
  }
  ASSERT_TRUE(session.ImportFile("jsondata", jsonl_path).ok());
  auto avg = session.Execute(
      "SELECT AVG(v) FROM jsondata USING QUERYFIRST SAMPLES 100000");
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(avg->ci.exact);
  EXPECT_DOUBLE_EQ(avg->ci.estimate, 49.5);

  // Unknown extension is a clean error.
  EXPECT_TRUE(session.ImportFile("x", "/tmp/file.xyz").IsNotSupported());
  // Missing file is a clean error.
  EXPECT_TRUE(session.ImportFile("y", "/nonexistent/z.csv").IsIOError());
  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());
}

TEST(IntegrationTest, LiveUpdatesNarrowTimeWindow) {
  // The demo's "updates" component: append fresh tweets, then query a time
  // range that narrows to the most recent history and see only them.
  TweetOptions options;
  options.num_tweets = 3000;
  options.num_users = 40;
  options.t_min = 1000000.0;
  options.t_max = 2000000.0;
  options.enable_event = false;
  TweetGenerator gen(options);
  auto tweets = gen.Generate();
  std::vector<Value> docs;
  for (const auto& t : tweets) docs.push_back(TweetGenerator::ToDocument(t));
  Session session;
  ASSERT_TRUE(session.CreateTable("tweets", docs).ok());

  auto updater = session.Updates("tweets");
  ASSERT_TRUE(updater.ok());
  Rng rng(701);
  for (int i = 0; i < 250; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("id", Value::Int(100000 + i));
    doc.Set("user", Value::Int(rng.UniformInt(0, 39)));
    doc.Set("lon", Value::Double(rng.UniformDouble(-100, -80)));
    doc.Set("lat", Value::Double(rng.UniformDouble(30, 45)));
    doc.Set("timestamp", Value::Double(3000000.0 + i));  // strictly newer
    doc.Set("text", Value::String("fresh tweet"));
    ASSERT_TRUE((*updater)->Insert(doc).ok());
  }
  auto recent = session.Execute(
      "SELECT COUNT(*) FROM tweets TIME(2999999, 4000000) USING QUERYFIRST");
  ASSERT_TRUE(recent.ok());
  EXPECT_DOUBLE_EQ(recent->ci.estimate, 250.0);
  auto all = session.Execute("SELECT COUNT(*) FROM tweets USING QUERYFIRST");
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(all->ci.estimate, 3250.0);
}

TEST(IntegrationTest, CustomizedAnalyticsViaDirectSamplerAccess) {
  // The demo's "customized analytics": build a bespoke online estimator
  // against the sampler API directly (here: fraction of tweets in the
  // top-right quadrant, a custom proportion estimator).
  TweetOptions options;
  options.num_tweets = 5000;
  options.enable_event = false;
  TweetGenerator gen(options);
  auto tweets = gen.Generate();
  auto entries = TweetGenerator::ToEntries(tweets);
  RsTree<3> rs(entries, {}, 703);

  uint64_t truth_hits = 0;
  for (const auto& t : tweets) {
    if (t.lon > -95.0 && t.lat > 37.0) ++truth_hits;
  }
  double truth = static_cast<double>(truth_hits) / tweets.size();

  auto sampler = rs.NewSampler(Rng(705));
  ASSERT_TRUE(
      sampler->Begin(Rect3::Everything(), SamplingMode::kWithoutReplacement).ok());
  uint64_t k = 0, hits = 0;
  for (; k < 2000; ++k) {
    auto e = sampler->Next();
    ASSERT_TRUE(e.has_value());
    if (e->point[0] > -95.0 && e->point[1] > 37.0) ++hits;
  }
  double estimate = static_cast<double>(hits) / static_cast<double>(k);
  double se = std::sqrt(estimate * (1 - estimate) / static_cast<double>(k));
  EXPECT_NEAR(estimate, truth, 4 * se + 0.01);
}

TEST(IntegrationTest, ConcurrentQueriesOnOneTable) {
  // Interactive analytics means several queries in flight over the same
  // index. Read-only concurrent sampling is supported (RS-tree buffers are
  // lock-guarded, touch counters atomic) — run 4 threads of mixed queries
  // and check every result independently.
  Rng rng(721);
  std::vector<Value> docs;
  for (int i = 0; i < 20000; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("y", Value::Double(rng.UniformDouble(0, 100)));
    doc.Set("v", Value::Double(static_cast<double>(i % 100)));
    docs.push_back(doc);
  }
  Session session;
  ASSERT_TRUE(session.CreateTable("t", docs).ok());
  // Materialize the column before the threads race (NumericColumn's lazy
  // build is the one non-const path).
  auto warmup = session.Execute("SELECT AVG(v) FROM t SAMPLES 10");
  ASSERT_TRUE(warmup.ok());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Status> status(kThreads, Status::OK());
  std::vector<double> estimates(kThreads, 0.0);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      std::string query =
          "SELECT AVG(v) FROM t REGION(" + std::to_string(10 + th * 5) +
          ", 10, 90, 90) SAMPLES 3000 USING RSTREE";
      auto result = session.Execute(query);
      if (!result.ok()) {
        status[static_cast<size_t>(th)] = result.status();
        return;
      }
      estimates[static_cast<size_t>(th)] = result->ci.estimate;
    });
  }
  for (auto& t : threads) t.join();
  for (int th = 0; th < kThreads; ++th) {
    ASSERT_TRUE(status[static_cast<size_t>(th)].ok()) << th;
    // v is uniform over {0..99} everywhere: every estimate near 49.5.
    EXPECT_NEAR(estimates[static_cast<size_t>(th)], 49.5, 4.0) << th;
  }
}

TEST(IntegrationTest, SaveAndReloadTableRoundTrips) {
  // Save a table (with updates applied), reload it in a fresh session, and
  // verify query results survive: the snapshot format is JSON-lines, so
  // indexes rebuild on load.
  Rng rng(711);
  std::vector<Value> docs;
  for (int i = 0; i < 800; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("lon", Value::Double(rng.UniformDouble(-10, 10)));
    doc.Set("lat", Value::Double(rng.UniformDouble(-10, 10)));
    doc.Set("v", Value::Double(static_cast<double>(i % 7)));
    docs.push_back(doc);
  }
  Session original;
  ASSERT_TRUE(original.CreateTable("t", docs).ok());
  auto updater = original.Updates("t");
  ASSERT_TRUE(updater.ok());
  ASSERT_TRUE((*updater)->Delete(5).ok());
  ASSERT_TRUE((*updater)->Delete(6).ok());
  std::string path = ::testing::TempDir() + "/storm_snapshot_test.jsonl";
  ASSERT_TRUE(original.SaveTable("t", path).ok());

  Session restored;
  ASSERT_TRUE(restored.ImportFile("t", path).ok());
  auto before = original.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  auto after = restored.Execute("SELECT COUNT(*) FROM t USING QUERYFIRST");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(before->ci.estimate, 798.0);
  EXPECT_DOUBLE_EQ(after->ci.estimate, before->ci.estimate);
  auto avg_before = original.Execute(
      "SELECT AVG(v) FROM t REGION(-5,-5,5,5) USING QUERYFIRST SAMPLES 100000");
  auto avg_after = restored.Execute(
      "SELECT AVG(v) FROM t REGION(-5,-5,5,5) USING QUERYFIRST SAMPLES 100000");
  ASSERT_TRUE(avg_before.ok());
  ASSERT_TRUE(avg_after.ok());
  EXPECT_DOUBLE_EQ(avg_before->ci.estimate, avg_after->ci.estimate);
  // Errors are clean.
  EXPECT_TRUE(original.SaveTable("ghost", path).IsNotFound());
  EXPECT_TRUE(original.SaveTable("t", "/nonexistent/dir/x.jsonl").IsIOError());
  std::remove(path.c_str());
}

TEST(IntegrationTest, BestEffortModeReturnsWithinBudget) {
  ElectricityOptions options;
  options.num_units = 200;
  options.readings_per_unit = 30;
  ElectricityGenerator gen(options);
  auto readings = gen.Generate();
  std::vector<Value> docs;
  for (const auto& r : readings) docs.push_back(ElectricityGenerator::ToDocument(r));
  Session session;
  ASSERT_TRUE(session.CreateTable("elec", docs).ok());
  Stopwatch watch;
  auto result = session.Execute(
      "SELECT AVG(usage) FROM elec WITHIN 50 MS USING RSTREE");
  ASSERT_TRUE(result.ok());
  // Generous bound: the loop only checks the clock once per batch.
  EXPECT_LT(watch.ElapsedMillis(), 2000.0);
  EXPECT_GT(result->samples, 0u);
}

}  // namespace
}  // namespace storm
