// Unit tests for storm/util: Status/Result, the PCG64 RNG, streaming
// statistics, and the Fenwick-backed WeightedSet.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "storm/util/crc32.h"
#include "storm/util/logging.h"
#include "storm/util/reservoir.h"
#include "storm/util/result.h"
#include "storm/util/rng.h"
#include "storm/util/stats.h"
#include "storm/util/status.h"
#include "storm/util/stopwatch.h"
#include "storm/util/time.h"
#include "storm/util/weighted_set.h"

namespace storm {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("record 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "record 42");
  EXPECT_EQ(st.ToString(), "not found: record 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnknown); ++c) {
    EXPECT_FALSE(StatusCodeToString(static_cast<StatusCode>(c)).empty());
  }
}

TEST(StatusTest, DeadlineExceededCode) {
  Status st = Status::DeadlineExceeded("query past 50ms");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_FALSE(st.IsUnavailable());
  EXPECT_EQ(st.ToString(), "deadline exceeded: query past 50ms");
}

TEST(StatusTest, UnavailableCode) {
  Status st = Status::Unavailable("shard 3 down");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_FALSE(st.IsDeadlineExceeded());
  EXPECT_EQ(st.ToString(), "unavailable: shard 3 down");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::Aborted("boom"); };
  auto outer = [&]() -> Status {
    STORM_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kAborted);
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, StandardCheckValue) {
  // The canonical CRC-32/IEEE test vector.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyAndSensitivity) {
  EXPECT_EQ(Crc32("", 0), 0u);
  uint32_t a = Crc32("storm", 5);
  uint32_t b = Crc32("storn", 5);
  EXPECT_NE(a, b);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "spatio-temporal online sampling";
  size_t n = 31;
  uint32_t one_shot = Crc32(data, n);
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, data, 10);
  state = Crc32Update(state, data + 10, n - 10);
  EXPECT_EQ(Crc32Finish(state), one_shot);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, OkStatusIsNormalizedToError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknown);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto maybe = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::NotFound("x");
  };
  auto use = [&](bool ok) -> Result<int> {
    STORM_ASSIGN_OR_RETURN(int v, maybe(ok));
    return v + 1;
  };
  EXPECT_EQ(*use(true), 8);
  EXPECT_TRUE(use(false).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsUniformChiSquare) {
  Rng rng(99);
  constexpr size_t kBins = 20;
  constexpr uint64_t kDraws = 100000;
  uint64_t bins[kBins] = {};
  for (uint64_t i = 0; i < kDraws; ++i) ++bins[rng.Uniform(kBins)];
  double stat = ChiSquareUniform(bins, kBins, kDraws);
  // 19 dof, alpha = 1e-3 → ~43.8; generous to avoid flakes.
  EXPECT_LT(stat, ChiSquareCritical(kBins - 1, 1e-3));
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.Push(rng.Normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.Push(rng.Exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  uint64_t counts[4] = {};
  for (int i = 0; i < 50000; ++i) ++counts[rng.Discrete(w)];
  EXPECT_EQ(counts[2], 0u);
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.015);
  EXPECT_NEAR(counts[1] / 50000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 50000.0, 0.6, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, ShuffleUniformFirstElement) {
  // Position of element 0 after shuffling should be uniform.
  constexpr size_t kN = 8;
  uint64_t where[kN] = {};
  Rng rng(31);
  for (int trial = 0; trial < 40000; ++trial) {
    std::vector<int> v(kN);
    std::iota(v.begin(), v.end(), 0);
    rng.Shuffle(v);
    for (size_t i = 0; i < kN; ++i) {
      if (v[i] == 0) ++where[i];
    }
  }
  double stat = ChiSquareUniform(where, kN, 40000);
  EXPECT_LT(stat, ChiSquareCritical(kN - 1, 1e-3));
}

TEST(RngTest, ForkIndependent) {
  Rng parent(37);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.Next64() == c2.Next64()) ++same;
  }
  EXPECT_LE(same, 1);
}

// ---------------------------------------------------------------------------
// RunningStat & friends
// ---------------------------------------------------------------------------

TEST(RunningStatTest, MatchesDirectComputation) {
  std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5, 2.0};
  RunningStat s;
  for (double x : xs) s.Push(x);
  double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.sum(), mean * static_cast<double>(xs.size()), 1e-9);
  EXPECT_EQ(s.min(), -7.5);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.Push(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.standard_error(), 0.0);
}

TEST(RunningStatTest, MergeEqualsConcatenation) {
  Rng rng(41);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(3.0, 2.0);
    all.Push(x);
    (i % 3 == 0 ? a : b).Push(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Push(1.0);
  a.Push(2.0);
  RunningStat a_copy = a;
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), a_copy.mean(), 1e-12);
  b.Merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(StatsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
}

TEST(StatsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST(StatsTest, ZCritical) {
  EXPECT_NEAR(ZCritical(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(ZCritical(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(ZCritical(0.68268949), 1.0, 1e-4);
}

TEST(StatsTest, ChiSquareCriticalSane) {
  // Known value: chi2(10, 0.05) ≈ 18.31 (Wilson-Hilferty is ~1% accurate).
  EXPECT_NEAR(ChiSquareCritical(10, 0.05), 18.31, 0.5);
  EXPECT_NEAR(ChiSquareCritical(19, 0.001), 43.82, 1.2);
}

// ---------------------------------------------------------------------------
// WeightedSet
// ---------------------------------------------------------------------------

TEST(WeightedSetTest, AddAndTotal) {
  WeightedSet ws;
  EXPECT_EQ(ws.Add(2.0), 0u);
  EXPECT_EQ(ws.Add(3.0), 1u);
  EXPECT_EQ(ws.Add(0.0), 2u);
  EXPECT_DOUBLE_EQ(ws.total(), 5.0);
  EXPECT_DOUBLE_EQ(ws.WeightOf(1), 3.0);
}

TEST(WeightedSetTest, UpdateAdjustsTotal) {
  WeightedSet ws;
  ws.Add(1.0);
  ws.Add(4.0);
  ws.Update(0, 0.0);
  EXPECT_DOUBLE_EQ(ws.total(), 4.0);
  ws.Update(0, 2.5);
  EXPECT_DOUBLE_EQ(ws.total(), 6.5);
}

TEST(WeightedSetTest, SampleFollowsWeights) {
  WeightedSet ws;
  ws.Add(1.0);
  ws.Add(0.0);
  ws.Add(3.0);
  ws.Add(6.0);
  Rng rng(43);
  uint64_t counts[4] = {};
  for (int i = 0; i < 50000; ++i) ++counts[ws.Sample(&rng)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.015);
  EXPECT_NEAR(counts[2] / 50000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 50000.0, 0.6, 0.02);
}

TEST(WeightedSetTest, SampleAfterUpdates) {
  WeightedSet ws;
  for (int i = 0; i < 16; ++i) ws.Add(1.0);
  for (int i = 0; i < 16; ++i) {
    if (i != 5 && i != 11) ws.Update(static_cast<size_t>(i), 0.0);
  }
  Rng rng(47);
  uint64_t five = 0, eleven = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t s = ws.Sample(&rng);
    ASSERT_TRUE(s == 5 || s == 11) << s;
    (s == 5 ? five : eleven)++;
  }
  EXPECT_NEAR(five / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(eleven / 10000.0, 0.5, 0.03);
}

TEST(WeightedSetTest, GrowsWhileSampling) {
  WeightedSet ws;
  Rng rng(53);
  ws.Add(1.0);
  for (int i = 0; i < 100; ++i) {
    ws.Add(1.0);
    size_t s = ws.Sample(&rng);
    ASSERT_LE(s, static_cast<size_t>(i + 1));
  }
  EXPECT_DOUBLE_EQ(ws.total(), 101.0);
}

// ---------------------------------------------------------------------------
// Reservoir sampling
// ---------------------------------------------------------------------------

TEST(ReservoirTest, KeepsAllWhenStreamSmallerThanCapacity) {
  ReservoirSampler<int> r(10, Rng(101));
  for (int i = 0; i < 5; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 5u);
  EXPECT_EQ(r.seen(), 5u);
}

TEST(ReservoirTest, UniformOverStream) {
  constexpr int kStream = 50;
  constexpr size_t kCap = 10;
  constexpr int kTrials = 20000;
  uint64_t hits[kStream] = {};
  Rng seed_rng(103);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> r(kCap, Rng(seed_rng.Next64()));
    for (int i = 0; i < kStream; ++i) r.Add(i);
    for (int v : r.sample()) ++hits[v];
  }
  // Each element should appear with probability kCap/kStream = 0.2.
  double stat = ChiSquareUniform(hits, kStream, kTrials * kCap);
  EXPECT_LT(stat, ChiSquareCritical(kStream - 1, 1e-4));
}

TEST(ReservoirTest, ClearResets) {
  ReservoirSampler<int> r(3, Rng(105));
  for (int i = 0; i < 10; ++i) r.Add(i);
  r.Clear();
  EXPECT_TRUE(r.sample().empty());
  EXPECT_EQ(r.seen(), 0u);
}

TEST(WeightedReservoirTest, FavorsHeavyElements) {
  // Element 0 has weight 9, elements 1..9 weight 1 each; a size-1 reservoir
  // should pick element 0 about half the time.
  constexpr int kTrials = 20000;
  int zero_picked = 0;
  Rng seed_rng(107);
  for (int t = 0; t < kTrials; ++t) {
    WeightedReservoirSampler<int> r(1, Rng(seed_rng.Next64()));
    for (int i = 0; i < 10; ++i) r.Add(i, i == 0 ? 9.0 : 1.0);
    auto sample = r.Sample();
    ASSERT_EQ(sample.size(), 1u);
    zero_picked += sample[0] == 0;
  }
  EXPECT_NEAR(zero_picked / static_cast<double>(kTrials), 0.5, 0.03);
}

TEST(WeightedReservoirTest, SkipsNonPositiveWeights) {
  WeightedReservoirSampler<int> r(5, Rng(109));
  r.Add(1, 0.0);
  r.Add(2, -3.0);
  r.Add(3, 1.0);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.Sample()[0], 3);
}

// ---------------------------------------------------------------------------
// Time parsing (canonical home is util/time.h; connector tests exercise the
// formats, these cover the shared contract)
// ---------------------------------------------------------------------------

TEST(TimeTest, EpochZeroRoundTrip) {
  EXPECT_EQ(FormatTimestamp(0.0), "1970-01-01 00:00:00");
  EXPECT_EQ(ParseTimestamp("1970-01-01 00:00:00"), 0.0);
}

TEST(TimeTest, NegativeEpochsFormat) {
  // Pre-1970 dates (proleptic handling).
  std::string s = FormatTimestamp(-86400.0);
  EXPECT_EQ(s, "1969-12-31 00:00:00");
  EXPECT_EQ(ParseTimestamp(s), -86400.0);
}

TEST(TimeTest, LeapYearHandling) {
  auto feb29 = ParseTimestamp("2016-02-29");
  ASSERT_TRUE(feb29.has_value());
  auto mar01 = ParseTimestamp("2016-03-01");
  ASSERT_TRUE(mar01.has_value());
  EXPECT_EQ(*mar01 - *feb29, 86400.0);
}

// ---------------------------------------------------------------------------
// Logging & stopwatch
// ---------------------------------------------------------------------------

TEST(LoggingTest, LevelGateIsRespected) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // The macro's condition must be false below the gate (we can't capture
  // stderr portably here; the gate itself is the contract).
  EXPECT_FALSE(GetLogLevel() <= LogLevel::kDebug);
  EXPECT_TRUE(GetLogLevel() <= LogLevel::kError);
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(GetLogLevel() <= LogLevel::kError);
  SetLogLevel(prev);
}

TEST(StopwatchTest, MonotoneAndRestartable) {
  Stopwatch watch;
  int64_t a = watch.ElapsedNanos();
  int64_t b = watch.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
  // Unit consistency: one reading expressed three ways.
  int64_t nanos = watch.ElapsedNanos();
  EXPECT_GE(static_cast<double>(nanos) / 1e6, 0.0);
  EXPECT_GE(watch.ElapsedMillis() * 1000.0, 0.0);
}

TEST(LoggingTest, SinkReceivesFormattedLines) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, std::string_view line) {
    captured.emplace_back(level, std::string(line));
  });
  STORM_LOG(Info) << "hello " << 42;
  STORM_LOG(Debug) << "filtered out";
  SetLogSink({});
  SetLogLevel(before);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  const std::string& line = captured[0].second;
  EXPECT_NE(line.find("hello 42"), std::string::npos);
  EXPECT_NE(line.find("[INFO util_test.cc:"), std::string::npos);
  // ISO-8601 UTC timestamp prefix: "YYYY-MM-DDTHH:MM:SS.mmmZ ".
  ASSERT_GE(line.size(), 25u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[23], 'Z');
  EXPECT_EQ(line.back(), '2');  // sink gets the line without the newline
}

}  // namespace
}  // namespace storm
