// Tests for the analytics module: online KDE, k-means clustering,
// trajectory reconstruction, and short-text term frequencies.

#include <gtest/gtest.h>

#include <cmath>

#include "storm/analytics/kde.h"
#include "storm/analytics/kmeans.h"
#include "storm/analytics/text.h"
#include "storm/analytics/trajectory.h"
#include "storm/sampling/rs_tree.h"

namespace storm {
namespace {

using Entry = RTree<2>::Entry;

// ---------------------------------------------------------------------------
// Kernels & KDE
// ---------------------------------------------------------------------------

TEST(KernelTest, Shapes) {
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kUniform, 0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kUniform, 1.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 0.5, 1.0), 0.75);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 1.0, 1.0), 0.0);
  EXPECT_NEAR(KernelValue(KernelType::kGaussian, 0.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(KernelValue(KernelType::kGaussian, 1.0, 1.0), std::exp(-0.5), 1e-12);
  // Degenerate bandwidth.
  EXPECT_EQ(KernelValue(KernelType::kGaussian, 1.0, 0.0), 0.0);
}

class KdeEnv {
 public:
  static KdeEnv& Get() {
    static auto* env = new KdeEnv();
    return *env;
  }

  const std::vector<Entry>& data() const { return data_; }
  const RsTree<2>& rs() const { return *rs_; }

 private:
  KdeEnv() {
    Rng rng(401);
    // One hot spot at (30,30), a weaker one at (70,60).
    for (RecordId i = 0; i < 20000; ++i) {
      double x, y;
      if (rng.Bernoulli(0.6)) {
        x = rng.Normal(30, 4);
        y = rng.Normal(30, 4);
      } else if (rng.Bernoulli(0.5)) {
        x = rng.Normal(70, 5);
        y = rng.Normal(60, 5);
      } else {
        x = rng.UniformDouble(0, 100);
        y = rng.UniformDouble(0, 100);
      }
      data_.push_back({Point2(x, y), i});
    }
    rs_ = std::make_unique<RsTree<2>>(data_, RsTreeOptions{}, 403);
  }

  std::vector<Entry> data_;
  std::unique_ptr<RsTree<2>> rs_;
};

class KernelSweepTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelSweepTest, MonotoneNonNegativeAndSupported) {
  KernelType k = GetParam();
  double prev = KernelValue(k, 0.0, 2.0);
  EXPECT_GT(prev, 0.0);
  for (double d = 0.1; d <= 8.0; d += 0.1) {
    double v = KernelValue(k, d, 2.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, prev + 1e-12) << "not non-increasing at d=" << d;
    prev = v;
  }
  // Compact-support kernels vanish past the bandwidth.
  if (k != KernelType::kGaussian) {
    EXPECT_EQ(KernelValue(k, 2.0001, 2.0), 0.0);
  }
}

TEST_P(KernelSweepTest, OnlineKdeConvergesForEveryKernel) {
  KdeEnv& env = KdeEnv::Get();
  Rect2 region(Point2(0, 0), Point2(100, 100));
  KdeOptions options;
  options.grid_width = 16;
  options.grid_height = 16;
  options.kernel = GetParam();
  std::vector<double> exact = OnlineKde<2>::ExactDensity(
      env.data(), Rect2::Everything(), region, options);
  auto sampler = env.rs().NewSampler(Rng(461));
  OnlineKde<2> kde(sampler.get(), region, options);
  ASSERT_TRUE(kde.Begin(Rect2::Everything()).ok());
  kde.Step(5000);
  auto map = kde.DensityMap();
  double err = 0, mass = 0;
  for (size_t i = 0; i < map.size(); ++i) {
    err += std::fabs(map[i] - exact[i]);
    mass += exact[i];
  }
  ASSERT_GT(mass, 0);
  EXPECT_LT(err / mass, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelSweepTest,
                         ::testing::Values(KernelType::kGaussian,
                                           KernelType::kEpanechnikov,
                                           KernelType::kUniform),
                         [](const ::testing::TestParamInfo<KernelType>& info) {
                           switch (info.param) {
                             case KernelType::kGaussian:
                               return "Gaussian";
                             case KernelType::kEpanechnikov:
                               return "Epanechnikov";
                             default:
                               return "Uniform";
                           }
                         });

TEST(KdeTest, OnlineConvergesToExact) {
  KdeEnv& env = KdeEnv::Get();
  Rect2 region(Point2(0, 0), Point2(100, 100));
  Rect2 query(Point2(0, 0), Point2(100, 100));
  KdeOptions options;
  options.grid_width = 32;
  options.grid_height = 32;
  std::vector<double> exact =
      OnlineKde<2>::ExactDensity(env.data(), query, region, options);
  auto sampler = env.rs().NewSampler(Rng(405));
  OnlineKde<2> kde(sampler.get(), region, options);
  ASSERT_TRUE(kde.Begin(query).ok());
  kde.Step(4000);
  std::vector<double> approx = kde.DensityMap();
  ASSERT_EQ(approx.size(), exact.size());
  // Relative L1 error of the map should be small after 4000 samples.
  double err = 0, mass = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    err += std::fabs(approx[i] - exact[i]);
    mass += exact[i];
  }
  ASSERT_GT(mass, 0);
  EXPECT_LT(err / mass, 0.15);
}

TEST(KdeTest, HalfWidthShrinksWithSamples) {
  KdeEnv& env = KdeEnv::Get();
  Rect2 region(Point2(0, 0), Point2(100, 100));
  auto sampler = env.rs().NewSampler(Rng(407));
  KdeOptions options;
  options.grid_width = 16;
  options.grid_height = 16;
  OnlineKde<2> kde(sampler.get(), region, options);
  ASSERT_TRUE(kde.Begin(Rect2::Everything()).ok());
  kde.Step(200);
  double hw_200 = kde.MeanHalfWidth();
  kde.Step(3000);
  double hw_3200 = kde.MeanHalfWidth();
  EXPECT_LT(hw_3200, hw_200 * 0.5);
}

TEST(KdeTest, HotspotIsDensest) {
  KdeEnv& env = KdeEnv::Get();
  Rect2 region(Point2(0, 0), Point2(100, 100));
  auto sampler = env.rs().NewSampler(Rng(409));
  KdeOptions options;
  options.grid_width = 20;
  options.grid_height = 20;
  OnlineKde<2> kde(sampler.get(), region, options);
  ASSERT_TRUE(kde.Begin(Rect2::Everything()).ok());
  kde.Step(5000);
  auto map = kde.DensityMap();
  size_t argmax = 0;
  for (size_t i = 0; i < map.size(); ++i) {
    if (map[i] > map[argmax]) argmax = i;
  }
  int cx = static_cast<int>(argmax % 20), cy = static_cast<int>(argmax / 20);
  // Hot spot (30,30) lives in cell (6,6) of a 20x20 grid over [0,100]².
  EXPECT_NEAR(cx, 6, 1);
  EXPECT_NEAR(cy, 6, 1);
}

TEST(KdeTest, TopCellsFindHotspots) {
  KdeEnv& env = KdeEnv::Get();
  Rect2 region(Point2(0, 0), Point2(100, 100));
  auto sampler = env.rs().NewSampler(Rng(463));
  KdeOptions options;
  options.grid_width = 20;
  options.grid_height = 20;
  OnlineKde<2> kde(sampler.get(), region, options);
  ASSERT_TRUE(kde.Begin(Rect2::Everything()).ok());
  kde.Step(5000);
  auto top = kde.TopCells(5);
  ASSERT_EQ(top.size(), 5u);
  // Sorted descending by density.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].density.estimate, top[i].density.estimate);
  }
  // The top cell is near the (30,30) hot spot → cell (6,6).
  EXPECT_NEAR(top[0].x, 6, 1);
  EXPECT_NEAR(top[0].y, 6, 1);
  // Truncation works.
  EXPECT_EQ(kde.TopCells(2).size(), 2u);
}

TEST(KdeTest, ExhaustionMarksCellsExact) {
  KdeEnv& env = KdeEnv::Get();
  Rect2 region(Point2(0, 0), Point2(100, 100));
  Rect2 tiny(Point2(0, 90), Point2(8, 100));
  auto sampler = env.rs().NewSampler(Rng(411));
  KdeOptions options;
  options.grid_width = 8;
  options.grid_height = 8;
  OnlineKde<2> kde(sampler.get(), region, options);
  ASSERT_TRUE(kde.Begin(tiny).ok());
  while (kde.Step(512) > 0) {
  }
  EXPECT_TRUE(kde.Exhausted());
  EXPECT_TRUE(kde.Cell(0, 0).exact);
  EXPECT_EQ(kde.MaxHalfWidth(), 0.0);
}

// ---------------------------------------------------------------------------
// k-means
// ---------------------------------------------------------------------------

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(421);
  std::vector<Point2> pts;
  std::vector<Point2> centers = {Point2(10, 10), Point2(50, 10), Point2(30, 50)};
  for (int i = 0; i < 1500; ++i) {
    const Point2& c = centers[static_cast<size_t>(i % 3)];
    pts.push_back(Point2(rng.Normal(c[0], 1.2), rng.Normal(c[1], 1.2)));
  }
  KMeansOptions options;
  options.k = 3;
  KMeansResult result = KMeansCluster(pts, options, &rng);
  ASSERT_EQ(result.centers.size(), 3u);
  for (const Point2& truth : centers) {
    double best = 1e18;
    for (const Point2& found : result.centers) {
      best = std::min(best, truth.Distance(found));
    }
    EXPECT_LT(best, 1.0) << "cluster near " << truth.ToString() << " missed";
  }
  EXPECT_LT(result.inertia / pts.size(), 4.0);  // ~2·sigma²
}

TEST(KMeansTest, HandlesDegenerateInputs) {
  Rng rng(423);
  KMeansOptions options;
  options.k = 4;
  EXPECT_TRUE(KMeansCluster({}, options, &rng).centers.empty());
  // Fewer points than k.
  std::vector<Point2> two = {Point2(0, 0), Point2(1, 1)};
  KMeansResult r = KMeansCluster(two, options, &rng);
  EXPECT_EQ(r.centers.size(), 2u);
  // All identical points.
  std::vector<Point2> same(50, Point2(3, 3));
  options.k = 3;
  r = KMeansCluster(same, options, &rng);
  EXPECT_EQ(r.inertia, 0.0);
}

TEST(KMeansTest, WarmStartIsStable) {
  Rng rng(425);
  std::vector<Point2> pts;
  for (int i = 0; i < 600; ++i) {
    pts.push_back(Point2(rng.Normal(i % 2 ? 10 : 40, 1), rng.Normal(20, 1)));
  }
  KMeansOptions options;
  options.k = 2;
  KMeansResult first = KMeansCluster(pts, options, &rng);
  KMeansResult again = KMeansCluster(pts, options, &rng, first.centers);
  // Warm start from the converged solution should terminate immediately.
  EXPECT_LE(again.iterations, 2);
}

TEST(OnlineKMeansTest, DriftShrinksWithSamples) {
  KdeEnv& env = KdeEnv::Get();
  auto sampler = env.rs().NewSampler(Rng(427));
  KMeansOptions options;
  options.k = 2;
  OnlineKMeans<2> km(sampler.get(), options, Rng(429));
  ASSERT_TRUE(km.Begin(Rect2::Everything()).ok());
  km.Step(256);
  km.Step(256);
  km.Step(4096);
  double late_drift = km.LastCenterDrift();
  EXPECT_LT(late_drift, 3.0);
  EXPECT_EQ(km.Current().centers.size(), 2u);
}

// ---------------------------------------------------------------------------
// Trajectory
// ---------------------------------------------------------------------------

TEST(TrajectoryBuilderTest, SortsAndInterpolates) {
  TrajectoryBuilder b;
  b.Add(10.0, Point2(10, 0));
  b.Add(0.0, Point2(0, 0));   // out of order on purpose
  b.Add(5.0, Point2(5, 0));
  ASSERT_EQ(b.Polyline().size(), 3u);
  EXPECT_EQ(b.Polyline().front().t, 0.0);
  EXPECT_EQ(b.PositionAt(2.5), Point2(2.5, 0));
  EXPECT_EQ(b.PositionAt(7.5), Point2(7.5, 0));
  // Clamped outside the span.
  EXPECT_EQ(b.PositionAt(-5), Point2(0, 0));
  EXPECT_EQ(b.PositionAt(99), Point2(10, 0));
  EXPECT_DOUBLE_EQ(b.Length(), 10.0);
}

TEST(TrajectoryBuilderTest, DuplicateTimestamps) {
  TrajectoryBuilder b;
  b.Add(1.0, Point2(0, 0));
  b.Add(1.0, Point2(2, 0));
  EXPECT_NO_FATAL_FAILURE(b.PositionAt(1.0));
}

TEST(TrajectoryErrorTest, IdenticalIsZeroAndRefinementImproves) {
  Rng rng(431);
  TrajectoryBuilder truth;
  for (int i = 0; i <= 100; ++i) {
    double t = i;
    truth.Add(t, Point2(std::sin(t * 0.1) * 10, t * 0.5));
  }
  EXPECT_NEAR(TrajectoryError(truth, truth), 0.0, 1e-12);
  // Sparse subsample has more error than a dense one.
  TrajectoryBuilder sparse, dense;
  for (int i = 0; i <= 100; i += 25) {
    sparse.Add(i, truth.PositionAt(i));
  }
  for (int i = 0; i <= 100; i += 5) {
    dense.Add(i, truth.PositionAt(i));
  }
  double sparse_err = TrajectoryError(sparse, truth);
  double dense_err = TrajectoryError(dense, truth);
  EXPECT_LT(dense_err, sparse_err);
  EXPECT_LT(dense_err, 0.2);
}

TEST(OnlineTrajectoryTest, ReconstructsMovingObject) {
  // One object moving on a line among noise objects; (x, y, t) index.
  Rng rng(433);
  std::vector<RTree<3>::Entry> data;
  std::vector<int64_t> owner;
  for (RecordId i = 0; i < 8000; ++i) {
    int64_t user = static_cast<int64_t>(i % 40);
    double t = static_cast<double>(i) / 8000.0 * 1000.0;
    double x, y;
    if (user == 7) {
      x = t * 0.1;  // target: straight line
      y = 2 * t * 0.1;
    } else {
      x = rng.UniformDouble(0, 100);
      y = rng.UniformDouble(0, 200);
    }
    data.push_back({Point3(x, y, t), i});
    owner.push_back(user);
  }
  RsTree<3> rs(data, {}, 435);
  auto sampler = rs.NewSampler(Rng(437));
  OnlineTrajectory<3> traj(sampler.get(), [&owner](const RTree<3>::Entry& e) {
    return owner[e.id] == 7;
  });
  ASSERT_TRUE(traj.Begin(Rect3::Everything()).ok());
  while (!traj.Exhausted() && traj.samples_drawn() < 8000) {
    traj.Step(512);
  }
  ASSERT_GE(traj.Current().size(), 50u);
  // Every fix lies on the line y = 2x.
  for (const TimedPoint& f : traj.Current().Polyline()) {
    EXPECT_NEAR(f.position[1], 2 * f.position[0], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Short text
// ---------------------------------------------------------------------------

TEST(TokenizeTest, LowercasesStripsAndDropsStopwords) {
  auto tokens = Tokenize("The SNOW is Falling, and the ICE: outage!!");
  std::vector<std::string> expected = {"snow", "falling", "ice", "outage"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeTest, KeepsHashtagsAndMentions) {
  auto tokens = Tokenize("#snowday with @nws crew");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "#snowday");
  EXPECT_EQ(tokens[1], "@nws");
  EXPECT_EQ(tokens[2], "crew");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ???").empty());
  EXPECT_TRUE(Tokenize("a I").empty());  // single chars and stopwords
}

TEST(TermCounterTest, DocumentFrequencyNotTermFrequency) {
  TermCounter c;
  c.AddDocument(Tokenize("snow snow snow"));
  c.AddDocument(Tokenize("sunny day"));
  auto top = c.TopTerms(10);
  ASSERT_FALSE(top.empty());
  // "snow" appears in 1 of 2 documents despite 3 occurrences.
  for (const auto& t : top) {
    if (t.term == "snow") {
      EXPECT_EQ(t.count, 1u);
      EXPECT_NEAR(t.frequency.estimate, 0.5, 1e-12);
    }
  }
}

TEST(TermCounterTest, TopTermsOrderedAndTruncated) {
  TermCounter c;
  for (int i = 0; i < 10; ++i) c.AddDocument({"alpha", "beta"});
  for (int i = 0; i < 5; ++i) c.AddDocument({"beta", "gamma"});
  auto top = c.TopTerms(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].term, "beta");   // 15 docs
  EXPECT_EQ(top[1].term, "alpha");  // 10 docs
}

TEST(TopTermPrecisionTest, Computation) {
  auto mk = [](std::vector<std::string> terms) {
    std::vector<TermEstimate> v;
    for (auto& t : terms) {
      TermEstimate e;
      e.term = t;
      v.push_back(e);
    }
    return v;
  };
  EXPECT_DOUBLE_EQ(
      TopTermPrecision(mk({"a", "b", "c"}), mk({"a", "b", "c"}), 3), 1.0);
  EXPECT_DOUBLE_EQ(
      TopTermPrecision(mk({"a", "x", "y"}), mk({"a", "b", "c"}), 3), 1.0 / 3);
  EXPECT_DOUBLE_EQ(TopTermPrecision(mk({}), mk({"a"}), 1), 0.0);
  EXPECT_DOUBLE_EQ(TopTermPrecision(mk({"a"}), mk({}), 3), 1.0);
}

}  // namespace
}  // namespace storm
