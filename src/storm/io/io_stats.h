// Counters for the simulated disk substrate.
//
// The paper's efficiency argument for LS-tree/RS-tree over RandomPath is an
// I/O-count argument (Ω(k) random page reads vs O(k/B) mostly-sequential
// ones). On a laptop we reproduce the *counts* by routing every index/page
// access through a buffer pool and counting faults.

#ifndef STORM_IO_IO_STATS_H_
#define STORM_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace storm {

/// A point-in-time snapshot of the access counters (plain values: compare,
/// subtract, print freely). The live counters are an AtomicIoStats owned by
/// the BlockManager; this struct is what Snapshot() hands out.
struct IoStats {
  uint64_t physical_reads = 0;   ///< pages fetched from the simulated disk
  uint64_t physical_writes = 0;  ///< pages written back to the simulated disk
  uint64_t logical_reads = 0;    ///< pin requests served (hit or miss)
  uint64_t pool_hits = 0;        ///< pins served from the buffer pool
  uint64_t pool_misses = 0;      ///< pins that faulted
  uint64_t evictions = 0;        ///< frames evicted to make room
  uint64_t pages_allocated = 0;  ///< total pages ever allocated

  void Reset() { *this = IoStats(); }

  /// Fraction of pin requests served from the buffer pool; 0 when no
  /// logical reads have happened yet.
  double hit_rate() const {
    return logical_reads == 0
               ? 0.0
               : static_cast<double>(pool_hits) /
                     static_cast<double>(logical_reads);
  }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.physical_reads = physical_reads - other.physical_reads;
    d.physical_writes = physical_writes - other.physical_writes;
    d.logical_reads = logical_reads - other.logical_reads;
    d.pool_hits = pool_hits - other.pool_hits;
    d.pool_misses = pool_misses - other.pool_misses;
    d.evictions = evictions - other.evictions;
    d.pages_allocated = pages_allocated - other.pages_allocated;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    physical_reads += other.physical_reads;
    physical_writes += other.physical_writes;
    logical_reads += other.logical_reads;
    pool_hits += other.pool_hits;
    pool_misses += other.pool_misses;
    evictions += other.evictions;
    pages_allocated += other.pages_allocated;
    return *this;
  }

  IoStats operator+(const IoStats& other) const {
    IoStats s = *this;
    s += other;
    return s;
  }

  std::string ToString() const;
};

/// The live counters: relaxed atomics, safe to bump from any thread (N
/// parallel query workers, a concurrent writer) and to snapshot from
/// another. Each counter is independently atomic — a snapshot is not a
/// consistent cut across counters, which is fine for monitoring deltas.
struct AtomicIoStats {
  std::atomic<uint64_t> physical_reads{0};
  std::atomic<uint64_t> physical_writes{0};
  std::atomic<uint64_t> logical_reads{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> pages_allocated{0};

  IoStats Snapshot() const {
    IoStats s;
    s.physical_reads = physical_reads.load(std::memory_order_relaxed);
    s.physical_writes = physical_writes.load(std::memory_order_relaxed);
    s.logical_reads = logical_reads.load(std::memory_order_relaxed);
    s.pool_hits = pool_hits.load(std::memory_order_relaxed);
    s.pool_misses = pool_misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.pages_allocated = pages_allocated.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    physical_reads.store(0, std::memory_order_relaxed);
    physical_writes.store(0, std::memory_order_relaxed);
    logical_reads.store(0, std::memory_order_relaxed);
    pool_hits.store(0, std::memory_order_relaxed);
    pool_misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    pages_allocated.store(0, std::memory_order_relaxed);
  }
};

/// One relaxed increment (the idiom every stats path uses).
inline void IoBump(std::atomic<uint64_t>& counter, uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace storm

#endif  // STORM_IO_IO_STATS_H_
