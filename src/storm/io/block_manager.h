// BlockManager: a page-granular simulated disk.
//
// STORM's published system stored data and distributed R-trees on a DFS; we
// substitute an in-memory array of fixed-size pages with explicit
// read/write/allocate operations and counters. Everything above (buffer
// pool, record store, R-tree node storage) behaves as if talking to a disk.
//
// Robustness: every page carries a CRC32 recorded at write time and verified
// on every read, so at-rest corruption (bit rot, or a fault injected through
// the "block_manager.read.corrupt" failpoint) surfaces as
// Status::Corruption instead of silently returned garbage. Read/Write also
// evaluate the "block_manager.read" / "block_manager.write" failpoints, so
// chaos tests can make the disk fail or stall (see docs/ROBUSTNESS.md).

#ifndef STORM_IO_BLOCK_MANAGER_H_
#define STORM_IO_BLOCK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "storm/io/io_stats.h"
#include "storm/util/status.h"

namespace storm {

/// Identifier of a disk page. Page ids are dense and never reused within a
/// BlockManager's lifetime unless freed pages are recycled.
using PageId = uint64_t;
constexpr PageId kInvalidPage = ~PageId{0};

/// Failpoint sites evaluated by the simulated disk.
inline constexpr std::string_view kFailpointBlockRead = "block_manager.read";
inline constexpr std::string_view kFailpointBlockWrite = "block_manager.write";
inline constexpr std::string_view kFailpointBlockCorrupt =
    "block_manager.read.corrupt";

/// A simulated disk of fixed-size pages.
///
/// Not thread-safe; STORM shards wrap one BlockManager each.
class BlockManager {
 public:
  /// Creates a disk with the given page size in bytes (default 4 KiB).
  explicit BlockManager(size_t page_size = 4096);

  size_t page_size() const { return page_size_; }

  /// Number of live (allocated, not freed) pages.
  size_t num_pages() const { return pages_.size() - free_list_.size(); }

  /// Allocates a zeroed page and returns its id. Freed pages are recycled.
  PageId Allocate();

  /// Returns a page to the free list. Double-free is a checked error.
  Status Free(PageId id);

  /// Copies the page contents into `out` (page_size bytes) and verifies its
  /// checksum; Corruption when the page does not match the CRC recorded at
  /// write time. Counts one physical read.
  Status Read(PageId id, std::byte* out);

  /// Overwrites the page with `data` (page_size bytes) and records its
  /// checksum. Counts one physical write.
  Status Write(PageId id, const std::byte* data);

  /// True iff the id refers to a live page.
  bool IsLive(PageId id) const;

  /// Test hook: flips one stored byte without updating the checksum, so the
  /// next Read reports Corruption (simulated bit rot).
  Status CorruptPageForTesting(PageId id, size_t byte_offset);

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

 private:
  size_t page_size_;
  std::vector<std::unique_ptr<std::byte[]>> pages_;
  std::vector<bool> live_;
  std::vector<uint32_t> crcs_;
  std::vector<PageId> free_list_;
  IoStats stats_;
  uint32_t zero_page_crc_;
  class Counter* checksum_failures_metric_;
};

}  // namespace storm

#endif  // STORM_IO_BLOCK_MANAGER_H_
