// BlockManager: a page-granular simulated disk.
//
// STORM's published system stored data and distributed R-trees on a DFS; we
// substitute an in-memory array of fixed-size pages with explicit
// read/write/allocate operations and counters. Everything above (buffer
// pool, record store, R-tree node storage, WAL) behaves as if talking to a
// disk.
//
// Robustness: every page carries a CRC32 recorded at write time and verified
// on every read, so at-rest corruption (bit rot, or a fault injected through
// the "block_manager.read.corrupt" failpoint) surfaces as
// Status::Corruption instead of silently returned garbage. Read/Write also
// evaluate the "block_manager.read" / "block_manager.write" failpoints, so
// chaos tests can make the disk fail or stall (see docs/ROBUSTNESS.md).
//
// Durability: the disk models a volatile write cache. Write/Allocate/Free
// take effect immediately for readers but stay *unflushed* until Sync()
// (whole device, the fsync substitute) or SyncPage() (one page, the
// fdatasync substitute the WAL uses for group commit). Crash() simulates
// power loss: every unflushed mutation is rolled back to its last-synced
// image — except that the "block_manager.crash.torn" failpoint may persist
// only a seeded prefix of an unflushed page (a torn write), which the WAL's
// record-level CRC framing must detect. See docs/ROBUSTNESS.md §Durability.

#ifndef STORM_IO_BLOCK_MANAGER_H_
#define STORM_IO_BLOCK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storm/io/io_stats.h"
#include "storm/util/rng.h"
#include "storm/util/status.h"

namespace storm {

/// Identifier of a disk page. Page ids are dense and never reused within a
/// BlockManager's lifetime unless freed pages are recycled.
using PageId = uint64_t;
constexpr PageId kInvalidPage = ~PageId{0};

/// Failpoint sites evaluated by the simulated disk.
inline constexpr std::string_view kFailpointBlockRead = "block_manager.read";
inline constexpr std::string_view kFailpointBlockWrite = "block_manager.write";
inline constexpr std::string_view kFailpointBlockCorrupt =
    "block_manager.read.corrupt";
inline constexpr std::string_view kFailpointBlockSync = "block_manager.sync";
/// Evaluated once per unflushed page during Crash(); a trip tears that page
/// (persists a seeded prefix of the volatile content over the durable image)
/// instead of discarding the write entirely.
inline constexpr std::string_view kFailpointCrashTorn =
    "block_manager.crash.torn";

/// A simulated disk of fixed-size pages.
///
/// Not thread-safe; STORM shards wrap one BlockManager each.
class BlockManager {
 public:
  /// Creates a disk with the given page size in bytes (default 4 KiB).
  explicit BlockManager(size_t page_size = 4096);

  size_t page_size() const { return page_size_; }

  /// Number of live (allocated, not freed) pages.
  size_t num_pages() const { return pages_.size() - free_list_.size(); }

  /// Allocates a zeroed page and returns its id. Freed pages are recycled.
  PageId Allocate();

  /// Returns a page to the free list and invalidates its stored CRC (a
  /// recycled frame must never verify against a stale checksum). Double-free
  /// is a checked error.
  Status Free(PageId id);

  /// Copies the page contents into `out` (page_size bytes) and verifies its
  /// checksum; Corruption when the page does not match the CRC recorded at
  /// write time. Counts one physical read.
  Status Read(PageId id, std::byte* out);

  /// Overwrites the page with `data` (page_size bytes) and records its
  /// checksum. Counts one physical write. The write is volatile until the
  /// page is synced.
  Status Write(PageId id, const std::byte* data);

  /// True iff the id refers to a live page.
  bool IsLive(PageId id) const;

  /// Makes every unflushed mutation durable (the fsync substitute).
  Status Sync();

  /// Makes one page's mutations durable (the per-page fdatasync the WAL
  /// issues at each group-commit point).
  Status SyncPage(PageId id);

  /// Simulates power loss: rolls every unflushed page back to its
  /// last-synced image, un-allocates pages never synced, and resurrects
  /// unflushed frees. When the "block_manager.crash.torn" failpoint trips
  /// for an unflushed live page, a seeded prefix of the volatile content is
  /// persisted instead (the torn-write model: sector-atomic, page-torn; the
  /// page CRC is recomputed over the torn bytes, so detection is the job of
  /// record-level framing, exactly as on a real disk).
  ///
  /// Any BufferPool over this disk holds stale frames afterwards; callers
  /// model process death by discarding pools/tables *before* crashing.
  void Crash();

  /// Pages with mutations not yet made durable.
  size_t unsynced_pages() const { return undo_.size(); }

  /// Reseeds the torn-write prefix generator (deterministic harnesses).
  void SeedCrashRng(uint64_t seed) { crash_rng_ = Rng(seed); }

  /// Test hook: flips one stored byte without updating the checksum, so the
  /// next Read reports Corruption (simulated bit rot).
  Status CorruptPageForTesting(PageId id, size_t byte_offset);

  /// Snapshot of the access counters (plain values; see AtomicIoStats).
  IoStats stats() const { return stats_.Snapshot(); }
  /// The live atomic counters — bump-able from any thread. Profiles hold a
  /// pointer to this to snapshot span deltas while other threads run.
  const AtomicIoStats& live_stats() const { return stats_; }
  AtomicIoStats* mutable_stats() { return &stats_; }

 private:
  /// Durable image of a page recorded the first time it is mutated after a
  /// sync. `existed == false` marks pages with no durable history (allocated
  /// since the last sync): a crash discards them entirely.
  struct Undo {
    bool existed = false;
    bool live = false;
    uint32_t crc = 0;
    std::unique_ptr<std::byte[]> data;  // valid iff existed
  };

  /// Records the durable image of `id` unless one exists for this epoch.
  void SaveUndo(PageId id, bool freshly_allocated);

  size_t page_size_;
  std::vector<std::unique_ptr<std::byte[]>> pages_;
  std::vector<bool> live_;
  std::vector<uint32_t> crcs_;
  std::vector<PageId> free_list_;
  std::unordered_map<PageId, Undo> undo_;
  Rng crash_rng_;
  AtomicIoStats stats_;
  uint32_t zero_page_crc_;
  class Counter* checksum_failures_metric_;
  class Counter* crashes_metric_;
  class Counter* torn_writes_metric_;
};

}  // namespace storm

#endif  // STORM_IO_BLOCK_MANAGER_H_
