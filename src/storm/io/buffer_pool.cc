#include "storm/io/buffer_pool.h"

#include <cassert>

#include "storm/obs/metrics.h"
#include "storm/util/logging.h"

namespace storm {

BufferPool::BufferPool(BlockManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(disk_ != nullptr);
  assert(capacity_ >= 1);
  MetricsRegistry& registry = MetricsRegistry::Default();
  hits_metric_ = registry.GetCounter("storm_bufferpool_hits_total",
                                     "Pin requests served from the pool");
  misses_metric_ = registry.GetCounter("storm_bufferpool_misses_total",
                                       "Pin requests that faulted to disk");
  evictions_metric_ = registry.GetCounter("storm_bufferpool_evictions_total",
                                          "Frames evicted to make room");
}

BufferPool::~BufferPool() {
  // Best-effort write-back; a destructor cannot propagate, but a failed
  // flush means dirty pages were dropped — never lose that silently.
  Status st = Flush();
  if (!st.ok()) {
    STORM_LOG(Error) << "buffer pool flush failed in destructor, "
                        "dirty pages lost: "
                     << st;
  }
}

Result<std::byte*> BufferPool::Pin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  AtomicIoStats* stats = disk_->mutable_stats();
  IoBump(stats->logical_reads);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    IoBump(stats->pool_hits);
    hits_metric_->Increment();
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return f.data.get();
  }
  IoBump(stats->pool_misses);
  misses_metric_->Increment();
  if (frames_.size() >= capacity_) {
    STORM_RETURN_NOT_OK(EvictOneLocked());
  }
  Frame f;
  f.data = std::make_unique<std::byte[]>(disk_->page_size());
  STORM_RETURN_NOT_OK(disk_->Read(id, f.data.get()));
  f.pin_count = 1;
  auto [ins, ok] = frames_.emplace(id, std::move(f));
  (void)ok;
  return ins->second.data.get();
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::InvalidArgument("unpin of uncached page " + std::to_string(id));
  }
  Frame& f = it->second;
  if (f.pin_count <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page " + std::to_string(id));
  }
  f.dirty = f.dirty || dirty;
  if (--f.pin_count == 0) {
    lru_.push_back(id);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
  return Status::OK();
}

Status BufferPool::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, f] : frames_) {
    if (f.dirty) {
      STORM_RETURN_NOT_OK(disk_->Write(id, f.data.get()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Evict(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return Status::OK();
  Frame& f = it->second;
  if (f.pin_count > 0) {
    return Status::FailedPrecondition("evict of pinned page " + std::to_string(id));
  }
  if (f.in_lru) lru_.erase(f.lru_pos);
  // Do not write back: Evict() is used for freed pages.
  frames_.erase(it);
  return Status::OK();
}

Status BufferPool::EvictOneLocked() {
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer pool frames are pinned");
  }
  PageId victim = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim);
  assert(it != frames_.end());
  Frame& f = it->second;
  assert(f.pin_count == 0);
  if (f.dirty) {
    STORM_RETURN_NOT_OK(disk_->Write(victim, f.data.get()));
  }
  IoBump(disk_->mutable_stats()->evictions);
  evictions_metric_->Increment();
  frames_.erase(it);
  return Status::OK();
}

}  // namespace storm
