// BufferPool: LRU page cache over a BlockManager.
//
// Index structures and the record store never touch the BlockManager
// directly; they Pin() pages through the pool so that cache behaviour (and
// therefore simulated I/O cost) matches a disk-resident system.

#ifndef STORM_IO_BUFFER_POOL_H_
#define STORM_IO_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storm/io/block_manager.h"
#include "storm/util/result.h"

namespace storm {

/// An LRU buffer pool with pin counting.
///
/// Frames with a positive pin count are never evicted. Dirty frames are
/// written back on eviction and on Flush(). Thread-safe: one internal
/// mutex serializes frame-table and LRU mutation, so concurrent read
/// sessions may fault pages through one pool. (The pin/unpin protocol
/// still hands out raw frame pointers — concurrent *writers* to the same
/// page need their own coordination, which the Table write latch
/// provides.)
class BufferPool {
 public:
  /// `capacity_pages` is the number of frames; must be >= 1.
  BufferPool(BlockManager* disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page and returns its frame data (page_size bytes, mutable).
  /// Fails with ResourceExhausted when every frame is pinned.
  Result<std::byte*> Pin(PageId id);

  /// Releases one pin; `dirty` marks the frame for write-back.
  Status Unpin(PageId id, bool dirty);

  /// Convenience read-modify cycle: pin, let `fn` inspect/modify, unpin.
  template <typename Fn>
  Status WithPage(PageId id, bool dirty, Fn&& fn) {
    Result<std::byte*> frame = Pin(id);
    if (!frame.ok()) return frame.status();
    fn(*frame);
    return Unpin(id, dirty);
  }

  /// Writes back all dirty frames (keeps them cached).
  Status Flush();

  /// Drops a page from the pool (e.g. after BlockManager::Free); the page
  /// must not be pinned.
  Status Evict(PageId id);

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }
  BlockManager* disk() const { return disk_; }
  IoStats stats() const { return disk_->stats(); }

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;
    int pin_count = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  /// Evicts one unpinned frame; caller holds mu_.
  Status EvictOneLocked();

  BlockManager* disk_;
  size_t capacity_;
  mutable std::mutex mu_;  ///< guards frames_ and lru_
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = least recently used
  // Process-wide pool metrics (all pools aggregate into the same family);
  // resolved once at construction so Pin() pays one relaxed add per event.
  class Counter* hits_metric_;
  class Counter* misses_metric_;
  class Counter* evictions_metric_;
};

}  // namespace storm

#endif  // STORM_IO_BUFFER_POOL_H_
