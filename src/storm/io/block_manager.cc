#include "storm/io/block_manager.h"

#include <algorithm>
#include <cstring>

#include "storm/obs/metrics.h"
#include "storm/util/crc32.h"
#include "storm/util/failpoint.h"

namespace storm {

std::string IoStats::ToString() const {
  std::string s;
  s += "physical_reads=" + std::to_string(physical_reads);
  s += " physical_writes=" + std::to_string(physical_writes);
  s += " logical_reads=" + std::to_string(logical_reads);
  s += " pool_hits=" + std::to_string(pool_hits);
  s += " pool_misses=" + std::to_string(pool_misses);
  s += " evictions=" + std::to_string(evictions);
  s += " pages_allocated=" + std::to_string(pages_allocated);
  return s;
}

BlockManager::BlockManager(size_t page_size)
    : page_size_(page_size),
      crash_rng_(0x70A11C5EEDULL),
      checksum_failures_metric_(MetricsRegistry::Default().GetCounter(
          "storm_io_checksum_failures_total",
          "Page reads whose CRC32 did not match the recorded checksum")),
      crashes_metric_(MetricsRegistry::Default().GetCounter(
          "storm_disk_crashes_total",
          "Simulated power-loss events (BlockManager::Crash)")),
      torn_writes_metric_(MetricsRegistry::Default().GetCounter(
          "storm_disk_torn_writes_total",
          "Unflushed pages that persisted only a prefix at crash")) {
  std::vector<std::byte> zeros(page_size_, std::byte{0});
  zero_page_crc_ = Crc32(zeros.data(), zeros.size());
}

void BlockManager::SaveUndo(PageId id, bool freshly_allocated) {
  if (undo_.contains(id)) return;
  Undo u;
  if (!freshly_allocated) {
    u.existed = true;
    u.live = live_[id];
    u.crc = crcs_[id];
    u.data = std::make_unique<std::byte[]>(page_size_);
    std::memcpy(u.data.get(), pages_[id].get(), page_size_);
  }
  undo_.emplace(id, std::move(u));
}

PageId BlockManager::Allocate() {
  IoBump(stats_.pages_allocated);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    // The recycled page may still hold durable content (it was freed but the
    // free never synced, or it was live at the last sync): snapshot before
    // re-zeroing so a crash restores the pre-recycle image.
    SaveUndo(id, /*freshly_allocated=*/false);
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
    crcs_[id] = zero_page_crc_;
    return id;
  }
  PageId id = pages_.size();
  auto page = std::make_unique<std::byte[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  live_.push_back(true);
  crcs_.push_back(zero_page_crc_);
  SaveUndo(id, /*freshly_allocated=*/true);
  return id;
}

Status BlockManager::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("free of non-live page " + std::to_string(id));
  }
  SaveUndo(id, /*freshly_allocated=*/false);
  live_[id] = false;
  // Invalidate the stored checksum: no read of a recycled frame may ever
  // verify against the freed page's stale CRC.
  crcs_[id] = 0;
  free_list_.push_back(id);
  return Status::OK();
}

Status BlockManager::Read(PageId id, std::byte* out) {
  if (!IsLive(id)) {
    return Status::IOError("read of non-live page " + std::to_string(id));
  }
  STORM_FAILPOINT(kFailpointBlockRead);
  IoBump(stats_.physical_reads);
  std::memcpy(out, pages_[id].get(), page_size_);
  // In-flight corruption: the fault flips a bit in the returned buffer (the
  // stored page is intact), exactly what a bad DMA or torn sector looks like
  // to the reader. The checksum below must catch it.
  if (!Failpoints::Default().Evaluate(kFailpointBlockCorrupt).ok()) {
    out[0] ^= std::byte{0x01};
  }
  if (Crc32(out, page_size_) != crcs_[id]) {
    checksum_failures_metric_->Increment();
    return Status::Corruption("checksum mismatch on page " + std::to_string(id));
  }
  return Status::OK();
}

Status BlockManager::Write(PageId id, const std::byte* data) {
  if (!IsLive(id)) {
    return Status::IOError("write of non-live page " + std::to_string(id));
  }
  STORM_FAILPOINT(kFailpointBlockWrite);
  SaveUndo(id, /*freshly_allocated=*/false);
  IoBump(stats_.physical_writes);
  std::memcpy(pages_[id].get(), data, page_size_);
  crcs_[id] = Crc32(data, page_size_);
  return Status::OK();
}

bool BlockManager::IsLive(PageId id) const {
  return id < pages_.size() && live_[id];
}

Status BlockManager::Sync() {
  STORM_FAILPOINT(kFailpointBlockSync);
  undo_.clear();
  return Status::OK();
}

Status BlockManager::SyncPage(PageId id) {
  STORM_FAILPOINT(kFailpointBlockSync);
  undo_.erase(id);
  return Status::OK();
}

void BlockManager::Crash() {
  crashes_metric_->Increment();
  for (auto& [id, u] : undo_) {
    if (!u.existed) {
      // Allocated since the last sync: the page never made it to the platter.
      live_[id] = false;
      std::memset(pages_[id].get(), 0, page_size_);
      crcs_[id] = 0;
      continue;
    }
    bool torn = u.live && live_[id] &&
                !Failpoints::Default().Evaluate(kFailpointCrashTorn).ok();
    if (torn) {
      // Sector-atomic torn write: a prefix of the in-flight content landed,
      // the suffix kept the old image. The out-of-band page CRC is
      // recomputed (each sector is internally consistent); detecting the
      // tear is the job of record-level framing (WAL CRCs).
      size_t prefix = static_cast<size_t>(
          crash_rng_.UniformInt(1, static_cast<int64_t>(page_size_) - 1));
      std::memcpy(u.data.get(), pages_[id].get(), prefix);
      torn_writes_metric_->Increment();
    }
    std::memcpy(pages_[id].get(), u.data.get(), page_size_);
    crcs_[id] = torn ? Crc32(u.data.get(), page_size_) : u.crc;
    live_[id] = u.live;
  }
  undo_.clear();
  // Rebuild the free list from liveness (ascending for determinism); the
  // rollback above may have resurrected frees and discarded allocations.
  free_list_.clear();
  for (PageId id = 0; id < pages_.size(); ++id) {
    if (!live_[id]) free_list_.push_back(id);
  }
  // Recycle in ascending id order (Allocate pops from the back).
  std::reverse(free_list_.begin(), free_list_.end());
}

Status BlockManager::CorruptPageForTesting(PageId id, size_t byte_offset) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("corrupt of non-live page " +
                                   std::to_string(id));
  }
  if (byte_offset >= page_size_) {
    return Status::OutOfRange("corrupt offset " + std::to_string(byte_offset));
  }
  pages_[id][byte_offset] ^= std::byte{0xFF};
  return Status::OK();
}

}  // namespace storm
