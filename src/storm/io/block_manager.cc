#include "storm/io/block_manager.h"

#include <cstring>

namespace storm {

std::string IoStats::ToString() const {
  std::string s;
  s += "physical_reads=" + std::to_string(physical_reads);
  s += " physical_writes=" + std::to_string(physical_writes);
  s += " logical_reads=" + std::to_string(logical_reads);
  s += " pool_hits=" + std::to_string(pool_hits);
  s += " pool_misses=" + std::to_string(pool_misses);
  s += " evictions=" + std::to_string(evictions);
  s += " pages_allocated=" + std::to_string(pages_allocated);
  return s;
}

BlockManager::BlockManager(size_t page_size) : page_size_(page_size) {}

PageId BlockManager::Allocate() {
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
    return id;
  }
  PageId id = pages_.size();
  auto page = std::make_unique<std::byte[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  live_.push_back(true);
  return id;
}

Status BlockManager::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("free of non-live page " + std::to_string(id));
  }
  live_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

Status BlockManager::Read(PageId id, std::byte* out) {
  if (!IsLive(id)) {
    return Status::IOError("read of non-live page " + std::to_string(id));
  }
  ++stats_.physical_reads;
  std::memcpy(out, pages_[id].get(), page_size_);
  return Status::OK();
}

Status BlockManager::Write(PageId id, const std::byte* data) {
  if (!IsLive(id)) {
    return Status::IOError("write of non-live page " + std::to_string(id));
  }
  ++stats_.physical_writes;
  std::memcpy(pages_[id].get(), data, page_size_);
  return Status::OK();
}

bool BlockManager::IsLive(PageId id) const {
  return id < pages_.size() && live_[id];
}

}  // namespace storm
