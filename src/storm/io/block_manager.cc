#include "storm/io/block_manager.h"

#include <cstring>

#include "storm/obs/metrics.h"
#include "storm/util/crc32.h"
#include "storm/util/failpoint.h"

namespace storm {

std::string IoStats::ToString() const {
  std::string s;
  s += "physical_reads=" + std::to_string(physical_reads);
  s += " physical_writes=" + std::to_string(physical_writes);
  s += " logical_reads=" + std::to_string(logical_reads);
  s += " pool_hits=" + std::to_string(pool_hits);
  s += " pool_misses=" + std::to_string(pool_misses);
  s += " evictions=" + std::to_string(evictions);
  s += " pages_allocated=" + std::to_string(pages_allocated);
  return s;
}

BlockManager::BlockManager(size_t page_size)
    : page_size_(page_size),
      checksum_failures_metric_(MetricsRegistry::Default().GetCounter(
          "storm_io_checksum_failures_total",
          "Page reads whose CRC32 did not match the recorded checksum")) {
  std::vector<std::byte> zeros(page_size_, std::byte{0});
  zero_page_crc_ = Crc32(zeros.data(), zeros.size());
}

PageId BlockManager::Allocate() {
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
    crcs_[id] = zero_page_crc_;
    return id;
  }
  PageId id = pages_.size();
  auto page = std::make_unique<std::byte[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  live_.push_back(true);
  crcs_.push_back(zero_page_crc_);
  return id;
}

Status BlockManager::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("free of non-live page " + std::to_string(id));
  }
  live_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

Status BlockManager::Read(PageId id, std::byte* out) {
  if (!IsLive(id)) {
    return Status::IOError("read of non-live page " + std::to_string(id));
  }
  STORM_FAILPOINT(kFailpointBlockRead);
  ++stats_.physical_reads;
  std::memcpy(out, pages_[id].get(), page_size_);
  // In-flight corruption: the fault flips a bit in the returned buffer (the
  // stored page is intact), exactly what a bad DMA or torn sector looks like
  // to the reader. The checksum below must catch it.
  if (!Failpoints::Default().Evaluate(kFailpointBlockCorrupt).ok()) {
    out[0] ^= std::byte{0x01};
  }
  if (Crc32(out, page_size_) != crcs_[id]) {
    checksum_failures_metric_->Increment();
    return Status::Corruption("checksum mismatch on page " + std::to_string(id));
  }
  return Status::OK();
}

Status BlockManager::Write(PageId id, const std::byte* data) {
  if (!IsLive(id)) {
    return Status::IOError("write of non-live page " + std::to_string(id));
  }
  STORM_FAILPOINT(kFailpointBlockWrite);
  ++stats_.physical_writes;
  std::memcpy(pages_[id].get(), data, page_size_);
  crcs_[id] = Crc32(data, page_size_);
  return Status::OK();
}

bool BlockManager::IsLive(PageId id) const {
  return id < pages_.size() && live_[id];
}

Status BlockManager::CorruptPageForTesting(PageId id, size_t byte_offset) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("corrupt of non-live page " +
                                   std::to_string(id));
  }
  if (byte_offset >= page_size_) {
    return Status::OutOfRange("corrupt offset " + std::to_string(byte_offset));
  }
  pages_[id][byte_offset] ^= std::byte{0xFF};
  return Status::OK();
}

}  // namespace storm
