// Schema discovery for the data connector (§3.2).
//
// Foreign sources (CSV, JSON-lines, spreadsheets, …) arrive as streams of
// documents with no declared schema. SchemaDiscovery observes documents,
// merges per-field types up a small lattice (null < bool < int < double <
// string), and guesses which fields carry the spatial and temporal
// coordinates so imported data can be indexed without configuration.

#ifndef STORM_CONNECTOR_SCHEMA_DISCOVERY_H_
#define STORM_CONNECTOR_SCHEMA_DISCOVERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storm/storage/value.h"

namespace storm {

/// Flattened field type after lattice merging.
enum class FieldType { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

std::string_view FieldTypeToString(FieldType t);

/// Per-field statistics gathered during discovery.
struct FieldInfo {
  std::string name;  ///< dotted path for nested fields, e.g. "user.lat"
  FieldType type = FieldType::kNull;
  uint64_t present = 0;  ///< documents containing the field
  bool nullable = false; ///< absent or null in at least one document
  /// Occurrences that were numeric (a string-typed field may still carry
  /// mostly numbers when sources are dirty).
  uint64_t numeric_present = 0;
  /// String occurrences that parsed as timestamps ("2014-02-10 06:00:00").
  uint64_t time_parsed = 0;
  /// Range of observed numeric values (valid when numeric_present > 0).
  double min = 0.0;
  double max = 0.0;
};

/// A discovered schema.
struct Schema {
  std::vector<FieldInfo> fields;
  uint64_t documents = 0;

  const FieldInfo* Find(std::string_view name) const;
  std::string ToString() const;
};

/// Which document fields hold the (x, y, t) coordinates.
struct SpatioTemporalBinding {
  std::string x_field;
  std::string y_field;
  std::string t_field;  ///< empty for purely spatial data

  bool HasSpace() const { return !x_field.empty() && !y_field.empty(); }
  bool HasTime() const { return !t_field.empty(); }
};

/// Streaming schema discoverer.
class SchemaDiscovery {
 public:
  /// Folds one document into the running schema (nested objects are
  /// flattened to dotted paths; arrays are typed as kArray).
  void Observe(const Value& doc);

  /// The schema over everything observed so far.
  Schema Discover() const;

  /// Guesses the spatio-temporal binding from field names (lat/lon/x/y/
  /// time/timestamp/...) and numeric ranges (latitude ∈ [-90, 90], …).
  /// Returns nullopt when no plausible spatial pair exists.
  static std::optional<SpatioTemporalBinding> GuessBinding(const Schema& schema);

 private:
  void ObservePath(const std::string& path, const Value& v);

  std::vector<FieldInfo> fields_;  // insertion-ordered
  uint64_t documents_ = 0;
};

}  // namespace storm

#endif  // STORM_CONNECTOR_SCHEMA_DISCOVERY_H_
