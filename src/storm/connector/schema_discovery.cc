#include "storm/connector/schema_discovery.h"

#include <algorithm>
#include <cctype>

#include "storm/util/time.h"

namespace storm {

std::string_view FieldTypeToString(FieldType t) {
  switch (t) {
    case FieldType::kNull:
      return "null";
    case FieldType::kBool:
      return "bool";
    case FieldType::kInt:
      return "int";
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
    case FieldType::kArray:
      return "array";
    case FieldType::kObject:
      return "object";
  }
  return "?";
}

const FieldInfo* Schema::Find(std::string_view name) const {
  for (const FieldInfo& f : fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string Schema::ToString() const {
  std::string out = "schema{" + std::to_string(documents) + " docs";
  for (const FieldInfo& f : fields) {
    out += "; ";
    out += f.name;
    out += ":";
    out += FieldTypeToString(f.type);
    if (f.nullable) out += "?";
  }
  out += "}";
  return out;
}

namespace {

FieldType TypeOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return FieldType::kNull;
    case ValueType::kBool:
      return FieldType::kBool;
    case ValueType::kInt:
      return FieldType::kInt;
    case ValueType::kDouble:
      return FieldType::kDouble;
    case ValueType::kString:
      return FieldType::kString;
    case ValueType::kArray:
      return FieldType::kArray;
    case ValueType::kObject:
      return FieldType::kObject;
  }
  return FieldType::kNull;
}

// Lattice merge: null is the bottom; int widens to double; everything else
// conflicting collapses to string.
FieldType MergeTypes(FieldType a, FieldType b) {
  if (a == b) return a;
  if (a == FieldType::kNull) return b;
  if (b == FieldType::kNull) return a;
  if ((a == FieldType::kInt && b == FieldType::kDouble) ||
      (a == FieldType::kDouble && b == FieldType::kInt)) {
    return FieldType::kDouble;
  }
  return FieldType::kString;
}

}  // namespace

void SchemaDiscovery::ObservePath(const std::string& path, const Value& v) {
  if (v.is_object()) {
    for (const auto& [k, child] : v.AsObject()) {
      ObservePath(path.empty() ? k : path + "." + k, child);
    }
    return;
  }
  FieldInfo* info = nullptr;
  for (FieldInfo& f : fields_) {
    if (f.name == path) {
      info = &f;
      break;
    }
  }
  if (info == nullptr) {
    fields_.push_back(FieldInfo{});
    info = &fields_.back();
    info->name = path;
    if (documents_ > 0) info->nullable = true;  // missing from earlier docs
  }
  FieldType t = TypeOf(v);
  if (t == FieldType::kNull) info->nullable = true;
  info->type = MergeTypes(info->type, t);
  if (v.is_number()) {
    double d = v.AsDouble();
    if (info->numeric_present == 0) {
      info->min = info->max = d;
    } else {
      info->min = std::min(info->min, d);
      info->max = std::max(info->max, d);
    }
    ++info->numeric_present;
  } else if (v.is_string() && ParseTimestamp(v.AsString()).has_value()) {
    ++info->time_parsed;
  }
  ++info->present;
}

void SchemaDiscovery::Observe(const Value& doc) {
  ObservePath("", doc);
  ++documents_;
}

Schema SchemaDiscovery::Discover() const {
  Schema s;
  s.documents = documents_;
  s.fields = fields_;
  for (FieldInfo& f : s.fields) {
    if (f.present < documents_) f.nullable = true;
  }
  return s;
}

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

// Last path segment, lowercased: "user.Lat" -> "lat".
std::string Tail(std::string_view path) {
  size_t dot = path.rfind('.');
  return Lower(dot == std::string_view::npos ? path : path.substr(dot + 1));
}

// Spatial candidate: carried at least one numeric value (dirty sources may
// merge to kString but still be mostly numbers).
bool IsNumeric(const FieldInfo& f) { return f.numeric_present > 0; }

// Temporal candidate: numeric, or a string column whose values parse as
// timestamps.
bool IsTemporal(const FieldInfo& f) {
  return f.numeric_present > 0 || (f.present > 0 && f.time_parsed == f.present);
}

const FieldInfo* FindByNames(const Schema& schema,
                             const std::vector<std::string>& names,
                             bool temporal = false) {
  for (const std::string& want : names) {
    for (const FieldInfo& f : schema.fields) {
      if ((temporal ? IsTemporal(f) : IsNumeric(f)) && Tail(f.name) == want) {
        return &f;
      }
    }
  }
  return nullptr;
}

}  // namespace

std::optional<SpatioTemporalBinding> SchemaDiscovery::GuessBinding(
    const Schema& schema) {
  SpatioTemporalBinding b;
  const FieldInfo* x = FindByNames(
      schema, {"lon", "lng", "longitude", "long", "x", "easting"});
  const FieldInfo* y =
      FindByNames(schema, {"lat", "latitude", "y", "northing"});
  if (x == nullptr || y == nullptr) {
    // Fall back: the first two numeric fields.
    std::vector<const FieldInfo*> numeric;
    for (const FieldInfo& f : schema.fields) {
      if (IsNumeric(f)) numeric.push_back(&f);
    }
    if (numeric.size() < 2) return std::nullopt;
    x = numeric[0];
    y = numeric[1];
  }
  // Sanity: geographic names must be in geographic range.
  if (Tail(y->name).starts_with("lat") && (y->min < -90.5 || y->max > 90.5)) {
    return std::nullopt;
  }
  b.x_field = x->name;
  b.y_field = y->name;
  const FieldInfo* t = FindByNames(
      schema, {"t", "time", "timestamp", "ts", "date", "datetime", "epoch"},
      /*temporal=*/true);
  if (t != nullptr && t != x && t != y) b.t_field = t->name;
  return b;
}

}  // namespace storm
