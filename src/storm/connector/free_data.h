// Free data module (§3.2): conversions between record formats and the
// JSON document model used by the storage engine. CSV↔JSON lives in
// csv.h; here are the structural conversions — flattening nested documents
// to dotted-key rows (for columnar/tabular sinks) and back.

#ifndef STORM_CONNECTOR_FREE_DATA_H_
#define STORM_CONNECTOR_FREE_DATA_H_

#include "storm/storage/value.h"

namespace storm {

/// Flattens nested objects into a single-level object with dotted keys:
/// {"user":{"geo":{"lat":1}}} → {"user.geo.lat":1}. Arrays are kept as
/// values (JSON-encoded when the sink is tabular). Non-object input is
/// returned unchanged.
Value FlattenDocument(const Value& doc);

/// Inverse of FlattenDocument: dotted keys become nested objects. Keys
/// that conflict (a prefix is both a scalar and an object) favor the
/// object; the scalar is dropped.
Value UnflattenDocument(const Value& flat);

}  // namespace storm

#endif  // STORM_CONNECTOR_FREE_DATA_H_
