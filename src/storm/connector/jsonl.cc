#include "storm/connector/jsonl.h"

#include <fstream>
#include <sstream>

namespace storm {

Result<std::vector<Value>> ParseJsonlString(std::string_view data) {
  std::vector<Value> docs;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= data.size()) {
    size_t nl = data.find('\n', pos);
    std::string_view line = data.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? data.size() + 1 : nl + 1;
    // Trim \r and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty()) continue;
    Result<Value> v = Value::Parse(line);
    if (!v.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                v.status().message());
    }
    docs.push_back(std::move(v).ValueOrDie());
  }
  return docs;
}

Result<std::vector<Value>> ParseJsonlFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJsonlString(buffer.str());
}

std::string WriteJsonlString(const std::vector<Value>& docs) {
  std::string out;
  for (const Value& doc : docs) {
    out += doc.ToJson();
    out.push_back('\n');
  }
  return out;
}

}  // namespace storm
