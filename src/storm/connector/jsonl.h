// JSON-lines data parser for the data connector (the MongoDB/Cassandra-
// style document sources). One JSON document per line; blank lines are
// skipped; parse errors carry line numbers.

#ifndef STORM_CONNECTOR_JSONL_H_
#define STORM_CONNECTOR_JSONL_H_

#include <string>
#include <string_view>
#include <vector>

#include "storm/storage/value.h"
#include "storm/util/result.h"

namespace storm {

/// Parses a JSON-lines buffer.
Result<std::vector<Value>> ParseJsonlString(std::string_view data);

/// Reads and parses a JSON-lines file.
Result<std::vector<Value>> ParseJsonlFile(const std::string& path);

/// Serializes documents one-per-line.
std::string WriteJsonlString(const std::vector<Value>& docs);

}  // namespace storm

#endif  // STORM_CONNECTOR_JSONL_H_
