#include "storm/connector/csv.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <set>
#include <sstream>

namespace storm {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// Types one CSV cell.
Value CellToValue(const std::string& cell, const CsvOptions& options) {
  if (cell.empty()) return Value::Null();
  if (options.parse_bools) {
    if (EqualsIgnoreCase(cell, "true")) return Value::Bool(true);
    if (EqualsIgnoreCase(cell, "false")) return Value::Bool(false);
  }
  // Integer?
  {
    int64_t iv = 0;
    auto [p, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), iv);
    if (ec == std::errc() && p == cell.data() + cell.size()) {
      return Value::Int(iv);
    }
  }
  // Double?
  {
    double dv = 0.0;
    auto [p, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), dv);
    if (ec == std::errc() && p == cell.data() + cell.size()) {
      return Value::Double(dv);
    }
  }
  return Value::String(cell);
}

}  // namespace

std::vector<std::string> SplitCsvLine(std::string_view line, char delimiter) {
  std::vector<std::string> cells;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      cells.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

Result<std::vector<Value>> ParseCsvString(std::string_view data,
                                          const CsvOptions& options) {
  // Split into logical rows, respecting newlines inside quoted fields.
  std::vector<std::string> rows;
  std::string current;
  bool quoted = false;
  for (char c : data) {
    if (c == '"') quoted = !quoted;
    if ((c == '\n' || c == '\r') && !quoted) {
      if (!current.empty()) rows.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) rows.push_back(std::move(current));
  if (quoted) return Status::Corruption("unterminated quote in CSV input");

  std::vector<Value> docs;
  if (rows.empty()) return docs;
  std::vector<std::string> columns;
  size_t first_data_row = 0;
  if (options.has_header) {
    columns = SplitCsvLine(rows[0], options.delimiter);
    first_data_row = 1;
  } else {
    size_t width = SplitCsvLine(rows[0], options.delimiter).size();
    for (size_t i = 0; i < width; ++i) columns.push_back("c" + std::to_string(i));
  }
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    std::vector<std::string> cells = SplitCsvLine(rows[r], options.delimiter);
    if (cells.size() != columns.size()) {
      return Status::Corruption("row " + std::to_string(r + 1) + " has " +
                                std::to_string(cells.size()) + " cells, expected " +
                                std::to_string(columns.size()));
    }
    Value doc = Value::MakeObject();
    for (size_t c = 0; c < cells.size(); ++c) {
      doc.Set(columns[c], CellToValue(cells[c], options));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

Result<std::vector<Value>> ParseCsvFile(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsvString(buffer.str(), options);
}

std::string WriteCsvString(const std::vector<Value>& docs,
                           const CsvOptions& options) {
  // Column order: first-seen order across documents.
  std::vector<std::string> columns;
  std::set<std::string, std::less<>> seen;
  for (const Value& doc : docs) {
    if (!doc.is_object()) continue;
    for (const auto& [k, v] : doc.AsObject()) {
      if (seen.insert(k).second) columns.push_back(k);
    }
  }
  auto quote = [&](const std::string& cell) {
    bool needs = cell.find(options.delimiter) != std::string::npos ||
                 cell.find('"') != std::string::npos ||
                 cell.find('\n') != std::string::npos;
    if (!needs) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += "\"";
    return out;
  };
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c) out.push_back(options.delimiter);
    out += quote(columns[c]);
  }
  out.push_back('\n');
  for (const Value& doc : docs) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c) out.push_back(options.delimiter);
      const Value* v = doc.Find(columns[c]);
      if (v == nullptr || v->is_null()) continue;
      if (v->is_string()) {
        out += quote(v->AsString());
      } else {
        out += quote(v->ToJson());
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace storm
