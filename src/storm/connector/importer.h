// Importer: the top of the data connector. Takes parsed documents from any
// source (CSV, JSON-lines, …), discovers their schema, binds the (x, y, t)
// coordinates, optionally persists them into a RecordStore, and emits the
// (point, record-id) entries the ST-indexing module builds indexes from.
//
// The two modes of the demo — "import into the STORM storage engine" and
// "index in place without importing" — map to passing a RecordStore or not.

#ifndef STORM_CONNECTOR_IMPORTER_H_
#define STORM_CONNECTOR_IMPORTER_H_

#include <optional>
#include <string>
#include <vector>

#include "storm/connector/schema_discovery.h"
#include "storm/rtree/rtree.h"
#include "storm/storage/record_store.h"
#include "storm/util/time.h"

namespace storm {

struct ImportOptions {
  /// Explicit coordinate binding; leave fields empty for auto-discovery.
  SpatioTemporalBinding binding;
  /// Documents whose coordinates are missing/non-numeric are skipped
  /// (counted) instead of failing the import.
  bool skip_bad_documents = true;
};

struct ImportResult {
  Schema schema;
  SpatioTemporalBinding binding;
  uint64_t imported = 0;
  uint64_t skipped = 0;
  /// One (x, y, t) entry per imported document; t = 0 for purely spatial
  /// sources. Entry ids are RecordStore ids (import mode) or document
  /// positions (index-in-place mode).
  std::vector<RTree<3>::Entry> entries;
};

class Importer {
 public:
  /// `store` may be null: index-in-place mode (entry ids are positions in
  /// the caller's document vector, which the caller keeps).
  explicit Importer(RecordStore* store = nullptr) : store_(store) {}

  /// Imports/links a batch of documents.
  Result<ImportResult> ImportDocuments(const std::vector<Value>& docs,
                                       const ImportOptions& options = {});

 private:
  RecordStore* store_;
};

}  // namespace storm

#endif  // STORM_CONNECTOR_IMPORTER_H_
