// CSV/TSV data parser for the data connector (the "excel spreadsheet /
// text file" sources of the demo). RFC-4180 quoting, configurable
// delimiter, per-column type inference (int → double → string), header or
// synthesized column names. Rows become JSON documents ("free data module"
// conversion).

#ifndef STORM_CONNECTOR_CSV_H_
#define STORM_CONNECTOR_CSV_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storm/storage/value.h"
#include "storm/util/result.h"

namespace storm {

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are named c0, c1, ….
  bool has_header = true;
  /// Parse "true"/"false" (case-insensitive) as booleans.
  bool parse_bools = true;
};

/// Splits one CSV record (handles quotes; the record must already be one
/// logical row — use ParseCsvString for multi-line quoted fields).
std::vector<std::string> SplitCsvLine(std::string_view line, char delimiter);

/// Parses a whole CSV buffer into one JSON document per row. Values are
/// typed by cell content (int64, double, bool, string; empty cell → null).
Result<std::vector<Value>> ParseCsvString(std::string_view data,
                                          const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<std::vector<Value>> ParseCsvFile(const std::string& path,
                                        const CsvOptions& options = {});

/// Serializes documents to CSV using the union of their top-level scalar
/// fields as columns (arrays/objects are JSON-encoded into the cell) — the
/// reverse direction of the free data module.
std::string WriteCsvString(const std::vector<Value>& docs,
                           const CsvOptions& options = {});

}  // namespace storm

#endif  // STORM_CONNECTOR_CSV_H_
