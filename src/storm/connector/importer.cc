#include "storm/connector/importer.h"

#include "storm/util/time.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace storm {

namespace {

// Extracts a coordinate as double; strings are parsed as timestamps for the
// time axis and as plain numbers otherwise.
std::optional<double> CoordOf(const Value& doc, const std::string& field,
                              bool is_time) {
  const Value* v = doc.FindPath(field);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (v->is_number()) return v->AsDouble();
  if (v->is_string()) {
    if (is_time) return ParseTimestamp(v->AsString());
    double out = 0.0;
    const std::string& s = v->AsString();
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec == std::errc() && p == s.data() + s.size()) return out;
  }
  return std::nullopt;
}

}  // namespace

Result<ImportResult> Importer::ImportDocuments(const std::vector<Value>& docs,
                                               const ImportOptions& options) {
  ImportResult result;
  SchemaDiscovery discovery;
  for (const Value& doc : docs) discovery.Observe(doc);
  result.schema = discovery.Discover();
  if (options.binding.HasSpace()) {
    result.binding = options.binding;
  } else {
    std::optional<SpatioTemporalBinding> guessed =
        SchemaDiscovery::GuessBinding(result.schema);
    if (!guessed.has_value()) {
      return Status::InvalidArgument(
          "cannot discover spatial fields; pass an explicit binding");
    }
    result.binding = *guessed;
  }
  result.entries.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    const Value& doc = docs[i];
    std::optional<double> x = CoordOf(doc, result.binding.x_field, false);
    std::optional<double> y = CoordOf(doc, result.binding.y_field, false);
    std::optional<double> t =
        result.binding.HasTime()
            ? CoordOf(doc, result.binding.t_field, true)
            : std::optional<double>(0.0);
    if (!x.has_value() || !y.has_value() || !t.has_value()) {
      if (!options.skip_bad_documents) {
        return Status::InvalidArgument("document " + std::to_string(i) +
                                       " is missing coordinates");
      }
      ++result.skipped;
      continue;
    }
    RecordId id;
    if (store_ != nullptr) {
      Result<RecordId> appended = store_->Append(doc);
      if (!appended.ok()) {
        if (options.skip_bad_documents) {
          ++result.skipped;
          continue;
        }
        return appended.status();
      }
      id = *appended;
    } else {
      id = static_cast<RecordId>(i);
    }
    result.entries.push_back({Point3(*x, *y, *t), id});
    ++result.imported;
  }
  return result;
}

}  // namespace storm
