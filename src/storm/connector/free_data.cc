#include "storm/connector/free_data.h"

namespace storm {

namespace {

void FlattenInto(const std::string& prefix, const Value& v, Value* out) {
  if (v.is_object()) {
    for (const auto& [k, child] : v.AsObject()) {
      FlattenInto(prefix.empty() ? k : prefix + "." + k, child, out);
    }
    return;
  }
  out->Set(prefix, v);
}

}  // namespace

Value FlattenDocument(const Value& doc) {
  if (!doc.is_object()) return doc;
  Value out = Value::MakeObject();
  FlattenInto("", doc, &out);
  return out;
}

Value UnflattenDocument(const Value& flat) {
  if (!flat.is_object()) return flat;
  Value out = Value::MakeObject();
  for (const auto& [key, v] : flat.AsObject()) {
    Value* node = &out;
    std::string_view path = key;
    while (true) {
      size_t dot = path.find('.');
      if (dot == std::string_view::npos) break;
      std::string head(path.substr(0, dot));
      path.remove_prefix(dot + 1);
      Value* child = const_cast<Value*>(node->Find(head));
      if (child == nullptr || !child->is_object()) {
        node->Set(head, Value::MakeObject());
        child = const_cast<Value*>(node->Find(head));
      }
      node = child;
    }
    // Leaf: do not clobber an existing object with a scalar.
    const Value* existing = node->Find(path);
    if (existing == nullptr || !existing->is_object()) {
      node->Set(std::string(path), v);
    }
  }
  return out;
}

}  // namespace storm
