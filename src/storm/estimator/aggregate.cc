#include "storm/estimator/aggregate.h"

#include <algorithm>
#include <cmath>

namespace storm {

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kVariance:
      return "VARIANCE";
    case AggregateKind::kStddev:
      return "STDDEV";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
  }
  return "?";
}

template <int D>
OnlineAggregator<D>::OnlineAggregator(SpatialSampler<D>* sampler,
                                      AttributeFn<D> attr, AggregateKind kind,
                                      double confidence)
    : sampler_(sampler),
      attr_(std::move(attr)),
      kind_(kind),
      confidence_(confidence) {}

template <int D>
Status OnlineAggregator<D>::Begin(const Rect<D>& query) {
  stat_.Reset();
  exhausted_ = false;
  mode_ = SamplingMode::kWithoutReplacement;
  Status st = sampler_->Begin(query, mode_);
  if (st.IsNotSupported()) {
    mode_ = SamplingMode::kWithReplacement;
    st = sampler_->Begin(query, mode_);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  watch_.Restart();
  return Status::OK();
}

template <int D>
Status OnlineAggregator<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  stat_.Reset();
  exhausted_ = false;
  mode_ = mode;
  STORM_RETURN_NOT_OK(sampler_->Begin(query, mode_));
  began_ = true;
  watch_.Restart();
  return Status::OK();
}

template <int D>
void OnlineAggregator<D>::Merge(const OnlineAggregator& other) {
  stat_.Merge(other.stat_);
  // The merged stream can only be complete when every contributing stream
  // is; with-replacement shards never set this.
  exhausted_ = exhausted_ && other.exhausted_;
}

template <int D>
uint64_t OnlineAggregator<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  // Batched feed: one virtual dispatch per chunk instead of per sample.
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(batch - drawn, kChunk);
    uint64_t got =
        sampler_->NextBatch(std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    for (uint64_t i = 0; i < got; ++i) {
      double x = 1.0;
      if (kind_ != AggregateKind::kCount) {
        x = attr_(buf[i]);
        if (std::isnan(x)) {
          // SQL semantics: records with a NULL/missing attribute are not
          // part of the aggregated population. The draw still counts as
          // work.
          continue;
        }
      }
      stat_.Push(x);
    }
    drawn += got;
    if (got < ask) {
      // Short batch: the stream stalled or exhausted mid-chunk; settle it
      // on the next call rather than spinning here.
      exhausted_ = sampler_->IsExhausted();
      break;
    }
  }
  return drawn;
}

template <int D>
ConfidenceInterval OnlineAggregator<D>::RunUntil(const StoppingRule& rule,
                                                 uint64_t batch) {
  while (true) {
    uint64_t drawn = Step(batch);
    ConfidenceInterval ci = Current();
    if (rule.ShouldStop(ci, watch_.ElapsedMillis())) return ci;
    if (drawn == 0) return ci;  // exhausted or sampler gave up
  }
}

template <int D>
ConfidenceInterval OnlineAggregator<D>::Current() const {
  CardinalityEstimate card = sampler_->Cardinality();
  bool wor = mode_ == SamplingMode::kWithoutReplacement;
  uint64_t q_exact = card.exact ? card.lower : 0;
  ConfidenceInterval ci;
  switch (kind_) {
    case AggregateKind::kAvg:
      ci = MeanConfidence(stat_, confidence_, q_exact, wor);
      break;
    case AggregateKind::kSum:
      ci = SumConfidenceBounded(stat_, confidence_, card.lower, card.upper,
                                card.estimate, wor);
      break;
    case AggregateKind::kCount: {
      ci.confidence = confidence_;
      ci.samples = stat_.count();
      ci.estimate = card.estimate;
      if (card.exact) {
        ci.half_width = 0.0;
        ci.exact = true;
      } else {
        ci.half_width =
            (static_cast<double>(card.upper) - static_cast<double>(card.lower)) /
            2.0;
        // Bounds are hard, not statistical: clamp the midpoint estimate.
        ci.estimate = (static_cast<double>(card.upper) +
                       static_cast<double>(card.lower)) /
                      2.0;
      }
      break;
    }
    case AggregateKind::kVariance:
    case AggregateKind::kStddev: {
      ci.confidence = confidence_;
      ci.samples = stat_.count();
      double var = stat_.variance();
      ci.estimate = kind_ == AggregateKind::kVariance ? var : std::sqrt(var);
      // Large-sample CI for the variance assuming near-normal data:
      // Var(s²) ≈ 2σ⁴ / (k-1).
      if (stat_.count() >= 2) {
        double se_var =
            var * std::sqrt(2.0 / static_cast<double>(stat_.count() - 1));
        double hw_var = ZCritical(confidence_) * se_var;
        if (kind_ == AggregateKind::kVariance) {
          ci.half_width = hw_var;
        } else {
          double sd = std::sqrt(var);
          ci.half_width = sd > 0 ? hw_var / (2.0 * sd) : 0.0;
        }
      } else {
        ci.half_width = std::numeric_limits<double>::infinity();
      }
      break;
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      ci.confidence = confidence_;
      ci.samples = stat_.count();
      ci.estimate = kind_ == AggregateKind::kMin ? stat_.min() : stat_.max();
      ci.half_width = std::numeric_limits<double>::infinity();  // no guarantee
      break;
    }
  }
  if (exhausted_ && mode_ == SamplingMode::kWithoutReplacement) {
    ci.exact = true;
    ci.half_width = 0.0;
  }
  return ci;
}

template <int D>
bool OnlineAggregator<D>::Exhausted() const {
  return exhausted_;
}

template class OnlineAggregator<2>;
template class OnlineAggregator<3>;

}  // namespace storm
