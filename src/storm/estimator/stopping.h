// Stopping rules for online queries (§1): user-satisfied termination is the
// caller's Ctrl-C; these rules implement the other two modes — a
// query-specific quality requirement, and "best effort" time budgets.

#ifndef STORM_ESTIMATOR_STOPPING_H_
#define STORM_ESTIMATOR_STOPPING_H_

#include <cstdint>
#include <limits>

#include "storm/estimator/confidence.h"

namespace storm {

/// Declarative stopping condition; any satisfied clause stops the query.
/// Default: never stop (pure online mode, caller decides).
struct StoppingRule {
  /// Stop when the CI half-width drops to this absolute value.
  double target_half_width = 0.0;
  /// Stop when half_width / |estimate| drops to this value.
  double target_relative_error = 0.0;
  /// Stop after this many samples.
  uint64_t max_samples = 0;
  /// Stop after this much wall-clock time.
  double max_millis = 0.0;

  static StoppingRule RelativeError(double rel) {
    StoppingRule r;
    r.target_relative_error = rel;
    return r;
  }
  static StoppingRule HalfWidth(double hw) {
    StoppingRule r;
    r.target_half_width = hw;
    return r;
  }
  static StoppingRule TimeBudgetMillis(double ms) {
    StoppingRule r;
    r.max_millis = ms;
    return r;
  }
  static StoppingRule Samples(uint64_t k) {
    StoppingRule r;
    r.max_samples = k;
    return r;
  }

  /// True when the query should stop. Quality clauses require at least a
  /// handful of samples so a lucky tiny variance cannot stop a query after
  /// two draws.
  bool ShouldStop(const ConfidenceInterval& ci, double elapsed_millis) const {
    if (ci.exact) return true;
    if (max_samples > 0 && ci.samples >= max_samples) return true;
    if (max_millis > 0.0 && elapsed_millis >= max_millis) return true;
    constexpr uint64_t kMinSamples = 30;
    if (ci.samples >= kMinSamples) {
      if (target_half_width > 0.0 && ci.half_width <= target_half_width) {
        return true;
      }
      if (target_relative_error > 0.0 &&
          ci.RelativeError() <= target_relative_error) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace storm

#endif  // STORM_ESTIMATOR_STOPPING_H_
