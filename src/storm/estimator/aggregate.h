// OnlineAggregator: the bridge from spatial online samples to online
// spatio-temporal aggregates (§3.2 "feature module").
//
// An aggregator owns nothing: it drives a SpatialSampler the caller set up
// over an index, looks attribute values up through a caller-provided
// accessor, and maintains a running unbiased estimate with a confidence
// interval that tightens as samples arrive. The caller pumps Step() in a
// loop (typically interleaved with UI updates) and reads Current() at any
// time — that is what makes the query "online".

#ifndef STORM_ESTIMATOR_AGGREGATE_H_
#define STORM_ESTIMATOR_AGGREGATE_H_

#include <functional>
#include <limits>

#include "storm/estimator/confidence.h"
#include "storm/estimator/stopping.h"
#include "storm/sampling/sampler.h"
#include "storm/util/stats.h"
#include "storm/util/stopwatch.h"

namespace storm {

/// Supported aggregate functions.
enum class AggregateKind {
  kAvg,
  kSum,
  kCount,
  kVariance,
  kStddev,
  kMin,  ///< no CI: sample extrema are biased; reported best-effort
  kMax,  ///< no CI: sample extrema are biased; reported best-effort
};

std::string_view AggregateKindToString(AggregateKind kind);

/// Pulls an attribute value out of a sampled entry. Typically binds a
/// RecordStore lookup by entry.id, or an in-memory column.
template <int D>
using AttributeFn = std::function<double(const typename RTree<D>::Entry&)>;

template <int D>
class OnlineAggregator {
 public:
  using Entry = typename RTree<D>::Entry;

  /// `sampler` must outlive the aggregator. `attr` may be empty for kCount.
  OnlineAggregator(SpatialSampler<D>* sampler, AttributeFn<D> attr,
                   AggregateKind kind, double confidence = 0.95);

  /// Starts the online query. Prefers without-replacement sampling (lower
  /// variance, exact exhaustion) and falls back to with-replacement when
  /// the sampler does not support it — except LS-tree-style samplers where
  /// it is the other way round.
  Status Begin(const Rect<D>& query);

  /// Starts the online query in exactly `mode`, no fallback. The parallel
  /// engine forces kWithReplacement on every worker: independent
  /// with-replacement streams merge into one unbiased estimator, whereas
  /// merged without-replacement streams would double-count across workers
  /// and invalidate the finite-population correction.
  Status Begin(const Rect<D>& query, SamplingMode mode);

  /// Draws up to `batch` more samples (stops early on exhaustion).
  /// Returns the number actually drawn.
  uint64_t Step(uint64_t batch = 64);

  /// Runs Step() until the stopping rule fires or the stream is exhausted;
  /// returns the final estimate.
  ConfidenceInterval RunUntil(const StoppingRule& rule, uint64_t batch = 64);

  /// The current online estimate with its CI.
  ConfidenceInterval Current() const;

  /// Folds another aggregator's sample stream into this one (parallel
  /// merge of the running moments, Chan et al.). Both sides must estimate
  /// the same attribute and kind from independent streams over the same
  /// population; the merged state is exactly what a single aggregator
  /// would hold after seeing both streams.
  void Merge(const OnlineAggregator& other);

  /// True when no further samples can improve the estimate.
  bool Exhausted() const;

  uint64_t samples_drawn() const { return stat_.count(); }
  double elapsed_millis() const { return watch_.ElapsedMillis(); }
  const RunningStat& stat() const { return stat_; }
  SamplingMode mode() const { return mode_; }

 private:
  SpatialSampler<D>* sampler_;
  AttributeFn<D> attr_;
  AggregateKind kind_;
  double confidence_;
  SamplingMode mode_ = SamplingMode::kWithoutReplacement;
  RunningStat stat_;
  Stopwatch watch_;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class OnlineAggregator<2>;
extern template class OnlineAggregator<3>;

}  // namespace storm

#endif  // STORM_ESTIMATOR_AGGREGATE_H_
