// Online GROUP BY estimates from spatial online samples.
//
// Groups are discovered as samples arrive (a group with no samples yet is
// simply unknown — the classic online group-by caveat from Xu et al. 2008);
// per-group aggregates get per-group confidence intervals, and per-group
// cardinalities are estimated from the sample proportions with binomial
// CIs.

#ifndef STORM_ESTIMATOR_GROUP_BY_H_
#define STORM_ESTIMATOR_GROUP_BY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "storm/estimator/aggregate.h"

namespace storm {

template <int D>
class GroupByAggregator {
 public:
  using Entry = typename RTree<D>::Entry;
  /// Maps a sampled entry to its group key (e.g. station id, hour of day).
  using KeyFn = std::function<int64_t(const Entry&)>;

  struct GroupEstimate {
    int64_t key = 0;
    /// The group aggregate (AVG/SUM/COUNT per `kind`).
    ConfidenceInterval ci;
    /// Estimated number of qualifying records in this group.
    ConfidenceInterval group_size;
    uint64_t samples = 0;
  };

  /// Supports kAvg, kSum and kCount. `attr` may be empty for kCount.
  GroupByAggregator(SpatialSampler<D>* sampler, KeyFn key, AttributeFn<D> attr,
                    AggregateKind kind, double confidence = 0.95);

  Status Begin(const Rect<D>& query);

  /// Starts in exactly `mode`, no fallback (see OnlineAggregator::Begin).
  Status Begin(const Rect<D>& query, SamplingMode mode);

  /// Draws up to `batch` samples; returns the number drawn.
  uint64_t Step(uint64_t batch = 64);

  /// Folds another aggregator's per-group running moments into this one
  /// (parallel merge; groups only one side discovered simply carry over).
  void Merge(const GroupByAggregator& other);

  /// Snapshot of all discovered groups, ordered by key.
  std::vector<GroupEstimate> Current() const;

  uint64_t total_samples() const { return total_samples_; }
  bool Exhausted() const { return exhausted_; }

 private:
  SpatialSampler<D>* sampler_;
  KeyFn key_;
  AttributeFn<D> attr_;
  AggregateKind kind_;
  double confidence_;
  SamplingMode mode_ = SamplingMode::kWithoutReplacement;
  std::map<int64_t, RunningStat> groups_;
  uint64_t total_samples_ = 0;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class GroupByAggregator<2>;
extern template class GroupByAggregator<3>;

}  // namespace storm

#endif  // STORM_ESTIMATOR_GROUP_BY_H_
