// Confidence intervals for online estimates (the statistics of §3.2).
//
// By the CLT the sample mean X̄ of k spatial online samples approaches
// Normal(μ, σ²/k); estimating σ from the sample gives the standard
// large-sample CI used by classic online aggregation (Hellerstein et al.
// 1997, Haas 1997). In without-replacement mode with known population size
// q, the finite population correction (q-k)/(q-1) applies and the interval
// collapses to zero width as k → q.

#ifndef STORM_ESTIMATOR_CONFIDENCE_H_
#define STORM_ESTIMATOR_CONFIDENCE_H_

#include <cstdint>
#include <string>

#include "storm/util/stats.h"

namespace storm {

/// A symmetric large-sample confidence interval around an estimate.
struct ConfidenceInterval {
  double estimate = 0.0;
  /// Half-width of the interval: the true value lies in
  /// [estimate - half_width, estimate + half_width] with probability
  /// `confidence` (asymptotically).
  double half_width = 0.0;
  double confidence = 0.95;
  uint64_t samples = 0;
  /// True when the estimate is exact (population exhausted), so
  /// half_width == 0 deterministically rather than statistically.
  bool exact = false;

  double lower() const { return estimate - half_width; }
  double upper() const { return estimate + half_width; }

  /// half_width / |estimate|; infinity when the estimate is 0.
  double RelativeError() const;

  std::string ToString() const;
};

/// CI for the population *mean* from a sample accumulator.
/// `population_size` is q when known exactly (enables the FPC in
/// without-replacement mode); pass 0 when unknown or sampling with
/// replacement.
ConfidenceInterval MeanConfidence(const RunningStat& stat, double confidence,
                                  uint64_t population_size = 0,
                                  bool without_replacement = false);

/// CI for the population *sum* q·μ. Requires a cardinality estimate q̂ for
/// the scale-up; when `cardinality_exact` is false the returned interval
/// additionally inflates by the cardinality uncertainty and is flagged
/// non-exact.
ConfidenceInterval SumConfidence(const RunningStat& stat, double confidence,
                                 double cardinality_estimate,
                                 bool cardinality_exact,
                                 bool without_replacement = false);

/// Sharper SUM interval when the sampler reports hard cardinality bounds
/// (RS-tree frontiers do): the interval is the union of q·(μ ± hw) over
/// q ∈ [lower, upper]. Falls back to the crude ±50% inflation when the
/// upper bound is the unbounded sentinel.
ConfidenceInterval SumConfidenceBounded(const RunningStat& stat,
                                        double confidence,
                                        uint64_t cardinality_lower,
                                        uint64_t cardinality_upper,
                                        double cardinality_estimate,
                                        bool without_replacement = false);

}  // namespace storm

#endif  // STORM_ESTIMATOR_CONFIDENCE_H_
