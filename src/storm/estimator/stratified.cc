#include "storm/estimator/stratified.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace storm {

namespace {
constexpr uint64_t kChunk = 256;  // stack buffer for batched draws
}  // namespace

template <int D>
StratifiedAggregator<D>::StratifiedAggregator(StratifiedSampler<D>* sampler,
                                              AttributeFn<D> attr,
                                              AggregateKind kind,
                                              double confidence, int worker,
                                              int num_workers)
    : sampler_(sampler),
      attr_(std::move(attr)),
      kind_(kind),
      confidence_(confidence),
      worker_(worker),
      num_workers_(num_workers < 1 ? 1 : num_workers) {}

template <int D>
Status StratifiedAggregator<D>::Begin(const Rect<D>& query) {
  mode_ = SamplingMode::kWithoutReplacement;
  Status st = sampler_->Begin(query, mode_);
  if (st.IsNotSupported()) {
    mode_ = SamplingMode::kWithReplacement;
    st = sampler_->Begin(query, mode_);
  }
  STORM_RETURN_NOT_OK(st);
  stats_.assign(sampler_->Strata(), RunningStat());
  exhausted_ = stats_.empty();
  began_ = true;
  watch_.Restart();
  return Status::OK();
}

template <int D>
Status StratifiedAggregator<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  mode_ = mode;
  STORM_RETURN_NOT_OK(sampler_->Begin(query, mode_));
  stats_.assign(sampler_->Strata(), RunningStat());
  exhausted_ = stats_.empty();
  began_ = true;
  watch_.Restart();
  return Status::OK();
}

template <int D>
uint64_t StratifiedAggregator<D>::samples_drawn() const {
  uint64_t n = 0;
  for (const RunningStat& s : stats_) n += s.count();
  return n;
}

template <int D>
void StratifiedAggregator<D>::Merge(const StratifiedAggregator& other) {
  for (size_t h = 0; h < stats_.size() && h < other.stats_.size(); ++h) {
    stats_[h].Merge(other.stats_[h]);
  }
  exhausted_ = exhausted_ && other.exhausted_;
}

// Splits `batch` over the live owned strata: every stratum gets the
// exploration floor first (variance estimates must not starve — a stratum
// Neyman currently considers quiet may just be under-observed), then the
// remainder goes ∝ N_h·σ̂_h. Strata without a variance estimate yet borrow
// the pooled within-stratum σ̂; if nothing has one, allocation falls back
// to ∝ N_h (proportional allocation). Fully deterministic: leftovers from
// integer rounding go to the lowest-indexed live strata.
template <int D>
void StratifiedAggregator<D>::AllocateBudget(uint64_t batch,
                                             std::vector<uint64_t>* quota) const {
  const size_t H = stats_.size();
  quota->assign(H, 0);
  std::vector<size_t> live;
  for (size_t h = 0; h < H; ++h) {
    if (!Owned(h)) continue;
    if (sampler_->StratumPopulation(h) == 0) continue;
    if (sampler_->StratumExhausted(h)) continue;
    live.push_back(h);
  }
  if (live.empty() || batch == 0) return;

  uint64_t floor = sampler_->options().exploration_floor;
  if (floor * live.size() > batch) {
    floor = batch / live.size();  // may be 0: tiny batches skip the floor
  }
  uint64_t spent = 0;
  for (size_t h : live) {
    (*quota)[h] = floor;
    spent += floor;
  }
  uint64_t remaining = batch - spent;
  if (remaining == 0) {
    // Tiny batch: round-robin one draw each until the batch is gone.
    if (floor == 0) {
      for (size_t i = 0; i < live.size() && i < batch; ++i) {
        (*quota)[live[i]] = 1;
      }
    }
    return;
  }

  // Pooled within-stratum σ̂ for strata that cannot estimate their own yet.
  double pooled_num = 0.0, pooled_den = 0.0;
  for (size_t h : live) {
    if (stats_[h].count() >= 2) {
      double dof = static_cast<double>(stats_[h].count() - 1);
      pooled_num += dof * stats_[h].variance();
      pooled_den += dof;
    }
  }
  const double pooled = pooled_den > 0.0 ? std::sqrt(pooled_num / pooled_den)
                                         : 0.0;
  std::vector<double> weight(live.size(), 0.0);
  double total_weight = 0.0;
  for (size_t i = 0; i < live.size(); ++i) {
    size_t h = live[i];
    double sigma = stats_[h].count() >= 2 ? stats_[h].stddev() : pooled;
    weight[i] = static_cast<double>(sampler_->StratumPopulation(h)) * sigma;
    total_weight += weight[i];
  }
  if (total_weight <= 0.0) {
    // No variance signal anywhere yet: proportional allocation.
    for (size_t i = 0; i < live.size(); ++i) {
      weight[i] = static_cast<double>(sampler_->StratumPopulation(live[i]));
      total_weight += weight[i];
    }
  }
  if (total_weight <= 0.0) return;

  uint64_t given = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    uint64_t n = static_cast<uint64_t>(static_cast<double>(remaining) *
                                       weight[i] / total_weight);
    (*quota)[live[i]] += n;
    given += n;
  }
  // Rounding leftover to the lowest-indexed live strata, one each.
  for (size_t i = 0; given < remaining; i = (i + 1) % live.size()) {
    ++(*quota)[live[i]];
    ++given;
  }
}

template <int D>
uint64_t StratifiedAggregator<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  std::vector<uint64_t> quota;
  AllocateBudget(batch, &quota);
  Entry buf[kChunk];
  uint64_t drawn = 0;
  for (size_t h = 0; h < quota.size(); ++h) {
    uint64_t want = quota[h];
    while (want > 0) {
      uint64_t ask = std::min<uint64_t>(want, kChunk);
      uint64_t got = sampler_->NextBatchFrom(
          h, std::span<Entry>(buf, static_cast<size_t>(ask)));
      for (uint64_t i = 0; i < got; ++i) {
        double x = 1.0;
        if (kind_ != AggregateKind::kCount) {
          x = attr_(buf[i]);
          // SQL semantics: NULL/missing attributes leave the aggregated
          // population; the draw still counts as work.
          if (std::isnan(x)) continue;
        }
        stats_[h].Push(x);
      }
      drawn += got;
      if (got < ask) break;  // stratum exhausted or stalled
      want -= ask;
    }
  }
  if (mode_ == SamplingMode::kWithoutReplacement || drawn == 0) {
    bool all_done = true;
    for (size_t h = 0; h < stats_.size(); ++h) {
      if (Owned(h) && sampler_->StratumPopulation(h) > 0 &&
          !sampler_->StratumExhausted(h)) {
        all_done = false;
        break;
      }
    }
    exhausted_ = all_done;
  }
  return drawn;
}

template <int D>
ConfidenceInterval StratifiedAggregator<D>::RunUntil(const StoppingRule& rule,
                                                     uint64_t batch) {
  while (true) {
    uint64_t drawn = Step(batch);
    ConfidenceInterval ci = Current();
    if (rule.ShouldStop(ci, watch_.ElapsedMillis())) return ci;
    if (drawn == 0) return ci;
  }
}

template <int D>
ConfidenceInterval StratifiedAggregator<D>::Current() const {
  ConfidenceInterval ci;
  ci.confidence = confidence_;
  ci.samples = samples_drawn();
  if (!began_) return ci;

  uint64_t total = 0;
  for (size_t h = 0; h < stats_.size(); ++h) {
    total += sampler_->StratumPopulation(h);
  }

  if (kind_ == AggregateKind::kCount) {
    // Stratum populations are exact, so COUNT is exact immediately.
    ci.estimate = static_cast<double>(total);
    ci.half_width = 0.0;
    ci.exact = true;
    return ci;
  }
  if (total == 0) {
    ci.exact = true;
    return ci;  // empty query box
  }

  const bool wor = mode_ == SamplingMode::kWithoutReplacement;
  const double z = ZCritical(confidence_);
  double est_covered = 0.0;   // Σ over covered strata of (weight · x̄_h)
  double covered_pop = 0.0;   // Σ over covered strata of N_h
  double var = 0.0;           // variance of the stratified estimator
  bool all_covered = true;    // every non-empty stratum has ≥1 sample
  bool var_known = true;      // every non-empty stratum has ≥2 samples
  for (size_t h = 0; h < stats_.size(); ++h) {
    const double N_h = static_cast<double>(sampler_->StratumPopulation(h));
    if (N_h <= 0.0) continue;
    const uint64_t n_h = stats_[h].count();
    if (n_h == 0) {
      all_covered = false;
      continue;
    }
    covered_pop += N_h;
    const double scale =
        kind_ == AggregateKind::kAvg ? N_h / static_cast<double>(total) : N_h;
    est_covered += scale * stats_[h].mean();
    if (n_h >= 2) {
      double fpc = 1.0;
      if (wor && N_h > 1.0) {
        fpc = std::max(0.0, 1.0 - static_cast<double>(n_h) / N_h);
      }
      var += scale * scale * stats_[h].variance() /
             static_cast<double>(n_h) * fpc;
    } else if (N_h > 1.0) {
      var_known = false;  // contributes variance we cannot bound yet
    }
  }

  if (covered_pop <= 0.0) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  // Renormalize over the covered strata until every stratum is observed —
  // unbiased only under homogeneity, hence the infinite half-width below.
  const double coverage = covered_pop / static_cast<double>(total);
  ci.estimate = est_covered / coverage;
  if (!all_covered || !var_known) {
    ci.half_width = std::numeric_limits<double>::infinity();
  } else {
    ci.half_width = z * std::sqrt(var);
  }
  if (exhausted_ && wor && num_workers_ <= 1) {
    ci.exact = true;
    ci.half_width = 0.0;
  }
  return ci;
}

template class StratifiedAggregator<2>;
template class StratifiedAggregator<3>;

}  // namespace storm
