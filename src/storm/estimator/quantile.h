// Online quantile estimation from spatial online samples.
//
// An extension of the paper's estimator family beyond SUM/AVG: the
// population quantile Q(φ) is estimated by the sample quantile, with a
// distribution-free confidence interval from order statistics — the
// interval [X(l), X(u)] covers Q(φ) with the target probability where l, u
// are binomial quantile bounds around φ·k (no normality assumption on the
// data; only the binomial-to-normal approximation for k ≳ 30).

#ifndef STORM_ESTIMATOR_QUANTILE_H_
#define STORM_ESTIMATOR_QUANTILE_H_

#include <vector>

#include "storm/estimator/confidence.h"
#include "storm/estimator/stopping.h"
#include "storm/sampling/sampler.h"
#include "storm/util/stopwatch.h"

namespace storm {

template <int D>
using QuantileAttributeFn = std::function<double(const typename RTree<D>::Entry&)>;

/// Online estimator for one quantile φ ∈ (0, 1) of an attribute.
template <int D>
class OnlineQuantile {
 public:
  using Entry = typename RTree<D>::Entry;

  /// `phi` is the quantile (0.5 = median). NaN attribute values are
  /// excluded from the population (SQL NULL semantics).
  OnlineQuantile(SpatialSampler<D>* sampler, QuantileAttributeFn<D> attr,
                 double phi, double confidence = 0.95);

  Status Begin(const Rect<D>& query);

  /// Starts in exactly `mode`, no fallback (see OnlineAggregator::Begin).
  Status Begin(const Rect<D>& query, SamplingMode mode);

  /// Draws up to `batch` samples; returns the number drawn.
  uint64_t Step(uint64_t batch = 64);

  /// Folds another estimator's observed values into this one. Order
  /// statistics merge exactly by concatenation — the merged CI is the one
  /// a single estimator would compute over both streams.
  void Merge(const OnlineQuantile& other);

  /// Current estimate: `estimate` is the sample quantile; the interval
  /// [lower(), upper()] is the order-statistic CI (asymmetric in general,
  /// reported via half_width = max distance for StoppingRule compatibility,
  /// with the exact bounds in ci_lower/ci_upper).
  ConfidenceInterval Current() const;

  /// Exact asymmetric CI bounds.
  double ci_lower() const;
  double ci_upper() const;

  ConfidenceInterval RunUntil(const StoppingRule& rule, uint64_t batch = 64);

  uint64_t samples() const { return values_.size(); }
  bool Exhausted() const { return exhausted_; }
  double elapsed_millis() const { return watch_.ElapsedMillis(); }

 private:
  void EnsureSorted() const;

  SpatialSampler<D>* sampler_;
  QuantileAttributeFn<D> attr_;
  double phi_;
  double confidence_;
  SamplingMode mode_ = SamplingMode::kWithoutReplacement;
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  Stopwatch watch_;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class OnlineQuantile<2>;
extern template class OnlineQuantile<3>;

}  // namespace storm

#endif  // STORM_ESTIMATOR_QUANTILE_H_
