#include "storm/estimator/quantile.h"

#include <algorithm>
#include <cmath>
#include <span>

namespace storm {

template <int D>
OnlineQuantile<D>::OnlineQuantile(SpatialSampler<D>* sampler,
                                  QuantileAttributeFn<D> attr, double phi,
                                  double confidence)
    : sampler_(sampler),
      attr_(std::move(attr)),
      phi_(phi),
      confidence_(confidence) {
  assert(phi_ > 0.0 && phi_ < 1.0);
}

template <int D>
Status OnlineQuantile<D>::Begin(const Rect<D>& query) {
  values_.clear();
  sorted_ = true;
  exhausted_ = false;
  mode_ = SamplingMode::kWithoutReplacement;
  Status st = sampler_->Begin(query, mode_);
  if (st.IsNotSupported()) {
    mode_ = SamplingMode::kWithReplacement;
    st = sampler_->Begin(query, mode_);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  watch_.Restart();
  return Status::OK();
}

template <int D>
Status OnlineQuantile<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  values_.clear();
  sorted_ = true;
  exhausted_ = false;
  mode_ = mode;
  STORM_RETURN_NOT_OK(sampler_->Begin(query, mode_));
  began_ = true;
  watch_.Restart();
  return Status::OK();
}

template <int D>
void OnlineQuantile<D>::Merge(const OnlineQuantile& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  if (!other.values_.empty()) sorted_ = false;
  exhausted_ = exhausted_ && other.exhausted_;
}

template <int D>
uint64_t OnlineQuantile<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(kChunk, batch - drawn);
    size_t got = sampler_->NextBatch(
        std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    for (size_t i = 0; i < got; ++i) {
      double x = attr_(buf[i]);
      if (std::isnan(x)) continue;
      values_.push_back(x);
      sorted_ = false;
    }
    drawn += got;
  }
  return drawn;
}

template <int D>
void OnlineQuantile<D>::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

template <int D>
double OnlineQuantile<D>::ci_lower() const {
  EnsureSorted();
  if (values_.empty()) return -std::numeric_limits<double>::infinity();
  double k = static_cast<double>(values_.size());
  double z = ZCritical(confidence_);
  double lo_rank = k * phi_ - z * std::sqrt(k * phi_ * (1 - phi_));
  auto idx = static_cast<int64_t>(std::floor(lo_rank));
  if (idx < 0) return -std::numeric_limits<double>::infinity();
  return values_[static_cast<size_t>(idx)];
}

template <int D>
double OnlineQuantile<D>::ci_upper() const {
  EnsureSorted();
  if (values_.empty()) return std::numeric_limits<double>::infinity();
  double k = static_cast<double>(values_.size());
  double z = ZCritical(confidence_);
  double hi_rank = k * phi_ + z * std::sqrt(k * phi_ * (1 - phi_));
  auto idx = static_cast<int64_t>(std::ceil(hi_rank));
  if (idx >= static_cast<int64_t>(values_.size())) {
    return std::numeric_limits<double>::infinity();
  }
  return values_[static_cast<size_t>(idx)];
}

template <int D>
ConfidenceInterval OnlineQuantile<D>::Current() const {
  ConfidenceInterval ci;
  ci.confidence = confidence_;
  ci.samples = values_.size();
  if (values_.empty()) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  EnsureSorted();
  size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(values_.size()) - 1,
                       std::floor(phi_ * static_cast<double>(values_.size()))));
  ci.estimate = values_[rank];
  double lo = ci_lower(), hi = ci_upper();
  if (std::isinf(lo) || std::isinf(hi)) {
    ci.half_width = std::numeric_limits<double>::infinity();
  } else {
    ci.half_width = std::max(ci.estimate - lo, hi - ci.estimate);
  }
  if (exhausted_) {
    ci.exact = true;
    ci.half_width = 0.0;
  }
  return ci;
}

template <int D>
ConfidenceInterval OnlineQuantile<D>::RunUntil(const StoppingRule& rule,
                                               uint64_t batch) {
  while (true) {
    uint64_t drawn = Step(batch);
    ConfidenceInterval ci = Current();
    if (rule.ShouldStop(ci, watch_.ElapsedMillis())) return ci;
    if (drawn == 0) return ci;
  }
}

template class OnlineQuantile<2>;
template class OnlineQuantile<3>;

}  // namespace storm
