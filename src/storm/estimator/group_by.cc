#include "storm/estimator/group_by.h"

#include <algorithm>
#include <cmath>

namespace storm {

template <int D>
GroupByAggregator<D>::GroupByAggregator(SpatialSampler<D>* sampler, KeyFn key,
                                        AttributeFn<D> attr, AggregateKind kind,
                                        double confidence)
    : sampler_(sampler),
      key_(std::move(key)),
      attr_(std::move(attr)),
      kind_(kind),
      confidence_(confidence) {
  assert(kind_ == AggregateKind::kAvg || kind_ == AggregateKind::kSum ||
         kind_ == AggregateKind::kCount);
}

template <int D>
Status GroupByAggregator<D>::Begin(const Rect<D>& query) {
  groups_.clear();
  total_samples_ = 0;
  exhausted_ = false;
  mode_ = SamplingMode::kWithoutReplacement;
  Status st = sampler_->Begin(query, mode_);
  if (st.IsNotSupported()) {
    mode_ = SamplingMode::kWithReplacement;
    st = sampler_->Begin(query, mode_);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  return Status::OK();
}

template <int D>
Status GroupByAggregator<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  groups_.clear();
  total_samples_ = 0;
  exhausted_ = false;
  mode_ = mode;
  STORM_RETURN_NOT_OK(sampler_->Begin(query, mode_));
  began_ = true;
  return Status::OK();
}

template <int D>
void GroupByAggregator<D>::Merge(const GroupByAggregator& other) {
  for (const auto& [key, stat] : other.groups_) {
    groups_[key].Merge(stat);
  }
  total_samples_ += other.total_samples_;
  exhausted_ = exhausted_ && other.exhausted_;
}

template <int D>
uint64_t GroupByAggregator<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  // Batched feed: one virtual dispatch per chunk instead of per sample.
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(batch - drawn, kChunk);
    uint64_t got =
        sampler_->NextBatch(std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    for (uint64_t i = 0; i < got; ++i) {
      double x = kind_ == AggregateKind::kCount ? 1.0 : attr_(buf[i]);
      groups_[key_(buf[i])].Push(x);
      ++total_samples_;
    }
    drawn += got;
    if (got < ask) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
  }
  return drawn;
}

template <int D>
std::vector<typename GroupByAggregator<D>::GroupEstimate>
GroupByAggregator<D>::Current() const {
  std::vector<GroupEstimate> out;
  out.reserve(groups_.size());
  CardinalityEstimate card = sampler_->Cardinality();
  double k = static_cast<double>(total_samples_);
  for (const auto& [key, stat] : groups_) {
    GroupEstimate g;
    g.key = key;
    g.samples = stat.count();
    // Group size estimate: q̂ · (k_g / k), binomial proportion CI.
    double p = k > 0 ? static_cast<double>(stat.count()) / k : 0.0;
    g.group_size.confidence = confidence_;
    g.group_size.samples = stat.count();
    g.group_size.estimate = card.estimate * p;
    if (k >= 2 && p > 0.0) {
      double se_p = std::sqrt(p * (1 - p) / k);
      g.group_size.half_width = ZCritical(confidence_) * card.estimate * se_p;
      if (!card.exact) {
        g.group_size.half_width +=
            0.5 * g.group_size.estimate;  // cardinality slack, as SumConfidence
      }
    } else {
      g.group_size.half_width = std::numeric_limits<double>::infinity();
    }
    if (exhausted_ && mode_ == SamplingMode::kWithoutReplacement) {
      g.group_size.half_width = 0.0;
      g.group_size.exact = true;
      g.group_size.estimate = static_cast<double>(stat.count());
    }
    switch (kind_) {
      case AggregateKind::kAvg:
        // Within-group mean: the group's samples are a uniform sample of
        // the group's qualifying records.
        g.ci = MeanConfidence(stat, confidence_, 0, false);
        break;
      case AggregateKind::kSum:
        g.ci = SumConfidence(stat, confidence_, g.group_size.estimate,
                             g.group_size.exact, false);
        break;
      case AggregateKind::kCount:
        g.ci = g.group_size;
        break;
      default:
        break;
    }
    if (exhausted_ && mode_ == SamplingMode::kWithoutReplacement) {
      g.ci.exact = true;
      if (kind_ == AggregateKind::kAvg) g.ci.half_width = 0.0;
      if (kind_ == AggregateKind::kSum) {
        g.ci.estimate = stat.sum();
        g.ci.half_width = 0.0;
      }
    }
    out.push_back(std::move(g));
  }
  return out;
}

template class GroupByAggregator<2>;
template class GroupByAggregator<3>;

}  // namespace storm
