// StratifiedAggregator: per-stratum online estimation with Neyman
// allocation over a StratifiedSampler (the estimator half of the stratified
// engine; see src/storm/sampling/stratified.h for the partition half).
//
// Each stratum h keeps its own RunningStat. Every Step(batch) round splits
// the batch across the live strata: an exploration floor per stratum first
// (so variance estimates never starve), then the remainder by Neyman
// allocation n_h ∝ N_h·σ̂_h — the allocation that minimizes the variance of
// the stratified estimator for a fixed total budget. Strata the data makes
// quiet (small σ̂_h) get few samples; volatile ones get many.
//
// The combined estimates use exact stratum weights W_h = N_h / N (stratum
// populations are exact at Begin):
//
//   AVG:  x̂ = Σ W_h·x̄_h         Var = Σ W_h²·s²_h/n_h·fpc_h
//   SUM:  x̂ = Σ N_h·x̄_h         Var = Σ N_h²·s²_h/n_h·fpc_h
//   COUNT: exact (Σ N_h), zero-width interval immediately.
//
// fpc_h = (1 - n_h/N_h) in without-replacement mode. Until every non-empty
// stratum has at least one sample the half-width is infinite (the missing
// strata could hold anything); the estimate meanwhile renormalizes over the
// covered strata.
//
// Parallel workers own disjoint strata (h % num_workers == worker) of
// their own sampler instance — the partition is RNG-free, so stratum
// indices align across workers — and Merge() folds the per-stratum
// moments, after which Current() sees every stratum covered.

#ifndef STORM_ESTIMATOR_STRATIFIED_H_
#define STORM_ESTIMATOR_STRATIFIED_H_

#include <vector>

#include "storm/estimator/aggregate.h"
#include "storm/sampling/stratified.h"

namespace storm {

template <int D>
class StratifiedAggregator {
 public:
  using Entry = typename RTree<D>::Entry;

  /// `sampler` must outlive the aggregator. `attr` may be empty for kCount.
  /// Supported kinds: kAvg, kSum, kCount (the optimizer gates the rest to
  /// the uniform path). `worker`/`num_workers` select the strata this
  /// instance owns: h with h % num_workers == worker.
  StratifiedAggregator(StratifiedSampler<D>* sampler, AttributeFn<D> attr,
                       AggregateKind kind, double confidence = 0.95,
                       int worker = 0, int num_workers = 1);

  /// Prefers without-replacement (per-stratum exhaustion gives exact
  /// answers), falls back to with-replacement if unsupported.
  Status Begin(const Rect<D>& query);
  /// Exact mode, no fallback (the parallel engine forces with-replacement).
  Status Begin(const Rect<D>& query, SamplingMode mode);

  /// Draws up to `batch` samples, split across owned strata by the
  /// exploration floor + Neyman allocation. Returns the number drawn.
  uint64_t Step(uint64_t batch = 64);

  /// Runs Step() until the stopping rule fires or the stream is exhausted.
  ConfidenceInterval RunUntil(const StoppingRule& rule, uint64_t batch = 64);

  /// The current combined stratified estimate.
  ConfidenceInterval Current() const;

  /// Folds another worker's per-stratum moments into this one. Both sides
  /// must estimate the same query over samplers with identical partitions.
  void Merge(const StratifiedAggregator& other);

  bool Exhausted() const { return exhausted_; }
  uint64_t samples_drawn() const;
  double elapsed_millis() const { return watch_.ElapsedMillis(); }
  size_t strata() const { return stats_.size(); }
  const RunningStat& stratum_stat(size_t h) const { return stats_[h]; }

 private:
  bool Owned(size_t h) const {
    return num_workers_ <= 1 ||
           static_cast<int>(h % static_cast<size_t>(num_workers_)) == worker_;
  }
  void AllocateBudget(uint64_t batch, std::vector<uint64_t>* quota) const;

  StratifiedSampler<D>* sampler_;
  AttributeFn<D> attr_;
  AggregateKind kind_;
  double confidence_;
  int worker_;
  int num_workers_;
  SamplingMode mode_ = SamplingMode::kWithoutReplacement;
  std::vector<RunningStat> stats_;  // one per stratum (owned or not)
  Stopwatch watch_;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class StratifiedAggregator<2>;
extern template class StratifiedAggregator<3>;

}  // namespace storm

#endif  // STORM_ESTIMATOR_STRATIFIED_H_
