#include "storm/estimator/confidence.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace storm {

double ConfidenceInterval::RelativeError() const {
  if (estimate == 0.0) {
    return half_width == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return half_width / std::fabs(estimate);
}

std::string ConfidenceInterval::ToString() const {
  std::ostringstream os;
  os << estimate << " ± " << half_width << " ("
     << static_cast<int>(confidence * 100 + 0.5) << "% conf, k=" << samples;
  if (exact) os << ", exact";
  os << ")";
  return os.str();
}

ConfidenceInterval MeanConfidence(const RunningStat& stat, double confidence,
                                  uint64_t population_size,
                                  bool without_replacement) {
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.samples = stat.count();
  ci.estimate = stat.mean();
  if (stat.count() < 2) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  double se = stat.standard_error();
  if (without_replacement && population_size > 1) {
    double q = static_cast<double>(population_size);
    double k = static_cast<double>(stat.count());
    if (k >= q) {
      ci.half_width = 0.0;
      ci.exact = true;
      return ci;
    }
    se *= std::sqrt((q - k) / (q - 1.0));
  }
  ci.half_width = ZCritical(confidence) * se;
  return ci;
}

ConfidenceInterval SumConfidenceBounded(const RunningStat& stat,
                                        double confidence,
                                        uint64_t cardinality_lower,
                                        uint64_t cardinality_upper,
                                        double cardinality_estimate,
                                        bool without_replacement) {
  if (cardinality_lower == cardinality_upper) {
    return SumConfidence(stat, confidence, cardinality_estimate,
                         /*cardinality_exact=*/true, without_replacement);
  }
  if (cardinality_upper == ~uint64_t{0}) {
    return SumConfidence(stat, confidence, cardinality_estimate,
                         /*cardinality_exact=*/false, without_replacement);
  }
  ConfidenceInterval mean_ci = MeanConfidence(stat, confidence, 0, false);
  // Union over q in [lo, hi] of q * [mean - hw, mean + hw]; since q >= 0
  // the extremes come from the bound corners.
  double lo_q = static_cast<double>(cardinality_lower);
  double hi_q = static_cast<double>(cardinality_upper);
  double a = mean_ci.estimate - mean_ci.half_width;
  double b = mean_ci.estimate + mean_ci.half_width;
  double lo = std::min(std::min(lo_q * a, lo_q * b),
                       std::min(hi_q * a, hi_q * b));
  double hi = std::max(std::max(lo_q * a, lo_q * b),
                       std::max(hi_q * a, hi_q * b));
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.samples = stat.count();
  ci.estimate = cardinality_estimate * mean_ci.estimate;
  ci.half_width = std::max(hi - ci.estimate, ci.estimate - lo);
  return ci;
}

ConfidenceInterval SumConfidence(const RunningStat& stat, double confidence,
                                 double cardinality_estimate,
                                 bool cardinality_exact,
                                 bool without_replacement) {
  uint64_t q = cardinality_exact
                   ? static_cast<uint64_t>(cardinality_estimate + 0.5)
                   : 0;
  ConfidenceInterval mean_ci =
      MeanConfidence(stat, confidence, q, without_replacement);
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.samples = stat.count();
  ci.estimate = cardinality_estimate * mean_ci.estimate;
  ci.half_width = cardinality_estimate * mean_ci.half_width;
  ci.exact = mean_ci.exact && cardinality_exact;
  if (!cardinality_exact) {
    // Crude inflation: treat the cardinality estimate as ±50% until the
    // sampler resolves it; callers that need tight sums should use an index
    // that reports exact cardinalities (RandomPath/QueryFirst do; RS-tree
    // converges; LS-tree at level 0).
    ci.half_width += 0.5 * cardinality_estimate * std::fabs(mean_ci.estimate);
  }
  return ci;
}

}  // namespace storm
