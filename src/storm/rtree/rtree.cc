#include "storm/rtree/rtree.h"

#include <algorithm>
#include <cmath>

#include "storm/util/logging.h"

namespace storm {

namespace {

// Rect of a leaf entry or of a child node, so the split algorithm can be
// shared between the two node kinds.
template <int D>
Rect<D> ItemRect(const typename RTree<D>::Entry& e) {
  return Rect<D>(e.point);
}
template <int D>
Rect<D> ItemRect(const std::unique_ptr<typename RTree<D>::Node>& c) {
  return c->mbr;
}

// Guttman's quadratic split over a vector of items. Moves items out of
// `all` into two groups; returns the index lists.
template <int D, typename Item>
void QuadraticSplit(std::vector<Item>* all, int min_entries,
                    std::vector<Item>* group_a, std::vector<Item>* group_b) {
  const size_t n = all->size();
  assert(n >= 2);
  // Pick the two seeds wasting the most area if paired.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    Rect<D> ri = ItemRect<D>((*all)[i]);
    for (size_t j = i + 1; j < n; ++j) {
      Rect<D> rj = ItemRect<D>((*all)[j]);
      double waste = Rect<D>::Union(ri, rj).Area() - ri.Area() - rj.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<bool> assigned(n, false);
  Rect<D> mbr_a = ItemRect<D>((*all)[seed_a]);
  Rect<D> mbr_b = ItemRect<D>((*all)[seed_b]);
  group_a->push_back(std::move((*all)[seed_a]));
  group_b->push_back(std::move((*all)[seed_b]));
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;
  while (remaining > 0) {
    // Force-assign when one group must take everything left to reach the
    // minimum.
    if (group_a->size() + remaining == static_cast<size_t>(min_entries)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          mbr_a.Expand(ItemRect<D>((*all)[i]));
          group_a->push_back(std::move((*all)[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    if (group_b->size() + remaining == static_cast<size_t>(min_entries)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          mbr_b.Expand(ItemRect<D>((*all)[i]));
          group_b->push_back(std::move((*all)[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    // Pick the unassigned item with the strongest group preference.
    size_t best = n;
    double best_diff = -1.0;
    double best_da = 0.0, best_db = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      Rect<D> r = ItemRect<D>((*all)[i]);
      double da = mbr_a.Enlargement(r);
      double db = mbr_b.Enlargement(r);
      double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_da = da;
        best_db = db;
      }
    }
    assert(best < n);
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    Rect<D> r = ItemRect<D>((*all)[best]);
    if (to_a) {
      mbr_a.Expand(r);
      group_a->push_back(std::move((*all)[best]));
    } else {
      mbr_b.Expand(r);
      group_b->push_back(std::move((*all)[best]));
    }
    assigned[best] = true;
    --remaining;
  }
  all->clear();
}

}  // namespace

template <int D>
RTree<D>::RTree(RTreeOptions options) : options_(options) {
  assert(options_.max_entries >= 4);
  assert(options_.EffectiveMin() >= 1);
  assert(options_.EffectiveMin() <= options_.max_entries / 2);
}

template <int D>
RTree<D>::~RTree() {
  if (root_) ReleaseNodePages(root_.get());
}

template <int D>
RTree<D>::RTree(RTree&& other) noexcept
    : options_(other.options_),
      root_(std::move(other.root_)),
      next_node_id_(other.next_node_id_),
      nodes_touched_(other.nodes_touched_.load()) {}

template <int D>
RTree<D>& RTree<D>::operator=(RTree&& other) noexcept {
  if (this != &other) {
    if (root_) ReleaseNodePages(root_.get());
    options_ = other.options_;
    root_ = std::move(other.root_);
    next_node_id_ = other.next_node_id_;
    nodes_touched_.store(other.nodes_touched_.load());
  }
  return *this;
}

template <int D>
std::unique_ptr<typename RTree<D>::Node> RTree<D>::NewNode(bool is_leaf) {
  auto n = std::make_unique<Node>();
  n->is_leaf = is_leaf;
  n->node_id = next_node_id_++;
  if (options_.pool != nullptr) {
    n->page = options_.pool->disk()->Allocate();
  }
  return n;
}

template <int D>
void RTree<D>::ReleaseNodePages(Node* n) {
  if (options_.pool != nullptr && n->page != kInvalidPage) {
    // Teardown path: Evict/Free can only fail on pages this tree does not
    // own (a programming error caught by their own checks), so the statuses
    // are deliberately dropped rather than propagated out of a destructor.
    (void)options_.pool->Evict(n->page);
    (void)options_.pool->disk()->Free(n->page);
    n->page = kInvalidPage;
  }
  for (auto& c : n->children) ReleaseNodePages(c.get());
}

template <int D>
void RTree<D>::TouchNode(const Node* n) const {
  nodes_touched_.fetch_add(1, std::memory_order_relaxed);
  if (options_.pool != nullptr && n->page != kInvalidPage) {
    // Advisory IO-cost simulation only: node payloads live in memory, the
    // pin exists to exercise the cache. A failed pin (pool exhausted, or a
    // chaos failpoint on the disk) must not fail the traversal; the miss is
    // still counted in IoStats, which is all this touch is for.
    Result<std::byte*> frame = options_.pool->Pin(n->page);
    if (frame.ok()) {
      (void)options_.pool->Unpin(n->page, /*dirty=*/false);
    }
  }
}

template <int D>
int RTree<D>::Height() const {
  int h = 0;
  for (const Node* n = root_.get(); n != nullptr;
       n = n->is_leaf ? nullptr : n->children.front().get()) {
    ++h;
  }
  return h;
}

template <int D>
uint64_t RTree<D>::NodeCount() const {
  if (!root_) return 0;
  uint64_t total = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++total;
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  return total;
}

template <int D>
void RTree<D>::RecomputeLocal(Node* n) {
  ++n->version;
  n->mbr = Rect<D>();
  if (n->is_leaf) {
    n->count = n->entries.size();
    for (const Entry& e : n->entries) n->mbr.Expand(e.point);
  } else {
    n->count = 0;
    for (const auto& c : n->children) {
      n->mbr.Expand(c->mbr);
      n->count += c->count;
    }
  }
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

template <int D>
typename RTree<D>::Node* RTree<D>::ChooseLeaf(Node* n, const Point<D>& p) const {
  TouchNode(n);
  while (!n->is_leaf) {
    Node* best = nullptr;
    double best_enlarge = 0.0, best_area = 0.0;
    for (const auto& c : n->children) {
      double enlarge = c->mbr.Enlargement(Rect<D>(p));
      double area = c->mbr.Area();
      if (best == nullptr || enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = c.get();
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    n = best;
    TouchNode(n);
  }
  return n;
}

template <int D>
std::unique_ptr<typename RTree<D>::Node> RTree<D>::SplitNode(Node* n) {
  auto sibling = NewNode(n->is_leaf);
  int min_entries = options_.EffectiveMin();
  if (n->is_leaf) {
    std::vector<Entry> a, b;
    QuadraticSplit<D>(&n->entries, min_entries, &a, &b);
    n->entries = std::move(a);
    sibling->entries = std::move(b);
  } else {
    std::vector<std::unique_ptr<Node>> a, b;
    QuadraticSplit<D>(&n->children, min_entries, &a, &b);
    n->children = std::move(a);
    sibling->children = std::move(b);
    for (auto& c : n->children) c->parent = n;
    for (auto& c : sibling->children) c->parent = sibling.get();
  }
  RecomputeLocal(n);
  RecomputeLocal(sibling.get());
  return sibling;
}

template <int D>
void RTree<D>::HandleOverflow(Node* n) {
  while (n != nullptr &&
         ((n->is_leaf && n->entries.size() > static_cast<size_t>(options_.max_entries)) ||
          (!n->is_leaf &&
           n->children.size() > static_cast<size_t>(options_.max_entries)))) {
    std::unique_ptr<Node> sibling = SplitNode(n);
    if (n->parent == nullptr) {
      // Grow a new root above n and sibling.
      auto new_root = NewNode(/*is_leaf=*/false);
      Node* new_root_raw = new_root.get();
      sibling->parent = new_root_raw;
      std::unique_ptr<Node> old_root = std::move(root_);
      old_root->parent = new_root_raw;
      new_root->children.push_back(std::move(old_root));
      new_root->children.push_back(std::move(sibling));
      RecomputeLocal(new_root_raw);
      root_ = std::move(new_root);
      return;
    }
    Node* parent = n->parent;
    sibling->parent = parent;
    parent->children.push_back(std::move(sibling));
    n = parent;
  }
}

template <int D>
void RTree<D>::Insert(const Point<D>& point, RecordId id) {
  if (!root_) {
    root_ = NewNode(/*is_leaf=*/true);
  }
  Node* leaf = ChooseLeaf(root_.get(), point);
  leaf->entries.push_back(Entry{point, id});
  // Update MBRs and counts along the root path before any split: splits
  // redistribute within a subtree and do not change ancestor aggregates.
  for (Node* a = leaf; a != nullptr; a = a->parent) {
    a->mbr.Expand(point);
    ++a->count;
    ++a->version;
  }
  HandleOverflow(leaf);
}

// ---------------------------------------------------------------------------
// Erase
// ---------------------------------------------------------------------------

template <int D>
typename RTree<D>::Node* RTree<D>::FindLeaf(Node* n, const Point<D>& p,
                                            RecordId id) const {
  TouchNode(n);
  if (n->is_leaf) {
    for (const Entry& e : n->entries) {
      if (e.id == id && e.point == p) return n;
    }
    return nullptr;
  }
  for (const auto& c : n->children) {
    if (c->mbr.Contains(p)) {
      Node* found = FindLeaf(c.get(), p, id);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

template <int D>
void RTree<D>::CollectEntries(Node* n, std::vector<Entry>* out) const {
  if (n->is_leaf) {
    out->insert(out->end(), n->entries.begin(), n->entries.end());
    return;
  }
  for (const auto& c : n->children) CollectEntries(c.get(), out);
}

template <int D>
void RTree<D>::CondenseTree(Node* leaf, std::vector<Entry>* orphans) {
  Node* n = leaf;
  while (n->parent != nullptr) {
    Node* parent = n->parent;
    size_t fill = n->is_leaf ? n->entries.size() : n->children.size();
    if (fill < static_cast<size_t>(options_.EffectiveMin())) {
      // Detach n from parent, salvage its entries for reinsertion.
      CollectEntries(n, orphans);
      ReleaseNodePages(n);
      auto it = std::find_if(parent->children.begin(), parent->children.end(),
                             [n](const std::unique_ptr<Node>& c) { return c.get() == n; });
      assert(it != parent->children.end());
      parent->children.erase(it);
    }
    RecomputeLocal(parent);
    n = parent;
  }
  // Shrink the root: an internal root with a single child is replaced by
  // that child; an empty root leaf resets the tree.
  while (root_ && !root_->is_leaf && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children.front());
    root_->children.clear();
    ReleaseNodePages(root_.get());
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (root_ && root_->is_leaf && root_->entries.empty()) {
    ReleaseNodePages(root_.get());
    root_.reset();
  }
}

template <int D>
bool RTree<D>::Erase(const Point<D>& point, RecordId id) {
  if (!root_) return false;
  Node* leaf = FindLeaf(root_.get(), point, id);
  if (leaf == nullptr) return false;
  auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                         [&](const Entry& e) { return e.id == id && e.point == point; });
  assert(it != leaf->entries.end());
  leaf->entries.erase(it);
  RecomputeLocal(leaf);
  std::vector<Entry> orphans;
  CondenseTree(leaf, &orphans);
  for (const Entry& e : orphans) Insert(e.point, e.id);
  return true;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

template <int D>
void RTree<D>::RangeQueryRec(const Node* n, const Rect<D>& q,
                             const std::function<void(const Entry&)>& fn) const {
  TouchNode(n);
  if (n->is_leaf) {
    for (const Entry& e : n->entries) {
      if (q.Contains(e.point)) fn(e);
    }
    return;
  }
  for (const auto& c : n->children) {
    if (q.Intersects(c->mbr)) RangeQueryRec(c.get(), q, fn);
  }
}

template <int D>
void RTree<D>::RangeQuery(const Rect<D>& q,
                          const std::function<void(const Entry&)>& fn) const {
  if (root_) RangeQueryRec(root_.get(), q, fn);
}

template <int D>
std::vector<typename RTree<D>::Entry> RTree<D>::RangeReport(const Rect<D>& q) const {
  std::vector<Entry> out;
  RangeQuery(q, [&out](const Entry& e) { out.push_back(e); });
  return out;
}

template <int D>
uint64_t RTree<D>::RangeCountRec(const Node* n, const Rect<D>& q) const {
  TouchNode(n);
  if (q.Contains(n->mbr)) return n->count;
  if (n->is_leaf) {
    uint64_t c = 0;
    for (const Entry& e : n->entries) {
      if (q.Contains(e.point)) ++c;
    }
    return c;
  }
  uint64_t c = 0;
  for (const auto& child : n->children) {
    if (q.Intersects(child->mbr)) c += RangeCountRec(child.get(), q);
  }
  return c;
}

template <int D>
uint64_t RTree<D>::RangeCount(const Rect<D>& q) const {
  return root_ ? RangeCountRec(root_.get(), q) : 0;
}

template <int D>
void RTree<D>::CanonicalRec(const Node* n, const Rect<D>& q, Canonical* out) const {
  TouchNode(n);
  if (q.Contains(n->mbr)) {
    out->covered.push_back(n);
    out->count += n->count;
    return;
  }
  if (n->is_leaf) {
    for (const Entry& e : n->entries) {
      if (q.Contains(e.point)) {
        out->residual.push_back(e);
        ++out->count;
      }
    }
    return;
  }
  for (const auto& c : n->children) {
    if (q.Intersects(c->mbr)) CanonicalRec(c.get(), q, out);
  }
}

template <int D>
typename RTree<D>::Canonical RTree<D>::CanonicalSet(const Rect<D>& q) const {
  Canonical out;
  if (root_) CanonicalRec(root_.get(), q, &out);
  return out;
}

template <int D>
typename RTree<D>::Entry RTree<D>::SampleSubtree(const Node* u, Rng* rng) const {
  assert(u != nullptr && u->count > 0);
  const Node* n = u;
  TouchNode(n);
  while (!n->is_leaf) {
    uint64_t target = rng->Uniform(n->count);
    uint64_t acc = 0;
    const Node* chosen = nullptr;
    for (const auto& c : n->children) {
      acc += c->count;
      if (target < acc) {
        chosen = c.get();
        break;
      }
    }
    assert(chosen != nullptr);
    n = chosen;
    TouchNode(n);
  }
  return n->entries[static_cast<size_t>(rng->Uniform(n->entries.size()))];
}

// ---------------------------------------------------------------------------
// Bulk loading
// ---------------------------------------------------------------------------

namespace rtree_internal {

// Group sizes for packing n items with the given capacity: full groups of
// `cap`, except that an underfull tail (< min) borrows from the previous
// group so every non-root node satisfies the minimum-fill invariant.
inline std::vector<size_t> PackGroupSizes(size_t n, size_t cap, size_t min) {
  std::vector<size_t> sizes;
  if (n == 0) return sizes;
  size_t full = n / cap;
  size_t rem = n % cap;
  for (size_t i = 0; i < full; ++i) sizes.push_back(cap);
  if (rem > 0) {
    if (rem < min && !sizes.empty()) {
      size_t pool = sizes.back() + rem;
      sizes.back() = pool - pool / 2;
      sizes.push_back(pool / 2);
    } else {
      sizes.push_back(rem);
    }
  }
  return sizes;
}

}  // namespace rtree_internal

template <int D>
RTree<D> RTree<D>::Pack(std::vector<Entry> sorted, RTreeOptions options) {
  RTree tree(options);
  if (sorted.empty()) return tree;
  const size_t cap = static_cast<size_t>(options.max_entries);
  const size_t min = static_cast<size_t>(options.EffectiveMin());
  // Build the leaf level.
  std::vector<std::unique_ptr<Node>> level;
  level.reserve(sorted.size() / cap + 1);
  size_t pos = 0;
  for (size_t size : rtree_internal::PackGroupSizes(sorted.size(), cap, min)) {
    auto leaf = tree.NewNode(/*is_leaf=*/true);
    leaf->entries.assign(sorted.begin() + static_cast<ptrdiff_t>(pos),
                         sorted.begin() + static_cast<ptrdiff_t>(pos + size));
    pos += size;
    RecomputeLocal(leaf.get());
    level.push_back(std::move(leaf));
  }
  // Pack upward until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    next.reserve(level.size() / cap + 1);
    size_t at = 0;
    for (size_t size : rtree_internal::PackGroupSizes(level.size(), cap, min)) {
      auto inner = tree.NewNode(/*is_leaf=*/false);
      for (size_t j = at; j < at + size; ++j) {
        level[j]->parent = inner.get();
        inner->children.push_back(std::move(level[j]));
      }
      at += size;
      RecomputeLocal(inner.get());
      next.push_back(std::move(inner));
    }
    level = std::move(next);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

template <int D>
void RTree<D>::StrSort(typename std::vector<Entry>::iterator begin,
                       typename std::vector<Entry>::iterator end, int dim,
                       int leaf_capacity) {
  const auto n = static_cast<size_t>(end - begin);
  if (n <= static_cast<size_t>(leaf_capacity) || dim >= D) return;
  std::sort(begin, end, [dim](const Entry& a, const Entry& b) {
    return a.point[dim] < b.point[dim];
  });
  // Number of leaves and vertical slabs per the STR recipe.
  double leaves = std::ceil(static_cast<double>(n) / leaf_capacity);
  auto slabs = static_cast<size_t>(
      std::ceil(std::pow(leaves, 1.0 / static_cast<double>(D - dim))));
  if (slabs == 0) slabs = 1;
  size_t slab_size = (n + slabs - 1) / slabs;
  if (slab_size == 0) slab_size = 1;
  for (size_t i = 0; i < n; i += slab_size) {
    auto slab_end = begin + static_cast<ptrdiff_t>(std::min(i + slab_size, n));
    StrSort(begin + static_cast<ptrdiff_t>(i), slab_end, dim + 1, leaf_capacity);
  }
}

template <int D>
RTree<D> RTree<D>::BulkLoadStr(std::vector<Entry> entries, RTreeOptions options) {
  StrSort(entries.begin(), entries.end(), 0, options.max_entries);
  return Pack(std::move(entries), options);
}

template <int D>
RTree<D> RTree<D>::BulkLoadHilbert(std::vector<Entry> entries, RTreeOptions options) {
  if (!entries.empty()) {
    Rect<D> bounds;
    for (const Entry& e : entries) bounds.Expand(e.point);
    HilbertMapper<D> mapper(bounds);
    std::vector<std::pair<uint64_t, size_t>> keyed(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      keyed[i] = {mapper.Index(entries[i].point), i};
    }
    std::sort(keyed.begin(), keyed.end());
    std::vector<Entry> sorted;
    sorted.reserve(entries.size());
    for (const auto& [key, idx] : keyed) sorted.push_back(entries[idx]);
    entries = std::move(sorted);
  }
  return Pack(std::move(entries), options);
}

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

template <int D>
bool RTree<D>::CheckRec(const Node* n, int depth, int leaf_depth) const {
  if (n->is_leaf) {
    if (depth != leaf_depth) {
      STORM_LOG(Error) << "leaf at depth " << depth << ", expected " << leaf_depth;
      return false;
    }
    if (n->count != n->entries.size()) {
      STORM_LOG(Error) << "leaf count " << n->count << " != entries "
                       << n->entries.size();
      return false;
    }
    for (const Entry& e : n->entries) {
      if (!n->mbr.Contains(e.point)) {
        STORM_LOG(Error) << "leaf mbr misses point " << e.point.ToString();
        return false;
      }
    }
    if (n->parent != nullptr &&
        n->entries.size() < static_cast<size_t>(options_.EffectiveMin())) {
      STORM_LOG(Error) << "leaf underflow: " << n->entries.size();
      return false;
    }
    return true;
  }
  if (n->children.size() < 2 && n->parent == nullptr) {
    STORM_LOG(Error) << "internal root with " << n->children.size() << " children";
    return false;
  }
  uint64_t count = 0;
  Rect<D> mbr;
  for (const auto& c : n->children) {
    if (c->parent != n) {
      STORM_LOG(Error) << "broken parent pointer";
      return false;
    }
    if (!n->mbr.Contains(c->mbr)) {
      STORM_LOG(Error) << "child mbr escapes parent";
      return false;
    }
    count += c->count;
    mbr.Expand(c->mbr);
    if (!CheckRec(c.get(), depth + 1, leaf_depth)) return false;
  }
  if (count != n->count) {
    STORM_LOG(Error) << "internal count " << n->count << " != sum " << count;
    return false;
  }
  if (!(mbr == n->mbr)) {
    STORM_LOG(Error) << "internal mbr not tight";
    return false;
  }
  if (n->children.size() > static_cast<size_t>(options_.max_entries)) {
    STORM_LOG(Error) << "internal overflow: " << n->children.size();
    return false;
  }
  return true;
}

template <int D>
bool RTree<D>::CheckInvariants() const {
  if (!root_) return true;
  if (root_->parent != nullptr) {
    STORM_LOG(Error) << "root has a parent";
    return false;
  }
  return CheckRec(root_.get(), 1, Height());
}

template class RTree<2>;
template class RTree<3>;

}  // namespace storm
