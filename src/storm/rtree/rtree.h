// R-tree over D-dimensional points with aggregate subtree counts.
//
// This is the index substrate for every sampling strategy in the paper:
//  * subtree counts |P(u)| enable Olken-style weighted random descents
//    (RandomPath, §3.1) and the RS-tree's lazy weighted exploration;
//  * canonical-set computation (the maximal nodes fully covered by a query,
//    plus residual entries of partially covered leaves) underlies both
//    RS-tree sampling and exact range counting;
//  * STR and Hilbert bulk loading build packed trees, the latter giving the
//    Hilbert R-tree the RS-tree is based on;
//  * inserts (Guttman quadratic split) and deletes (condense + reinsert)
//    support the update manager.
//
// When constructed with a BufferPool, every node visit pins the node's
// simulated disk page, so buffer-pool statistics reflect the I/O pattern a
// disk-resident tree would have. Each node occupies exactly one page, which
// matches the convention that the fanout B is chosen to fill a block.

#ifndef STORM_RTREE_RTREE_H_
#define STORM_RTREE_RTREE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "storm/geo/hilbert.h"
#include "storm/geo/point.h"
#include "storm/geo/rect.h"
#include "storm/io/buffer_pool.h"
#include "storm/util/rng.h"
#include "storm/util/types.h"

namespace storm {

/// Tuning knobs for an RTree.
struct RTreeOptions {
  /// Maximum entries per node (the paper's block fanout B).
  int max_entries = 64;
  /// Minimum entries per node after deletion; defaults to 40% of max.
  int min_entries = 0;
  /// Optional simulated-disk pool; one page is allocated per node and
  /// pinned on every visit.
  BufferPool* pool = nullptr;

  int EffectiveMin() const {
    return min_entries > 0 ? min_entries : (max_entries * 2) / 5;
  }
};

/// An R-tree storing (point, record-id) entries.
template <int D>
class RTree {
 public:
  /// A leaf entry: the indexed point and the record it identifies.
  struct Entry {
    Point<D> point;
    RecordId id = kInvalidRecordId;
  };

  /// Tree node. Exposed read-only so samplers (RandomPath, RS-tree) can
  /// walk the structure; mutation goes through RTree methods only.
  struct Node {
    bool is_leaf = true;
    Rect<D> mbr;
    uint64_t count = 0;  ///< number of points in this subtree
    /// Bumped whenever the subtree's content changes; lets the RS-tree
    /// detect stale sample buffers cheaply.
    uint64_t version = 0;
    /// Unique within the owning tree's lifetime (never reused even when a
    /// freed node's address is); guards external per-node caches against
    /// address reuse.
    uint64_t node_id = 0;
    Node* parent = nullptr;
    PageId page = kInvalidPage;
    std::vector<Entry> entries;                   ///< leaf payload
    std::vector<std::unique_ptr<Node>> children;  ///< internal payload
  };

  explicit RTree(RTreeOptions options = {});
  ~RTree();

  RTree(RTree&& other) noexcept;
  RTree& operator=(RTree&& other) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Builds a packed tree with Sort-Tile-Recursive bulk loading.
  static RTree BulkLoadStr(std::vector<Entry> entries, RTreeOptions options = {});

  /// Builds a packed Hilbert R-tree: entries sorted by Hilbert index of
  /// their point within the data bounding box, then packed bottom-up.
  static RTree BulkLoadHilbert(std::vector<Entry> entries, RTreeOptions options = {});

  /// Inserts one entry (Guttman, quadratic split).
  void Insert(const Point<D>& point, RecordId id);

  /// Removes the entry with the given point and id; returns false when not
  /// present.
  bool Erase(const Point<D>& point, RecordId id);

  /// Number of stored entries.
  uint64_t size() const { return root_ ? root_->count : 0; }
  bool empty() const { return size() == 0; }

  /// MBR of the whole data set (empty rect when empty).
  Rect<D> bounds() const { return root_ ? root_->mbr : Rect<D>(); }

  const Node* root() const { return root_.get(); }
  const RTreeOptions& options() const { return options_; }

  /// Height of the tree (0 when empty, 1 for a lone leaf).
  int Height() const;

  /// Invokes `fn` for every entry whose point lies in `q`.
  void RangeQuery(const Rect<D>& q, const std::function<void(const Entry&)>& fn) const;

  /// Collects all entries in `q`.
  std::vector<Entry> RangeReport(const Rect<D>& q) const;

  /// Exact number of entries in `q`, using subtree counts for covered nodes.
  uint64_t RangeCount(const Rect<D>& q) const;

  /// The canonical decomposition of a range query.
  struct Canonical {
    /// Maximal nodes whose MBR (and hence every point) is inside q.
    std::vector<const Node*> covered;
    /// Entries of partially covered leaves that individually fall in q.
    std::vector<Entry> residual;
    /// Total number of entries in q (sum of covered counts + residual).
    uint64_t count = 0;
  };

  /// Computes the canonical set R_Q (§3.1, Table 1).
  Canonical CanonicalSet(const Rect<D>& q) const;

  /// Draws one uniform random entry from the subtree rooted at `u` by a
  /// count-weighted random descent. `u` must be non-null with count > 0.
  Entry SampleSubtree(const Node* u, Rng* rng) const;

  /// Records a simulated-disk visit of `n`; called internally by every
  /// traversal and available to external walkers (samplers).
  void TouchNode(const Node* n) const;

  /// Number of node visits since construction (independent of the pool).
  /// Thread-safe: concurrent read-only queries may share a tree (as long
  /// as no BufferPool is attached and no updates run concurrently).
  uint64_t nodes_touched() const {
    return nodes_touched_.load(std::memory_order_relaxed);
  }
  void ResetTouchCount() const {
    nodes_touched_.store(0, std::memory_order_relaxed);
  }

  /// Total number of nodes (for space accounting / tests).
  uint64_t NodeCount() const;

  /// Validates structural invariants (MBR containment, counts, fanout
  /// bounds, parent pointers); returns false and logs on violation. Used by
  /// tests and debug assertions.
  bool CheckInvariants() const;

 private:
  std::unique_ptr<Node> NewNode(bool is_leaf);
  void ReleaseNodePages(Node* n);

  Node* ChooseLeaf(Node* n, const Point<D>& p) const;
  std::unique_ptr<Node> SplitNode(Node* n);
  void HandleOverflow(Node* n);
  Node* FindLeaf(Node* n, const Point<D>& p, RecordId id) const;
  void CondenseTree(Node* leaf, std::vector<Entry>* orphans);
  void CollectEntries(Node* n, std::vector<Entry>* out) const;

  static void RecomputeLocal(Node* n);

  static RTree Pack(std::vector<Entry> sorted, RTreeOptions options);
  static void StrSort(typename std::vector<Entry>::iterator begin,
                      typename std::vector<Entry>::iterator end, int dim,
                      int leaf_capacity);

  void RangeQueryRec(const Node* n, const Rect<D>& q,
                     const std::function<void(const Entry&)>& fn) const;
  uint64_t RangeCountRec(const Node* n, const Rect<D>& q) const;
  void CanonicalRec(const Node* n, const Rect<D>& q, Canonical* out) const;
  bool CheckRec(const Node* n, int depth, int leaf_depth) const;

  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  uint64_t next_node_id_ = 1;
  mutable std::atomic<uint64_t> nodes_touched_{0};
};

extern template class RTree<2>;
extern template class RTree<3>;

using RTree2 = RTree<2>;
using RTree3 = RTree<3>;

}  // namespace storm

#endif  // STORM_RTREE_RTREE_H_
