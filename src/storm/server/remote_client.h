// RemoteClient: the storm::Client surface over a storm_server connection.
//
//   storm::RemoteClient db;
//   storm::Status st = db.Connect("analytics-host", 4317);
//   auto result = db.Execute("SELECT AVG(speed) FROM taxi ...",
//                            storm::ExecOptions()
//                                .WithDeadlineMs(250)
//                                .WithProgress(render));
//
// Execute() streams: while the server samples, PROGRESS frames arrive at
// the configured cadence and are delivered through ExecOptions::progress —
// the same anytime-result contract as the in-process Client, so callers
// (storm_shell, the examples) can target either interchangeably. Returning
// false from the progress callback, or firing the cancel token, sends a
// CANCEL frame; the server answers with the best-so-far RESULT flagged
// cancelled. deadline_ms propagates to the server, which enforces it
// engine-side.
//
// The client is synchronous and single-threaded: one request at a time per
// RemoteClient. Open several RemoteClients for concurrent streams (they are
// cheap: one socket each).
//
// Robustness: when a request's connect/send path fails with a transient
// error (kUnavailable / kIOError — typically a server restart), the client
// transparently redials the remembered endpoint with exponential backoff
// and retries the send, up to max_reconnect_attempts per request
// (storm_client_reconnects_total counts successful redials). Failures
// *after* the request was sent are not retried — the server may already be
// executing it — they surface to the caller, and the next request redials.
// set_rpc_deadline_ms bounds how long AwaitResponse waits for a silent but
// open peer; past it the RPC fails with kDeadlineExceeded and the socket is
// closed (the stream can no longer be trusted to be aligned).

#ifndef STORM_SERVER_REMOTE_CLIENT_H_
#define STORM_SERVER_REMOTE_CLIENT_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "storm/query/exec_options.h"
#include "storm/query/table.h"
#include "storm/server/protocol.h"
#include "storm/server/socket_io.h"
#include "storm/util/retry.h"
#include "storm/util/rng.h"

namespace storm {

class RemoteClient {
 public:
  RemoteClient() = default;

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  /// Connects to a storm_server. Verifies liveness with a PING round trip.
  Status Connect(const std::string& host, int port);

  void Close();
  bool connected() const { return fd_.valid(); }

  /// Runs a query remotely, honouring every ExecOptions knob that crosses
  /// the wire: deadline_ms, parallelism, cancel, progress (driven by the
  /// streamed PROGRESS frames), and profile. With `profile` set (the
  /// default) the result carries a *joined* QueryProfile: the client's
  /// send/await spans plus the server's span tree (site="server"), all
  /// under one trace id. `options.trace` propagates an existing trace;
  /// otherwise the client mints one, sampled at trace_sample_rate.
  Result<QueryResult> Execute(const std::string& query,
                              const ExecOptions& options = {});

  /// Minimum milliseconds between PROGRESS frames the server should stream
  /// when a progress callback is set (default 20 ms). 0 disables streaming
  /// even with a callback installed.
  void set_progress_interval_ms(uint32_t ms) { progress_interval_ms_ = ms; }

  /// Fraction of minted traces marked sampled (retained in the client and
  /// server TraceSinks). Default 1%; explicit `options.trace` contexts
  /// bypass this.
  void set_trace_sample_rate(double rate) { trace_sample_rate_ = rate; }

  /// Redial attempts per request when the connect/send path fails
  /// transiently (0 disables transparent reconnection). Backoff between
  /// attempts is exponential with jitter (50 ms base, 1 s cap).
  void set_max_reconnect_attempts(int attempts) {
    max_reconnect_attempts_ = attempts < 0 ? 0 : attempts;
  }

  /// Overrides the capped exponential backoff between transparent
  /// reconnect attempts (base/multiplier/cap/jitter; the attempt count
  /// still comes from set_max_reconnect_attempts). Back-to-back redials
  /// from a fleet of clients turn a briefly-down server into a connect
  /// storm — the jittered spacing is what spreads the herd.
  void set_reconnect_backoff(const RetryPolicy& policy) {
    reconnect_backoff_ = policy;
  }

  /// Seeds the reconnect-backoff jitter deterministically, giving chaos
  /// schedules an exactly reproducible attempt spacing. Without it the
  /// jitter draws from a clock-seeded per-thread stream.
  void set_reconnect_jitter_seed(uint64_t seed) {
    reconnect_rng_ = std::make_unique<Rng>(seed);
  }

  /// Hard wall-clock ceiling in ms on waiting for any single response
  /// (0 = wait forever, the historical behaviour). A peer that accepts the
  /// request but never answers — half-dead process, black-holed network —
  /// fails the RPC with kDeadlineExceeded instead of hanging the caller.
  /// Execute() extends this by the query's own deadline_ms, since the
  /// server legitimately streams for that long.
  void set_rpc_deadline_ms(double ms) { rpc_deadline_ms_ = ms < 0 ? 0 : ms; }

  // --- Updates ---

  Result<RecordId> Insert(const std::string& table, const Value& doc);
  BatchInsertResult InsertBatch(const std::string& table,
                                const std::vector<Value>& docs);

  // --- Durability / liveness / observability ---

  Status Checkpoint(const std::string& table);
  Status Ping();

  /// PING round trip that also reports the server's applied-record
  /// freshness (the PONG extension, protocol.h). Pre-freshness servers
  /// echo plainly and decode as known=false — the caller deprioritizes,
  /// never evicts, such a replica.
  Result<PongFreshness> PingFresh();

  /// The server's Prometheus metrics exposition (METRICS frame — same text
  /// as the HTTP GET /metrics listener).
  Result<std::string> Metrics();

 private:
  /// Reads frames until one with `want_id` and a type in `finals` arrives
  /// (kError is always accepted as final). PROGRESS frames for `want_id`
  /// are handed to `on_progress`; a false return — or `cancel` firing —
  /// sends one CANCEL frame and keeps waiting for the final RESULT. Any
  /// other frame is a protocol error that closes the connection.
  /// `deadline_ms` > 0 bounds the whole wait; exceeding it closes the
  /// connection and fails with kDeadlineExceeded.
  Result<Frame> AwaitResponse(
      uint64_t want_id, std::initializer_list<FrameType> finals,
      const std::function<bool(const ProgressUpdate&)>& on_progress = nullptr,
      const CancelToken* cancel = nullptr, double deadline_ms = 0.0);

  Status SendFrame(FrameType type, uint64_t id, std::string_view payload);

  /// SendFrame, redialing the remembered endpoint with backoff on
  /// transient connect/send failures (up to max_reconnect_attempts_).
  Status SendFrameReconnecting(FrameType type, uint64_t id,
                               std::string_view payload);

  /// One dial of the remembered endpoint + liveness PING (no retries).
  Status DialOnce();

  /// PING round trip; `reconnecting` selects the redialing send path (false
  /// inside DialOnce, which must not recurse into redialing). When `fresh`
  /// is non-null the decoded PONG freshness block lands there.
  Status DoPing(bool reconnecting, PongFreshness* fresh = nullptr);

  UniqueFd fd_;
  std::string read_buf_;
  uint64_t next_id_ = 1;
  uint32_t progress_interval_ms_ = 20;
  double trace_sample_rate_ = 0.01;
  int max_reconnect_attempts_ = 3;
  /// Spacing between reconnect attempts: 50 ms base doubling to a 1 s cap,
  /// jittered (RetryPolicy defaults for multiplier/jitter).
  RetryPolicy reconnect_backoff_{/*max_attempts=*/0, /*base_backoff_ms=*/50.0,
                                 /*multiplier=*/2.0, /*max_backoff_ms=*/1000.0,
                                 /*jitter=*/0.5, /*deadline_ms=*/0.0};
  std::unique_ptr<Rng> reconnect_rng_;  ///< deterministic jitter when set
  double rpc_deadline_ms_ = 0.0;
  std::string host_;  // remembered endpoint for transparent redial
  int port_ = 0;
};

}  // namespace storm

#endif  // STORM_SERVER_REMOTE_CLIENT_H_
