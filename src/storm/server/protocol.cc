#include "storm/server/protocol.h"

#include "storm/util/crc32.h"
#include "storm/wal/codec.h"

namespace storm {

namespace {

// body = type + id + payload; the wire frame wraps it with a length prefix
// and a trailing CRC over the body.
constexpr size_t kBodyHeaderBytes = 1 + 8;   // type + request id
constexpr size_t kMinBodyLen = kBodyHeaderBytes + 4;  // + crc

void PutConfidence(ByteWriter* w, const ConfidenceInterval& ci) {
  w->PutDouble(ci.estimate);
  w->PutDouble(ci.half_width);
  w->PutDouble(ci.confidence);
  w->PutU64(ci.samples);
  w->PutU8(ci.exact ? 1 : 0);
}

Result<ConfidenceInterval> GetConfidence(ByteReader* r) {
  ConfidenceInterval ci;
  STORM_ASSIGN_OR_RETURN(ci.estimate, r->GetDouble());
  STORM_ASSIGN_OR_RETURN(ci.half_width, r->GetDouble());
  STORM_ASSIGN_OR_RETURN(ci.confidence, r->GetDouble());
  STORM_ASSIGN_OR_RETURN(ci.samples, r->GetU64());
  STORM_ASSIGN_OR_RETURN(uint8_t exact, r->GetU8());
  ci.exact = exact != 0;
  return ci;
}

Result<StatusCode> CheckedStatusCode(uint8_t raw) {
  if (raw > static_cast<uint8_t>(StatusCode::kUnknown)) {
    return Status::Corruption("status code " + std::to_string(raw) +
                              " out of range");
  }
  return static_cast<StatusCode>(raw);
}

}  // namespace

bool IsKnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kInsertBatch:
    case FrameType::kCheckpoint:
    case FrameType::kPing:
    case FrameType::kMetrics:
    case FrameType::kProgress:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kInsertResult:
    case FrameType::kOk:
    case FrameType::kPong:
    case FrameType::kMetricsText:
      return true;
  }
  return false;
}

std::string EncodeFrame(FrameType type, uint64_t id, std::string_view payload) {
  ByteWriter body;
  body.PutU8(static_cast<uint8_t>(type));
  body.PutU64(id);
  body.PutRaw(payload.data(), payload.size());
  uint32_t crc = Crc32(body.data().data(), body.size());
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(body.size() + 4));
  frame.PutRaw(body.data().data(), body.size());
  frame.PutU32(crc);
  return frame.Take();
}

Result<size_t> TryDecodeFrame(std::string_view buf, Frame* out) {
  if (buf.size() < 4) return size_t{0};
  ByteReader len_reader(buf);
  STORM_ASSIGN_OR_RETURN(uint32_t body_len, len_reader.GetU32());
  if (body_len < kMinBodyLen) {
    return Status::Corruption("frame body length " + std::to_string(body_len) +
                              " below minimum");
  }
  if (body_len > kMaxFrameBytes) {
    return Status::Corruption("frame body length " + std::to_string(body_len) +
                              " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  if (buf.size() < 4 + static_cast<size_t>(body_len)) return size_t{0};
  std::string_view body = buf.substr(4, body_len - 4);
  ByteReader crc_reader(buf.substr(4 + body.size(), 4));
  STORM_ASSIGN_OR_RETURN(uint32_t crc, crc_reader.GetU32());
  if (Crc32(body.data(), body.size()) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  ByteReader reader(body);
  STORM_ASSIGN_OR_RETURN(uint8_t raw_type, reader.GetU8());
  if (!IsKnownFrameType(raw_type)) {
    return Status::Corruption("unknown frame type " + std::to_string(raw_type));
  }
  out->type = static_cast<FrameType>(raw_type);
  STORM_ASSIGN_OR_RETURN(out->id, reader.GetU64());
  out->payload.assign(body.substr(kBodyHeaderBytes));
  return 4 + static_cast<size_t>(body_len);
}

// --- QueryRequest ---

namespace {

// Trace-block flag bits (the optional byte after progress_interval_ms).
constexpr uint8_t kFlagWantProfile = 1u << 0;
constexpr uint8_t kFlagHasTrace = 1u << 1;
constexpr uint8_t kFlagSampled = 1u << 2;
constexpr uint8_t kFlagWantCardinality = 1u << 3;
constexpr uint8_t kFlagWantStratified = 1u << 4;
constexpr uint8_t kFlagNoCache = 1u << 5;

}  // namespace

std::string EncodeQueryRequest(const QueryRequest& req) {
  ByteWriter w;
  w.PutString(req.query);
  w.PutU32(static_cast<uint32_t>(req.parallelism));
  w.PutDouble(req.deadline_ms);
  w.PutU32(req.progress_interval_ms);
  uint8_t flags = 0;
  if (req.want_profile) flags |= kFlagWantProfile;
  if (req.trace.valid()) flags |= kFlagHasTrace;
  if (req.trace.sampled) flags |= kFlagSampled;
  if (req.want_cardinality) flags |= kFlagWantCardinality;
  if (req.want_stratified) flags |= kFlagWantStratified;
  if (req.no_cache) flags |= kFlagNoCache;
  w.PutU8(flags);
  if (req.trace.valid()) {
    w.PutU64(req.trace.trace_id_hi);
    w.PutU64(req.trace.trace_id_lo);
    w.PutU64(req.trace.span_id);
  }
  return w.Take();
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  ByteReader r(payload);
  QueryRequest req;
  STORM_ASSIGN_OR_RETURN(req.query, r.GetString());
  STORM_ASSIGN_OR_RETURN(uint32_t parallelism, r.GetU32());
  req.parallelism = static_cast<int32_t>(parallelism);
  STORM_ASSIGN_OR_RETURN(req.deadline_ms, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(req.progress_interval_ms, r.GetU32());
  // Optional trace block; a payload that ends here came from a pre-trace
  // client and keeps the defaults (no trace, no profile).
  if (r.remaining() == 0) return req;
  STORM_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
  req.want_profile = (flags & kFlagWantProfile) != 0;
  req.want_cardinality = (flags & kFlagWantCardinality) != 0;
  // Old decoders mask only the bits they know, so this flag is ignored by
  // pre-stratified servers — exactly the intended degradation.
  req.want_stratified = (flags & kFlagWantStratified) != 0;
  // Also a pure hint bit: pre-cache servers ignore it and keep caching.
  req.no_cache = (flags & kFlagNoCache) != 0;
  if ((flags & kFlagHasTrace) != 0) {
    STORM_ASSIGN_OR_RETURN(req.trace.trace_id_hi, r.GetU64());
    STORM_ASSIGN_OR_RETURN(req.trace.trace_id_lo, r.GetU64());
    STORM_ASSIGN_OR_RETURN(req.trace.span_id, r.GetU64());
    if (!req.trace.valid()) {
      return Status::Corruption("trace block with all-zero trace id");
    }
    req.trace.sampled = (flags & kFlagSampled) != 0;
  }
  return req;
}

// --- InsertBatchRequest ---

std::string EncodeInsertBatchRequest(const InsertBatchRequest& req) {
  ByteWriter w;
  w.PutString(req.table);
  w.PutU32(static_cast<uint32_t>(req.docs_json.size()));
  for (const std::string& doc : req.docs_json) w.PutString(doc);
  return w.Take();
}

Result<InsertBatchRequest> DecodeInsertBatchRequest(std::string_view payload) {
  ByteReader r(payload);
  InsertBatchRequest req;
  STORM_ASSIGN_OR_RETURN(req.table, r.GetString());
  STORM_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // Each document costs at least its 4-byte length prefix; anything claiming
  // more elements than the payload can hold is malformed, not a reason to
  // allocate.
  if (count > r.remaining() / 4 + 1) {
    return Status::Corruption("insert batch count exceeds payload size");
  }
  req.docs_json.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    STORM_ASSIGN_OR_RETURN(std::string doc, r.GetString());
    req.docs_json.push_back(std::move(doc));
  }
  return req;
}

// --- ProgressUpdate ---

std::string EncodeProgressUpdate(const ProgressUpdate& p) {
  ByteWriter w;
  w.PutU64(p.samples);
  w.PutDouble(p.elapsed_ms);
  PutConfidence(&w, p.ci);
  // Trailing cardinality block; older decoders stop before it.
  w.PutDouble(p.cardinality_estimate);
  w.PutU8(p.cardinality_exact ? 1 : 0);
  return w.Take();
}

Result<ProgressUpdate> DecodeProgressUpdate(std::string_view payload) {
  ByteReader r(payload);
  ProgressUpdate p;
  STORM_ASSIGN_OR_RETURN(p.samples, r.GetU64());
  STORM_ASSIGN_OR_RETURN(p.elapsed_ms, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(p.ci, GetConfidence(&r));
  // Optional trailing cardinality block (absent on pre-coordinator peers).
  if (r.remaining() != 0) {
    STORM_ASSIGN_OR_RETURN(p.cardinality_estimate, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(uint8_t exact, r.GetU8());
    p.cardinality_exact = exact != 0;
    if (r.remaining() != 0) {
      return Status::Corruption("trailing bytes after progress update");
    }
  }
  return p;
}

// --- PING/PONG freshness extension ---

std::string EncodePingPayload(std::string_view echo, bool want_freshness) {
  std::string out(echo);
  if (want_freshness) out.push_back(static_cast<char>(kPingWantFreshness));
  return out;
}

bool DecodePingPayload(std::string_view payload, std::string_view* echo) {
  if (!payload.empty() &&
      static_cast<uint8_t>(payload.back()) == kPingWantFreshness) {
    *echo = payload.substr(0, payload.size() - 1);
    return true;
  }
  *echo = payload;
  return false;
}

std::string EncodePongPayload(std::string_view echo,
                              const PongFreshness* fresh) {
  std::string out(echo);
  if (fresh != nullptr && fresh->known) {
    ByteWriter w;
    w.PutU8(kPongFreshnessTag);
    w.PutU64(fresh->applied_records);
    w.PutU64(fresh->applied_lsn);
    out += w.Take();
  }
  return out;
}

Result<PongFreshness> DecodePongPayload(std::string_view payload,
                                        std::string_view sent,
                                        std::string_view echo) {
  PongFreshness fresh;
  // Verbatim echo of what we sent (capability byte included): an old
  // server. A bare echo: a stripping server with nothing to report.
  if (payload == sent || payload == echo) return fresh;
  if (payload.size() < echo.size() ||
      payload.substr(0, echo.size()) != echo) {
    return Status::Corruption("PONG payload does not echo the PING");
  }
  ByteReader r(payload.substr(echo.size()));
  STORM_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag != kPongFreshnessTag) {
    return Status::Corruption("PONG trailing bytes are not a freshness block");
  }
  fresh.known = true;
  STORM_ASSIGN_OR_RETURN(fresh.applied_records, r.GetU64());
  STORM_ASSIGN_OR_RETURN(fresh.applied_lsn, r.GetU64());
  // Bytes past the block belong to future extensions; ignore them.
  return fresh;
}

// --- WireError ---

std::string EncodeWireError(const Status& status) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Result<WireError> DecodeWireError(std::string_view payload) {
  ByteReader r(payload);
  STORM_ASSIGN_OR_RETURN(uint8_t raw, r.GetU8());
  WireError err;
  STORM_ASSIGN_OR_RETURN(err.code, CheckedStatusCode(raw));
  STORM_ASSIGN_OR_RETURN(err.message, r.GetString());
  if (err.code == StatusCode::kOk) {
    return Status::Corruption("ERROR frame carrying an OK status");
  }
  return err;
}

// --- InsertBatchReply ---

std::string EncodeInsertBatchReply(const BatchInsertResult& result) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(result.status.code()));
  w.PutString(result.status.message());
  w.PutU8(result.atomic ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(result.ids.size()));
  for (RecordId id : result.ids) w.PutU64(id);
  return w.Take();
}

Result<BatchInsertResult> DecodeInsertBatchReply(std::string_view payload) {
  ByteReader r(payload);
  BatchInsertResult result;
  STORM_ASSIGN_OR_RETURN(uint8_t raw, r.GetU8());
  STORM_ASSIGN_OR_RETURN(StatusCode code, CheckedStatusCode(raw));
  STORM_ASSIGN_OR_RETURN(std::string message, r.GetString());
  result.status = code == StatusCode::kOk ? Status::OK()
                                          : Status(code, std::move(message));
  STORM_ASSIGN_OR_RETURN(uint8_t atomic, r.GetU8());
  result.atomic = atomic != 0;
  STORM_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count > r.remaining() / 8) {
    return Status::Corruption("insert reply id count exceeds payload size");
  }
  result.ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    STORM_ASSIGN_OR_RETURN(RecordId id, r.GetU64());
    result.ids.push_back(id);
  }
  return result;
}

// --- QueryProfile ---

std::string EncodeQueryProfile(const QueryProfile& p) {
  ByteWriter w;
  w.PutString(p.query);
  w.PutString(p.table);
  w.PutString(p.task);
  w.PutString(p.sampler);
  uint8_t trace_flags = 0;
  if (p.trace.valid()) trace_flags |= kFlagHasTrace;
  if (p.trace.sampled) trace_flags |= kFlagSampled;
  w.PutU8(trace_flags);
  if (p.trace.valid()) {
    w.PutU64(p.trace.trace_id_hi);
    w.PutU64(p.trace.trace_id_lo);
    w.PutU64(p.trace.span_id);
  }
  w.PutU32(static_cast<uint32_t>(p.spans().size()));
  for (const TraceSpan& s : p.spans()) {
    w.PutString(s.name);
    w.PutU32(static_cast<uint32_t>(s.depth));
    w.PutDouble(s.start_ms);
    w.PutDouble(s.wall_ms);
    w.PutU64(s.samples);
    w.PutU64(s.io.physical_reads);
    w.PutU64(s.io.physical_writes);
    w.PutU64(s.io.logical_reads);
    w.PutU64(s.io.pool_hits);
    w.PutU64(s.io.pool_misses);
    w.PutU64(s.io.evictions);
    w.PutString(s.note);
    w.PutString(s.site);
  }
  w.PutU32(static_cast<uint32_t>(p.convergence().size()));
  for (const ConvergencePoint& c : p.convergence()) {
    w.PutDouble(c.ms);
    w.PutU64(c.samples);
    w.PutDouble(c.estimate);
    w.PutDouble(c.half_width);
    w.PutDouble(c.cardinality_estimate);
  }
  return w.Take();
}

Result<QueryProfile> DecodeQueryProfile(std::string_view payload) {
  ByteReader r(payload);
  QueryProfile p;
  STORM_ASSIGN_OR_RETURN(p.query, r.GetString());
  STORM_ASSIGN_OR_RETURN(p.table, r.GetString());
  STORM_ASSIGN_OR_RETURN(p.task, r.GetString());
  STORM_ASSIGN_OR_RETURN(p.sampler, r.GetString());
  STORM_ASSIGN_OR_RETURN(uint8_t trace_flags, r.GetU8());
  if ((trace_flags & kFlagHasTrace) != 0) {
    STORM_ASSIGN_OR_RETURN(p.trace.trace_id_hi, r.GetU64());
    STORM_ASSIGN_OR_RETURN(p.trace.trace_id_lo, r.GetU64());
    STORM_ASSIGN_OR_RETURN(p.trace.span_id, r.GetU64());
    p.trace.sampled = (trace_flags & kFlagSampled) != 0;
  }
  STORM_ASSIGN_OR_RETURN(uint32_t span_count, r.GetU32());
  // Each span costs at least the fixed fields (~80 bytes); a count claiming
  // more than the payload could hold is malformed, not a reason to allocate.
  if (span_count > r.remaining() / 80 + 1) {
    return Status::Corruption("profile span count exceeds payload size");
  }
  std::vector<TraceSpan> spans;
  spans.reserve(span_count);
  for (uint32_t i = 0; i < span_count; ++i) {
    TraceSpan s;
    STORM_ASSIGN_OR_RETURN(s.name, r.GetString());
    STORM_ASSIGN_OR_RETURN(uint32_t depth, r.GetU32());
    s.depth = static_cast<int>(depth);
    STORM_ASSIGN_OR_RETURN(s.start_ms, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(s.wall_ms, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(s.samples, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.io.physical_reads, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.io.physical_writes, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.io.logical_reads, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.io.pool_hits, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.io.pool_misses, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.io.evictions, r.GetU64());
    STORM_ASSIGN_OR_RETURN(s.note, r.GetString());
    STORM_ASSIGN_OR_RETURN(s.site, r.GetString());
    spans.push_back(std::move(s));
  }
  p.ReplaceSpans(std::move(spans));
  STORM_ASSIGN_OR_RETURN(uint32_t point_count, r.GetU32());
  if (point_count > r.remaining() / 40 + 1) {
    return Status::Corruption("profile point count exceeds payload size");
  }
  std::vector<ConvergencePoint> points;
  points.reserve(point_count);
  for (uint32_t i = 0; i < point_count; ++i) {
    ConvergencePoint c;
    STORM_ASSIGN_OR_RETURN(c.ms, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(c.samples, r.GetU64());
    STORM_ASSIGN_OR_RETURN(c.estimate, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(c.half_width, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(c.cardinality_estimate, r.GetDouble());
    points.push_back(c);
  }
  p.ReplaceConvergence(std::move(points));
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after query profile");
  }
  return p;
}

// --- QueryResult ---

std::string EncodeQueryResult(const QueryResult& res,
                              const QueryProfile* profile,
                              bool include_cardinality) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(res.task));
  w.PutString(res.strategy);
  w.PutU8(static_cast<uint8_t>(res.decision.strategy));
  w.PutDouble(res.decision.estimated_cardinality);
  w.PutDouble(res.decision.estimated_selectivity);
  w.PutString(res.decision.reason);

  PutConfidence(&w, res.ci);
  w.PutDouble(res.ci_lower);
  w.PutDouble(res.ci_upper);

  w.PutU32(static_cast<uint32_t>(res.groups.size()));
  for (const GroupRow& g : res.groups) {
    w.PutU64(static_cast<uint64_t>(g.key));
    PutConfidence(&w, g.ci);
    PutConfidence(&w, g.group_size);
    w.PutU64(g.samples);
  }

  w.PutU32(static_cast<uint32_t>(res.kde_width));
  w.PutU32(static_cast<uint32_t>(res.kde_height));
  w.PutDouble(res.kde_max_half_width);
  w.PutU32(static_cast<uint32_t>(res.kde_map.size()));
  for (double v : res.kde_map) w.PutDouble(v);

  w.PutU32(static_cast<uint32_t>(res.terms.size()));
  for (const TermEstimate& t : res.terms) {
    w.PutString(t.term);
    w.PutU64(t.count);
    PutConfidence(&w, t.frequency);
  }

  w.PutU32(static_cast<uint32_t>(res.centers.size()));
  for (const Point2& c : res.centers) {
    w.PutDouble(c[0]);
    w.PutDouble(c[1]);
  }
  w.PutDouble(res.inertia);

  w.PutU32(static_cast<uint32_t>(res.trajectory.size()));
  for (const TimedPoint& p : res.trajectory) {
    w.PutDouble(p.t);
    w.PutDouble(p.position[0]);
    w.PutDouble(p.position[1]);
  }

  w.PutU64(res.samples);
  w.PutDouble(res.elapsed_ms);
  uint8_t flags = 0;
  if (res.exhausted) flags |= 1u << 0;
  if (res.cancelled) flags |= 1u << 1;
  if (res.explain_only) flags |= 1u << 2;
  if (res.deadline_exceeded) flags |= 1u << 3;
  if (res.degraded) flags |= 1u << 4;
  w.PutU8(flags);
  w.PutDouble(res.coverage);
  // Trailing extension blocks. Old decoders accept exactly two shapes —
  // ending at `coverage`, or a profile presence byte (+ span tree) and
  // nothing after — and reject anything else as corruption. So the
  // cardinality block is strictly opt-in: only peers that advertised
  // QueryRequest::want_cardinality get it (the presence byte is then
  // always written so the block has a fixed position); everyone else gets
  // the old bytes unchanged.
  if (include_cardinality) {
    w.PutU8(profile != nullptr ? 1 : 0);
    if (profile != nullptr) {
      w.PutString(EncodeQueryProfile(*profile));
    }
    w.PutDouble(res.cardinality_estimate);
    w.PutU8(res.cardinality_exact ? 1 : 0);
  } else if (profile != nullptr) {
    w.PutU8(1);
    w.PutString(EncodeQueryProfile(*profile));
  }
  return w.Take();
}

Result<QueryResult> DecodeQueryResult(std::string_view payload) {
  ByteReader r(payload);
  QueryResult res;
  STORM_ASSIGN_OR_RETURN(uint8_t task, r.GetU8());
  if (task > static_cast<uint8_t>(QueryTask::kTrajectory)) {
    return Status::Corruption("query task out of range");
  }
  res.task = static_cast<QueryTask>(task);
  STORM_ASSIGN_OR_RETURN(res.strategy, r.GetString());
  STORM_ASSIGN_OR_RETURN(uint8_t strategy, r.GetU8());
  // kStratified is the newest tag; servers only send it to clients that set
  // the stratified request flag, so older decoders never see it.
  if (strategy > static_cast<uint8_t>(SamplerStrategy::kStratified)) {
    return Status::Corruption("sampler strategy out of range");
  }
  res.decision.strategy = static_cast<SamplerStrategy>(strategy);
  STORM_ASSIGN_OR_RETURN(res.decision.estimated_cardinality, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(res.decision.estimated_selectivity, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(res.decision.reason, r.GetString());

  STORM_ASSIGN_OR_RETURN(res.ci, GetConfidence(&r));
  STORM_ASSIGN_OR_RETURN(res.ci_lower, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(res.ci_upper, r.GetDouble());

  STORM_ASSIGN_OR_RETURN(uint32_t group_count, r.GetU32());
  for (uint32_t i = 0; i < group_count; ++i) {
    GroupRow g;
    STORM_ASSIGN_OR_RETURN(uint64_t key, r.GetU64());
    g.key = static_cast<int64_t>(key);
    STORM_ASSIGN_OR_RETURN(g.ci, GetConfidence(&r));
    STORM_ASSIGN_OR_RETURN(g.group_size, GetConfidence(&r));
    STORM_ASSIGN_OR_RETURN(g.samples, r.GetU64());
    res.groups.push_back(std::move(g));
  }

  STORM_ASSIGN_OR_RETURN(uint32_t kde_w, r.GetU32());
  STORM_ASSIGN_OR_RETURN(uint32_t kde_h, r.GetU32());
  res.kde_width = static_cast<int>(kde_w);
  res.kde_height = static_cast<int>(kde_h);
  STORM_ASSIGN_OR_RETURN(res.kde_max_half_width, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(uint32_t kde_cells, r.GetU32());
  if (kde_cells > r.remaining() / 8) {
    return Status::Corruption("kde cell count exceeds payload size");
  }
  res.kde_map.reserve(kde_cells);
  for (uint32_t i = 0; i < kde_cells; ++i) {
    STORM_ASSIGN_OR_RETURN(double v, r.GetDouble());
    res.kde_map.push_back(v);
  }

  STORM_ASSIGN_OR_RETURN(uint32_t term_count, r.GetU32());
  for (uint32_t i = 0; i < term_count; ++i) {
    TermEstimate t;
    STORM_ASSIGN_OR_RETURN(t.term, r.GetString());
    STORM_ASSIGN_OR_RETURN(t.count, r.GetU64());
    STORM_ASSIGN_OR_RETURN(t.frequency, GetConfidence(&r));
    res.terms.push_back(std::move(t));
  }

  STORM_ASSIGN_OR_RETURN(uint32_t center_count, r.GetU32());
  if (center_count > r.remaining() / 16) {
    return Status::Corruption("center count exceeds payload size");
  }
  res.centers.reserve(center_count);
  for (uint32_t i = 0; i < center_count; ++i) {
    Point2 c;
    STORM_ASSIGN_OR_RETURN(c[0], r.GetDouble());
    STORM_ASSIGN_OR_RETURN(c[1], r.GetDouble());
    res.centers.push_back(c);
  }
  STORM_ASSIGN_OR_RETURN(res.inertia, r.GetDouble());

  STORM_ASSIGN_OR_RETURN(uint32_t fix_count, r.GetU32());
  if (fix_count > r.remaining() / 24) {
    return Status::Corruption("trajectory fix count exceeds payload size");
  }
  res.trajectory.reserve(fix_count);
  for (uint32_t i = 0; i < fix_count; ++i) {
    TimedPoint p;
    STORM_ASSIGN_OR_RETURN(p.t, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(p.position[0], r.GetDouble());
    STORM_ASSIGN_OR_RETURN(p.position[1], r.GetDouble());
    res.trajectory.push_back(p);
  }

  STORM_ASSIGN_OR_RETURN(res.samples, r.GetU64());
  STORM_ASSIGN_OR_RETURN(res.elapsed_ms, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
  res.exhausted = (flags & (1u << 0)) != 0;
  res.cancelled = (flags & (1u << 1)) != 0;
  res.explain_only = (flags & (1u << 2)) != 0;
  res.deadline_exceeded = (flags & (1u << 3)) != 0;
  res.degraded = (flags & (1u << 4)) != 0;
  STORM_ASSIGN_OR_RETURN(res.coverage, r.GetDouble());
  // Optional trailing blocks. A payload ending here is the pre-profile
  // shape; one ending after the profile block is the pre-cardinality shape.
  if (r.remaining() != 0) {
    STORM_ASSIGN_OR_RETURN(uint8_t has_profile, r.GetU8());
    if (has_profile != 0) {
      STORM_ASSIGN_OR_RETURN(std::string profile_bytes, r.GetString());
      STORM_ASSIGN_OR_RETURN(QueryProfile profile,
                             DecodeQueryProfile(profile_bytes));
      res.profile = std::make_shared<QueryProfile>(std::move(profile));
    }
  }
  if (r.remaining() != 0) {
    STORM_ASSIGN_OR_RETURN(res.cardinality_estimate, r.GetDouble());
    STORM_ASSIGN_OR_RETURN(uint8_t card_exact, r.GetU8());
    res.cardinality_exact = card_exact != 0;
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after query result");
  }
  return res;
}

}  // namespace storm
