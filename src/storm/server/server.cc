#include "storm/server/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "storm/cache/sample_cache.h"
#include "storm/obs/flight_recorder.h"
#include "storm/obs/metrics.h"
#include "storm/obs/trace_export.h"
#include "storm/util/failpoint.h"
#include "storm/util/logging.h"
#include "storm/util/rng.h"
#include "storm/util/stopwatch.h"
#include "storm/wal/codec.h"

namespace storm {

namespace {
constexpr int kPollIntervalMs = 100;
constexpr size_t kRecvChunkBytes = 64 * 1024;
constexpr size_t kMaxSlowQueries = 32;

void EscapeJsonTo(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Per-reader-thread Bernoulli stream deciding which clientless queries the
// server self-samples. Never consumed by query execution, so seeded
// workloads stay reproducible.
bool SampleTrace(double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  thread_local Rng* rng = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    return new Rng(seed);
  }();
  return rng->Bernoulli(rate);
}
}  // namespace

/// One running query's server-side state. The cancel token must stay alive
/// until the query task finishes, hence the shared_ptr ownership from both
/// the connection map and the task closure.
struct StormServer::RunningQuery {
  CancelToken cancel;
  TraceContext trace;      ///< adopted from the client or minted at admit
  std::string query_text;  ///< for /statusz and the slow-query log
  Stopwatch watch;         ///< running since admission
  std::atomic<uint64_t> samples{0};  ///< latest progress snapshot
};

/// Per-connection server-side session: socket, reader/writer threads, the
/// bounded write buffer, and the in-flight query map.
struct StormServer::Connection {
  UniqueFd fd;
  std::thread reader;
  std::thread writer;

  std::mutex mutex;
  std::condition_variable cv_queue;  ///< wakes the writer (frames / closing)
  std::condition_variable cv_space;  ///< wakes stalled senders + teardown
  std::deque<std::string> write_queue;
  size_t queued_bytes = 0;
  /// Bytes of the frame the writer popped but has not finished sending
  /// (guarded by mutex). Drain() needs "flushed" = empty queue AND no
  /// frame mid-write — admission slots release when the final frame is
  /// queued, not when it reaches the wire.
  size_t writing_bytes = 0;
  /// Set (under mutex) once the connection is being torn down; read
  /// lock-free from progress callbacks.
  std::atomic<bool> closing{false};
  std::map<uint64_t, std::shared_ptr<RunningQuery>> queries;

  /// Reader finished; the accept loop may join + reap this connection.
  std::atomic<bool> reader_done{false};

  /// Marks the connection closing and unblocks every thread parked on it.
  /// Safe to call from any thread, repeatedly.
  void BeginClose() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closing.store(true, std::memory_order_release);
    }
    fd.ShutdownBothEnds();
    cv_queue.notify_all();
    cv_space.notify_all();
  }
};

StormServer::StormServer(Session* session, ServerOptions options)
    : owned_backend_(std::make_unique<SessionBackend>(session)),
      backend_(owned_backend_.get()),
      options_(options),
      admission_(options.query_threads, options.max_queued_queries) {}

StormServer::StormServer(QueryBackend* backend, ServerOptions options)
    : backend_(backend),
      options_(options),
      admission_(options.query_threads, options.max_queued_queries) {}

StormServer::~StormServer() { Stop(); }

Status StormServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("server already running");
  MetricsRegistry& reg = MetricsRegistry::Default();
  connections_total_ = reg.GetCounter("storm_server_connections_total",
                                      "Connections accepted");
  connections_active_ = reg.GetGauge("storm_server_connections_active",
                                     "Connections currently open");
  queries_total_ =
      reg.GetCounter("storm_server_queries_total", "Query frames admitted");
  queries_inflight_ = reg.GetGauge("storm_server_queries_inflight",
                                   "Queries running or queued");
  shed_total_ = reg.GetCounter("storm_server_shed_total",
                               "Queries shed by admission control");
  bytes_streamed_ = reg.GetCounter("storm_server_bytes_streamed_total",
                                   "Frame bytes written to clients");
  progress_dropped_ =
      reg.GetCounter("storm_server_progress_dropped_total",
                     "PROGRESS frames dropped by write-buffer backpressure");

  if (options_.sample_cache && options_.sample_cache_bytes > 0) {
    SampleCacheOptions cache_options;
    cache_options.max_bytes = options_.sample_cache_bytes;
    SampleReservoirCache::Default().Configure(cache_options);
  }

  STORM_ASSIGN_OR_RETURN(listen_fd_, TcpListen(options_.port));
  STORM_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_.get()));
  if (options_.metrics_port >= 0) {
    STORM_ASSIGN_OR_RETURN(metrics_fd_, TcpListen(options_.metrics_port));
    STORM_ASSIGN_OR_RETURN(metrics_port_, BoundPort(metrics_fd_.get()));
  }

  stopping_.store(false);
  draining_.store(false);
  uptime_.Restart();
  query_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options_.query_threads)));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (metrics_fd_.valid()) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  running_.store(true, std::memory_order_release);
  STORM_LOG(Info) << "storm_server listening on port " << port_
                  << (metrics_port_ >= 0
                          ? " (metrics on " + std::to_string(metrics_port_) + ")"
                          : "");
  return Status::OK();
}

void StormServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock the accept/metrics threads and every connection thread.
  listen_fd_.ShutdownBothEnds();
  metrics_fd_.ShutdownBothEnds();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) conn->BeginClose();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();

  // Readers observe the shutdown, cancel their queries, wait for the query
  // tasks, join their writers, and finish; join them all.
  ReapFinished(/*join_all=*/true);

  // Drain the query pool (it should already be empty — every task was
  // awaited by a connection teardown above).
  query_pool_.reset();
  listen_fd_.Reset();
  metrics_fd_.Reset();
  port_ = -1;
  metrics_port_ = -1;
}

void StormServer::Drain(double timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true)) return;
  // Close the listener so no new connection lands; the accept loop sees
  // draining_ and idles instead of spinning on the dead fd. Existing
  // connections keep their reader/writer threads — in-flight queries
  // stream to completion.
  listen_fd_.ShutdownBothEnds();
  STORM_LOG(Info) << "storm_server draining: waiting up to " << timeout_ms
                  << " ms for " << admission_.in_flight()
                  << " in-flight queries";
  // "Drained" means the slot count AND the wire agree: admission releases
  // when a query's final frame is QUEUED, so a slow consumer can still
  // have that frame (and a backlog of progress frames) in flight after
  // in_flight() hits zero. Stopping then would cut the stream mid-result.
  auto streams_flushed = [this] {
    std::lock_guard<std::mutex> conns_lock(conns_mutex_);
    for (const auto& conn : conns_) {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closing.load(std::memory_order_acquire)) continue;
      if (!conn->write_queue.empty() || conn->writing_bytes > 0) return false;
    }
    return true;
  };
  Stopwatch watch;
  while ((admission_.in_flight() > 0 || !streams_flushed()) &&
         (timeout_ms <= 0.0 || watch.ElapsedMillis() < timeout_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Stop();
}

size_t StormServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  size_t alive = 0;
  for (const auto& conn : conns_) {
    if (!conn->reader_done.load(std::memory_order_acquire)) ++alive;
  }
  return alive;
}

void StormServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinished(/*join_all=*/false);
    if (draining_.load(std::memory_order_acquire)) {
      // Drain() shut the listener down; idle instead of spinning on it.
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollIntervalMs));
      continue;
    }
    Result<UniqueFd> accepted =
        AcceptWithTimeout(listen_fd_.get(), kPollIntervalMs);
    if (!accepted.ok()) continue;
    if (!accepted->valid()) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    connections_total_->Increment();
    connections_active_->Add(1);
    FlightRecord(FlightEvent::kConnOpen);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(conn);
    }
    conn->writer = std::thread([this, conn] { WriterLoop(conn); });
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void StormServer::ReapFinished(bool join_all) {
  std::vector<std::shared_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if (join_all || (*it)->reader_done.load(std::memory_order_acquire)) {
        to_join.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : to_join) {
    if (conn->reader.joinable()) conn->reader.join();
    // The reader joins the writer on its way out, but if the reader thread
    // never ran (early Stop), the writer may still need joining here.
    if (conn->writer.joinable()) conn->writer.join();
  }
}

void StormServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buf;
  std::vector<char> chunk(kRecvChunkBytes);
  while (!stopping_.load(std::memory_order_acquire) &&
         !conn->closing.load(std::memory_order_acquire)) {
    Result<size_t> got =
        RecvSome(conn->fd.get(), chunk.data(), chunk.size(), kPollIntervalMs);
    if (!got.ok()) break;  // peer closed or socket error
    if (*got == 0) continue;
    buf.append(chunk.data(), *got);
    bool violated = false;
    while (true) {
      Frame frame;
      Result<size_t> consumed = TryDecodeFrame(buf, &frame);
      if (!consumed.ok()) {
        // Corrupt stream: tell the client why (best effort), then drop —
        // there is no way to resynchronize a byte stream after a bad frame.
        Send(conn,
             EncodeFrame(FrameType::kError, 0,
                         EncodeWireError(consumed.status())),
             /*droppable=*/false);
        violated = true;
        break;
      }
      if (*consumed == 0) break;
      Frame owned = std::move(frame);
      buf.erase(0, *consumed);
      FlightRecord(FlightEvent::kFrameRx, static_cast<uint64_t>(owned.type),
                   owned.id);
      if (!HandleFrame(conn, std::move(owned))) {
        violated = true;
        break;
      }
    }
    if (violated) break;
  }
  CloseConnection(conn);
  connections_active_->Add(-1);
  FlightRecord(FlightEvent::kConnClose);
  conn->reader_done.store(true, std::memory_order_release);
}

void StormServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  // 1. Cancel every in-flight query on this connection.
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    for (auto& [id, running] : conn->queries) running->cancel.Cancel();
  }
  // 2. Wait for the query tasks to finish (cancellation is polled per
  //    sample batch, so this is prompt; the wait also covers tasks still
  //    queued in the pool).
  {
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->cv_space.wait(lock, [&] { return conn->queries.empty(); });
  }
  // 3. Let the writer drain whatever is queued, then join it.
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closing.store(true, std::memory_order_release);
  }
  conn->cv_queue.notify_all();
  conn->cv_space.notify_all();
  if (conn->writer.joinable()) conn->writer.join();
  conn->fd.ShutdownBothEnds();
}

void StormServer::WriterLoop(std::shared_ptr<Connection> conn) {
  while (true) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv_queue.wait(lock, [&] {
        return !conn->write_queue.empty() ||
               conn->closing.load(std::memory_order_acquire);
      });
      if (conn->write_queue.empty()) break;  // closing and drained
      frame = std::move(conn->write_queue.front());
      conn->write_queue.pop_front();
      conn->queued_bytes -= frame.size();
      conn->writing_bytes = frame.size();
    }
    conn->cv_space.notify_all();

    // Slow-consumer injection: a latency-only failpoint (code kOk) stalls
    // the writer, shrinking the effective drain rate.
    (void)Failpoints::Default().Evaluate("server.conn.slow");
    // Connection-drop injection: the stream dies mid-flight, exactly like a
    // peer route loss.
    bool sent = Failpoints::Default().Evaluate("server.conn.drop").ok() &&
                SendAll(conn->fd.get(), frame.data(), frame.size()).ok();
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->writing_bytes = 0;
    }
    conn->cv_space.notify_all();
    if (!sent) {
      conn->BeginClose();
      break;
    }
    bytes_streamed_->Increment(frame.size());
  }
}

bool StormServer::Send(const std::shared_ptr<Connection>& conn,
                       std::string frame, bool droppable) {
  std::unique_lock<std::mutex> lock(conn->mutex);
  if (conn->closing.load(std::memory_order_acquire)) return false;
  size_t queued_after = conn->queued_bytes + frame.size();
  if (droppable && queued_after > options_.write_buffer_soft_limit) {
    // Backpressure, stage 1: degrade the PROGRESS cadence. The client
    // simply sees fewer updates; the eventual RESULT is never dropped.
    progress_dropped_->Increment();
    FlightRecord(FlightEvent::kBackpressureDrop, queued_after);
    return true;
  }
  if (queued_after > options_.write_buffer_hard_limit) {
    // Backpressure, stage 2: stall the producer briefly; a consumer that
    // cannot drain within the stall budget is declared dead.
    FlightRecord(FlightEvent::kBackpressureStall, queued_after);
    bool space = conn->cv_space.wait_for(
        lock, std::chrono::milliseconds(options_.write_stall_timeout_ms),
        [&] {
          return conn->closing.load(std::memory_order_acquire) ||
                 conn->queued_bytes + frame.size() <=
                     options_.write_buffer_hard_limit;
        });
    if (!space || conn->closing.load(std::memory_order_acquire)) {
      lock.unlock();
      conn->BeginClose();
      return false;
    }
  }
  const size_t frame_bytes = frame.size();
  // Frame type lives right after the 4-byte length prefix.
  const uint8_t frame_type =
      frame.size() > 4 ? static_cast<uint8_t>(frame[4]) : 0;
  conn->write_queue.push_back(std::move(frame));
  conn->queued_bytes += conn->write_queue.back().size();
  lock.unlock();
  conn->cv_queue.notify_one();
  // PROGRESS frames are too chatty for the flight recorder; record the
  // frames that decide a query's fate.
  if (!droppable) {
    FlightRecord(FlightEvent::kFrameTx, frame_type, frame_bytes);
  }
  return true;
}

bool StormServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  switch (frame.type) {
    case FrameType::kPing: {
      std::string_view echo;
      const bool want_freshness = DecodePingPayload(frame.payload, &echo);
      if (want_freshness && options_.answer_ping_freshness) {
        PongFreshness fresh;
        fresh.known = true;
        fresh.applied_records = backend_->AppliedRecords();
        Send(conn,
             EncodeFrame(FrameType::kPong, frame.id,
                         EncodePongPayload(echo, &fresh)),
             /*droppable=*/false);
      } else {
        // Pre-freshness client (or emulated pre-freshness server): the
        // payload is echoed verbatim, capability byte and all — old
        // clients equality-check the echo.
        Send(conn, EncodeFrame(FrameType::kPong, frame.id, frame.payload),
             /*droppable=*/false);
      }
      return true;
    }

    case FrameType::kMetrics:
      Send(conn,
           EncodeFrame(FrameType::kMetricsText, frame.id,
                       MetricsRegistry::Default().ExposePrometheus()),
           /*droppable=*/false);
      return true;

    case FrameType::kCancel: {
      FlightRecord(FlightEvent::kCancel, frame.id);
      std::lock_guard<std::mutex> lock(conn->mutex);
      auto it = conn->queries.find(frame.id);
      if (it != conn->queries.end()) it->second->cancel.Cancel();
      return true;  // cancelling a finished query is a no-op, not an error
    }

    case FrameType::kQuery: {
      Result<QueryRequest> req = DecodeQueryRequest(frame.payload);
      if (!req.ok()) {
        Send(conn,
             EncodeFrame(FrameType::kError, frame.id,
                         EncodeWireError(req.status())),
             /*droppable=*/false);
        return true;
      }
      bool duplicate_id = false;
      {
        // Send() takes conn->mutex itself, so the check and the error
        // frame must not share the critical section.
        std::lock_guard<std::mutex> lock(conn->mutex);
        duplicate_id = conn->queries.contains(frame.id);
      }
      if (duplicate_id) {
        Send(conn,
             EncodeFrame(FrameType::kError, frame.id,
                         EncodeWireError(Status::InvalidArgument(
                             "request id already in flight"))),
             /*droppable=*/false);
        return true;
      }
      if (draining_.load(std::memory_order_acquire)) {
        shed_total_->Increment();
        FlightRecord(FlightEvent::kQueryShed, frame.id);
        Send(conn,
             EncodeFrame(FrameType::kError, frame.id,
                         EncodeWireError(Status::Unavailable(
                             "server draining: not accepting new queries"))),
             /*droppable=*/false);
        return true;
      }
      if (!admission_.TryAdmit()) {
        shed_total_->Increment();
        FlightRecord(FlightEvent::kQueryShed, frame.id);
        Send(conn,
             EncodeFrame(FrameType::kError, frame.id,
                         EncodeWireError(Status::Unavailable(
                             "server overloaded: query shed by admission "
                             "control, retry with backoff"))),
             /*droppable=*/false);
        return true;
      }
      auto running = std::make_shared<RunningQuery>();
      // Adopt the client's trace as a child span (same trace id, our own
      // span id) or, for untraced clients, mint one — self-sampled at
      // trace_sample_rate so a fleet with no tracing clients still
      // populates /tracez.
      running->trace =
          req->trace.valid()
              ? req->trace.Child()
              : TraceContext::Mint(SampleTrace(options_.trace_sample_rate));
      running->query_text = req->query;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->queries[frame.id] = running;
      }
      queries_total_->Increment();
      queries_inflight_->Add(1);
      {
        // Tag the admit event with the query's trace before the pool task
        // installs the ambient context.
        ScopedTraceContext trace_scope(running->trace);
        FlightRecord(FlightEvent::kQueryAdmit, frame.id, 0, req->query);
      }
      uint64_t id = frame.id;
      QueryRequest request = std::move(*req);
      (void)query_pool_->Submit(
          [this, conn, id, request = std::move(request), running]() mutable {
            RunQuery(conn, id, std::move(request), running);
          });
      return true;
    }

    case FrameType::kInsertBatch: {
      Result<InsertBatchRequest> req = DecodeInsertBatchRequest(frame.payload);
      BatchInsertResult result;
      if (!req.ok()) {
        result.status = req.status();
      } else {
        std::vector<Value> docs;
        docs.reserve(req->docs_json.size());
        Status parse_status;
        for (const std::string& json : req->docs_json) {
          Result<Value> doc = Value::Parse(json);
          if (!doc.ok()) {
            parse_status = Status::InvalidArgument("document " +
                                                   std::to_string(docs.size()) +
                                                   ": " +
                                                   doc.status().message());
            break;
          }
          docs.push_back(std::move(*doc));
        }
        if (!parse_status.ok()) {
          result.status = parse_status;
        } else {
          result = backend_->InsertBatch(req->table, docs);
        }
      }
      Send(conn,
           EncodeFrame(FrameType::kInsertResult, frame.id,
                       EncodeInsertBatchReply(result)),
           /*droppable=*/false);
      return true;
    }

    case FrameType::kCheckpoint: {
      ByteReader reader(frame.payload);
      Result<std::string> table = reader.GetString();
      Status st = table.ok() ? backend_->Checkpoint(*table) : table.status();
      if (st.ok()) {
        Send(conn, EncodeFrame(FrameType::kOk, frame.id, {}),
             /*droppable=*/false);
      } else {
        Send(conn,
             EncodeFrame(FrameType::kError, frame.id, EncodeWireError(st)),
             /*droppable=*/false);
      }
      return true;
    }

    default:
      // A client sending response-type frames is a protocol violation.
      Send(conn,
           EncodeFrame(FrameType::kError, frame.id,
                       EncodeWireError(Status::InvalidArgument(
                           "unexpected response-type frame from client"))),
           /*droppable=*/false);
      return false;
  }
}

void StormServer::RunQuery(std::shared_ptr<Connection> conn, uint64_t id,
                           QueryRequest req,
                           std::shared_ptr<RunningQuery> running) {
  // However this task exits — result sent, early close, an exception out of
  // the backend — the admission slot must be released and the query erased
  // from conn->queries, or the slot leaks and CloseConnection (which waits
  // for conn->queries to empty) hangs the reaper forever. The abrupt-
  // disconnect soak scenario exercises exactly this path: the reader thread
  // dies mid-query and teardown must still settle the accounting.
  struct FinishGuard {
    StormServer* server;
    const std::shared_ptr<Connection>& conn;
    uint64_t id;
    ~FinishGuard() { server->FinishQuery(conn, id); }
  } finish_guard{this, conn, id};
  if (conn->closing.load(std::memory_order_acquire)) {
    return;
  }
  // The query's trace identity becomes this worker's ambient context:
  // every log line, failpoint trip, and flight-recorder event below — and
  // in the evaluator's sampling workers — carries its trace id.
  const TraceContext trace = running->trace;
  ScopedTraceContext trace_scope(trace);
  ExecOptions options;
  options.parallelism =
      std::clamp<int32_t>(req.parallelism, 1, options_.max_parallelism);
  options.deadline_ms = req.deadline_ms;
  options.sampling.prefer_stratified = req.want_stratified;
  // Clients that predate the stratified flag cannot decode the STRATIFIED
  // strategy tag in QueryResult, so the optimizer's automatic upgrade is
  // opt-in over the wire: only clients that sent the flag may receive it.
  options.sampling.auto_stratify = req.want_stratified;
  // Per-server reservoir cache, shared across every connection; a client's
  // no-cache hint (or a server-wide off switch) opts this query out.
  options.sampling.sample_cache = options_.sample_cache && !req.no_cache;
  // Profiles cost span bookkeeping per batch; collect one only when the
  // client asked for it or the trace is sampled (TraceSink retention).
  options.profile = req.want_profile || trace.sampled;
  options.trace = trace;
  options.cancel = &running->cancel;
  if (req.progress_interval_ms > 0) {
    auto since_last = std::make_shared<Stopwatch>();
    bool first = true;
    options.progress = [this, conn, id, req, since_last, first,
                        running](const QueryProgress& p) mutable {
      running->samples.store(p.samples, std::memory_order_relaxed);
      if (stopping_.load(std::memory_order_acquire) ||
          conn->closing.load(std::memory_order_acquire)) {
        return false;
      }
      if (first || since_last->ElapsedMillis() >=
                       static_cast<double>(req.progress_interval_ms)) {
        first = false;
        since_last->Restart();
        ProgressUpdate update;
        update.samples = p.samples;
        update.elapsed_ms = p.elapsed_ms;
        update.ci = p.ci;
        update.cardinality_estimate = p.cardinality_estimate;
        update.cardinality_exact = p.cardinality_exact;
        Send(conn,
             EncodeFrame(FrameType::kProgress, id,
                         EncodeProgressUpdate(update)),
             /*droppable=*/true);
      }
      return true;
    };
  }
  Result<QueryResult> result = backend_->Execute(req.query, options);
  const double elapsed_ms = running->watch.ElapsedMillis();
  if (!result.ok()) {
    Send(conn,
         EncodeFrame(FrameType::kError, id, EncodeWireError(result.status())),
         /*droppable=*/false);
    NoteSlowQuery(req, trace, elapsed_ms, nullptr);
  } else {
    // Ship the server-side profile only to clients that asked; sampled
    // traces were already retained in the TraceSink by the session.
    const QueryProfile* wire_profile =
        req.want_profile && result->profile != nullptr ? result->profile.get()
                                                       : nullptr;
    Send(conn,
         EncodeFrame(FrameType::kResult, id,
                     EncodeQueryResult(*result, wire_profile,
                                       req.want_cardinality)),
         /*droppable=*/false);
    NoteSlowQuery(req, trace, elapsed_ms,
                  result->profile != nullptr ? result->profile.get() : nullptr);
  }
  FlightRecord(FlightEvent::kQueryFinish, id,
               static_cast<uint64_t>(elapsed_ms * 1000.0));
}

void StormServer::NoteSlowQuery(const QueryRequest& req,
                                const TraceContext& trace, double elapsed_ms,
                                const QueryProfile* profile) {
  if (options_.slow_query_threshold_ms <= 0.0 ||
      elapsed_ms < options_.slow_query_threshold_ms) {
    return;
  }
  SlowQuery slow;
  slow.elapsed_ms = elapsed_ms;
  slow.query = req.query;
  slow.trace_id = trace.trace_id_hex();
  if (profile != nullptr) {
    // Top-3 widest spans (root excluded — it is the whole query).
    std::vector<const TraceSpan*> spans;
    for (size_t i = 1; i < profile->spans().size(); ++i) {
      spans.push_back(&profile->spans()[i]);
    }
    std::sort(spans.begin(), spans.end(), [](const auto* x, const auto* y) {
      return x->wall_ms > y->wall_ms;
    });
    char buf[96];
    for (size_t i = 0; i < spans.size() && i < 3; ++i) {
      std::snprintf(buf, sizeof(buf), "%s%s=%.1fms", i > 0 ? " " : "",
                    spans[i]->name.c_str(), spans[i]->wall_ms);
      slow.top_spans += buf;
    }
  }
  STORM_LOG(Warn) << "slow query (" << elapsed_ms << " ms"
                  << (slow.top_spans.empty() ? "" : "; " + slow.top_spans)
                  << "): " << req.query;
  std::lock_guard<std::mutex> lock(slow_mutex_);
  slow_queries_.push_back(std::move(slow));
  while (slow_queries_.size() > kMaxSlowQueries) slow_queries_.pop_front();
}

void StormServer::FinishQuery(const std::shared_ptr<Connection>& conn,
                              uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->queries.erase(id);
  }
  admission_.Release();
  queries_inflight_->Add(-1);
  conn->cv_space.notify_all();
}

std::string StormServer::HealthzJson() const {
  std::string reasons;
  auto add_reason = [&](const char* r) {
    if (!reasons.empty()) reasons += ",";
    reasons += "\"";
    reasons += r;
    reasons += "\"";
  };
  if (stopping_.load(std::memory_order_acquire)) {
    add_reason("shutting_down");
  } else if (draining_.load(std::memory_order_acquire)) {
    add_reason("draining");
  }
  const int capacity = options_.query_threads + options_.max_queued_queries;
  if (admission_.in_flight() >= capacity) add_reason("admission_saturated");
  std::string out = "{\"status\":\"";
  out += reasons.empty() ? "ok" : "degraded";
  out += "\",\"uptime_s\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", uptime_.ElapsedMillis() / 1000.0);
  out += buf;
  out += ",\"degraded_reasons\":[" + reasons + "]}";
  return out;
}

std::string StormServer::StatuszJson() const {
  char buf[160];
  std::string out = "{\"build\":{\"compiler\":\"";
#if defined(__VERSION__)
  EscapeJsonTo(__VERSION__, &out);
#else
  out += "unknown";
#endif
  out += "\",\"built\":\"" __DATE__ " " __TIME__ "\"}";
  std::snprintf(buf, sizeof(buf), ",\"uptime_s\":%.1f",
                uptime_.ElapsedMillis() / 1000.0);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"admission\":{\"in_flight\":%d,\"admitted\":%llu,\"released\":%llu,"
      "\"shed\":%llu,\"slots\":%d,\"queue\":%d}",
      admission_.in_flight(),
      static_cast<unsigned long long>(admission_.admitted_total()),
      static_cast<unsigned long long>(admission_.released_total()),
      static_cast<unsigned long long>(admission_.shed_total()),
      options_.query_threads, options_.max_queued_queries);
  out += buf;
  std::snprintf(
      buf, sizeof(buf), ",\"traces_recorded\":%llu,\"flight_events\":%llu",
      static_cast<unsigned long long>(TraceSink::Default().recorded_total()),
      static_cast<unsigned long long>(
          FlightRecorder::Default().recorded_total()));
  out += buf;

  // Connections + active queries. Lock order: conns_mutex_ then each
  // conn->mutex — the same order CloseConnection relies on.
  out += ",\"connections\":[";
  {
    std::lock_guard<std::mutex> conns_lock(conns_mutex_);
    bool first_conn = true;
    for (const auto& conn : conns_) {
      if (conn->reader_done.load(std::memory_order_acquire)) continue;
      if (!first_conn) out += ",";
      first_conn = false;
      std::lock_guard<std::mutex> lock(conn->mutex);
      std::snprintf(buf, sizeof(buf),
                    "{\"queued_bytes\":%llu,\"active_queries\":[",
                    static_cast<unsigned long long>(conn->queued_bytes));
      out += buf;
      bool first_query = true;
      for (const auto& [id, running] : conn->queries) {
        if (!first_query) out += ",";
        first_query = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"id\":%llu,\"trace_id\":\"%s\",\"elapsed_ms\":%.1f,"
                      "\"samples\":%llu,\"query\":\"",
                      static_cast<unsigned long long>(id),
                      running->trace.trace_id_hex().c_str(),
                      running->watch.ElapsedMillis(),
                      static_cast<unsigned long long>(
                          running->samples.load(std::memory_order_relaxed)));
        out += buf;
        EscapeJsonTo(running->query_text, &out);
        out += "\"}";
      }
      out += "]}";
    }
  }
  out += "]";

  out += ",\"slow_queries\":[";
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    bool first = true;
    for (const SlowQuery& s : slow_queries_) {
      if (!first) out += ",";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"elapsed_ms\":%.1f,\"trace_id\":\"%s\",\"query\":\"",
                    s.elapsed_ms, s.trace_id.c_str());
      out += buf;
      EscapeJsonTo(s.query, &out);
      out += "\",\"top_spans\":\"";
      EscapeJsonTo(s.top_spans, &out);
      out += "\"}";
    }
  }
  out += "]}";
  return out;
}

void StormServer::MetricsLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<UniqueFd> accepted =
        AcceptWithTimeout(metrics_fd_.get(), kPollIntervalMs);
    if (!accepted.ok() || !accepted->valid()) continue;
    // One short-lived HTTP exchange per connection, served inline:
    // diagnostics scrapes are rare and tiny compared to query traffic.
    std::string request;
    char buf[2048];
    Stopwatch watch;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 8192 && watch.ElapsedMillis() < 2000.0) {
      Result<size_t> got =
          RecvSome(accepted->get(), buf, sizeof(buf), kPollIntervalMs);
      if (!got.ok()) break;
      request.append(buf, *got);
    }
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
      const size_t end = request.find_first_of(" \r\n", 4);
      if (end != std::string::npos) path = request.substr(4, end - 4);
    }
    std::string body, status_line, content_type = "application/json";
    status_line = "HTTP/1.1 200 OK";
    if (path == "/metrics") {
      body = MetricsRegistry::Default().ExposePrometheus();
      content_type = "text/plain; version=0.0.4";
    } else if (path == "/healthz") {
      body = HealthzJson();
    } else if (path == "/statusz") {
      body = StatuszJson();
    } else if (path == "/tracez") {
      body = TraceSink::Default().ToJson();
    } else if (path == "/flightz") {
      body = FlightRecorder::Default().DumpJson();
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      content_type = "text/plain";
      body =
          "serving: /metrics /healthz /statusz /tracez /flightz\n";
    }
    std::string response = status_line + "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    (void)SendAll(accepted->get(), response.data(), response.size());
  }
}

}  // namespace storm
