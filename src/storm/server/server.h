// StormServer: the network serving layer. Accepts TCP connections speaking
// the frame protocol (server/protocol.h) and streams anytime results.
//
// Threading model:
//   - one accept thread (also reaps finished connections);
//   - one reader + one writer thread per connection;
//   - queries run on a server-owned ThreadPool whose size is the number of
//     execution slots. It is deliberately NOT ThreadPool::Shared(): a query
//     with ExecOptions parallelism > 1 fans its sampling workers out to the
//     shared pool and blocks on their futures, and blocking on a pool from
//     inside one of its own tasks is the classic pool deadlock
//     (util/thread_pool.h).
//
// Admission control: AdmissionController bounds running + queued queries;
// beyond the bound the server sheds with an ERROR(kUnavailable) frame
// instead of queueing unboundedly.
//
// Backpressure: each connection owns a bounded write buffer. PROGRESS
// frames are droppable — once the buffer passes its soft limit they are
// skipped (the client sees a lower cadence, never a stale order). RESULT /
// ERROR frames are not droppable: past the hard limit the sender stalls up
// to write_stall_timeout_ms, then the connection is dropped as a dead
// consumer.
//
// Failpoints: `server.conn.drop` (drop a connection mid-stream from the
// writer) and `server.conn.slow` (inject per-frame write latency,
// simulating a slow consumer). Metrics: storm_server_* families in the
// default registry, scrapeable over plain HTTP (`GET /metrics`) when
// ServerOptions::metrics_port is enabled.

#ifndef STORM_SERVER_SERVER_H_
#define STORM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storm/query/session.h"
#include "storm/server/admission.h"
#include "storm/server/backend.h"
#include "storm/server/protocol.h"
#include "storm/server/socket_io.h"
#include "storm/util/thread_pool.h"

namespace storm {

struct ServerOptions {
  /// TCP port for the frame protocol; 0 picks an ephemeral port (read it
  /// back with port()).
  int port = 0;

  /// Plain-HTTP diagnostics listener (`GET /metrics`, `/healthz`,
  /// `/statusz`, `/tracez`, `/flightz`). -1 disables it; 0 picks an
  /// ephemeral port (read back with metrics_port()).
  int metrics_port = -1;

  /// Query execution slots (threads in the server's query pool).
  int query_threads = 4;

  /// Admission queue beyond the execution slots; requests past
  /// query_threads + max_queued_queries are shed with kUnavailable.
  int max_queued_queries = 16;

  /// Clamp on client-requested ExecOptions parallelism.
  int max_parallelism = 8;

  /// Per-connection write buffer: above the soft limit PROGRESS frames are
  /// dropped (cadence degrades); above the hard limit non-droppable senders
  /// stall, and after write_stall_timeout_ms the connection is dropped.
  size_t write_buffer_soft_limit = 256 * 1024;
  size_t write_buffer_hard_limit = 4 * 1024 * 1024;
  int write_stall_timeout_ms = 2000;

  /// Fraction of queries arriving *without* a client trace that the server
  /// traces on its own (client-sampled traces are always honored). Sampled
  /// queries collect a full QueryProfile into the TraceSink (/tracez);
  /// unsampled ones still carry a trace id for log correlation but pay no
  /// profiling cost.
  double trace_sample_rate = 0.01;

  /// Queries slower than this are logged (query text, trace id, top-3
  /// widest spans) and retained for /statusz. 0 disables the slow-query
  /// log.
  double slow_query_threshold_ms = 1000.0;

  /// Answer PINGs that advertise the freshness capability with the
  /// applied-record block (protocol.h). Disable to emulate a
  /// pre-freshness server: the PING payload is echoed verbatim and
  /// coordinators treat this replica as freshness-unknown (deprioritized,
  /// never evicted for it) — the mixed-version tests pin that behaviour.
  bool answer_ping_freshness = true;

  /// Shared sample-reservoir cache (docs/CACHING.md): queries from every
  /// connection drain and feed the process-wide cache. false turns it off
  /// server-wide (individual clients opt out per query via the no-cache
  /// wire flag or USING NOCACHE).
  bool sample_cache = true;

  /// Byte bound applied to the process-wide cache at Start(). 0 keeps the
  /// cache's current configuration untouched.
  size_t sample_cache_bytes = 0;
};

class StormServer {
 public:
  /// Serves queries against `session`, which must outlive the server. The
  /// session may be shared with in-process callers (Session::Execute holds
  /// the per-table read latch, so remote and local queries interleave
  /// safely with updates).
  explicit StormServer(Session* session, ServerOptions options = {});

  /// Serves queries against an arbitrary backend (a NetCoordinator, a test
  /// double), which must outlive the server. Everything socket-side —
  /// framing, admission, backpressure, tracing — is identical to the
  /// Session-backed form.
  explicit StormServer(QueryBackend* backend, ServerOptions options = {});

  ~StormServer();

  StormServer(const StormServer&) = delete;
  StormServer& operator=(const StormServer&) = delete;

  /// Binds the listener(s) and starts the accept thread.
  Status Start();

  /// Stops accepting, cancels in-flight queries, drains the query pool, and
  /// joins every thread. Idempotent.
  void Stop();

  /// Graceful shutdown: stops accepting connections, sheds newly arriving
  /// queries with kUnavailable, lets in-flight queries finish for up to
  /// `timeout_ms`, then Stop()s. A replica being replaced completes the
  /// streams it could have completed instead of cutting them (SIGTERM →
  /// Drain is the storm_server/storm_coordinator --drain-timeout-ms path).
  void Drain(double timeout_ms);

  /// True between Drain() starting and Stop() completing.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound protocol port (after Start()).
  int port() const { return port_; }
  /// The bound metrics port (after Start(); -1 when disabled).
  int metrics_port() const { return metrics_port_; }

  /// Admission accounting, for drift checks in tests and the soak harness.
  const AdmissionController& admission() const { return admission_; }

  /// Connections currently alive (reader not yet finished).
  size_t active_connections() const;

  /// The /healthz body: liveness plus degraded reasons (admission
  /// saturation, shutdown in progress). Exposed for tests.
  std::string HealthzJson() const;

  /// The /statusz body: build info, uptime, admission and connection
  /// state, active queries with trace ids, recent slow queries. Exposed
  /// for tests.
  std::string StatuszJson() const;

 private:
  struct Connection;
  struct RunningQuery;

  struct SlowQuery {
    double elapsed_ms = 0.0;
    std::string query;
    std::string trace_id;
    std::string top_spans;  ///< "name=12.3ms name=4.5ms ..." (widest first)
  };

  void AcceptLoop();
  void MetricsLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WriterLoop(std::shared_ptr<Connection> conn);
  /// Returns false on a protocol violation, after which the caller must
  /// tear the connection down.
  bool HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void RunQuery(std::shared_ptr<Connection> conn, uint64_t id,
                QueryRequest req, std::shared_ptr<RunningQuery> running);
  void FinishQuery(const std::shared_ptr<Connection>& conn, uint64_t id);

  /// Records a finished-but-slow query in the log and the /statusz ring.
  void NoteSlowQuery(const QueryRequest& req, const TraceContext& trace,
                     double elapsed_ms, const QueryProfile* profile);

  /// Enqueues an encoded frame on the connection's write buffer, applying
  /// the backpressure policy. Returns false when the frame could not be
  /// queued because the connection is (now) closed.
  bool Send(const std::shared_ptr<Connection>& conn, std::string frame,
            bool droppable);

  /// Tears a connection down: cancels its queries, waits for them to
  /// finish, lets the writer drain, and marks it reapable.
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  /// Joins and removes connections whose threads have finished.
  void ReapFinished(bool join_all);

  /// Set only by the Session ctor, which wraps the session in an owned
  /// SessionBackend; backend_ is the single execution target either way.
  std::unique_ptr<SessionBackend> owned_backend_;
  QueryBackend* backend_;
  ServerOptions options_;
  AdmissionController admission_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  int port_ = -1;
  int metrics_port_ = -1;

  UniqueFd listen_fd_;
  UniqueFd metrics_fd_;
  std::thread accept_thread_;
  std::thread metrics_thread_;
  std::unique_ptr<ThreadPool> query_pool_;

  mutable std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;

  Stopwatch uptime_;  ///< restarted by Start()

  mutable std::mutex slow_mutex_;
  std::deque<SlowQuery> slow_queries_;  ///< newest last, bounded

  // Instruments resolved once at Start().
  class Counter* connections_total_ = nullptr;
  class Gauge* connections_active_ = nullptr;
  class Counter* queries_total_ = nullptr;
  class Gauge* queries_inflight_ = nullptr;
  class Counter* shed_total_ = nullptr;
  class Counter* bytes_streamed_ = nullptr;
  class Counter* progress_dropped_ = nullptr;
};

}  // namespace storm

#endif  // STORM_SERVER_SERVER_H_
