// Thin POSIX TCP helpers shared by storm_server and RemoteClient: RAII fd
// ownership, listen/connect setup, and full-buffer send/recv loops that map
// errno to Status. No framing logic lives here — that is protocol.h.

#ifndef STORM_SERVER_SOCKET_IO_H_
#define STORM_SERVER_SOCKET_IO_H_

#include <string>
#include <utility>

#include "storm/util/result.h"

namespace storm {

/// Owns one file descriptor; closes it on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor (if any) and optionally adopts a new one.
  void Reset(int fd = -1);

  /// shutdown(SHUT_RDWR): unblocks any thread sleeping in recv/send on this
  /// socket without racing the close of the descriptor number itself.
  void ShutdownBothEnds();

 private:
  int fd_ = -1;
};

/// Opens a listening IPv4 socket on `port` (0 picks an ephemeral port) with
/// SO_REUSEADDR. Returns the fd.
Result<UniqueFd> TcpListen(int port, int backlog = 64);

/// The port a bound socket actually listens on (resolves port 0).
Result<int> BoundPort(int fd);

/// Accepts one connection, waiting at most `timeout_ms`. Returns an invalid
/// UniqueFd on timeout (not an error), so accept loops can poll a stop flag.
Result<UniqueFd> AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Connects to host:port (numeric or resolvable host name).
Result<UniqueFd> TcpConnect(const std::string& host, int port);

/// Sends the whole buffer, looping over short writes.
Status SendAll(int fd, const char* data, size_t n);

/// Receives up to `n` bytes, waiting at most `timeout_ms` for the first
/// byte. Returns 0 bytes on timeout, an empty-result kUnavailable status on
/// orderly peer close, and kIOError on socket errors.
Result<size_t> RecvSome(int fd, char* buf, size_t n, int timeout_ms);

}  // namespace storm

#endif  // STORM_SERVER_SOCKET_IO_H_
