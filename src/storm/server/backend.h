// QueryBackend: what StormServer serves. The server owns sockets, framing,
// admission, backpressure, and tracing; the backend owns query execution
// and updates. Two implementations exist:
//
//   - SessionBackend wraps an in-process Session — the classic single-node
//     storm_server.
//   - NetCoordinator (cluster/net_coordinator.h) fans queries out to remote
//     shard servers and merges their anytime streams — storm_coordinator
//     serves it through the very same StormServer, so a coordinator is a
//     drop-in RemoteClient target with all the single-node serving
//     machinery (admission control, slow-query log, diagnostics plane)
//     intact.

#ifndef STORM_SERVER_BACKEND_H_
#define STORM_SERVER_BACKEND_H_

#include <string>
#include <vector>

#include "storm/query/exec_options.h"
#include "storm/query/session.h"

namespace storm {

class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Runs a query, honouring every ExecOptions knob the serving layer
  /// forwards (parallelism, deadline_ms, cancel, progress, profile, trace).
  virtual Result<QueryResult> Execute(const std::string& query,
                                      const ExecOptions& options) = 0;

  /// Inserts a parsed batch into `table`. Partial failures are reported
  /// structurally via BatchInsertResult (never by throwing).
  virtual BatchInsertResult InsertBatch(const std::string& table,
                                        const std::vector<Value>& docs) = 0;

  /// Durably checkpoints `table`.
  virtual Status Checkpoint(const std::string& table) = 0;

  /// Total records this backend has applied (table loads + online
  /// inserts): the freshness figure the PONG heartbeat extension
  /// advertises, which a replica-group coordinator compares across
  /// siblings to route queries to caught-up replicas. 0 is a legitimate
  /// value (an empty backend) — "unknown" only arises at the wire level
  /// from pre-freshness peers.
  virtual uint64_t AppliedRecords() { return 0; }
};

/// The single-node backend: executes against a local Session.
class SessionBackend : public QueryBackend {
 public:
  /// `session` must outlive the backend. It may be shared with in-process
  /// callers (Session::Execute holds the per-table read latch).
  explicit SessionBackend(Session* session) : session_(session) {}

  Result<QueryResult> Execute(const std::string& query,
                              const ExecOptions& options) override {
    return session_->Execute(query, options);
  }

  BatchInsertResult InsertBatch(const std::string& table,
                                const std::vector<Value>& docs) override {
    BatchInsertResult out;
    Result<UpdateManager*> updates = session_->Updates(table);
    if (!updates.ok()) {
      out.status = updates.status();
      return out;
    }
    return (*updates)->InsertBatch(docs);
  }

  Status Checkpoint(const std::string& table) override {
    return session_->Checkpoint(table);
  }

  uint64_t AppliedRecords() override {
    uint64_t total = 0;
    for (const std::string& name : session_->TableNames()) {
      Result<Table*> table = session_->GetTable(name);
      if (table.ok()) total += (*table)->size();
    }
    return total;
  }

 private:
  Session* session_;
};

}  // namespace storm

#endif  // STORM_SERVER_BACKEND_H_
