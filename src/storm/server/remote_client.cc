#include "storm/server/remote_client.h"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <memory>
#include <thread>
#include <utility>

#include "storm/obs/metrics.h"
#include "storm/obs/trace_export.h"
#include "storm/util/retry.h"
#include "storm/util/rng.h"
#include "storm/util/stopwatch.h"
#include "storm/wal/codec.h"

namespace storm {

namespace {

// Poll granularity while waiting for a response frame: short enough that
// cancel tokens are honoured promptly, long enough not to spin.
constexpr int kRecvTimeoutMs = 50;
constexpr size_t kRecvChunk = 64 * 1024;

// PING payload the server must echo back in the PONG.
constexpr std::string_view kPingEcho = "storm-ping";

// Bernoulli stream deciding which client-minted traces are sampled. Never
// consumed by query execution, so seeded workloads stay reproducible.
bool SampleTrace(double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  thread_local Rng* rng = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    return new Rng(seed);
  }();
  return rng->Bernoulli(rate);
}

}  // namespace

Status RemoteClient::Connect(const std::string& host, int port) {
  host_ = host;
  port_ = port;
  return DialOnce();
}

Status RemoteClient::DialOnce() {
  Close();
  STORM_ASSIGN_OR_RETURN(UniqueFd fd, TcpConnect(host_, port_));
  fd_ = std::move(fd);
  read_buf_.clear();
  Status live = DoPing(/*reconnecting=*/false);
  if (!live.ok()) {
    Close();
    return live;
  }
  return Status::OK();
}

void RemoteClient::Close() {
  if (fd_.valid()) {
    fd_.ShutdownBothEnds();
    fd_.Reset();
  }
  read_buf_.clear();
}

Status RemoteClient::SendFrame(FrameType type, uint64_t id,
                               std::string_view payload) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("RemoteClient is not connected");
  }
  std::string frame = EncodeFrame(type, id, payload);
  Status st = SendAll(fd_.get(), frame.data(), frame.size());
  if (!st.ok()) Close();
  return st;
}

Status RemoteClient::SendFrameReconnecting(FrameType type, uint64_t id,
                                           std::string_view payload) {
  // A closed socket with a remembered endpoint is a redial candidate, not a
  // precondition failure: the previous request's failure already closed it.
  Status st = fd_.valid()
                  ? SendFrame(type, id, payload)
                  : Status::Unavailable("RemoteClient is not connected");
  if (st.ok() || host_.empty()) return st;
  thread_local Rng* clock_rng = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    return new Rng(seed);
  }();
  // Deterministic jitter (set_reconnect_jitter_seed) makes the attempt
  // spacing exactly reproducible for seeded chaos schedules.
  Rng* rng = reconnect_rng_ != nullptr ? reconnect_rng_.get() : clock_rng;
  for (int attempt = 1;
       attempt <= max_reconnect_attempts_ && IsTransient(st); ++attempt) {
    double sleep_ms = reconnect_backoff_.BackoffMs(attempt, rng);
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(sleep_ms * 1000.0)));
    Status dialed = DialOnce();
    if (!dialed.ok()) {
      st = dialed;
      continue;
    }
    MetricsRegistry::Default()
        .GetCounter("storm_client_reconnects_total",
                    "Successful transparent redials after a transient "
                    "connect/send failure")
        ->Increment();
    st = SendFrame(type, id, payload);
  }
  return st;
}

Result<Frame> RemoteClient::AwaitResponse(
    uint64_t want_id, std::initializer_list<FrameType> finals,
    const std::function<bool(const ProgressUpdate&)>& on_progress,
    const CancelToken* cancel, double deadline_ms) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("RemoteClient is not connected");
  }
  bool cancel_sent = false;
  char chunk[kRecvChunk];
  Stopwatch watch;
  while (true) {
    // Drain every complete frame already buffered.
    while (true) {
      Frame frame;
      Result<size_t> consumed = TryDecodeFrame(read_buf_, &frame);
      if (!consumed.ok()) {
        Close();
        return consumed.status();
      }
      if (*consumed == 0) break;  // Partial frame: read more bytes.
      read_buf_.erase(0, *consumed);
      if (frame.id != want_id) {
        Close();
        return Status::Corruption(
            "protocol error: response for unexpected request id " +
            std::to_string(frame.id));
      }
      if (frame.type == FrameType::kProgress) {
        STORM_ASSIGN_OR_RETURN(ProgressUpdate update,
                               DecodeProgressUpdate(frame.payload));
        if (on_progress && !on_progress(update) && !cancel_sent) {
          STORM_RETURN_NOT_OK(SendFrame(FrameType::kCancel, want_id, {}));
          cancel_sent = true;
        }
        continue;
      }
      if (frame.type == FrameType::kError ||
          std::find(finals.begin(), finals.end(), frame.type) != finals.end()) {
        return frame;
      }
      Close();
      return Status::Corruption(
          "protocol error: unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)));
    }
    if (cancel != nullptr && cancel->IsCancelled() && !cancel_sent) {
      STORM_RETURN_NOT_OK(SendFrame(FrameType::kCancel, want_id, {}));
      cancel_sent = true;
    }
    // Hard client-side ceiling: a peer holding the socket open without
    // answering must not hang the caller forever. The stream can no longer
    // be trusted to be frame-aligned with our request ids, so close it (the
    // next request redials transparently).
    if (deadline_ms > 0.0 && watch.ElapsedMillis() >= deadline_ms) {
      Close();
      return Status::DeadlineExceeded("no response from server within " +
                                      std::to_string(deadline_ms) + " ms");
    }
    Result<size_t> got = RecvSome(fd_.get(), chunk, kRecvChunk, kRecvTimeoutMs);
    if (!got.ok()) {
      Close();
      return got.status();
    }
    if (*got > 0) read_buf_.append(chunk, *got);
  }
}

Result<QueryResult> RemoteClient::Execute(const std::string& query,
                                          const ExecOptions& options) {
  // One trace spans the whole RPC: the client mints it (or adopts the
  // caller's), sends it in the request, and the server's spans come back
  // tagged with the same trace id inside the wire profile.
  const TraceContext trace = options.trace.valid()
                                 ? options.trace
                                 : TraceContext::Mint(
                                       SampleTrace(trace_sample_rate_));
  ScopedTraceContext trace_scope(trace);

  QueryRequest req;
  req.query = query;
  req.parallelism = options.parallelism;
  req.deadline_ms = options.deadline_ms;
  req.progress_interval_ms = options.progress ? progress_interval_ms_ : 0;
  req.want_profile = options.profile;
  // This client's decoder understands the trailing cardinality block;
  // advertise it so servers may append it (they must not otherwise).
  req.want_cardinality = true;
  // Hint, not capability: an old server ignores the bit and answers with
  // uniform sampling — same RESULT shape either way.
  req.want_stratified = options.sampling.prefer_stratified;
  // Hint again: the server's reservoir cache is on unless the caller turned
  // the knob off. Samples never cross the wire, so the flag is the whole
  // client side of the cache story.
  req.no_cache = !options.sampling.sample_cache;
  req.trace = trace;

  std::shared_ptr<QueryProfile> profile;
  if (options.profile) {
    profile = std::make_shared<QueryProfile>();
    profile->query = query;
    profile->trace = trace;
  }

  const uint64_t id = next_id_++;
  {
    QueryProfile::ScopedSpan send_span =
        ProfileSpan(profile.get(), "rpc_send");
    STORM_RETURN_NOT_OK(
        SendFrameReconnecting(FrameType::kQuery, id, EncodeQueryRequest(req)));
  }

  std::function<bool(const ProgressUpdate&)> on_progress;
  if (options.progress) {
    on_progress = [&options](const ProgressUpdate& u) {
      QueryProgress p;
      p.samples = u.samples;
      p.elapsed_ms = u.elapsed_ms;
      p.ci = u.ci;
      p.cardinality_estimate = u.cardinality_estimate;
      p.cardinality_exact = u.cardinality_exact;
      return options.progress(p);
    };
  }

  // The server legitimately streams for the query's own deadline, so the
  // client-side RPC ceiling sits on top of it.
  const double await_deadline =
      rpc_deadline_ms_ > 0.0
          ? rpc_deadline_ms_ + std::max(0.0, options.deadline_ms)
          : 0.0;
  QueryProfile::ScopedSpan await_span =
      ProfileSpan(profile.get(), "rpc_await");
  STORM_ASSIGN_OR_RETURN(
      Frame frame, AwaitResponse(id, {FrameType::kResult}, on_progress,
                                 options.cancel, await_deadline));
  await_span.End();
  if (frame.type == FrameType::kError) {
    STORM_ASSIGN_OR_RETURN(WireError err, DecodeWireError(frame.payload));
    return err.ToStatus();
  }
  STORM_ASSIGN_OR_RETURN(QueryResult result, DecodeQueryResult(frame.payload));
  if (profile != nullptr) {
    profile->Finish();
    if (result.profile != nullptr) {
      // Graft the server's span tree (site="server") under the client's,
      // producing one joined profile for the whole distributed query.
      profile->MergeServerProfile(*result.profile);
    }
    result.profile = profile;
    if (trace.sampled) TraceSink::Default().Record(*profile);
  }
  return result;
}

Result<RecordId> RemoteClient::Insert(const std::string& table,
                                      const Value& doc) {
  BatchInsertResult out = InsertBatch(table, {doc});
  STORM_RETURN_NOT_OK(out.status);
  if (out.ids.empty()) {
    return Status::Unknown("server acknowledged insert without a record id");
  }
  return out.ids.front();
}

BatchInsertResult RemoteClient::InsertBatch(const std::string& table,
                                            const std::vector<Value>& docs) {
  BatchInsertResult out;
  InsertBatchRequest req;
  req.table = table;
  req.docs_json.reserve(docs.size());
  for (const Value& doc : docs) req.docs_json.push_back(doc.ToJson());

  const uint64_t id = next_id_++;
  Status sent = SendFrameReconnecting(FrameType::kInsertBatch, id,
                                      EncodeInsertBatchRequest(req));
  if (!sent.ok()) {
    out.status = sent;
    return out;
  }
  Result<Frame> frame = AwaitResponse(id, {FrameType::kInsertResult}, nullptr,
                                      nullptr, rpc_deadline_ms_);
  if (!frame.ok()) {
    out.status = frame.status();
    return out;
  }
  if (frame->type == FrameType::kError) {
    Result<WireError> err = DecodeWireError(frame->payload);
    out.status = err.ok() ? err->ToStatus() : err.status();
    return out;
  }
  Result<BatchInsertResult> reply = DecodeInsertBatchReply(frame->payload);
  if (!reply.ok()) {
    out.status = reply.status();
    return out;
  }
  return *reply;
}

Status RemoteClient::Checkpoint(const std::string& table) {
  ByteWriter payload;
  payload.PutString(table);
  const uint64_t id = next_id_++;
  STORM_RETURN_NOT_OK(
      SendFrameReconnecting(FrameType::kCheckpoint, id, payload.data()));
  STORM_ASSIGN_OR_RETURN(
      Frame frame,
      AwaitResponse(id, {FrameType::kOk}, nullptr, nullptr, rpc_deadline_ms_));
  if (frame.type == FrameType::kError) {
    STORM_ASSIGN_OR_RETURN(WireError err, DecodeWireError(frame.payload));
    return err.ToStatus();
  }
  return Status::OK();
}

Status RemoteClient::Ping() { return DoPing(/*reconnecting=*/true); }

Result<PongFreshness> RemoteClient::PingFresh() {
  PongFreshness fresh;
  STORM_RETURN_NOT_OK(DoPing(/*reconnecting=*/true, &fresh));
  return fresh;
}

Status RemoteClient::DoPing(bool reconnecting, PongFreshness* fresh) {
  const uint64_t id = next_id_++;
  // Advertise the freshness capability: new servers append the
  // applied-record block, old servers echo the payload verbatim — either
  // way the PONG decodes (protocol.h, PING/PONG freshness extension).
  const std::string sent = EncodePingPayload(kPingEcho, /*want_freshness=*/true);
  STORM_RETURN_NOT_OK(reconnecting
                          ? SendFrameReconnecting(FrameType::kPing, id, sent)
                          : SendFrame(FrameType::kPing, id, sent));
  STORM_ASSIGN_OR_RETURN(Frame frame,
                         AwaitResponse(id, {FrameType::kPong}, nullptr,
                                       nullptr, rpc_deadline_ms_));
  if (frame.type == FrameType::kError) {
    STORM_ASSIGN_OR_RETURN(WireError err, DecodeWireError(frame.payload));
    return err.ToStatus();
  }
  Result<PongFreshness> decoded =
      DecodePongPayload(frame.payload, sent, kPingEcho);
  if (!decoded.ok()) {
    Close();
    return decoded.status();
  }
  if (fresh != nullptr) *fresh = *decoded;
  return Status::OK();
}

Result<std::string> RemoteClient::Metrics() {
  const uint64_t id = next_id_++;
  STORM_RETURN_NOT_OK(SendFrameReconnecting(FrameType::kMetrics, id, {}));
  STORM_ASSIGN_OR_RETURN(Frame frame,
                         AwaitResponse(id, {FrameType::kMetricsText}, nullptr,
                                       nullptr, rpc_deadline_ms_));
  if (frame.type == FrameType::kError) {
    STORM_ASSIGN_OR_RETURN(WireError err, DecodeWireError(frame.payload));
    return err.ToStatus();
  }
  return frame.payload;
}

}  // namespace storm
