// Wire protocol for the STORM serving layer: length-prefixed, CRC-framed
// binary frames carrying query requests and streamed anytime results.
//
// Frame layout on the wire (little-endian, like the WAL codec):
//
//   [u32 body_len][u8 type][u64 request_id][payload ...][u32 crc32]
//
// `body_len` counts everything after itself (type + id + payload + crc).
// `crc32` covers type + id + payload, so a truncated or bit-flipped frame
// surfaces as Status::Corruption at the decoder, never as garbage data —
// the same discipline the WAL applies to its records (wal/codec.h).
//
// Request frames (client → server): QUERY, CANCEL, INSERT_BATCH,
// CHECKPOINT, PING, METRICS. Response frames (server → client): PROGRESS
// (streamed at the client-chosen cadence while a query runs), RESULT,
// ERROR, INSERT_RESULT, OK, PONG, METRICS_TEXT. Every response echoes the
// request id it answers, so several queries can be in flight on one
// connection.
//
// Payloads are encoded with the wal ByteWriter/ByteReader; every decoder is
// bounds-checked and returns Status instead of crashing on malformed input
// (the frame decoder is directly exposed to untrusted bytes).

#ifndef STORM_SERVER_PROTOCOL_H_
#define STORM_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storm/obs/trace.h"
#include "storm/query/evaluator.h"
#include "storm/util/result.h"

namespace storm {

/// Frame type tags. Requests are < 16, responses >= 16.
enum class FrameType : uint8_t {
  // Requests.
  kQuery = 1,        ///< QueryRequest payload
  kCancel = 2,       ///< empty payload; id names the query to cancel
  kInsertBatch = 3,  ///< InsertBatchRequest payload
  kCheckpoint = 4,   ///< table name payload
  kPing = 5,         ///< opaque payload, echoed back in PONG
  kMetrics = 6,      ///< empty payload; answered with METRICS_TEXT

  // Responses.
  kProgress = 16,     ///< ProgressUpdate payload (streamed, droppable)
  kResult = 17,       ///< serialized QueryResult payload
  kError = 18,        ///< WireError payload
  kInsertResult = 19, ///< InsertBatchReply payload
  kOk = 20,           ///< empty payload (CHECKPOINT ack)
  kPong = 21,         ///< echoed PING payload
  kMetricsText = 22,  ///< Prometheus exposition text
};

/// True when `t` (an untrusted byte) is a defined frame type.
bool IsKnownFrameType(uint8_t t);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t id = 0;       ///< request id (responses echo the request's)
  std::string payload;
};

/// Hard ceiling on body_len; larger frames are rejected as corruption
/// before any allocation happens (untrusted peers must not drive allocation
/// size).
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Encodes a complete wire frame.
std::string EncodeFrame(FrameType type, uint64_t id, std::string_view payload);

/// Attempts to decode one frame from the front of `buf`.
/// Returns the number of bytes consumed (> 0, frame stored in `out`), or 0
/// when `buf` holds only a frame prefix (read more bytes and retry), or an
/// error Status for an oversized / unknown-type / CRC-mismatched frame —
/// after which the connection is unrecoverable and must be dropped (the
/// stream cannot be resynchronized).
Result<size_t> TryDecodeFrame(std::string_view buf, Frame* out);

// --- Request payloads ---

/// QUERY payload: the query text plus the ExecOptions knobs that make sense
/// across a wire, and the client-chosen PROGRESS cadence.
///
/// The trailing trace block (flags byte + trace/span ids) is optional on
/// the wire: pre-trace peers simply omit it, and the decoder treats an
/// exhausted payload as "no trace, no profile" — both directions stay
/// compatible with older builds.
struct QueryRequest {
  std::string query;
  int32_t parallelism = 1;
  double deadline_ms = 0.0;
  /// Minimum milliseconds between PROGRESS frames; 0 disables streaming
  /// (the client gets only the final RESULT).
  uint32_t progress_interval_ms = 0;
  /// Ask the server to serialize its QueryProfile into the RESULT frame so
  /// the client can join it with its own client-side spans.
  bool want_profile = false;
  /// Capability bit: the client's DecodeQueryResult understands the
  /// trailing cardinality block. Servers must keep the pre-cardinality
  /// RESULT shape for requests without it — old decoders reject any bytes
  /// after the optional profile block as corruption, so the extension is
  /// opt-in per request, never unconditional.
  bool want_cardinality = false;
  /// Ask the server to prefer stratified execution for eligible aggregates
  /// (SamplingOptions::prefer_stratified on the server's evaluator). Pure
  /// request-side hint: the RESULT shape is unchanged, and old servers
  /// ignore the flag bit — the query still answers, uniformly sampled.
  bool want_stratified = false;
  /// Ask the server NOT to serve this query from (or publish it to) its
  /// shared sample-reservoir cache (SamplingOptions::sample_cache = false on
  /// the server's evaluator). Pure request-side hint like want_stratified:
  /// old servers ignore the flag bit and simply keep caching.
  bool no_cache = false;
  /// Client-minted trace identity; invalid (all-zero id) when untraced.
  TraceContext trace;
};

std::string EncodeQueryRequest(const QueryRequest& req);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

/// INSERT_BATCH payload: target table plus documents as JSON strings (the
/// record store's interchange format).
struct InsertBatchRequest {
  std::string table;
  std::vector<std::string> docs_json;
};

std::string EncodeInsertBatchRequest(const InsertBatchRequest& req);
Result<InsertBatchRequest> DecodeInsertBatchRequest(std::string_view payload);

// --- Response payloads ---

/// PROGRESS payload: the anytime estimate as of `samples` draws. The
/// cardinality block is an optional trailing extension (absent on frames
/// from older peers, decoded as 0/false): the shard's running estimate of
/// q = |P ∩ Q|, which a coordinator uses to weight disjoint shard streams.
struct ProgressUpdate {
  uint64_t samples = 0;
  double elapsed_ms = 0.0;
  ConfidenceInterval ci;
  double cardinality_estimate = 0.0;
  bool cardinality_exact = false;
};

std::string EncodeProgressUpdate(const ProgressUpdate& p);
Result<ProgressUpdate> DecodeProgressUpdate(std::string_view payload);

// --- PING/PONG freshness extension ---
//
// A PING is an opaque payload the server echoes back in the PONG. The
// replica-group coordinator additionally needs to know how *fresh* each
// replica is (how many records it has applied), so the echo grew an
// opt-in extension that stays byte-compatible in both directions:
//
//   - a client that understands freshness appends the capability byte
//     0x01 to its PING payload. An old server echoes the whole payload
//     verbatim (capability byte included) — the client recognises its own
//     bytes and records "freshness unknown". A new server strips the
//     capability byte and answers echo + 0x02 + freshness block;
//   - a client that never appends 0x01 (an old client) always gets its
//     payload echoed verbatim, from old and new servers alike, so its
//     strict equality check keeps passing.

/// Trailing PING byte advertising "my PONG decoder understands the
/// freshness block".
constexpr uint8_t kPingWantFreshness = 0x01;
/// Tag byte opening the freshness block in a PONG payload.
constexpr uint8_t kPongFreshnessTag = 0x02;

/// The freshness block a PONG may carry: how many records the serving
/// backend has applied (table loads + online inserts) and its applied
/// LSN (0 when the backend tracks no WAL position). `known` is false when
/// the peer echoed plainly — a pre-freshness server.
struct PongFreshness {
  bool known = false;
  uint64_t applied_records = 0;
  uint64_t applied_lsn = 0;
};

/// PING payload: the echo bytes, plus the capability byte when this
/// client's PONG decoder understands the freshness block.
std::string EncodePingPayload(std::string_view echo, bool want_freshness);

/// Server side: strips the trailing capability byte. Returns true when
/// the client advertised freshness; `*echo` is what the PONG must echo.
bool DecodePingPayload(std::string_view payload, std::string_view* echo);

/// PONG payload: the echo, plus the freshness block when `fresh` is
/// non-null and known (servers must only append it for clients that
/// advertised kPingWantFreshness — old clients equality-check the echo).
std::string EncodePongPayload(std::string_view echo,
                              const PongFreshness* fresh);

/// Client side. `sent` is the exact PING payload this client sent and
/// `echo` the bytes before its capability byte. Accepts a verbatim echo of
/// `sent` (old server → freshness unknown), a plain `echo` (stripping
/// server without a freshness source), or echo + tagged freshness block;
/// bytes after the block are ignored for forward compatibility. Anything
/// else is Corruption.
Result<PongFreshness> DecodePongPayload(std::string_view payload,
                                        std::string_view sent,
                                        std::string_view echo);

/// ERROR payload: a Status plus its code, round-tripped exactly.
struct WireError {
  StatusCode code = StatusCode::kUnknown;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};

std::string EncodeWireError(const Status& status);
Result<WireError> DecodeWireError(std::string_view payload);

/// INSERT_RESULT payload mirrors BatchInsertResult.
std::string EncodeInsertBatchReply(const BatchInsertResult& r);
Result<BatchInsertResult> DecodeInsertBatchReply(std::string_view payload);

/// Standalone QueryProfile codec: the whole span tree (names, depths,
/// timings as raw double bits, IO deltas, notes, sites), the convergence
/// trajectory, metadata, and the trace identity. Bit-exact: encoding a
/// decoded profile reproduces the original bytes, which the round-trip
/// test asserts byte-for-byte.
std::string EncodeQueryProfile(const QueryProfile& p);
Result<QueryProfile> DecodeQueryProfile(std::string_view payload);

/// RESULT payload: the full QueryResult surface — every task's fields
/// round-trip, so RemoteClient results are drop-in replacements for
/// in-process ones. When `profile` is non-null its serialized span tree
/// rides along as an optional trailing block (absent for older peers and
/// for clients that didn't ask), and DecodeQueryResult rebuilds it into
/// QueryResult::profile. `include_cardinality` appends the cardinality
/// block the coordinator weights shard results by; set it only when the
/// request carried QueryRequest::want_cardinality — old decoders treat
/// bytes after the profile block as corruption, so the block must never be
/// sent to a peer that didn't advertise it.
std::string EncodeQueryResult(const QueryResult& r,
                              const QueryProfile* profile = nullptr,
                              bool include_cardinality = false);
Result<QueryResult> DecodeQueryResult(std::string_view payload);

}  // namespace storm

#endif  // STORM_SERVER_PROTOCOL_H_
