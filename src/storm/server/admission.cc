#include "storm/server/admission.h"

namespace storm {

bool AdmissionController::TryAdmit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ >= max_inflight_ + max_queued_) {
    ++shed_;
    return false;
  }
  ++in_flight_;
  ++admitted_;
  return true;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  ++released_;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

uint64_t AdmissionController::released_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_;
}

uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace storm
