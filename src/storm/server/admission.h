// AdmissionController: bounds the queries a storm_server lets into the
// engine at once.
//
// A query occupies one of `max_inflight` execution slots; when all slots
// are busy it may wait in a bounded queue of `max_queued` tickets; beyond
// that the server sheds the request with kUnavailable instead of letting
// latency (and memory) grow without bound — load shedding at the door, the
// standard serving-system discipline.
//
// Accounting is exact and checkable: every Admit() is eventually matched by
// exactly one Release(), so at quiescence admitted_total == released_total
// and in_flight() == 0. The soak harness asserts exactly that invariant
// (no "shed-request accounting drift").

#ifndef STORM_SERVER_ADMISSION_H_
#define STORM_SERVER_ADMISSION_H_

#include <cstdint>
#include <mutex>

namespace storm {

class AdmissionController {
 public:
  AdmissionController(int max_inflight, int max_queued)
      : max_inflight_(max_inflight < 1 ? 1 : max_inflight),
        max_queued_(max_queued < 0 ? 0 : max_queued) {}

  /// Tries to take a ticket. Returns true (caller MUST eventually call
  /// Release()) or false (the request must be shed with kUnavailable).
  bool TryAdmit();

  /// Returns a ticket taken by TryAdmit.
  void Release();

  /// Tickets currently held (running + queued).
  int in_flight() const;

  int max_inflight() const { return max_inflight_; }
  int max_queued() const { return max_queued_; }

  /// Monotonic totals for drift checks and metrics.
  uint64_t admitted_total() const;
  uint64_t released_total() const;
  uint64_t shed_total() const;

 private:
  const int max_inflight_;
  const int max_queued_;
  mutable std::mutex mutex_;
  int in_flight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t released_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace storm

#endif  // STORM_SERVER_ADMISSION_H_
