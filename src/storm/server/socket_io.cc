#include "storm/server/socket_io.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace storm {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Streaming writes to a peer that disappeared raise SIGPIPE by default,
// which would kill the server; we want the EPIPE errno instead. Installed
// once, before the first socket is created.
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void UniqueFd::ShutdownBothEnds() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<UniqueFd> TcpListen(int port, int backlog) {
  IgnoreSigpipeOnce();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind to port " + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<UniqueFd> AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return UniqueFd();
    return Errno("poll");
  }
  if (ready == 0) return UniqueFd();  // timeout: caller re-checks stop flag
  UniqueFd conn(::accept(listen_fd, nullptr, nullptr));
  if (!conn.valid()) {
    // The listener was closed under us (server shutdown) or the pending
    // connection vanished; both read as "nothing accepted this round".
    return UniqueFd();
  }
  int one = 1;
  (void)::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Result<UniqueFd> TcpConnect(const std::string& host, int port) {
  IgnoreSigpipeOnce();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &list);
  if (rc != 0) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect to " + host + ":" + std::to_string(port));
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(list);
    return fd;
  }
  ::freeaddrinfo(list);
  return last;
}

Status SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, 0);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, char* buf, size_t n, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return size_t{0};
    return Errno("poll");
  }
  if (ready == 0) return size_t{0};
  ssize_t r = ::recv(fd, buf, n, 0);
  if (r < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return size_t{0};
    }
    return Errno("recv");
  }
  if (r == 0) return Status::Unavailable("peer closed the connection");
  return static_cast<size_t>(r);
}

}  // namespace storm
