#include "storm/data/osm_gen.h"

#include <algorithm>
#include <cmath>

namespace storm {

OsmLikeGenerator::OsmLikeGenerator(OsmOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<OsmPoint> OsmLikeGenerator::Generate() {
  struct Cluster {
    double lon, lat, sigma, weight;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<size_t>(options_.num_clusters));
  std::vector<double> weights;
  for (int c = 0; c < options_.num_clusters; ++c) {
    Cluster cl;
    cl.lon = rng_.UniformDouble(options_.lon_min, options_.lon_max);
    cl.lat = rng_.UniformDouble(options_.lat_min, options_.lat_max);
    // City sizes follow a rough power law.
    cl.weight = std::pow(rng_.UniformDouble(0.05, 1.0), 2.0);
    cl.sigma = options_.cluster_sigma * rng_.UniformDouble(0.2, 1.2);
    clusters.push_back(cl);
    weights.push_back(cl.weight);
  }
  // Smooth terrain model: a few broad sine ridges + latitude gradient.
  auto terrain = [&](double lon, double lat) {
    double a = 800.0 * std::sin(lon * 0.12) * std::cos(lat * 0.21);
    double b = 600.0 * std::sin(lon * 0.05 + 1.3) * std::sin(lat * 0.09 + 0.4);
    double c = 30.0 * (lat - options_.lat_min);
    return 1500.0 + a + b + c;
  };
  std::vector<OsmPoint> out;
  out.reserve(options_.num_points);
  for (uint64_t i = 0; i < options_.num_points; ++i) {
    OsmPoint p;
    p.id = i;
    if (rng_.Bernoulli(options_.background_fraction)) {
      p.lon = rng_.UniformDouble(options_.lon_min, options_.lon_max);
      p.lat = rng_.UniformDouble(options_.lat_min, options_.lat_max);
    } else {
      const Cluster& cl = clusters[rng_.Discrete(weights)];
      p.lon = std::clamp(rng_.Normal(cl.lon, cl.sigma), options_.lon_min,
                         options_.lon_max);
      p.lat = std::clamp(rng_.Normal(cl.lat, cl.sigma), options_.lat_min,
                         options_.lat_max);
    }
    p.altitude = terrain(p.lon, p.lat) + rng_.Normal(0.0, 40.0);
    out.push_back(p);
  }
  return out;
}

Value OsmLikeGenerator::ToDocument(const OsmPoint& p) {
  Value doc = Value::MakeObject();
  doc.Set("id", Value::Int(static_cast<int64_t>(p.id)));
  doc.Set("lon", Value::Double(p.lon));
  doc.Set("lat", Value::Double(p.lat));
  doc.Set("altitude", Value::Double(p.altitude));
  return doc;
}

std::vector<RTree<3>::Entry> OsmLikeGenerator::ToEntries(
    const std::vector<OsmPoint>& pts, std::vector<double>* altitude_out) {
  std::vector<RTree<3>::Entry> entries;
  entries.reserve(pts.size());
  if (altitude_out != nullptr) {
    altitude_out->assign(pts.size(), 0.0);
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    entries.push_back({Point3(pts[i].lon, pts[i].lat, 0.0), pts[i].id});
    if (altitude_out != nullptr) (*altitude_out)[pts[i].id] = pts[i].altitude;
  }
  return entries;
}

}  // namespace storm
