#include "storm/data/weather_gen.h"

#include <cmath>

namespace storm {

WeatherGenerator::WeatherGenerator(WeatherOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<WeatherStation> WeatherGenerator::GenerateStations() {
  std::vector<WeatherStation> stations;
  stations.reserve(static_cast<size_t>(options_.num_stations));
  int grid = static_cast<int>(std::ceil(std::sqrt(options_.num_stations)));
  double dlon = (options_.lon_max - options_.lon_min) / grid;
  double dlat = (options_.lat_max - options_.lat_min) / grid;
  for (int i = 0; i < options_.num_stations; ++i) {
    WeatherStation s;
    s.station_id = i;
    int gx = i % grid;
    int gy = i / grid;
    s.lon = options_.lon_min + (gx + 0.5) * dlon + rng_.Normal(0.0, dlon * 0.25);
    s.lat = options_.lat_min + (gy + 0.5) * dlat + rng_.Normal(0.0, dlat * 0.25);
    s.elevation = std::max(0.0, 1200.0 + 900.0 * std::sin(s.lon * 0.11) *
                                             std::cos(s.lat * 0.19) +
                                    rng_.Normal(0.0, 150.0));
    stations.push_back(s);
  }
  return stations;
}

double WeatherGenerator::TrueTemperature(double lon, double lat,
                                         double elevation, double t) {
  (void)lon;
  // Latitude gradient: ~0.8 °C per degree; lapse rate 6.5 °C/km; seasonal
  // cycle peaking Jul 15; diurnal cycle peaking 14:00 UTC (crude).
  double base = 35.0 - 0.8 * lat;
  double lapse = -6.5 * elevation / 1000.0;
  double day_of_year = std::fmod(t / 86400.0, 365.25);
  double seasonal = 12.0 * std::cos(2.0 * M_PI * (day_of_year - 196.0) / 365.25);
  double hour = std::fmod(t / 3600.0, 24.0);
  double diurnal = 5.0 * std::cos(2.0 * M_PI * (hour - 14.0) / 24.0);
  return base + lapse + seasonal + diurnal;
}

std::vector<WeatherReading> WeatherGenerator::GenerateReadings(
    const std::vector<WeatherStation>& stations) {
  std::vector<WeatherReading> out;
  out.reserve(stations.size() *
              static_cast<size_t>(options_.readings_per_station));
  double span = options_.t_max - options_.t_min;
  uint64_t id = 0;
  for (int r = 0; r < options_.readings_per_station; ++r) {
    double t = options_.t_min +
               span * (static_cast<double>(r) + 0.5) /
                   options_.readings_per_station;
    for (const WeatherStation& s : stations) {
      WeatherReading reading;
      reading.id = id++;
      reading.station_id = s.station_id;
      reading.lon = s.lon;
      reading.lat = s.lat;
      reading.t = t + rng_.UniformDouble(-span * 0.002, span * 0.002);
      reading.temperature =
          TrueTemperature(s.lon, s.lat, s.elevation, reading.t) +
          rng_.Normal(0.0, 1.5);
      reading.humidity =
          std::clamp(55.0 + 25.0 * std::sin(s.lon * 0.3) + rng_.Normal(0.0, 10.0),
                     2.0, 100.0);
      reading.wind = std::max(0.0, rng_.Exponential(0.25));
      out.push_back(reading);
    }
  }
  return out;
}

Value WeatherGenerator::ToDocument(const WeatherReading& r) {
  Value doc = Value::MakeObject();
  doc.Set("id", Value::Int(static_cast<int64_t>(r.id)));
  doc.Set("station", Value::Int(r.station_id));
  doc.Set("lon", Value::Double(r.lon));
  doc.Set("lat", Value::Double(r.lat));
  doc.Set("timestamp", Value::Double(r.t));
  doc.Set("temperature", Value::Double(r.temperature));
  doc.Set("humidity", Value::Double(r.humidity));
  doc.Set("wind", Value::Double(r.wind));
  return doc;
}

std::vector<RTree<3>::Entry> WeatherGenerator::ToEntries(
    const std::vector<WeatherReading>& readings) {
  std::vector<RTree<3>::Entry> entries;
  entries.reserve(readings.size());
  for (size_t i = 0; i < readings.size(); ++i) {
    entries.push_back(
        {Point3(readings[i].lon, readings[i].lat, readings[i].t), i});
  }
  return entries;
}

}  // namespace storm
