#include "storm/data/tweet_gen.h"

#include <algorithm>
#include <cmath>

namespace storm {

namespace {

const char* const kNormalWords[] = {
    "coffee",  "morning", "work",     "game",    "love",   "food",   "music",
    "friday",  "weekend", "traffic",  "movie",   "pizza",  "sunset", "running",
    "school",  "party",   "birthday", "beach",   "dog",    "cat",    "raining",
    "sunny",   "happy",   "tired",    "gym",     "lunch",  "dinner", "shopping",
    "concert", "football",
};

const char* const kEventWords[] = {
    "snow",    "ice",      "outage",  "shit",   "hell",     "why",
    "stuck",   "freezing", "storm",   "closed", "power",    "cold",
    "blizzard", "roads",   "crazy",   "hours",  "stranded", "help",
};

}  // namespace

TweetGenerator::TweetGenerator(TweetOptions options)
    : options_(options), rng_(options.seed) {}

std::string TweetGenerator::MakeText(bool in_event) {
  std::string text;
  int words = static_cast<int>(rng_.UniformInt(4, 10));
  for (int w = 0; w < words; ++w) {
    if (!text.empty()) text.push_back(' ');
    if (in_event && rng_.Bernoulli(0.6)) {
      text += kEventWords[rng_.Uniform(std::size(kEventWords))];
    } else {
      text += kNormalWords[rng_.Uniform(std::size(kNormalWords))];
    }
  }
  return text;
}

std::vector<Tweet> TweetGenerator::Generate() {
  struct City {
    double lon, lat, weight;
  };
  std::vector<City> cities;
  std::vector<double> city_weights;
  for (int c = 0; c < options_.num_cities; ++c) {
    City city;
    city.lon = rng_.UniformDouble(options_.lon_min, options_.lon_max);
    city.lat = rng_.UniformDouble(options_.lat_min, options_.lat_max);
    city.weight = std::pow(rng_.UniformDouble(0.1, 1.0), 2.0);
    cities.push_back(city);
    city_weights.push_back(city.weight);
  }
  if (options_.enable_event) {
    // Guarantee a city inside the event region so the anomaly has data.
    City atlanta;
    atlanta.lon = options_.event_region.Center()[0];
    atlanta.lat = options_.event_region.Center()[1];
    atlanta.weight = 1.0;
    cities.push_back(atlanta);
    city_weights.push_back(atlanta.weight);
  }
  struct UserState {
    double home_lon, home_lat;  // current waypoint
    double target_lon, target_lat;
    double progress = 1.0;  // 1 => pick a new waypoint
  };
  std::vector<UserState> users(static_cast<size_t>(options_.num_users));
  for (UserState& u : users) {
    const City& c = cities[rng_.Discrete(city_weights)];
    u.home_lon = u.target_lon = std::clamp(rng_.Normal(c.lon, 0.3),
                                           options_.lon_min, options_.lon_max);
    u.home_lat = u.target_lat = std::clamp(rng_.Normal(c.lat, 0.3),
                                           options_.lat_min, options_.lat_max);
  }
  std::vector<Tweet> out;
  out.reserve(options_.num_tweets);
  // Timestamps advance with generation order so each user's random-waypoint
  // movement is coherent in time (trajectories are reconstructible).
  double span = options_.t_max - options_.t_min;
  double step = span / static_cast<double>(options_.num_tweets);
  for (uint64_t i = 0; i < options_.num_tweets; ++i) {
    Tweet t;
    t.id = i;
    if (options_.enable_event && rng_.Bernoulli(options_.event_boost)) {
      // Storm-surge tweet: a local user posting from inside the event
      // window (volume spikes during the event, as on real twitter).
      t.user = options_.num_users + rng_.UniformInt(0, 49);
      t.lon = rng_.UniformDouble(options_.event_region.lo()[0],
                                 options_.event_region.hi()[0]);
      t.lat = rng_.UniformDouble(options_.event_region.lo()[1],
                                 options_.event_region.hi()[1]);
      t.t = rng_.UniformDouble(options_.event_t_min, options_.event_t_max);
      t.text = MakeText(/*in_event=*/true);
      out.push_back(std::move(t));
      continue;
    }
    t.user = rng_.UniformInt(0, options_.num_users - 1);
    UserState& u = users[static_cast<size_t>(t.user)];
    // Random-waypoint: drift from home toward target; pick a new target on
    // arrival (~5% of tweets).
    if (u.progress >= 1.0) {
      u.home_lon = u.target_lon;
      u.home_lat = u.target_lat;
      if (rng_.Bernoulli(0.9)) {
        // Local errand: a waypoint near the current position.
        u.target_lon = std::clamp(rng_.Normal(u.home_lon, 0.4),
                                  options_.lon_min, options_.lon_max);
        u.target_lat = std::clamp(rng_.Normal(u.home_lat, 0.4),
                                  options_.lat_min, options_.lat_max);
      } else {
        // Occasional long trip to another city.
        const City& c = cities[rng_.Discrete(city_weights)];
        u.target_lon = std::clamp(rng_.Normal(c.lon, 0.3), options_.lon_min,
                                  options_.lon_max);
        u.target_lat = std::clamp(rng_.Normal(c.lat, 0.3), options_.lat_min,
                                  options_.lat_max);
      }
      u.progress = 0.0;
    }
    u.progress += rng_.UniformDouble(0.0, 0.1);
    double frac = std::min(u.progress, 1.0);
    double lon = u.home_lon + frac * (u.target_lon - u.home_lon);
    double lat = u.home_lat + frac * (u.target_lat - u.home_lat);
    t.lon = std::clamp(lon + rng_.Normal(0.0, options_.roam_sigma),
                       options_.lon_min, options_.lon_max);
    t.lat = std::clamp(lat + rng_.Normal(0.0, options_.roam_sigma),
                       options_.lat_min, options_.lat_max);
    t.t = options_.t_min + step * (static_cast<double>(i) +
                                   rng_.UniformDouble(0.0, 1.0));
    bool in_event =
        options_.enable_event &&
        options_.event_region.Contains(Point2(t.lon, t.lat)) &&
        t.t >= options_.event_t_min && t.t <= options_.event_t_max;
    t.text = MakeText(in_event);
    out.push_back(std::move(t));
  }
  return out;
}

Value TweetGenerator::ToDocument(const Tweet& t) {
  Value doc = Value::MakeObject();
  doc.Set("id", Value::Int(static_cast<int64_t>(t.id)));
  doc.Set("user", Value::Int(t.user));
  doc.Set("lon", Value::Double(t.lon));
  doc.Set("lat", Value::Double(t.lat));
  doc.Set("timestamp", Value::Double(t.t));
  doc.Set("text", Value::String(t.text));
  return doc;
}

std::vector<RTree<3>::Entry> TweetGenerator::ToEntries(
    const std::vector<Tweet>& tweets) {
  std::vector<RTree<3>::Entry> entries;
  entries.reserve(tweets.size());
  for (size_t i = 0; i < tweets.size(); ++i) {
    entries.push_back(
        {Point3(tweets[i].lon, tweets[i].lat, tweets[i].t), i});
  }
  return entries;
}

}  // namespace storm
