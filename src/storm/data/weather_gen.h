// WeatherGenerator: the MesoWest measurement-network substitute. ~N
// stations on a jittered grid, each producing periodic readings whose
// temperature combines a latitude gradient, an altitude-like station bias,
// seasonal and diurnal cycles, and noise — so spatio-temporal AVG/GROUP BY
// queries over windows have realistic structure.

#ifndef STORM_DATA_WEATHER_GEN_H_
#define STORM_DATA_WEATHER_GEN_H_

#include <vector>

#include "storm/rtree/rtree.h"
#include "storm/storage/value.h"
#include "storm/util/rng.h"

namespace storm {

struct WeatherStation {
  int64_t station_id = 0;
  double lon = 0.0;
  double lat = 0.0;
  double elevation = 0.0;
};

struct WeatherReading {
  uint64_t id = 0;
  int64_t station_id = 0;
  double lon = 0.0;
  double lat = 0.0;
  double t = 0.0;           ///< epoch seconds
  double temperature = 0.0; ///< °C
  double humidity = 0.0;    ///< %
  double wind = 0.0;        ///< m/s
};

struct WeatherOptions {
  int num_stations = 400;
  /// Readings per station, evenly spaced over the time span.
  int readings_per_station = 96;
  double t_min = 1388534400.0;  ///< 2014-01-01
  double t_max = 1396310400.0;  ///< 2014-04-01
  double lon_min = -125.0, lon_max = -66.0;
  double lat_min = 24.0, lat_max = 49.0;
  uint64_t seed = 4000;
};

class WeatherGenerator {
 public:
  explicit WeatherGenerator(WeatherOptions options = {});

  std::vector<WeatherStation> GenerateStations();

  /// Readings for the given stations (id = index in the output).
  std::vector<WeatherReading> GenerateReadings(
      const std::vector<WeatherStation>& stations);

  static Value ToDocument(const WeatherReading& r);
  static std::vector<RTree<3>::Entry> ToEntries(
      const std::vector<WeatherReading>& readings);

  /// The deterministic mean temperature at a place and time (ground truth
  /// for accuracy tests).
  static double TrueTemperature(double lon, double lat, double elevation,
                                double t);

 private:
  WeatherOptions options_;
  Rng rng_;
};

}  // namespace storm

#endif  // STORM_DATA_WEATHER_GEN_H_
