#include "storm/data/electricity_gen.h"

#include <algorithm>
#include <cmath>

namespace storm {

ElectricityGenerator::ElectricityGenerator(ElectricityOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<ElectricityReading> ElectricityGenerator::Generate() {
  struct Unit {
    double lon, lat, base;
  };
  // Density core (Manhattan-ish, upper-left of the box) plus dispersed
  // boroughs.
  double core_lon = options_.lon_min + 0.3 * (options_.lon_max - options_.lon_min);
  double core_lat = options_.lat_min + 0.65 * (options_.lat_max - options_.lat_min);
  std::vector<Unit> units;
  units.reserve(static_cast<size_t>(options_.num_units));
  for (int u = 0; u < options_.num_units; ++u) {
    Unit unit;
    if (rng_.Bernoulli(0.45)) {
      unit.lon = std::clamp(rng_.Normal(core_lon, 0.03), options_.lon_min,
                            options_.lon_max);
      unit.lat = std::clamp(rng_.Normal(core_lat, 0.04), options_.lat_min,
                            options_.lat_max);
    } else {
      unit.lon = rng_.UniformDouble(options_.lon_min, options_.lon_max);
      unit.lat = rng_.UniformDouble(options_.lat_min, options_.lat_max);
    }
    // Usage rises toward the core: ~1100 kWh downtown, ~850 at the edges.
    double dist = std::hypot(unit.lon - core_lon, unit.lat - core_lat);
    unit.base = 1100.0 - 900.0 * dist + rng_.Normal(0.0, 60.0);
    units.push_back(unit);
  }
  std::vector<ElectricityReading> out;
  out.reserve(units.size() * static_cast<size_t>(options_.readings_per_unit));
  double span = options_.t_max - options_.t_min;
  uint64_t id = 0;
  for (int r = 0; r < options_.readings_per_unit; ++r) {
    double t = options_.t_min +
               span * (static_cast<double>(r) + 0.5) / options_.readings_per_unit;
    // Winter heating tapers off across Q1.
    double seasonal = 120.0 * (1.0 - (t - options_.t_min) / span);
    for (size_t u = 0; u < units.size(); ++u) {
      ElectricityReading reading;
      reading.id = id++;
      reading.unit_id = static_cast<int64_t>(u);
      reading.lon = units[u].lon;
      reading.lat = units[u].lat;
      reading.t = t + rng_.UniformDouble(-span * 0.003, span * 0.003);
      reading.usage =
          std::max(0.0, units[u].base + seasonal + rng_.Normal(0.0, 90.0));
      out.push_back(reading);
    }
  }
  return out;
}

Value ElectricityGenerator::ToDocument(const ElectricityReading& r) {
  Value doc = Value::MakeObject();
  doc.Set("id", Value::Int(static_cast<int64_t>(r.id)));
  doc.Set("unit", Value::Int(r.unit_id));
  doc.Set("lon", Value::Double(r.lon));
  doc.Set("lat", Value::Double(r.lat));
  doc.Set("timestamp", Value::Double(r.t));
  doc.Set("usage", Value::Double(r.usage));
  return doc;
}

std::vector<RTree<3>::Entry> ElectricityGenerator::ToEntries(
    const std::vector<ElectricityReading>& readings) {
  std::vector<RTree<3>::Entry> entries;
  entries.reserve(readings.size());
  for (size_t i = 0; i < readings.size(); ++i) {
    entries.push_back(
        {Point3(readings[i].lon, readings[i].lat, readings[i].t), i});
  }
  return entries;
}

}  // namespace storm
