// TweetGenerator: the Twitter-feed substitute for the KDE / trajectory /
// short-text demos (Figs 5 and 6).
//
// Users live in cities, move by a random-waypoint model (so each user's
// tweets trace a reconstructible trajectory), and tweet short texts from a
// topic mixture. A configurable "event window" (default: the Atlanta
// snowstorm of Feb 10-13, 2014) makes tweets inside a space-time box use an
// event vocabulary (snow, ice, outage, …) so the Fig 6(b) experiment has a
// deterministic anomaly to find.

#ifndef STORM_DATA_TWEET_GEN_H_
#define STORM_DATA_TWEET_GEN_H_

#include <string>
#include <vector>

#include "storm/geo/rect.h"
#include "storm/rtree/rtree.h"
#include "storm/storage/value.h"
#include "storm/util/rng.h"

namespace storm {

struct Tweet {
  uint64_t id = 0;
  int64_t user = 0;
  double lon = 0.0;
  double lat = 0.0;
  double t = 0.0;  ///< epoch seconds
  std::string text;
};

struct TweetOptions {
  uint64_t num_tweets = 50'000;
  int num_users = 500;
  int num_cities = 12;
  /// Time span of the feed (defaults to 2013-07-01 .. 2014-07-01).
  double t_min = 1372636800.0;
  double t_max = 1404172800.0;
  /// Bounding box (continental US).
  double lon_min = -125.0, lon_max = -66.0;
  double lat_min = 24.0, lat_max = 49.0;
  /// How far a user roams around the current waypoint (degrees).
  double roam_sigma = 0.05;
  /// Event window (Atlanta snowstorm): tweets inside use event vocabulary.
  bool enable_event = true;
  /// Fraction of the feed generated *inside* the event window (tweet volume
  /// spikes during the storm); these come from dedicated local user ids
  /// above num_users so regular users' trajectories stay coherent.
  double event_boost = 0.01;
  Rect2 event_region = Rect2(Point2(-84.6, 33.5), Point2(-84.1, 34.0));
  double event_t_min = 1392012000.0;  ///< 2014-02-10 06:00 UTC
  double event_t_max = 1392292800.0;  ///< 2014-02-13 12:00 UTC
  uint64_t seed = 1402;
};

class TweetGenerator {
 public:
  explicit TweetGenerator(TweetOptions options = {});

  /// Generates the feed sorted by timestamp.
  std::vector<Tweet> Generate();

  static Value ToDocument(const Tweet& t);

  /// (x=lon, y=lat, t) entries with ids = positions in `tweets`.
  static std::vector<RTree<3>::Entry> ToEntries(const std::vector<Tweet>& tweets);

  const TweetOptions& options() const { return options_; }

 private:
  std::string MakeText(bool in_event);

  TweetOptions options_;
  Rng rng_;
};

}  // namespace storm

#endif  // STORM_DATA_TWEET_GEN_H_
