// ElectricityGenerator: the NYC electricity-usage data set of the paper's
// §1 running example. Metering units scattered over an NYC-like bounding
// box report kWh readings whose mean varies by neighbourhood (Manhattan-ish
// core runs hotter) and by hour — so "average usage per unit in this area
// and period" has the structure the motivating example assumes (973 ± 25
// kWh style answers).

#ifndef STORM_DATA_ELECTRICITY_GEN_H_
#define STORM_DATA_ELECTRICITY_GEN_H_

#include <vector>

#include "storm/rtree/rtree.h"
#include "storm/storage/value.h"
#include "storm/util/rng.h"

namespace storm {

struct ElectricityReading {
  uint64_t id = 0;
  int64_t unit_id = 0;
  double lon = 0.0;
  double lat = 0.0;
  double t = 0.0;      ///< epoch seconds
  double usage = 0.0;  ///< kWh
};

struct ElectricityOptions {
  int num_units = 2000;
  int readings_per_unit = 90;   ///< ~daily over Q1
  double t_min = 1388534400.0;  ///< 2014-01-01
  double t_max = 1396310400.0;  ///< 2014-04-01
  /// NYC-ish box.
  double lon_min = -74.05, lon_max = -73.70;
  double lat_min = 40.55, lat_max = 40.92;
  uint64_t seed = 973;
};

class ElectricityGenerator {
 public:
  explicit ElectricityGenerator(ElectricityOptions options = {});

  std::vector<ElectricityReading> Generate();

  static Value ToDocument(const ElectricityReading& r);
  static std::vector<RTree<3>::Entry> ToEntries(
      const std::vector<ElectricityReading>& readings);

 private:
  ElectricityOptions options_;
  Rng rng_;
};

}  // namespace storm

#endif  // STORM_DATA_ELECTRICITY_GEN_H_
