// OsmLikeGenerator: the OpenStreetMap substitute for the Fig 3 experiments.
//
// The paper's evaluation ran a fixed range query with q = 10⁹ over the full
// OSM planet dump. The properties that matter for the sampler benchmarks
// are (a) heavy spatial skew — points clump into cities along a Gaussian
// mixture — and (b) a smooth numeric attribute ("altitude") correlated with
// position, so avg(altitude) over a window has non-trivial variance. Both
// are reproduced synthetically at laptop scale; the benches sweep the same
// k/q ratios as Fig 3(a).

#ifndef STORM_DATA_OSM_GEN_H_
#define STORM_DATA_OSM_GEN_H_

#include <vector>

#include "storm/rtree/rtree.h"
#include "storm/storage/value.h"
#include "storm/util/rng.h"

namespace storm {

/// One generated OSM-like node.
struct OsmPoint {
  double lon = 0.0;
  double lat = 0.0;
  double altitude = 0.0;
  uint64_t id = 0;
};

struct OsmOptions {
  uint64_t num_points = 100'000;
  int num_clusters = 64;
  /// Fraction of points drawn uniformly over the bbox instead of from a
  /// cluster (rural background noise).
  double background_fraction = 0.1;
  /// Cluster spread in degrees.
  double cluster_sigma = 0.8;
  /// World window (default: continental US-ish).
  double lon_min = -125.0, lon_max = -66.0;
  double lat_min = 24.0, lat_max = 49.0;
  uint64_t seed = 2015;
};

class OsmLikeGenerator {
 public:
  explicit OsmLikeGenerator(OsmOptions options = {});

  /// Generates all points (fast path for index benchmarks).
  std::vector<OsmPoint> Generate();

  /// JSON document form for the connector/session path.
  static Value ToDocument(const OsmPoint& p);

  /// (x=lon, y=lat, t=0) index entries with ids = positions; `altitude_out`
  /// (optional) receives the per-id attribute column.
  static std::vector<RTree<3>::Entry> ToEntries(const std::vector<OsmPoint>& pts,
                                                std::vector<double>* altitude_out);

 private:
  OsmOptions options_;
  Rng rng_;
};

}  // namespace storm

#endif  // STORM_DATA_OSM_GEN_H_
