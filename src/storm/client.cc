#include "storm/client.h"

namespace storm {

Status Client::CreateTable(const std::string& name,
                           const std::vector<Value>& docs,
                           const ImportOptions& import_options,
                           const TableConfig& config) {
  return session_.CreateTable(name, docs, import_options, config);
}

Status Client::ImportFile(const std::string& name, const std::string& path,
                          const ImportOptions& import_options,
                          const TableConfig& config) {
  return session_.ImportFile(name, path, import_options, config);
}

Status Client::SaveTable(const std::string& name, const std::string& path) {
  return session_.SaveTable(name, path);
}

Status Client::DropTable(const std::string& name) {
  return session_.DropTable(name);
}

bool Client::HasTable(const std::string& name) const {
  return session_.HasTable(name);
}

std::vector<std::string> Client::TableNames() const {
  return session_.TableNames();
}

Result<QueryResult> Client::Execute(const std::string& query,
                                    const ExecOptions& options) {
  return session_.Execute(query, options);
}

Result<RecordId> Client::Insert(const std::string& table, const Value& doc) {
  STORM_ASSIGN_OR_RETURN(UpdateManager * updates, session_.Updates(table));
  return updates->Insert(doc);
}

BatchInsertResult Client::InsertBatch(const std::string& table,
                                      const std::vector<Value>& docs) {
  Result<UpdateManager*> updates = session_.Updates(table);
  if (!updates.ok()) {
    BatchInsertResult failed;
    failed.status = updates.status();
    return failed;
  }
  return (*updates)->InsertBatch(docs);
}

Status Client::Delete(const std::string& table, RecordId id) {
  STORM_ASSIGN_OR_RETURN(UpdateManager * updates, session_.Updates(table));
  return updates->Delete(id);
}

Status Client::Checkpoint(const std::string& table) {
  return session_.Checkpoint(table);
}

Status Client::SimulateCrash(const std::string& table) {
  return session_.SimulateCrash(table);
}

Status Client::Recover(const std::string& table) {
  return session_.Recover(table);
}

}  // namespace storm
