#include "storm/analytics/kde.h"

#include <algorithm>
#include <cmath>
#include <span>

namespace storm {

double KernelValue(KernelType kernel, double d, double h) {
  if (h <= 0) return 0.0;
  double u = d / h;
  switch (kernel) {
    case KernelType::kGaussian:
      return std::exp(-0.5 * u * u);
    case KernelType::kEpanechnikov:
      return u < 1.0 ? 1.0 - u * u : 0.0;
    case KernelType::kUniform:
      return u < 1.0 ? 1.0 : 0.0;
  }
  return 0.0;
}

namespace {
// Gaussian tails beyond 3h contribute < 1.2% of mass; treated as 0 in the
// grid update for compact-support iteration.
double SupportRadius(KernelType kernel, double h) {
  return kernel == KernelType::kGaussian ? 3.0 * h : h;
}
}  // namespace

template <int D>
OnlineKde<D>::OnlineKde(SpatialSampler<D>* sampler, const Rect<2>& region,
                        KdeOptions options)
    : sampler_(sampler), region_(region), options_(options) {
  double dx = region.hi()[0] - region.lo()[0];
  double dy = region.hi()[1] - region.lo()[1];
  bandwidth_ = options_.bandwidth > 0
                   ? options_.bandwidth
                   : std::sqrt(dx * dx + dy * dy) / 32.0;
  size_t cells = static_cast<size_t>(options_.grid_width) *
                 static_cast<size_t>(options_.grid_height);
  sum_.assign(cells, 0.0);
  sum_sq_.assign(cells, 0.0);
}

template <int D>
Status OnlineKde<D>::Begin(const Rect<D>& query) {
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
  n_ = 0;
  exhausted_ = false;
  Status st = sampler_->Begin(query, SamplingMode::kWithoutReplacement);
  if (st.IsNotSupported()) {
    st = sampler_->Begin(query, SamplingMode::kWithReplacement);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  return Status::OK();
}

template <int D>
Point2 OnlineKde<D>::CellCenter(int x, int y) const {
  double fx = (static_cast<double>(x) + 0.5) / options_.grid_width;
  double fy = (static_cast<double>(y) + 0.5) / options_.grid_height;
  return Point2(region_.lo()[0] + fx * (region_.hi()[0] - region_.lo()[0]),
                region_.lo()[1] + fy * (region_.hi()[1] - region_.lo()[1]));
}

template <int D>
void OnlineKde<D>::Accumulate(const Point<D>& p) {
  double radius = SupportRadius(options_.kernel, bandwidth_);
  double cell_w = (region_.hi()[0] - region_.lo()[0]) / options_.grid_width;
  double cell_h = (region_.hi()[1] - region_.lo()[1]) / options_.grid_height;
  int x0 = 0, x1 = options_.grid_width - 1;
  int y0 = 0, y1 = options_.grid_height - 1;
  if (cell_w > 0) {
    x0 = std::max(0, static_cast<int>((p[0] - radius - region_.lo()[0]) / cell_w));
    x1 = std::min(options_.grid_width - 1,
                  static_cast<int>((p[0] + radius - region_.lo()[0]) / cell_w));
  }
  if (cell_h > 0) {
    y0 = std::max(0, static_cast<int>((p[1] - radius - region_.lo()[1]) / cell_h));
    y1 = std::min(options_.grid_height - 1,
                  static_cast<int>((p[1] + radius - region_.lo()[1]) / cell_h));
  }
  Point2 xy(p[0], p[1]);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      double v = KernelValue(options_.kernel, CellCenter(x, y).Distance(xy),
                             bandwidth_);
      if (v <= 0.0) continue;
      size_t idx = static_cast<size_t>(y) * options_.grid_width + x;
      sum_[idx] += v;
      sum_sq_[idx] += v * v;
    }
  }
}

template <int D>
uint64_t OnlineKde<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(kChunk, batch - drawn);
    size_t got = sampler_->NextBatch(
        std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    for (size_t i = 0; i < got; ++i) Accumulate(buf[i].point);
    n_ += got;
    drawn += got;
  }
  return drawn;
}

template <int D>
ConfidenceInterval OnlineKde<D>::Cell(int x, int y) const {
  size_t idx = static_cast<size_t>(y) * options_.grid_width + x;
  ConfidenceInterval ci;
  ci.confidence = options_.confidence;
  ci.samples = n_;
  if (n_ == 0) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  double k = static_cast<double>(n_);
  double mean = sum_[idx] / k;
  ci.estimate = mean;
  if (n_ >= 2) {
    double var = (sum_sq_[idx] - k * mean * mean) / (k - 1.0);
    if (var < 0) var = 0;
    ci.half_width = ZCritical(options_.confidence) * std::sqrt(var / k);
  } else {
    ci.half_width = std::numeric_limits<double>::infinity();
  }
  if (exhausted_) {
    ci.exact = true;
    ci.half_width = 0.0;
  }
  return ci;
}

template <int D>
std::vector<double> OnlineKde<D>::DensityMap() const {
  std::vector<double> out(sum_.size(), 0.0);
  if (n_ == 0) return out;
  double k = static_cast<double>(n_);
  for (size_t i = 0; i < sum_.size(); ++i) out[i] = sum_[i] / k;
  return out;
}

template <int D>
double OnlineKde<D>::MaxHalfWidth() const {
  double worst = 0.0;
  for (int y = 0; y < options_.grid_height; ++y) {
    for (int x = 0; x < options_.grid_width; ++x) {
      worst = std::max(worst, Cell(x, y).half_width);
    }
  }
  return worst;
}

template <int D>
double OnlineKde<D>::MeanHalfWidth() const {
  double total = 0.0;
  for (int y = 0; y < options_.grid_height; ++y) {
    for (int x = 0; x < options_.grid_width; ++x) {
      total += Cell(x, y).half_width;
    }
  }
  return total / (static_cast<double>(options_.grid_width) * options_.grid_height);
}

template <int D>
std::vector<typename OnlineKde<D>::HotCell> OnlineKde<D>::TopCells(
    size_t k) const {
  std::vector<HotCell> cells;
  cells.reserve(static_cast<size_t>(options_.grid_width) *
                static_cast<size_t>(options_.grid_height));
  for (int y = 0; y < options_.grid_height; ++y) {
    for (int x = 0; x < options_.grid_width; ++x) {
      cells.push_back(HotCell{x, y, Cell(x, y)});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const HotCell& a, const HotCell& b) {
    return a.density.estimate > b.density.estimate;
  });
  if (cells.size() > k) cells.resize(k);
  return cells;
}

template <int D>
std::vector<double> OnlineKde<D>::ExactDensity(const std::vector<Entry>& all,
                                               const Rect<D>& query,
                                               const Rect<2>& region,
                                               const KdeOptions& options) {
  // Reuse the online accumulator with a trivial "sampler" replaced by a
  // direct scan: push every qualifying point once.
  OnlineKde<D> kde(nullptr, region, options);
  kde.began_ = true;
  for (const Entry& e : all) {
    if (!query.Contains(e.point)) continue;
    kde.Accumulate(e.point);
    ++kde.n_;
  }
  return kde.DensityMap();
}

template class OnlineKde<2>;
template class OnlineKde<3>;

}  // namespace storm
