#include "storm/analytics/trajectory.h"

#include <algorithm>
#include <cmath>
#include <span>

namespace storm {

void TrajectoryBuilder::Add(double t, const Point2& position) {
  if (!fixes_.empty() && t < fixes_.back().t) sorted_ = false;
  fixes_.push_back(TimedPoint{t, position});
}

void TrajectoryBuilder::EnsureSorted() const {
  if (sorted_) return;
  std::sort(fixes_.begin(), fixes_.end(),
            [](const TimedPoint& a, const TimedPoint& b) { return a.t < b.t; });
  sorted_ = true;
}

const std::vector<TimedPoint>& TrajectoryBuilder::Polyline() const {
  EnsureSorted();
  return fixes_;
}

Point2 TrajectoryBuilder::PositionAt(double t) const {
  assert(!fixes_.empty());
  EnsureSorted();
  if (t <= fixes_.front().t) return fixes_.front().position;
  if (t >= fixes_.back().t) return fixes_.back().position;
  auto it = std::lower_bound(
      fixes_.begin(), fixes_.end(), t,
      [](const TimedPoint& f, double time) { return f.t < time; });
  const TimedPoint& hi = *it;
  const TimedPoint& lo = *(it - 1);
  double span = hi.t - lo.t;
  double w = span > 0 ? (t - lo.t) / span : 0.0;
  return Point2(lo.position[0] + w * (hi.position[0] - lo.position[0]),
                lo.position[1] + w * (hi.position[1] - lo.position[1]));
}

double TrajectoryBuilder::Length() const {
  EnsureSorted();
  double len = 0.0;
  for (size_t i = 1; i < fixes_.size(); ++i) {
    len += fixes_[i - 1].position.Distance(fixes_[i].position);
  }
  return len;
}

double TrajectoryError(const TrajectoryBuilder& approx,
                       const TrajectoryBuilder& truth, int probes) {
  if (approx.empty() || truth.empty() || probes <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  double t0 = std::min(approx.Polyline().front().t, truth.Polyline().front().t);
  double t1 = std::max(approx.Polyline().back().t, truth.Polyline().back().t);
  double total = 0.0;
  for (int i = 0; i < probes; ++i) {
    double t = probes == 1
                   ? t0
                   : t0 + (t1 - t0) * static_cast<double>(i) / (probes - 1);
    total += approx.PositionAt(t).Distance(truth.PositionAt(t));
  }
  return total / probes;
}

template <int D>
OnlineTrajectory<D>::OnlineTrajectory(SpatialSampler<D>* sampler, FilterFn filter)
    : sampler_(sampler), filter_(std::move(filter)) {}

template <int D>
Status OnlineTrajectory<D>::Begin(const Rect<D>& query) {
  builder_.Clear();
  drawn_ = 0;
  exhausted_ = false;
  Status st = sampler_->Begin(query, SamplingMode::kWithoutReplacement);
  if (st.IsNotSupported()) {
    st = sampler_->Begin(query, SamplingMode::kWithReplacement);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  return Status::OK();
}

template <int D>
uint64_t OnlineTrajectory<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t added = 0;
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(kChunk, batch - drawn);
    size_t got = sampler_->NextBatch(
        std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    drawn += got;
    drawn_ += got;
    for (size_t i = 0; i < got; ++i) {
      const Entry& e = buf[i];
      if (filter_ && !filter_(e)) continue;
      builder_.Add(e.point[2], Point2(e.point[0], e.point[1]));
      ++added;
    }
  }
  return added;
}

template class OnlineTrajectory<3>;

}  // namespace storm
