// Online short-text understanding (Fig 6b): estimate the dominant terms in
// the documents of a spatio-temporal window from an online sample of those
// documents.
//
// Each term's document frequency (fraction of qualifying documents
// containing it) is a population proportion, so the sample proportion is
// unbiased with a binomial confidence interval — the top-m list stabilizes
// online exactly like a scalar aggregate.

#ifndef STORM_ANALYTICS_TEXT_H_
#define STORM_ANALYTICS_TEXT_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storm/estimator/confidence.h"
#include "storm/sampling/sampler.h"

namespace storm {

/// Lower-cases, strips punctuation, splits on whitespace, and drops
/// stopwords and single-character tokens.
std::vector<std::string> Tokenize(std::string_view text);

/// True for the built-in English stopword list ("the", "a", "and", …).
bool IsStopword(std::string_view token);

/// A term with its estimated document frequency.
struct TermEstimate {
  std::string term;
  /// Documents (among samples) containing the term.
  uint64_t count = 0;
  /// Estimated document frequency with binomial CI.
  ConfidenceInterval frequency;
};

/// Streaming document-frequency counter.
class TermCounter {
 public:
  explicit TermCounter(double confidence = 0.95) : confidence_(confidence) {}

  /// Counts each distinct token of one document once.
  void AddDocument(const std::vector<std::string>& tokens);

  uint64_t documents() const { return documents_; }

  /// The m most frequent terms, most frequent first.
  std::vector<TermEstimate> TopTerms(size_t m) const;

  void Clear();

 private:
  double confidence_;
  uint64_t documents_ = 0;
  std::unordered_map<std::string, uint64_t> counts_;
};

/// Fraction of the exact top-m terms recovered by the estimate (the
/// convergence metric for the Fig 6(b) experiment).
double TopTermPrecision(const std::vector<TermEstimate>& estimated,
                        const std::vector<TermEstimate>& exact, size_t m);

/// Drives a sampler and looks up each sampled record's text via `text_of`.
template <int D>
class OnlineTermFrequency {
 public:
  using Entry = typename RTree<D>::Entry;
  using TextFn = std::function<std::string_view(RecordId)>;

  OnlineTermFrequency(SpatialSampler<D>* sampler, TextFn text_of,
                      double confidence = 0.95);

  Status Begin(const Rect<D>& query);

  /// Draws up to `batch` documents; returns the number drawn.
  uint64_t Step(uint64_t batch = 64);

  std::vector<TermEstimate> TopTerms(size_t m) const { return counter_.TopTerms(m); }
  uint64_t documents() const { return counter_.documents(); }
  bool Exhausted() const { return exhausted_; }

 private:
  SpatialSampler<D>* sampler_;
  TextFn text_of_;
  TermCounter counter_;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class OnlineTermFrequency<2>;
extern template class OnlineTermFrequency<3>;

}  // namespace storm

#endif  // STORM_ANALYTICS_TEXT_H_
