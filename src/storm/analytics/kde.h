// Online kernel density estimation (§3.2, Fig 5).
//
// The density at a grid point p, f(p) = (1/q) Σ_{e∈P_Q} κ(d(e, p)), is a
// population mean, so each cell of the density map is estimated by the
// sample mean of κ(d(sample, p)) with a per-cell confidence interval — the
// map sharpens online exactly like a scalar aggregate.
//
// Cells outside a sample's kernel support receive an implicit 0
// contribution; the accumulator therefore stores per-cell (Σx, Σx²) plus a
// single global sample count, so one sample costs O(support cells), not
// O(grid).

#ifndef STORM_ANALYTICS_KDE_H_
#define STORM_ANALYTICS_KDE_H_

#include <vector>

#include "storm/estimator/confidence.h"
#include "storm/sampling/sampler.h"

namespace storm {

enum class KernelType {
  kGaussian,      ///< exp(-d²/2h²); truncated at 3h for the grid update
  kEpanechnikov,  ///< (1 - d²/h²)+ — compact support, cheapest
  kUniform,       ///< 1 inside h, 0 outside
};

/// Kernel value at distance `d` with bandwidth `h` (unnormalized; the demo
/// density maps are relative, matching the paper's visualization use).
double KernelValue(KernelType kernel, double d, double h);

struct KdeOptions {
  int grid_width = 64;
  int grid_height = 64;
  /// Kernel bandwidth in data units; 0 picks 1/32 of the region diagonal.
  double bandwidth = 0.0;
  KernelType kernel = KernelType::kEpanechnikov;
  double confidence = 0.95;
};

/// Online KDE over the first two dimensions of the sampled entries.
template <int D>
class OnlineKde {
 public:
  using Entry = typename RTree<D>::Entry;

  /// `region` is the displayed x/y window the grid covers; `sampler` must
  /// outlive this object.
  OnlineKde(SpatialSampler<D>* sampler, const Rect<2>& region, KdeOptions options);

  /// Starts a new online density query over `query` (the spatio-temporal
  /// selection; its x/y footprint is typically `region`).
  Status Begin(const Rect<D>& query);

  /// Draws up to `batch` samples into the map; returns the number drawn.
  uint64_t Step(uint64_t batch = 64);

  /// Density estimate of one cell.
  ConfidenceInterval Cell(int x, int y) const;

  /// Row-major snapshot of all cell estimates (density only).
  std::vector<double> DensityMap() const;

  /// Largest CI half-width over the map: the online quality indicator the
  /// demo uses ("the density estimate improves ... as query time
  /// increases").
  double MaxHalfWidth() const;
  double MeanHalfWidth() const;

  /// A detected hot spot: a local density peak with its CI.
  struct HotCell {
    int x = 0;
    int y = 0;
    ConfidenceInterval density;
  };

  /// The `k` densest cells, densest first — online hotspot detection. A
  /// hotspot is "significant" once its CI separates from the map's median
  /// density; callers can check `density.lower()` against a threshold.
  std::vector<HotCell> TopCells(size_t k) const;

  uint64_t samples() const { return n_; }
  int width() const { return options_.grid_width; }
  int height() const { return options_.grid_height; }
  double bandwidth() const { return bandwidth_; }
  bool Exhausted() const { return exhausted_; }

  /// Ground-truth density map computed from the complete point set
  /// (benchmark/test reference; row-major, same grid).
  static std::vector<double> ExactDensity(const std::vector<Entry>& all,
                                          const Rect<D>& query,
                                          const Rect<2>& region,
                                          const KdeOptions& options);

 private:
  Point2 CellCenter(int x, int y) const;
  void Accumulate(const Point<D>& p);

  SpatialSampler<D>* sampler_;
  Rect<2> region_;
  KdeOptions options_;
  double bandwidth_ = 0.0;
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
  uint64_t n_ = 0;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class OnlineKde<2>;
extern template class OnlineKde<3>;

}  // namespace storm

#endif  // STORM_ANALYTICS_KDE_H_
