#include "storm/analytics/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

namespace storm {

namespace {

std::vector<Point2> SeedPlusPlus(const std::vector<Point2>& points, int k, Rng* rng) {
  std::vector<Point2> centers;
  centers.reserve(static_cast<size_t>(k));
  centers.push_back(points[static_cast<size_t>(rng->Uniform(points.size()))]);
  std::vector<double> dist_sq(points.size(),
                              std::numeric_limits<double>::infinity());
  while (centers.size() < static_cast<size_t>(k)) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = std::min(dist_sq[i], points[i].DistanceSquared(centers.back()));
      total += dist_sq[i];
    }
    if (total <= 0.0) {
      // All points coincide with centers; duplicate one.
      centers.push_back(centers.back());
      continue;
    }
    double target = rng->UniformDouble() * total;
    double acc = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += dist_sq[i];
      if (target < acc) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

}  // namespace

KMeansResult KMeansCluster(const std::vector<Point2>& points,
                           const KMeansOptions& options, Rng* rng,
                           const std::vector<Point2>& warm_start) {
  KMeansResult result;
  if (points.empty() || options.k <= 0) return result;
  int k = std::min<int>(options.k, static_cast<int>(points.size()));
  result.centers = (!warm_start.empty() &&
                    warm_start.size() == static_cast<size_t>(k))
                       ? warm_start
                       : SeedPlusPlus(points, k, rng);
  result.assignment.assign(points.size(), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        double d = points[i].DistanceSquared(result.centers[static_cast<size_t>(c)]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
    }
    // Update.
    std::vector<double> sx(static_cast<size_t>(k), 0.0);
    std::vector<double> sy(static_cast<size_t>(k), 0.0);
    std::vector<uint64_t> cnt(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      size_t c = static_cast<size_t>(result.assignment[i]);
      sx[c] += points[i][0];
      sy[c] += points[i][1];
      ++cnt[c];
    }
    double max_move_sq = 0.0;
    for (int c = 0; c < k; ++c) {
      size_t ci = static_cast<size_t>(c);
      if (cnt[ci] == 0) continue;  // empty cluster keeps its center
      Point2 next(sx[ci] / static_cast<double>(cnt[ci]),
                  sy[ci] / static_cast<double>(cnt[ci]));
      max_move_sq = std::max(max_move_sq, next.DistanceSquared(result.centers[ci]));
      result.centers[ci] = next;
    }
    if (max_move_sq <= options.tolerance) break;
  }
  // Final inertia.
  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia += points[i].DistanceSquared(
        result.centers[static_cast<size_t>(result.assignment[i])]);
  }
  return result;
}

template <int D>
OnlineKMeans<D>::OnlineKMeans(SpatialSampler<D>* sampler, KMeansOptions options,
                              Rng rng)
    : sampler_(sampler), options_(options), rng_(rng) {}

template <int D>
Status OnlineKMeans<D>::Begin(const Rect<D>& query) {
  points_.clear();
  result_ = KMeansResult();
  drift_ = 0.0;
  exhausted_ = false;
  Status st = sampler_->Begin(query, SamplingMode::kWithoutReplacement);
  if (st.IsNotSupported()) {
    st = sampler_->Begin(query, SamplingMode::kWithReplacement);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  return Status::OK();
}

template <int D>
uint64_t OnlineKMeans<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(kChunk, batch - drawn);
    size_t got = sampler_->NextBatch(
        std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    for (size_t i = 0; i < got; ++i) {
      points_.push_back(Point2(buf[i].point[0], buf[i].point[1]));
    }
    drawn += got;
  }
  if (drawn > 0 && points_.size() >= static_cast<size_t>(options_.k)) {
    std::vector<Point2> prev = result_.centers;
    result_ = KMeansCluster(points_, options_, &rng_, prev);
    drift_ = 0.0;
    if (prev.size() == result_.centers.size()) {
      for (size_t c = 0; c < prev.size(); ++c) {
        drift_ = std::max(drift_, prev[c].Distance(result_.centers[c]));
      }
    } else {
      drift_ = std::numeric_limits<double>::infinity();
    }
  }
  return drawn;
}

template class OnlineKMeans<2>;
template class OnlineKMeans<3>;

}  // namespace storm
