// Online approximate trajectory reconstruction (Fig 6a): rebuild a moving
// object's path from online samples of its timestamped positions. The
// approximation is the piecewise-linear curve through the time-sorted
// samples; it converges to the true path as more samples arrive.

#ifndef STORM_ANALYTICS_TRAJECTORY_H_
#define STORM_ANALYTICS_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "storm/sampling/sampler.h"

namespace storm {

/// A position fix at a point in time.
struct TimedPoint {
  double t = 0.0;
  Point2 position;
};

/// Accumulates fixes and interpolates a polyline through them.
class TrajectoryBuilder {
 public:
  void Add(double t, const Point2& position);

  /// Fixes sorted by time.
  const std::vector<TimedPoint>& Polyline() const;

  /// Linearly interpolated position at time t (clamped to the fix range).
  /// Requires at least one fix.
  Point2 PositionAt(double t) const;

  size_t size() const { return fixes_.size(); }
  bool empty() const { return fixes_.empty(); }
  void Clear() { fixes_.clear(); sorted_ = true; }

  /// Total length of the polyline.
  double Length() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<TimedPoint> fixes_;
  mutable bool sorted_ = true;
};

/// Mean distance between two trajectories probed at `probes` evenly spaced
/// times across the union of their spans; the convergence metric for the
/// Fig 6(a) experiment.
double TrajectoryError(const TrajectoryBuilder& approx,
                       const TrajectoryBuilder& truth, int probes = 100);

/// Drives a sampler over a (x, y, t) index restricted to one object's
/// records and feeds the builder. The per-object restriction is the
/// caller's: pass a filter that keeps only the object's record ids.
template <int D>
class OnlineTrajectory {
 public:
  using Entry = typename RTree<D>::Entry;
  using FilterFn = std::function<bool(const Entry&)>;

  static_assert(D == 3, "trajectories need (x, y, t) entries");

  OnlineTrajectory(SpatialSampler<D>* sampler, FilterFn filter);

  Status Begin(const Rect<D>& query);

  /// Draws up to `batch` samples; entries failing the filter are skipped
  /// (they cost a draw but add no fix). Returns fixes added.
  uint64_t Step(uint64_t batch = 64);

  const TrajectoryBuilder& Current() const { return builder_; }
  bool Exhausted() const { return exhausted_; }
  uint64_t samples_drawn() const { return drawn_; }

 private:
  SpatialSampler<D>* sampler_;
  FilterFn filter_;
  TrajectoryBuilder builder_;
  uint64_t drawn_ = 0;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class OnlineTrajectory<3>;

}  // namespace storm

#endif  // STORM_ANALYTICS_TRAJECTORY_H_
