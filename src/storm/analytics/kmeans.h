// Online spatial clustering on samples (§3.2: "clustering ... can also be
// performed on a sample of points; the clustering quality improves as the
// sample size increases").
//
// KMeansCluster is a standalone k-means++ / Lloyd implementation over 2-D
// points; OnlineKMeans drives a spatial sampler and re-clusters
// periodically, warm-starting from the previous centers so the solution is
// stable as samples accumulate.

#ifndef STORM_ANALYTICS_KMEANS_H_
#define STORM_ANALYTICS_KMEANS_H_

#include <vector>

#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

struct KMeansOptions {
  int k = 8;
  int max_iterations = 50;
  /// Stop when no center moves more than this (squared distance).
  double tolerance = 1e-9;
};

struct KMeansResult {
  std::vector<Point2> centers;
  std::vector<int> assignment;  ///< cluster index per input point
  double inertia = 0.0;         ///< sum of squared distances to centers
  int iterations = 0;
};

/// k-means++ seeding followed by Lloyd's algorithm. When `warm_start` is
/// non-empty it is used as the initial centers instead of seeding.
KMeansResult KMeansCluster(const std::vector<Point2>& points,
                           const KMeansOptions& options, Rng* rng,
                           const std::vector<Point2>& warm_start = {});

/// Online clustering over the first two dimensions of sampled entries.
template <int D>
class OnlineKMeans {
 public:
  using Entry = typename RTree<D>::Entry;

  OnlineKMeans(SpatialSampler<D>* sampler, KMeansOptions options, Rng rng);

  Status Begin(const Rect<D>& query);

  /// Draws up to `batch` samples and re-clusters; returns samples drawn.
  uint64_t Step(uint64_t batch = 256);

  /// Latest clustering over all samples so far.
  const KMeansResult& Current() const { return result_; }

  /// Max center movement (distance) in the last re-clustering: the online
  /// convergence indicator.
  double LastCenterDrift() const { return drift_; }

  uint64_t samples() const { return points_.size(); }
  bool Exhausted() const { return exhausted_; }

 private:
  SpatialSampler<D>* sampler_;
  KMeansOptions options_;
  Rng rng_;
  std::vector<Point2> points_;
  KMeansResult result_;
  double drift_ = 0.0;
  bool began_ = false;
  bool exhausted_ = false;
};

extern template class OnlineKMeans<2>;
extern template class OnlineKMeans<3>;

}  // namespace storm

#endif  // STORM_ANALYTICS_KMEANS_H_
