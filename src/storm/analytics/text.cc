#include "storm/analytics/text.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <span>
#include <unordered_set>

#include "storm/util/stats.h"

namespace storm {

namespace {
const std::unordered_set<std::string_view>& StopwordSet() {
  static const auto* kStopwords = new std::unordered_set<std::string_view>{
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",  "by",
      "for",  "from", "has",  "have", "he",   "her",  "his",  "i",    "in",
      "is",   "it",   "its",  "just", "me",   "my",   "no",   "not",  "of",
      "on",   "or",   "our",  "she",  "so",   "that", "the",  "their",
      "them", "they", "this", "to",   "was",  "we",   "were", "will", "with",
      "you",  "your", "im",   "u",    "rt",   "am",   "do",   "dont", "what",
      "when", "up",   "out",  "all",  "get",  "got",  "now",  "here", "there",
  };
  return *kStopwords;
}
}  // namespace

bool IsStopword(std::string_view token) { return StopwordSet().contains(token); }

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c) || ch == '#' || ch == '@' || ch == '\'') {
      if (ch != '\'') current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      if (current.size() > 1 && !IsStopword(current)) {
        tokens.push_back(current);
      }
      current.clear();
    }
  }
  if (current.size() > 1 && !IsStopword(current)) tokens.push_back(current);
  return tokens;
}

void TermCounter::AddDocument(const std::vector<std::string>& tokens) {
  ++documents_;
  std::unordered_set<std::string_view> seen;
  for (const std::string& t : tokens) {
    if (seen.insert(t).second) {
      ++counts_[t];
    }
  }
}

std::vector<TermEstimate> TermCounter::TopTerms(size_t m) const {
  std::vector<TermEstimate> all;
  all.reserve(counts_.size());
  double n = static_cast<double>(documents_);
  for (const auto& [term, count] : counts_) {
    TermEstimate e;
    e.term = term;
    e.count = count;
    e.frequency.confidence = confidence_;
    e.frequency.samples = documents_;
    double p = n > 0 ? static_cast<double>(count) / n : 0.0;
    e.frequency.estimate = p;
    e.frequency.half_width =
        n >= 2 ? ZCritical(confidence_) * std::sqrt(p * (1 - p) / n)
               : std::numeric_limits<double>::infinity();
    all.push_back(std::move(e));
  }
  std::sort(all.begin(), all.end(), [](const TermEstimate& a, const TermEstimate& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.term < b.term;
  });
  if (all.size() > m) all.resize(m);
  return all;
}

void TermCounter::Clear() {
  documents_ = 0;
  counts_.clear();
}

double TopTermPrecision(const std::vector<TermEstimate>& estimated,
                        const std::vector<TermEstimate>& exact, size_t m) {
  if (m == 0) return 1.0;
  std::unordered_set<std::string_view> truth;
  for (size_t i = 0; i < exact.size() && i < m; ++i) {
    truth.insert(exact[i].term);
  }
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  for (size_t i = 0; i < estimated.size() && i < m; ++i) {
    if (truth.contains(estimated[i].term)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

template <int D>
OnlineTermFrequency<D>::OnlineTermFrequency(SpatialSampler<D>* sampler,
                                            TextFn text_of, double confidence)
    : sampler_(sampler), text_of_(std::move(text_of)), counter_(confidence) {}

template <int D>
Status OnlineTermFrequency<D>::Begin(const Rect<D>& query) {
  counter_.Clear();
  exhausted_ = false;
  Status st = sampler_->Begin(query, SamplingMode::kWithoutReplacement);
  if (st.IsNotSupported()) {
    st = sampler_->Begin(query, SamplingMode::kWithReplacement);
  }
  STORM_RETURN_NOT_OK(st);
  began_ = true;
  return Status::OK();
}

template <int D>
uint64_t OnlineTermFrequency<D>::Step(uint64_t batch) {
  if (!began_ || exhausted_) return 0;
  constexpr uint64_t kChunk = 256;
  Entry buf[kChunk];
  uint64_t drawn = 0;
  while (drawn < batch) {
    uint64_t ask = std::min(kChunk, batch - drawn);
    size_t got = sampler_->NextBatch(
        std::span<Entry>(buf, static_cast<size_t>(ask)));
    if (got == 0) {
      exhausted_ = sampler_->IsExhausted();
      break;
    }
    for (size_t i = 0; i < got; ++i) {
      counter_.AddDocument(Tokenize(text_of_(buf[i].id)));
    }
    drawn += got;
  }
  return drawn;
}

template class OnlineTermFrequency<2>;
template class OnlineTermFrequency<3>;

}  // namespace storm
