// Failpoints: deterministic, seeded fault injection for chaos testing.
//
// A failpoint is a named site in production code ("block_manager.read",
// "shard.count", ...) that a test can arm with a trigger — trip with a
// probability, every Nth hit, or only after N hits — and a payload: an error
// Status to return, injected latency, or both. With no site armed the whole
// subsystem is a single relaxed atomic load, so production paths keep the
// checks compiled in (the RocksDB/TiKV idiom) at negligible cost.
//
// Determinism: probability triggers draw from a per-site Rng seeded by the
// config, never from a global source, so a fault schedule replays exactly
// from its seed. Per-site hit/trip counts are exported through
// MetricsRegistry as storm_failpoint_trips_total{site=...}.

#ifndef STORM_UTIL_FAILPOINT_H_
#define STORM_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storm/util/result.h"
#include "storm/util/rng.h"
#include "storm/util/status.h"

namespace storm {

/// Trigger + payload for one armed failpoint site.
///
/// Trigger (first non-zero field wins, in this order):
///   - probability > 0: independent Bernoulli(p) per eligible hit;
///   - every_nth  > 0: trips on hits N, 2N, 3N, ...;
///   - otherwise: trips on every eligible hit.
/// `after_n` delays eligibility until that many hits have passed, and
/// `max_trips` caps the total number of trips (0 = unlimited).
struct FailpointConfig {
  double probability = 0.0;
  uint64_t every_nth = 0;
  uint64_t after_n = 0;
  uint64_t max_trips = 0;

  /// Status returned when the site trips. kOk makes the trip inject only
  /// latency (a "slow" fault rather than an error).
  StatusCode code = StatusCode::kIOError;
  std::string message;

  /// Sleep injected on every trip, before the status is returned.
  double latency_ms = 0.0;

  /// Seed for the probability trigger's private Rng.
  uint64_t seed = 0x5704A17ULL;
};

/// The process-wide registry of armed failpoint sites.
///
/// Thread-safe: Configure/Disable and Evaluate may race from any thread.
class Failpoints {
 public:
  /// The registry used by all STORM_FAILPOINT sites.
  static Failpoints& Default();

  /// Arms (or re-arms, resetting counters) a site.
  void Configure(const std::string& site, FailpointConfig config);

  /// Disarms a site; unknown sites are a no-op.
  void Disable(const std::string& site);

  /// Disarms every site (test teardown).
  void DisableAll();

  /// Evaluates a site at its point of use: returns the configured error when
  /// the site trips (after applying injected latency), OK otherwise. With no
  /// site armed anywhere this is one relaxed atomic load.
  Status Evaluate(std::string_view site);

  /// Times the site was evaluated while armed / times it tripped. Counts
  /// reset when the site is (re)configured.
  uint64_t hits(const std::string& site) const;
  uint64_t trips(const std::string& site) const;

  /// Names of currently armed sites, sorted.
  std::vector<std::string> ArmedSites() const;

 private:
  struct Site {
    FailpointConfig config;
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t trips = 0;
    class Counter* trip_metric = nullptr;
  };

  std::atomic<size_t> armed_{0};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Site> sites_;
};

/// RAII activation: arms the site for the current scope, disarms on exit.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, FailpointConfig config)
      : site_(std::move(site)) {
    Failpoints::Default().Configure(site_, std::move(config));
  }
  ~ScopedFailpoint() { Failpoints::Default().Disable(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Parses a command-line failpoint spec into (site, config):
///
///   "server.conn.slow:latency_ms=40,probability=0.5,seed=7"
///   "server.conn.drop:every_nth=20"
///
/// Keys: probability, every_nth, after_n, max_trips, latency_ms, seed,
/// code (a StatusCode name like "unavailable" or "io_error"), message.
/// Lets a binary (storm_server --failpoint ...) arm process-local faults at
/// startup — the only way to make exactly one shard of a real multi-process
/// fleet slow or flaky, since failpoint registries are per-process.
Result<std::pair<std::string, FailpointConfig>> ParseFailpointSpec(
    std::string_view spec);

/// Evaluates a failpoint site and propagates its error to the caller.
#define STORM_FAILPOINT(site) \
  STORM_RETURN_NOT_OK(::storm::Failpoints::Default().Evaluate(site))

}  // namespace storm

#endif  // STORM_UTIL_FAILPOINT_H_
