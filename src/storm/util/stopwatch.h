// Monotonic wall-clock timing for the online evaluators and benchmarks.

#ifndef STORM_UTIL_STOPWATCH_H_
#define STORM_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace storm {

/// A restartable monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace storm

#endif  // STORM_UTIL_STOPWATCH_H_
