// Timestamp parsing/formatting shared by the connector, the query language
// and schema discovery. Epochs are seconds since 1970-01-01 UTC (proleptic
// Gregorian, no leap seconds).

#ifndef STORM_UTIL_TIME_H_
#define STORM_UTIL_TIME_H_

#include <optional>
#include <string>
#include <string_view>

namespace storm {

/// Parses "YYYY-MM-DD[ T]HH:MM:SS[.fff][Z]", "YYYY-MM-DD", or a plain
/// numeric epoch into seconds since the Unix epoch.
std::optional<double> ParseTimestamp(std::string_view text);

/// Formats an epoch (seconds) back to "YYYY-MM-DD HH:MM:SS" UTC.
std::string FormatTimestamp(double epoch_seconds);

}  // namespace storm

#endif  // STORM_UTIL_TIME_H_
