// Streaming statistics shared by the online estimators.

#ifndef STORM_UTIL_STATS_H_
#define STORM_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>

namespace storm {

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// This is the statistical core of online aggregation: each spatial online
/// sample's attribute value is Push()ed, and the running mean, sample
/// variance, and standard error are available at any time.
class RunningStat {
 public:
  /// Adds one observation.
  void Push(double x);

  /// Merges another accumulator (parallel/Chan et al. update); used by the
  /// cluster coordinator to combine per-shard statistics.
  void Merge(const RunningStat& other);

  /// Number of observations so far.
  uint64_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;

  /// sqrt(variance()).
  double stddev() const;

  /// Standard error of the mean, sqrt(variance / n); 0 for n < 2.
  double standard_error() const;

  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(n_); }

  double min() const { return min_; }
  double max() const { return max_; }

  void Reset();

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |error| < 1.2e-9). p must be in (0, 1).
double NormalQuantile(double p);

/// Standard normal CDF.
double NormalCdf(double x);

/// Two-sided z critical value for the given confidence level in (0,1),
/// e.g. 0.95 -> 1.959964.
double ZCritical(double confidence);

/// Chi-square test statistic for observed counts against uniform expected
/// counts; used by the sampling-uniformity property tests.
double ChiSquareUniform(const uint64_t* observed, size_t bins, uint64_t total);

/// Upper critical value of the chi-square distribution with `dof` degrees of
/// freedom at the given upper-tail probability alpha (Wilson-Hilferty normal
/// approximation; adequate for dof >= 5 as used in tests).
double ChiSquareCritical(size_t dof, double alpha);

}  // namespace storm

#endif  // STORM_UTIL_STATS_H_
