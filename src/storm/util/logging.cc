#include "storm/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "storm/obs/trace_context.h"

namespace storm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Guards the sink and serializes emission so concurrent log lines never
// interleave.
std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

LogSink& Sink() {
  static LogSink* sink = new LogSink();
  return *sink;
}

// "2026-08-06T12:34:56.789Z" (UTC, millisecond precision).
std::string Iso8601Now() {
  using namespace std::chrono;
  auto now = system_clock::now();
  std::time_t secs = system_clock::to_time_t(now);
  auto ms = duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];  // worst-case snprintf bound for the tm field ranges
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sink() = std::move(sink);
}

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& msg) {
  // Build the whole line first so the default path is one fwrite — lines
  // from concurrent threads never interleave on stderr.
  std::string formatted = Iso8601Now();
  formatted += " [";
  formatted += LevelName(level);
  formatted += " ";
  formatted += Basename(file);
  formatted += ":";
  formatted += std::to_string(line);
  formatted += "] ";
  // Tag lines emitted while serving a traced query so grep-by-trace-id
  // pulls a query's full story out of a busy server log.
  const TraceContext& trace = CurrentTraceContext();
  if (trace.valid()) {
    formatted += "{trace=";
    formatted += trace.trace_id_hex();
    formatted += "} ";
  }
  formatted += msg;
  formatted += "\n";
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = Sink();
  if (sink) {
    sink(level, std::string_view(formatted.data(), formatted.size() - 1));
  } else {
    std::fwrite(formatted.data(), 1, formatted.size(), stderr);
  }
}

}  // namespace internal

}  // namespace storm
