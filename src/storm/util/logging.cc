#include "storm/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace storm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               msg.c_str());
}

}  // namespace internal

}  // namespace storm
