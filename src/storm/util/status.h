// Status: lightweight error propagation for fallible STORM APIs.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Exceptions are never
// thrown across module boundaries.

#ifndef STORM_UTIL_STATUS_H_
#define STORM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace storm {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kCorruption,
  kIOError,
  kNotSupported,
  kAborted,
  kDeadlineExceeded,
  kUnavailable,
  kUnknown,
};

/// Returns the canonical lowercase name of a status code, e.g. "not found".
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// human-readable message. Statuses are cheap to move and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.msg_ == b.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define STORM_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::storm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace storm

#endif  // STORM_UTIL_STATUS_H_
