// Deterministic pseudo-random number generation for samplers, generators and
// tests.
//
// STORM's correctness guarantees are statistical, so every randomized
// component takes an explicit Rng (never a global) and every experiment is
// reproducible from a seed. The generator is PCG64 (O'Neill 2014): fast,
// 128-bit state, excellent statistical quality, and trivially seedable from
// a 64-bit value via SplitMix64.

#ifndef STORM_UTIL_RNG_H_
#define STORM_UTIL_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace storm {

/// SplitMix64 step; used for seed expansion and cheap hashing.
uint64_t SplitMix64(uint64_t& state);

/// PCG64 (XSL-RR 128/64) pseudo-random generator.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, though the member helpers below are
/// preferred (they avoid libstdc++/libc++ distribution discrepancies and
/// keep results identical across platforms).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0xdefa017'5707'11edULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t Next64();
  uint64_t operator()() { return Next64(); }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method, so the result is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal deviate (Box-Muller, cached spare).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential deviate with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  size_t Discrete(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; deterministic in (this, salt).
  Rng Fork(uint64_t salt);

 private:
  unsigned __int128 state_;
  unsigned __int128 inc_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace storm

#endif  // STORM_UTIL_RNG_H_
