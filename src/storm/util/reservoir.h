// Reservoir sampling: maintain a uniform k-subset of a stream of unknown
// length (Vitter's Algorithm R), plus a weighted variant (Efraimidis-
// Spirakis A-Res via exponential keys). Used by applications that want a
// bounded uniform summary of the online sample stream itself — e.g. keep
// 1000 representative points of however many samples the user let the
// query draw — and by the test-suite as a reference sampler.

#ifndef STORM_UTIL_RESERVOIR_H_
#define STORM_UTIL_RESERVOIR_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "storm/util/rng.h"

namespace storm {

/// Uniform fixed-size reservoir over a stream (Algorithm R).
template <typename T>
class ReservoirSampler {
 public:
  /// `capacity` is k, the reservoir size; must be >= 1.
  ReservoirSampler(size_t capacity, Rng rng) : capacity_(capacity), rng_(rng) {
    assert(capacity_ >= 1);
    sample_.reserve(capacity_);
  }

  /// Offers one stream element.
  void Add(T value) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(std::move(value));
      return;
    }
    uint64_t j = rng_.Uniform(seen_);
    if (j < capacity_) {
      sample_[static_cast<size_t>(j)] = std::move(value);
    }
  }

  /// The current reservoir: a uniform min(k, seen)-subset of the stream.
  const std::vector<T>& sample() const { return sample_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

  void Clear() {
    sample_.clear();
    seen_ = 0;
  }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t seen_ = 0;
};

/// Weighted reservoir (A-Res): each element is kept with probability
/// proportional to its weight among all stream elements. Keys are
/// u^(1/w) ~ keep the k largest; implemented with a min-heap of keys.
template <typename T>
class WeightedReservoirSampler {
 public:
  WeightedReservoirSampler(size_t capacity, Rng rng)
      : capacity_(capacity), rng_(rng) {
    assert(capacity_ >= 1);
  }

  /// Offers one element with weight > 0 (non-positive weights are skipped).
  void Add(T value, double weight) {
    ++seen_;
    if (weight <= 0.0) return;
    double u = rng_.UniformDouble();
    if (u <= 0.0) u = 1e-300;
    double key = std::pow(u, 1.0 / weight);
    if (heap_.size() < capacity_) {
      heap_.push(Keyed{key, std::move(value)});
      return;
    }
    if (key > heap_.top().key) {
      heap_.pop();
      heap_.push(Keyed{key, std::move(value)});
    }
  }

  /// The current weighted sample (unordered).
  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(heap_.size());
    auto copy = heap_;
    while (!copy.empty()) {
      out.push_back(copy.top().value);
      copy.pop();
    }
    return out;
  }

  uint64_t seen() const { return seen_; }
  size_t size() const { return heap_.size(); }

 private:
  struct Keyed {
    double key;
    T value;
    bool operator>(const Keyed& other) const { return key > other.key; }
  };

  size_t capacity_;
  Rng rng_;
  std::priority_queue<Keyed, std::vector<Keyed>, std::greater<>> heap_;
  uint64_t seen_ = 0;
};

}  // namespace storm

#endif  // STORM_UTIL_RESERVOIR_H_
