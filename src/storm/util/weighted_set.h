// Dynamic weighted sampling via a Fenwick (binary indexed) tree.
//
// The RS-tree frontier needs to (a) draw a slot with probability
// proportional to its weight, (b) change a slot's weight (expansion sets a
// node's weight to 0 and adds its children), both in O(log n). A Fenwick
// tree over the weights does exactly that.

#ifndef STORM_UTIL_WEIGHTED_SET_H_
#define STORM_UTIL_WEIGHTED_SET_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "storm/util/rng.h"

namespace storm {

/// A growable multiset of non-negative weights supporting O(log n) weighted
/// draws and weight updates. Slots are dense indices assigned by Add().
class WeightedSet {
 public:
  /// Adds a slot with the given weight; returns its index.
  size_t Add(double weight) {
    assert(weight >= 0.0);
    weights_.push_back(weight);
    tree_.push_back(0.0);
    size_t i = weights_.size();  // 1-based position in the Fenwick array
    // Rebuild the new tail cell from its covered range, then propagate.
    double sum = weight;
    size_t lsb = i & (~i + 1);
    for (size_t j = i - 1; j > i - lsb; j -= (j & (~j + 1))) {
      sum += tree_[j - 1];
    }
    tree_[i - 1] = sum;
    total_ += weight;
    return i - 1;
  }

  /// Sets the weight of slot `idx`.
  void Update(size_t idx, double weight) {
    assert(idx < weights_.size());
    assert(weight >= 0.0);
    double delta = weight - weights_[idx];
    weights_[idx] = weight;
    total_ += delta;
    for (size_t i = idx + 1; i <= tree_.size(); i += (i & (~i + 1))) {
      tree_[i - 1] += delta;
    }
  }

  double WeightOf(size_t idx) const { return weights_[idx]; }
  double total() const { return total_ > 0 ? total_ : 0.0; }
  size_t size() const { return weights_.size(); }

  /// Draws a slot with probability weight/total. total() must be > 0.
  size_t Sample(Rng* rng) const {
    assert(total() > 0.0);
    double target = rng->UniformDouble() * total();
    // Descend the implicit Fenwick hierarchy.
    size_t pos = 0;
    size_t mask = HighestPowerOfTwo(tree_.size());
    while (mask > 0) {
      size_t next = pos + mask;
      if (next <= tree_.size() && tree_[next - 1] < target) {
        target -= tree_[next - 1];
        pos = next;
      }
      mask >>= 1;
    }
    // `pos` is now the count of prefix slots whose cumulative weight is
    // below target; the sampled slot is pos (0-based). Guard against
    // floating-point overshoot and zero-weight slots.
    while (pos < weights_.size() && weights_[pos] <= 0.0) ++pos;
    if (pos >= weights_.size()) {
      for (pos = weights_.size(); pos > 0 && weights_[pos - 1] <= 0.0; --pos) {
      }
      assert(pos > 0);
      --pos;
    }
    return pos;
  }

 private:
  static size_t HighestPowerOfTwo(size_t n) {
    size_t p = 1;
    while (p * 2 <= n) p *= 2;
    return n == 0 ? 0 : p;
  }

  std::vector<double> weights_;
  std::vector<double> tree_;  // Fenwick partial sums, 1-based semantics
  double total_ = 0.0;
};

}  // namespace storm

#endif  // STORM_UTIL_WEIGHTED_SET_H_
