// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for page checksums.
//
// Software table-driven implementation: the simulated disk verifies every
// page read against the checksum recorded at write time, so silent
// corruption (bit rot, injected faults) surfaces as Status::Corruption
// instead of garbage data.

#ifndef STORM_UTIL_CRC32_H_
#define STORM_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace storm {

/// CRC-32 of `n` bytes starting at `data`, with the standard init/final
/// XOR (so Crc32("123456789", 9) == 0xCBF43926).
uint32_t Crc32(const void* data, size_t n);

/// Incremental form: pass the previous return value as `state` to extend a
/// checksum over multiple buffers. Start from kCrc32Init and finish with
/// Crc32Finish.
constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, const void* data, size_t n);
inline uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace storm

#endif  // STORM_UTIL_CRC32_H_
