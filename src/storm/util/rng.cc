#include "storm/util/rng.h"

#include <cmath>

namespace storm {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr unsigned __int128 kPcgMultiplier =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;

uint64_t RotateRight(uint64_t v, unsigned rot) {
  return (v >> rot) | (v << ((-rot) & 63u));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  uint64_t a = SplitMix64(sm);
  uint64_t b = SplitMix64(sm);
  uint64_t c = SplitMix64(sm);
  uint64_t d = SplitMix64(sm);
  state_ = (static_cast<unsigned __int128>(a) << 64) | b;
  inc_ = ((static_cast<unsigned __int128>(c) << 64) | d) | 1u;  // must be odd
  // Warm up so that nearby seeds diverge immediately.
  Next64();
  Next64();
}

uint64_t Rng::Next64() {
  state_ = state_ * kPcgMultiplier + inc_;
  uint64_t xored = static_cast<uint64_t>(state_ >> 64) ^ static_cast<uint64_t>(state_);
  unsigned rot = static_cast<unsigned>(state_ >> 122);
  return RotateRight(xored, rot);
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased region.
  unsigned __int128 m = static_cast<unsigned __int128>(Next64()) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<unsigned __int128>(Next64()) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t mix = Next64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x7f4a7c159e3779b9ULL);
  return Rng(mix);
}

}  // namespace storm
