#include "storm/util/stats.h"

#include <cassert>
#include <cmath>

namespace storm {

void RunningStat::Push(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  uint64_t total = n_ + other.n_;
  double nf = static_cast<double>(n_);
  double mf = static_cast<double>(other.n_);
  double tf = static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * nf * mf / tf;
  mean_ += delta * mf / tf;
  n_ = total;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::standard_error() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(variance() / static_cast<double>(n_));
}

void RunningStat::Reset() { *this = RunningStat(); }

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double ZCritical(double confidence) {
  assert(confidence > 0.0 && confidence < 1.0);
  return NormalQuantile(0.5 + confidence / 2.0);
}

double ChiSquareUniform(const uint64_t* observed, size_t bins, uint64_t total) {
  assert(bins > 0);
  double expected = static_cast<double>(total) / static_cast<double>(bins);
  if (expected <= 0) return 0.0;
  double stat = 0.0;
  for (size_t i = 0; i < bins; ++i) {
    double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double ChiSquareCritical(size_t dof, double alpha) {
  assert(dof > 0);
  assert(alpha > 0.0 && alpha < 1.0);
  // Wilson-Hilferty: X ~ chi2(k) => (X/k)^(1/3) approx Normal(1-2/(9k), 2/(9k)).
  double k = static_cast<double>(dof);
  double z = NormalQuantile(1.0 - alpha);
  double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

}  // namespace storm
