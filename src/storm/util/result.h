// Result<T>: value-or-Status, the Arrow idiom for fallible value-returning
// functions.

#ifndef STORM_UTIL_RESULT_H_
#define STORM_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "storm/util/status.h"

namespace storm {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
///
/// Typical use:
/// ```
/// Result<RTree> r = RTree::BulkLoad(points);
/// if (!r.ok()) return r.status();
/// RTree tree = std::move(r).ValueOrDie();
/// ```
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit on purpose, mirroring Arrow).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and is normalized to kUnknown.
  Result(Status st) : repr_(std::move(st)) {  // NOLINT(runtime/explicit)
    auto& s = std::get<Status>(repr_);
    if (s.ok()) s = Status::Unknown("Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates the error of a Result expression, otherwise assigns its value.
#define STORM_ASSIGN_OR_RETURN(lhs, expr)                \
  STORM_ASSIGN_OR_RETURN_IMPL_(                          \
      STORM_CONCAT_(_storm_result_, __COUNTER__), lhs, expr)

#define STORM_CONCAT_INNER_(a, b) a##b
#define STORM_CONCAT_(a, b) STORM_CONCAT_INNER_(a, b)
#define STORM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace storm

#endif  // STORM_UTIL_RESULT_H_
