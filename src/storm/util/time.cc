#include "storm/util/time.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace storm {

namespace {

// Days from 1970-01-01 to year-month-day (proleptic Gregorian); Howard
// Hinnant's algorithm.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);
  unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  unsigned doe = static_cast<unsigned>(z - era * 146097);
  unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

bool ParseUint(std::string_view s, unsigned* out) {
  unsigned v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<double> ParseTimestamp(std::string_view text) {
  while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
  while (!text.empty() && text.back() == ' ') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;
  if (!text.empty() && (text.back() == 'Z' || text.back() == 'z')) {
    text.remove_suffix(1);
  }
  // Date part: YYYY-MM-DD.
  if (text.size() >= 10 && text[4] == '-' && text[7] == '-') {
    unsigned year = 0, month = 0, day = 0;
    if (!ParseUint(text.substr(0, 4), &year) ||
        !ParseUint(text.substr(5, 2), &month) ||
        !ParseUint(text.substr(8, 2), &day)) {
      return std::nullopt;
    }
    if (month < 1 || month > 12 || day < 1 || day > 31) return std::nullopt;
    double epoch =
        static_cast<double>(DaysFromCivil(year, month, day)) * 86400.0;
    if (text.size() == 10) return epoch;
    // Time part: [ T]HH:MM:SS[.fff]
    if (text.size() < 19 || (text[10] != ' ' && text[10] != 'T') ||
        text[13] != ':' || text[16] != ':') {
      return std::nullopt;
    }
    unsigned hh = 0, mm = 0, ss = 0;
    if (!ParseUint(text.substr(11, 2), &hh) ||
        !ParseUint(text.substr(14, 2), &mm) ||
        !ParseUint(text.substr(17, 2), &ss)) {
      return std::nullopt;
    }
    if (hh > 23 || mm > 59 || ss > 60) return std::nullopt;
    epoch += hh * 3600.0 + mm * 60.0 + ss;
    if (text.size() > 19 && text[19] == '.') {
      double frac = 0.0;
      auto fs = text.substr(20);
      double scale = 0.1;
      for (char c : fs) {
        if (c < '0' || c > '9') return std::nullopt;
        frac += (c - '0') * scale;
        scale /= 10.0;
      }
      epoch += frac;
    } else if (text.size() > 19) {
      return std::nullopt;
    }
    return epoch;
  }
  // Plain number (epoch seconds).
  double v = 0.0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec == std::errc() && p == text.data() + text.size()) return v;
  return std::nullopt;
}

std::string FormatTimestamp(double epoch_seconds) {
  int64_t total = static_cast<int64_t>(std::floor(epoch_seconds));
  int64_t days = total >= 0 ? total / 86400 : (total - 86399) / 86400;
  int64_t rem = total - days * 86400;
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u %02d:%02d:%02d",
                static_cast<long long>(y), m, d, static_cast<int>(rem / 3600),
                static_cast<int>((rem / 60) % 60), static_cast<int>(rem % 60));
  return buf;
}


}  // namespace storm
