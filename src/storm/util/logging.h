// Minimal leveled logging. STORM is a library, so logging defaults to WARN
// and writes to stderr; applications can raise the level for debugging.

#ifndef STORM_UTIL_LOGGING_H_
#define STORM_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace storm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives each formatted log line (without the trailing newline).
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the default stderr writer; pass an empty function to restore
/// it. Tests and the shell use this to capture log output. The sink runs
/// under the logging mutex, so it must not log itself.
void SetLogSink(LogSink sink);

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& msg);

/// Builds one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define STORM_LOG(level)                                               \
  if (::storm::GetLogLevel() <= ::storm::LogLevel::k##level)           \
  ::storm::internal::LogMessage(::storm::LogLevel::k##level, __FILE__, \
                                __LINE__)

}  // namespace storm

#endif  // STORM_UTIL_LOGGING_H_
