// Shared vocabulary types.

#ifndef STORM_UTIL_TYPES_H_
#define STORM_UTIL_TYPES_H_

#include <cstdint>

namespace storm {

/// Stable identifier of a stored record (document). Assigned by the record
/// store at import time and carried through indexes, samplers and
/// estimators.
using RecordId = uint64_t;

constexpr RecordId kInvalidRecordId = ~RecordId{0};

}  // namespace storm

#endif  // STORM_UTIL_TYPES_H_
