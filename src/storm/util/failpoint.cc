#include "storm/util/failpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "storm/obs/flight_recorder.h"
#include "storm/obs/metrics.h"

namespace storm {

Failpoints& Failpoints::Default() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Configure(const std::string& site, FailpointConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[site];
  s.config = std::move(config);
  s.rng = Rng(s.config.seed);
  s.hits = 0;
  s.trips = 0;
  s.trip_metric = MetricsRegistry::Default().GetCounter(
      "storm_failpoint_trips_total", "Fault injections fired, by site",
      {{"site", site}});
  armed_.store(sites_.size(), std::memory_order_release);
}

void Failpoints::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  armed_.store(sites_.size(), std::memory_order_release);
}

void Failpoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(0, std::memory_order_release);
}

Status Failpoints::Evaluate(std::string_view site) {
  if (armed_.load(std::memory_order_acquire) == 0) return Status::OK();
  double latency_ms = 0.0;
  Status injected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Transparent-comparator lookup would avoid this copy; Evaluate only
    // takes the slow path while a chaos schedule is armed, so keep it simple.
    auto it = sites_.find(std::string(site));
    if (it == sites_.end()) return Status::OK();
    Site& s = it->second;
    ++s.hits;
    const FailpointConfig& c = s.config;
    if (s.hits <= c.after_n) return Status::OK();
    if (c.max_trips > 0 && s.trips >= c.max_trips) return Status::OK();
    bool trip;
    if (c.probability > 0.0) {
      trip = s.rng.Bernoulli(c.probability);
    } else if (c.every_nth > 0) {
      trip = (s.hits - c.after_n) % c.every_nth == 0;
    } else {
      trip = true;
    }
    if (!trip) return Status::OK();
    ++s.trips;
    s.trip_metric->Increment();
    FlightRecord(FlightEvent::kFailpointTrip, s.trips, 0, site);
    latency_ms = c.latency_ms;
    if (c.code != StatusCode::kOk) {
      std::string msg = c.message.empty()
                            ? "injected fault at " + std::string(site)
                            : c.message;
      injected = Status(c.code, std::move(msg));
    }
  }
  // Sleep outside the lock so a slow failpoint stalls only its own call site.
  if (latency_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(latency_ms));
  }
  return injected;
}

uint64_t Failpoints::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t Failpoints::trips(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.trips;
}

std::vector<std::string> Failpoints::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

namespace {

/// "io_error" / "io-error" / "io error" all name kIOError.
Result<StatusCode> StatusCodeFromName(std::string name) {
  for (char& c : name) {
    if (c == '_' || c == '-') c = ' ';
  }
  for (int raw = 0; raw <= static_cast<int>(StatusCode::kUnknown); ++raw) {
    const StatusCode code = static_cast<StatusCode>(raw);
    if (name == StatusCodeToString(code)) return code;
  }
  return Status::InvalidArgument("unknown status code name '" + name + "'");
}

Result<double> ParseDoubleValue(const std::string& key,
                                const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("failpoint key '" + key +
                                   "': bad number '" + value + "'");
  }
  return parsed;
}

}  // namespace

Result<std::pair<std::string, FailpointConfig>> ParseFailpointSpec(
    std::string_view spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Status::InvalidArgument(
        "failpoint spec must be 'site:key=value,...', got '" +
        std::string(spec) + "'");
  }
  std::string site(spec.substr(0, colon));
  FailpointConfig config;
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec entry '" +
                                     std::string(pair) + "' has no '='");
    }
    const std::string key(pair.substr(0, eq));
    const std::string value(pair.substr(eq + 1));
    if (key == "message") {
      config.message = value;
      continue;
    }
    if (key == "code") {
      STORM_ASSIGN_OR_RETURN(config.code, StatusCodeFromName(value));
      continue;
    }
    STORM_ASSIGN_OR_RETURN(const double number,
                           ParseDoubleValue(key, value));
    if (key == "probability") {
      config.probability = number;
    } else if (key == "every_nth") {
      config.every_nth = static_cast<uint64_t>(number);
    } else if (key == "after_n") {
      config.after_n = static_cast<uint64_t>(number);
    } else if (key == "max_trips") {
      config.max_trips = static_cast<uint64_t>(number);
    } else if (key == "latency_ms") {
      config.latency_ms = number;
    } else if (key == "seed") {
      config.seed = static_cast<uint64_t>(number);
    } else {
      return Status::InvalidArgument("unknown failpoint key '" + key + "'");
    }
  }
  return std::make_pair(std::move(site), config);
}

}  // namespace storm
