#include "storm/util/failpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "storm/obs/flight_recorder.h"
#include "storm/obs/metrics.h"

namespace storm {

Failpoints& Failpoints::Default() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Configure(const std::string& site, FailpointConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[site];
  s.config = std::move(config);
  s.rng = Rng(s.config.seed);
  s.hits = 0;
  s.trips = 0;
  s.trip_metric = MetricsRegistry::Default().GetCounter(
      "storm_failpoint_trips_total", "Fault injections fired, by site",
      {{"site", site}});
  armed_.store(sites_.size(), std::memory_order_release);
}

void Failpoints::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  armed_.store(sites_.size(), std::memory_order_release);
}

void Failpoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(0, std::memory_order_release);
}

Status Failpoints::Evaluate(std::string_view site) {
  if (armed_.load(std::memory_order_acquire) == 0) return Status::OK();
  double latency_ms = 0.0;
  Status injected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Transparent-comparator lookup would avoid this copy; Evaluate only
    // takes the slow path while a chaos schedule is armed, so keep it simple.
    auto it = sites_.find(std::string(site));
    if (it == sites_.end()) return Status::OK();
    Site& s = it->second;
    ++s.hits;
    const FailpointConfig& c = s.config;
    if (s.hits <= c.after_n) return Status::OK();
    if (c.max_trips > 0 && s.trips >= c.max_trips) return Status::OK();
    bool trip;
    if (c.probability > 0.0) {
      trip = s.rng.Bernoulli(c.probability);
    } else if (c.every_nth > 0) {
      trip = (s.hits - c.after_n) % c.every_nth == 0;
    } else {
      trip = true;
    }
    if (!trip) return Status::OK();
    ++s.trips;
    s.trip_metric->Increment();
    FlightRecord(FlightEvent::kFailpointTrip, s.trips, 0, site);
    latency_ms = c.latency_ms;
    if (c.code != StatusCode::kOk) {
      std::string msg = c.message.empty()
                            ? "injected fault at " + std::string(site)
                            : c.message;
      injected = Status(c.code, std::move(msg));
    }
  }
  // Sleep outside the lock so a slow failpoint stalls only its own call site.
  if (latency_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(latency_ms));
  }
  return injected;
}

uint64_t Failpoints::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t Failpoints::trips(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.trips;
}

std::vector<std::string> Failpoints::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace storm
