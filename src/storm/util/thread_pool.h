// ThreadPool: a fixed set of worker threads executing submitted tasks.
//
// The parallel sampling engine (query/evaluator), and anything else in
// STORM that fans work out, shares one process-wide pool sized to the
// hardware (ThreadPool::Shared()) — queries submit their per-worker
// sampling loops as tasks, so concurrent queries get natural backpressure
// instead of oversubscribing the machine. Dedicated pools can still be
// constructed for tests.
//
// Tasks are plain std::function<void()>; Submit returns a future the
// caller waits on. Cancellation is cooperative: pass a CancelToken (or an
// atomic flag) into the task and have it poll. Tasks must not block on
// other tasks of the same pool (classic pool deadlock) — blocking fan-out
// from inside a task should spawn plain threads instead.

#ifndef STORM_UTIL_THREAD_POOL_H_
#define STORM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace storm {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains: waits for every submitted task to finish, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it has run. Exceptions
  /// escaping the task are captured into the future.
  std::future<void> Submit(std::function<void()> task);

  size_t num_threads() const { return threads_.size(); }

  /// Tasks submitted but not yet finished (diagnostics; racy by nature).
  size_t pending() const;

  /// The process-wide pool, sized to the hardware. Never destroyed before
  /// exit; safe for concurrent Submit from any thread.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;  // dequeued, still running
  bool shutdown_ = false;
};

}  // namespace storm

#endif  // STORM_UTIL_THREAD_POOL_H_
