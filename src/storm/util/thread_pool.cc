#include "storm/util/thread_pool.h"

#include <algorithm>

namespace storm {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue before honoring shutdown so ~ThreadPool never
      // abandons a task whose future someone is waiting on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw == 0 ? 4 : hw);
  }();
  return *pool;
}

}  // namespace storm
