// RetryPolicy: bounded retries with exponential backoff + jitter, and an
// optional per-operation deadline, for transient faults in the simulated
// distributed substrate (unreachable shards, injected IO errors).
//
// Only transient statuses are retried (kUnavailable, kIOError,
// kResourceExhausted, kAborted); everything else — corruption, invalid
// arguments — fails immediately. Jitter draws from a caller-provided Rng so
// fault schedules stay deterministic under a fixed seed.

#ifndef STORM_UTIL_RETRY_H_
#define STORM_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <thread>

#include "storm/util/rng.h"
#include "storm/util/status.h"
#include "storm/util/stopwatch.h"

namespace storm {

/// True for failures worth retrying: the operation might succeed on a later
/// attempt against the same replica (blip, slow disk, overload).
inline bool IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kAborted:
      return true;
    default:
      return false;
  }
}

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is base * multiplier^(k-1), capped at
  /// max_backoff_ms, then jittered.
  double base_backoff_ms = 0.5;
  double multiplier = 2.0;
  double max_backoff_ms = 50.0;
  /// Fraction of the backoff randomized: sleep in [b*(1-jitter), b].
  double jitter = 0.5;
  /// Wall-clock ceiling across all attempts (0 = none). When an attempt
  /// lands past it the operation fails with kDeadlineExceeded — even a
  /// *successful* attempt: like an RPC timeout, the caller has already
  /// stopped waiting, so a late answer is a failed call. Failed attempts
  /// carry the last underlying error in the message.
  double deadline_ms = 0.0;

  double BackoffMs(int retry_index, Rng* rng) const {
    double b = base_backoff_ms;
    for (int i = 1; i < retry_index; ++i) b *= multiplier;
    b = std::min(b, max_backoff_ms);
    if (jitter > 0.0 && rng != nullptr) {
      b *= 1.0 - jitter * rng->UniformDouble();
    }
    return b;
  }
};

/// Runs `op` (a callable returning Status) under the policy. Returns the
/// first OK, the first non-transient error, the last transient error once
/// attempts are exhausted, or kDeadlineExceeded when the deadline cuts the
/// attempt sequence short. `on_retry`, when non-null, is invoked once per
/// retry (a Counter*-compatible callable with Increment()).
template <typename Op, typename RetryCounter = class Counter>
Status RetryWithBackoff(const RetryPolicy& policy, Rng* rng, Op&& op,
                        RetryCounter* on_retry = nullptr) {
  Stopwatch watch;
  Status last;
  int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    bool late = policy.deadline_ms > 0.0 &&
                watch.ElapsedMillis() >= policy.deadline_ms;
    if (last.ok()) {
      if (!late) return last;
      // Timeout semantics: the answer arrived after the caller stopped
      // waiting, so the call failed even though the work succeeded. This is
      // how a straggler shard gets treated as dead by its deadline.
      return Status::DeadlineExceeded("answer past the " +
                                      std::to_string(policy.deadline_ms) +
                                      "ms deadline");
    }
    if (!IsTransient(last)) return last;
    if (late) {
      return Status::DeadlineExceeded("retry deadline after " +
                                      std::to_string(attempt) +
                                      " attempt(s); last: " + last.ToString());
    }
    if (attempt == attempts) break;
    if (on_retry != nullptr) on_retry->Increment();
    double backoff = policy.BackoffMs(attempt, rng);
    if (policy.deadline_ms > 0.0) {
      double remaining = policy.deadline_ms - watch.ElapsedMillis();
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded(
            "retry deadline before backoff; last: " + last.ToString());
      }
      backoff = std::min(backoff, remaining);
    }
    if (backoff > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
  }
  return last;
}

}  // namespace storm

#endif  // STORM_UTIL_RETRY_H_
