#include "storm/util/crc32.h"

#include <array>

namespace storm {

namespace {

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(const void* data, size_t n) {
  return Crc32Finish(Crc32Update(kCrc32Init, data, n));
}

}  // namespace storm
