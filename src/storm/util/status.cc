#include "storm/util/status.h"

namespace storm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace storm
