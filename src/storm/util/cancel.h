// CancelToken: cooperative cancellation for online queries.
//
// The evaluator's sampling loops poll the token between batches, so a
// cancelled query returns its best-so-far estimate (flagged cancelled)
// within one batch of the Cancel() call. Thread-safe: any thread may cancel
// while the query thread polls.

#ifndef STORM_UTIL_CANCEL_H_
#define STORM_UTIL_CANCEL_H_

#include <atomic>

namespace storm {

class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace storm

#endif  // STORM_UTIL_CANCEL_H_
