// SampleReservoirCache: process-wide cross-query sample sharing for
// interactive map exploration (docs/CACHING.md).
//
// STORM's motivating workload is panning/zooming viewports: thousands of
// concurrent queries with heavily overlapping spatial ranges, each drawing
// uniform samples from scratch. Following STULL's observation that online
// samples can be shared across overlapping viewport queries without losing
// uniformity, every with-replacement query publishes (a bounded prefix of)
// its drawn samples into a reservoir tagged with the query's region and the
// table's mutation epoch. A later query whose range is *covered* by a
// cached reservoir drains the qualifying entries first — rejecting points
// outside its own box restores uniformity over the smaller range — and only
// tops up live through the regular sampler path.
//
// Statistical contract (why cache-served streams stay iid uniform):
//  - A reservoir holds K iid Uniform(P ∩ region) draws. The subset inside a
//    covered range Q is, conditionally on its size, iid Uniform(P ∩ Q) —
//    spatial rejection is exactly the Bernoulli subsampling that restores
//    uniformity.
//  - A query drains each reservoir entry at most once (a without-replacement
//    pass over the qualifying subset of an iid sequence is itself iid);
//    re-serving entries within one query would be bootstrap resampling and
//    is never done.
//  - A probe uses exactly ONE covering reservoir. Reservoirs republish each
//    other's samples, so combining two could serve the same physical draw
//    twice within a query through different keys.
//  - Publishing to an (table, epoch, region) key replaces the existing
//    reservoir only when the new sample set is larger — merging would have
//    the same cascade-duplication problem.
//
// Invalidation is epoch-based and lazy: Table::epoch() values are unique
// across every table instance in the process, and every insert/delete moves
// the table to a fresh epoch, so stale reservoirs can never match a probe
// (correctness over reuse). Probes and publishes purge older-epoch
// reservoirs of the same table as they scan.

#ifndef STORM_CACHE_SAMPLE_CACHE_H_
#define STORM_CACHE_SAMPLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <vector>

#include "storm/geo/rect.h"
#include "storm/rtree/rtree.h"
#include "storm/util/rng.h"

namespace storm {

class Gauge;

/// Knobs for one SampleReservoirCache instance. Configure() on the
/// process-wide Default() instance applies server-level settings.
struct SampleCacheOptions {
  /// Total bound on cached sample bytes; least-recently-used reservoirs are
  /// evicted when a publish would exceed it.
  size_t max_bytes = 64ull << 20;
  /// Per-reservoir cap on published samples (a query that drew more
  /// publishes only its first max_reservoir_samples draws — a prefix of an
  /// iid stream is iid).
  uint64_t max_reservoir_samples = 65536;
  /// Queries that served fewer samples than this do not publish: tiny
  /// reservoirs evict useful ones without ever satisfying a probe.
  uint64_t min_publish_samples = 512;
  /// Extra Bernoulli thinning applied to qualifying entries on probe
  /// (1.0 = keep every qualifying entry). Lower values trade hit depth for
  /// serving the same reservoir to more concurrent queries with less
  /// cross-query correlation.
  double keep_probability = 1.0;
};

/// Thread-safe bounded cache of sample reservoirs, keyed by
/// (table, epoch, region). See file comment for the statistical contract.
class SampleReservoirCache {
 public:
  using Entry = RTree<3>::Entry;

  explicit SampleReservoirCache(SampleCacheOptions options = {});

  /// The process-wide instance every evaluator uses unless a test injects
  /// its own through SamplingOptions::cache.
  static SampleReservoirCache& Default();

  /// Replaces the option set (server startup). Evicts down to the new byte
  /// bound immediately.
  void Configure(const SampleCacheOptions& options);
  SampleCacheOptions options() const;

  /// What ProbeCovering hands back: the qualifying entries of the chosen
  /// reservoir, spatially rejected to `range`, Bernoulli-thinned, and
  /// shuffled with the caller's RNG.
  struct ProbeResult {
    bool hit = false;
    std::vector<Entry> samples;
    Rect3 reservoir_region;
    uint64_t reservoir_samples = 0;
  };

  /// Finds the fresh reservoir covering `range` with the most qualifying
  /// entries and drains a thinned copy. Also purges reservoirs of `table`
  /// older than `epoch` while scanning (lazy invalidation).
  ProbeResult ProbeCovering(const std::string& table, uint64_t epoch,
                            const Rect3& range, Rng& rng);

  /// True when a fresh covering reservoir exists (EXPLAIN's cache
  /// eligibility report). Does not count as a hit or miss.
  bool HasCovering(const std::string& table, uint64_t epoch,
                   const Rect3& range) const;

  /// Publishes a query's served samples under (table, epoch, region).
  /// Truncates to max_reservoir_samples; drops publishes smaller than
  /// min_publish_samples; replaces an existing same-key reservoir only when
  /// the new one is larger.
  void Publish(const std::string& table, uint64_t epoch, const Rect3& region,
               std::vector<Entry> samples);

  /// Drops every reservoir (tests; table drop paths).
  void Clear();

  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t reservoirs() const;

  // Instance-local stat counters (the storm_sample_cache_* registry metrics
  // aggregate across instances; tests read these).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  struct Reservoir {
    std::string table;
    uint64_t epoch = 0;
    Rect3 region;
    std::vector<Entry> samples;
    size_t bytes = 0;
  };

  static size_t ReservoirBytes(const Reservoir& r);

  // All three require mu_ held.
  void EvictToBoundLocked();
  void PurgeStaleLocked(const std::string& table, uint64_t epoch);
  void UpdateBytesGaugeLocked();

  mutable std::mutex mu_;
  SampleCacheOptions options_;
  /// LRU order: front = most recently used. Reservoir counts are small
  /// (bounded by max_bytes / min_publish_samples), so probes scan linearly.
  std::list<Reservoir> lru_;
  std::atomic<size_t> bytes_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> published_{0};
  Gauge* bytes_gauge_ = nullptr;
};

}  // namespace storm

#endif  // STORM_CACHE_SAMPLE_CACHE_H_
