// CachedSampler: the cache-drain stage of the evaluator's hot loop.
//
// Wraps any with-replacement SpatialSampler<3>: the first batch probes the
// SampleReservoirCache for a reservoir covering the query box and serves the
// drained entries before delegating to the wrapped sampler for live top-up
// draws. Every sample it hands out — cached or live — is recorded (up to the
// cache's per-reservoir cap) and published back under the query's own region
// when the sampler is destroyed or re-Begun, so even deadline-cut and
// cancelled queries seed the cache ("sufficiently progressed" publication).
//
// Without-replacement queries never SERVE from the cache — cached entries
// are prior draws and cannot join a distinct-records stream whose
// exhaustion must mean "every covered record reported". They still RECORD
// and publish: a without-replacement prefix is a uniform distinct sample,
// each entry marginally Uniform(P ∩ region), so a later with-replacement
// consumer that drains it serve-once gets unbiased estimates (its iid CI is
// merely conservative — distinct draws have less variance than iid ones).
// Begin's status (including kNotSupported, which estimators use to fall
// back from WOR to WR) passes through unchanged.
//
// Steering: almost every strategy supports without-replacement, and every
// estimator tries it first — so by itself the bypass rule would leave the
// cache cold. When the evaluator marks the query *bounded* (an explicit
// SAMPLES / ERROR / WITHIN / DEADLINE stopping rule, i.e. the caller asked
// for an estimate, not an exact scan), Begin(kWithoutReplacement) answers
// kNotSupported exactly when a covering reservoir is cached, steering the
// estimator into its with-replacement fallback where the reservoir can
// serve. Unbounded queries — whose without-replacement exhaustion IS the
// exact answer — are never steered.

#ifndef STORM_CACHE_CACHED_SAMPLER_H_
#define STORM_CACHE_CACHED_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "storm/cache/sample_cache.h"
#include "storm/sampling/sampler.h"

namespace storm {

class CachedSampler : public SpatialSampler<3> {
 public:
  using Entry = RTree<3>::Entry;

  /// `cache` must outlive the sampler; `epoch` is the owning table's epoch
  /// at query start (queries hold the table read latch, so it cannot move
  /// mid-query). `rng` drives probe thinning and shuffle only — the wrapped
  /// sampler keeps its own stream. `steer_bounded` marks the query as
  /// bounded (explicit stopping rule): Begin(kWithoutReplacement) then
  /// answers kNotSupported when a covering reservoir is cached, so the
  /// estimator falls back to the with-replacement mode the cache can serve.
  CachedSampler(std::unique_ptr<SpatialSampler<3>> inner,
                SampleReservoirCache* cache, std::string table, uint64_t epoch,
                Rng rng, bool steer_bounded = false);
  ~CachedSampler() override;

  Status Begin(const Rect3& query,
               SamplingMode mode = SamplingMode::kWithReplacement) override;
  std::optional<Entry> Next() override;
  uint64_t NextBatch(std::span<Entry> out) override;

  CardinalityEstimate Cardinality() const override {
    return inner_->Cardinality();
  }
  size_t Strata() const override { return inner_->Strata(); }
  CardinalityEstimate Cardinality(size_t stratum) const override {
    return inner_->Cardinality(stratum);
  }
  bool IsExhausted() const override;
  std::string_view name() const override { return inner_->name(); }

  /// True once the first batch found a covering reservoir.
  bool cache_hit() const { return hit_; }
  /// Samples served from the cache this query (EXPLAIN hit fraction).
  uint64_t cached_served() const { return cached_served_; }
  /// All samples served this query (cached + live).
  uint64_t total_served() const { return total_served_; }

 private:
  /// The probe is lazy — run on the first NextBatch, not Begin — so a
  /// wrapper that is constructed but never pumped (the parallel engine's
  /// sequential-fallback sampler) neither drains reservoirs nor skews the
  /// hit/miss metrics.
  void ProbeIfPending();
  /// Appends served samples to the publish buffer up to the cache's
  /// per-reservoir cap.
  void Record(std::span<const Entry> served);
  /// Publishes the buffered stream under (table, epoch, query box), unless
  /// the query bypassed the cache, served a degraded/partial-coverage
  /// population, or served too few samples to be worth caching.
  void PublishBack();

  std::unique_ptr<SpatialSampler<3>> inner_;
  SampleReservoirCache* cache_;
  std::string table_;
  uint64_t epoch_;
  Rng rng_;

  Rect3 query_;
  bool steer_bounded_ = false;
  bool began_ = false;
  bool bypass_ = true;  ///< no cache at all: pure delegation
  bool serve_ = false;  ///< with-replacement mode: cached entries may serve
  bool pending_probe_ = false;
  bool hit_ = false;
  std::vector<Entry> cached_;
  size_t cursor_ = 0;
  uint64_t cached_served_ = 0;
  uint64_t total_served_ = 0;
  std::vector<Entry> publish_;
  uint64_t publish_cap_ = 0;
};

}  // namespace storm

#endif  // STORM_CACHE_CACHED_SAMPLER_H_
