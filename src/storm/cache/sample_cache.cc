#include "storm/cache/sample_cache.h"

#include <algorithm>
#include <utility>

#include "storm/obs/metrics.h"

namespace storm {

namespace {

Counter* HitsCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_sample_cache_hits_total",
      "Queries served (partially) from a cached sample reservoir");
  return c;
}

Counter* MissesCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_sample_cache_misses_total",
      "Cache probes that found no fresh covering reservoir");
  return c;
}

Counter* EvictionsCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_sample_cache_evictions_total",
      "Reservoirs evicted (LRU pressure, staleness, or replacement)");
  return c;
}

Counter* PublishedCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_sample_cache_published_total",
      "Reservoirs published by completed or progressed queries");
  return c;
}

Counter* ServedSamplesCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_sample_cache_served_samples_total",
      "Individual samples handed to queries from cached reservoirs");
  return c;
}

}  // namespace

SampleReservoirCache::SampleReservoirCache(SampleCacheOptions options)
    : options_(options),
      bytes_gauge_(MetricsRegistry::Default().GetGauge(
          "storm_sample_cache_bytes",
          "Bytes of cached samples held by the default reservoir cache")) {}

SampleReservoirCache& SampleReservoirCache::Default() {
  static SampleReservoirCache* cache = new SampleReservoirCache();
  return *cache;
}

void SampleReservoirCache::Configure(const SampleCacheOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  EvictToBoundLocked();
  UpdateBytesGaugeLocked();
}

SampleCacheOptions SampleReservoirCache::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

size_t SampleReservoirCache::ReservoirBytes(const Reservoir& r) {
  // Entries dominate; the fixed overhead keeps empty-ish reservoirs from
  // looking free to the byte accountant.
  return r.samples.size() * sizeof(Entry) + r.table.size() + 128;
}

SampleReservoirCache::ProbeResult SampleReservoirCache::ProbeCovering(
    const std::string& table, uint64_t epoch, const Rect3& range, Rng& rng) {
  ProbeResult out;
  std::lock_guard<std::mutex> lock(mu_);
  PurgeStaleLocked(table, epoch);
  // One covering reservoir only (see header): pick the candidate with the
  // most entries inside `range` — candidates are few and bounded by
  // max_reservoir_samples, so the exact count is affordable.
  auto best = lru_.end();
  size_t best_qualifying = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->table != table || it->epoch != epoch) continue;
    if (!it->region.Contains(range)) continue;
    size_t qualifying = 0;
    for (const Entry& e : it->samples) {
      if (range.Contains(e.point)) ++qualifying;
    }
    if (qualifying > best_qualifying) {
      best_qualifying = qualifying;
      best = it;
    }
  }
  if (best == lru_.end() || best_qualifying == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissesCounter()->Increment();
    return out;
  }
  out.hit = true;
  out.reservoir_region = best->region;
  out.reservoir_samples = best->samples.size();
  out.samples.reserve(best_qualifying);
  const double keep = options_.keep_probability;
  for (const Entry& e : best->samples) {
    if (!range.Contains(e.point)) continue;
    if (keep < 1.0 && !rng.Bernoulli(keep)) continue;
    out.samples.push_back(e);
  }
  rng.Shuffle(out.samples);
  // LRU touch.
  lru_.splice(lru_.begin(), lru_, best);
  hits_.fetch_add(1, std::memory_order_relaxed);
  HitsCounter()->Increment();
  ServedSamplesCounter()->Increment(out.samples.size());
  return out;
}

bool SampleReservoirCache::HasCovering(const std::string& table,
                                       uint64_t epoch,
                                       const Rect3& range) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Reservoir& r : lru_) {
    if (r.table == table && r.epoch == epoch && !r.samples.empty() &&
        r.region.Contains(range)) {
      return true;
    }
  }
  return false;
}

void SampleReservoirCache::Publish(const std::string& table, uint64_t epoch,
                                   const Rect3& region,
                                   std::vector<Entry> samples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples.size() < options_.min_publish_samples) return;
  if (samples.size() > options_.max_reservoir_samples) {
    samples.resize(options_.max_reservoir_samples);
  }
  PurgeStaleLocked(table, epoch);
  // Same-key reservoir: replace only when the new sample set is larger.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->table != table || it->epoch != epoch || !(it->region == region)) {
      continue;
    }
    if (it->samples.size() >= samples.size()) {
      lru_.splice(lru_.begin(), lru_, it);
      return;
    }
    bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
    lru_.erase(it);
    break;
  }
  Reservoir r;
  r.table = table;
  r.epoch = epoch;
  r.region = region;
  r.samples = std::move(samples);
  r.bytes = ReservoirBytes(r);
  if (r.bytes > options_.max_bytes) return;  // would evict the whole cache
  bytes_.fetch_add(r.bytes, std::memory_order_relaxed);
  lru_.push_front(std::move(r));
  published_.fetch_add(1, std::memory_order_relaxed);
  PublishedCounter()->Increment();
  EvictToBoundLocked();
  UpdateBytesGaugeLocked();
}

void SampleReservoirCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  bytes_.store(0, std::memory_order_relaxed);
  UpdateBytesGaugeLocked();
}

size_t SampleReservoirCache::reservoirs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void SampleReservoirCache::EvictToBoundLocked() {
  while (bytes_.load(std::memory_order_relaxed) > options_.max_bytes &&
         !lru_.empty()) {
    bytes_.fetch_sub(lru_.back().bytes, std::memory_order_relaxed);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    EvictionsCounter()->Increment();
  }
}

void SampleReservoirCache::PurgeStaleLocked(const std::string& table,
                                            uint64_t epoch) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->table == table && it->epoch != epoch) {
      bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
      it = lru_.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      EvictionsCounter()->Increment();
    } else {
      ++it;
    }
  }
}

void SampleReservoirCache::UpdateBytesGaugeLocked() {
  // Only the process-wide instance owns the gauge semantics; per-test
  // instances still update it, which is harmless (last writer wins and
  // tests do not read the registry gauge).
  bytes_gauge_->Set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
}

}  // namespace storm
