#include "storm/cache/cached_sampler.h"

#include <algorithm>
#include <utility>

namespace storm {

CachedSampler::CachedSampler(std::unique_ptr<SpatialSampler<3>> inner,
                             SampleReservoirCache* cache, std::string table,
                             uint64_t epoch, Rng rng, bool steer_bounded)
    : inner_(std::move(inner)),
      cache_(cache),
      table_(std::move(table)),
      epoch_(epoch),
      rng_(rng),
      steer_bounded_(steer_bounded) {}

CachedSampler::~CachedSampler() { PublishBack(); }

Status CachedSampler::Begin(const Rect3& query, SamplingMode mode) {
  PublishBack();  // a reused sampler publishes the previous query first
  began_ = false;
  hit_ = false;
  pending_probe_ = false;
  cached_.clear();
  cursor_ = 0;
  cached_served_ = 0;
  total_served_ = 0;
  publish_.clear();
  if (mode == SamplingMode::kWithoutReplacement && steer_bounded_ &&
      cache_ != nullptr && cache_->HasCovering(table_, epoch_, query) &&
      inner_->Begin(query, SamplingMode::kWithReplacement).ok()) {
    // Bounded query, covering reservoir cached, and the wrapped sampler
    // accepts with-replacement (LS-tree, for one, does not): steer the
    // estimator into its with-replacement fallback, the mode the reservoir
    // can serve. The trial Begin above is discarded — the estimator
    // re-Begins on fallback. The probe itself stays lazy — eviction between
    // here and the first batch just means an ordinary live run.
    return Status::NotSupported(
        "covering sample reservoir cached; re-Begin with replacement");
  }
  STORM_RETURN_NOT_OK(inner_->Begin(query, mode));
  query_ = query;
  began_ = true;
  bypass_ = cache_ == nullptr;
  serve_ = !bypass_ && mode == SamplingMode::kWithReplacement;
  if (!bypass_) {
    pending_probe_ = serve_;
    publish_cap_ = cache_->options().max_reservoir_samples;
    publish_.reserve(
        static_cast<size_t>(std::min<uint64_t>(publish_cap_, 4096)));
  }
  return Status::OK();
}

void CachedSampler::ProbeIfPending() {
  if (!pending_probe_) return;
  pending_probe_ = false;
  SampleReservoirCache::ProbeResult probe =
      cache_->ProbeCovering(table_, epoch_, query_, rng_);
  hit_ = probe.hit;
  cached_ = std::move(probe.samples);
  cursor_ = 0;
}

void CachedSampler::Record(std::span<const Entry> served) {
  if (bypass_) return;
  uint64_t room = publish_cap_ > publish_.size()
                      ? publish_cap_ - publish_.size()
                      : 0;
  uint64_t take = std::min<uint64_t>(room, served.size());
  publish_.insert(publish_.end(), served.begin(),
                  served.begin() + static_cast<ptrdiff_t>(take));
}

uint64_t CachedSampler::NextBatch(std::span<Entry> out) {
  if (bypass_) return inner_->NextBatch(out);
  uint64_t n = 0;
  if (serve_) {
    ProbeIfPending();
    while (cursor_ < cached_.size() && n < out.size()) {
      out[n++] = cached_[cursor_++];
    }
    cached_served_ += n;
  }
  if (n < out.size()) {
    n += inner_->NextBatch(out.subspan(n));
  }
  total_served_ += n;
  Record(out.first(n));
  return n;
}

std::optional<CachedSampler::Entry> CachedSampler::Next() {
  Entry e;
  return NextBatch(std::span<Entry>(&e, 1)) == 1 ? std::optional<Entry>(e)
                                                 : std::nullopt;
}

bool CachedSampler::IsExhausted() const {
  if (!serve_) return inner_->IsExhausted();
  return cursor_ >= cached_.size() && inner_->IsExhausted();
}

void CachedSampler::PublishBack() {
  if (bypass_ || !began_ || publish_.empty()) return;
  began_ = false;
  // A degraded stream is uniform only over the live partition; caching it
  // would quietly serve a partial population to healthy queries.
  CardinalityEstimate card = inner_->Cardinality();
  if (card.degraded || card.coverage < 1.0) {
    publish_.clear();
    return;
  }
  cache_->Publish(table_, epoch_, query_, std::move(publish_));
  publish_.clear();
}

}  // namespace storm
