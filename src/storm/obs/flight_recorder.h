// FlightRecorder: a lock-free, always-on ring of recent structured events —
// the "what was this server doing right before it went sideways" record.
//
// Each thread that records owns a private fixed-size ring; recording is a
// handful of relaxed atomic stores plus one global sequence fetch_add (the
// global order), so the hot paths (frame rx/tx, query admit/finish, WAL
// syncs, failpoint trips, backpressure transitions) pay nanoseconds and
// never contend. Dump() snapshots every ring — including rings of threads
// that have since exited — and merges the surviving events in global
// sequence order. Slots being overwritten mid-snapshot are detected by a
// seqlock-style recheck and skipped, so dumps are consistent without ever
// stalling a writer.
//
// storm_server dumps the recorder on SIGTERM and on std::terminate, and
// serves it live at GET /flightz; tests call DumpText() directly.

#ifndef STORM_OBS_FLIGHT_RECORDER_H_
#define STORM_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace storm {

/// Event vocabulary. Keep values stable: dumps print the numeric type when
/// a name is missing.
enum class FlightEvent : uint16_t {
  kMark = 0,              ///< free-form marker (label carries the text)
  kQueryAdmit = 1,        ///< a=request id; label=table/query prefix
  kQueryFinish = 2,       ///< a=request id, b=elapsed us
  kQueryShed = 3,         ///< a=request id (admission control rejection)
  kFrameRx = 4,           ///< a=frame type, b=request id
  kFrameTx = 5,           ///< a=frame type, b=payload bytes
  kBackpressureDrop = 6,  ///< a=queued bytes (PROGRESS dropped, soft limit)
  kBackpressureStall = 7, ///< a=queued bytes (sender stalled, hard limit)
  kConnOpen = 8,
  kConnClose = 9,
  kWalSync = 10,          ///< a=records synced
  kFailpointTrip = 11,    ///< label=site
  kCancel = 12,           ///< a=request id
  kCheckpoint = 13,       ///< label=table
};

std::string_view FlightEventName(FlightEvent e);

class FlightRecorder {
 public:
  static constexpr size_t kRingEvents = 1024;  ///< per recording thread
  static constexpr size_t kLabelBytes = 24;    ///< truncated, NUL-padded

  /// One decoded event, as Dump() hands it out.
  struct Snapshot {
    uint64_t seq = 0;       ///< global order (1-based, monotonic)
    uint64_t ts_us = 0;     ///< microseconds since recorder creation
    uint32_t thread = 0;    ///< small per-ring id, stable for a thread's life
    FlightEvent type = FlightEvent::kMark;
    uint64_t trace_lo = 0;  ///< low half of the ambient trace id (0 = none)
    uint64_t a = 0;
    uint64_t b = 0;
    std::string label;
  };

  /// The process-wide recorder every STORM component records into.
  static FlightRecorder& Default();

  FlightRecorder();

  /// Records one event on the calling thread's ring. Tags it with the
  /// ambient TraceContext automatically. `label` is truncated to
  /// kLabelBytes-1; pass {} for none. Lock-free after the thread's first
  /// call (which registers its ring under a mutex).
  void Record(FlightEvent type, uint64_t a = 0, uint64_t b = 0,
              std::string_view label = {});

  /// All surviving events across every ring, ascending global seq. With
  /// `max_events` > 0 only the most recent that many are returned.
  std::vector<Snapshot> Dump(size_t max_events = 0) const;

  /// Human-readable dump ("flight recorder dump (N events)" header + one
  /// line per event, oldest first).
  std::string DumpText(size_t max_events = 256) const;

  /// JSON array-of-objects dump (the /flightz body).
  std::string DumpJson(size_t max_events = 256) const;

  /// Events recorded since construction (cheap; for tests and /statusz).
  uint64_t recorded_total() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }

 private:
  /// A slot is written by exactly one thread and read by dumpers. The
  /// writer invalidates (seq=0), writes the fields, then publishes seq with
  /// release; a dumper reads seq (acquire), copies, and rereads seq to
  /// discard torn copies. Every field is atomic so racing accesses are
  /// well-defined under TSan.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint16_t> type{0};
    std::atomic<uint64_t> trace_lo{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::array<std::atomic<char>, kLabelBytes> label{};
  };

  struct Ring {
    uint32_t thread_id = 0;
    size_t head = 0;  ///< next slot to write; touched only by the owner
    std::array<Slot, kRingEvents> slots;
  };

  Ring* RingForThisThread();

  std::atomic<uint64_t> next_seq_{1};
  mutable std::mutex rings_mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;  ///< outlive their threads
  uint64_t epoch_ns_ = 0;                     ///< steady-clock origin
};

/// Convenience: record on the default recorder.
inline void FlightRecord(FlightEvent type, uint64_t a = 0, uint64_t b = 0,
                         std::string_view label = {}) {
  FlightRecorder::Default().Record(type, a, b, label);
}

}  // namespace storm

#endif  // STORM_OBS_FLIGHT_RECORDER_H_
