#include "storm/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace storm {

namespace {

void EscapeJsonTo(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

void QueryProfile::ScopedSpan::End() {
  if (profile_ != nullptr) {
    profile_->EndSpan(index_);
    profile_ = nullptr;
  }
}

void QueryProfile::ScopedSpan::SetSamples(uint64_t samples) {
  if (profile_ != nullptr) profile_->spans_[index_].samples = samples;
}

void QueryProfile::ScopedSpan::SetNote(std::string note) {
  if (profile_ != nullptr) profile_->spans_[index_].note = std::move(note);
}

QueryProfile::QueryProfile() {
  TraceSpan root;
  root.name = "query";
  spans_.push_back(std::move(root));
  start_io_.push_back(IoStats());
  span_open_.push_back(true);
  open_stack_.push_back(0);
}

QueryProfile::ScopedSpan QueryProfile::Span(std::string name) {
  TraceSpan span;
  span.name = std::move(name);
  span.depth = static_cast<int>(open_stack_.size());
  span.start_ms = watch_.ElapsedMillis();
  size_t index = spans_.size();
  spans_.push_back(std::move(span));
  start_io_.push_back(CurrentIo());
  span_open_.push_back(true);
  open_stack_.push_back(index);
  return ScopedSpan(this, index);
}

void QueryProfile::EndSpan(size_t index) {
  if (index >= spans_.size() || !span_open_[index]) return;
  TraceSpan& span = spans_[index];
  span.wall_ms = watch_.ElapsedMillis() - span.start_ms;
  span.io = CurrentIo() - start_io_[index];
  span_open_[index] = false;
  open_stack_.erase(std::remove(open_stack_.begin(), open_stack_.end(), index),
                    open_stack_.end());
}

void QueryProfile::Finish() {
  // Root's sample count defaults to the deepest loop's count.
  if (spans_[0].samples == 0) {
    for (const TraceSpan& s : spans_) {
      spans_[0].samples = std::max(spans_[0].samples, s.samples);
    }
  }
  while (!open_stack_.empty()) EndSpan(open_stack_.back());
}

void QueryProfile::AddConvergencePoint(double elapsed_ms, uint64_t samples,
                                       double estimate, double half_width,
                                       double cardinality_estimate) {
  if (points_seen_++ % point_stride_ != 0) return;
  points_.push_back(ConvergencePoint{elapsed_ms, samples, estimate, half_width,
                                     cardinality_estimate});
  if (points_.size() >= kMaxConvergencePoints) {
    // Keep every other point; future points arrive at double the stride.
    size_t w = 0;
    for (size_t r = 0; r < points_.size(); r += 2) points_[w++] = points_[r];
    points_.resize(w);
    point_stride_ *= 2;
  }
}

void QueryProfile::AppendFinishedSpan(TraceSpan span) {
  spans_.push_back(std::move(span));
  start_io_.push_back(IoStats());
  span_open_.push_back(false);
}

void QueryProfile::ReplaceSpans(std::vector<TraceSpan> spans) {
  spans_ = std::move(spans);
  start_io_.assign(spans_.size(), IoStats());
  span_open_.assign(spans_.size(), false);
  open_stack_.clear();
}

void QueryProfile::ReplaceConvergence(std::vector<ConvergencePoint> points) {
  points_ = std::move(points);
}

void QueryProfile::MergeServerProfile(const QueryProfile& server) {
  for (TraceSpan span : server.spans_) {
    span.depth += 1;
    if (span.site.empty()) span.site = "server";
    AppendFinishedSpan(std::move(span));
  }
  if (!spans_.empty()) {
    spans_[0].samples = std::max(spans_[0].samples, server.total_samples());
  }
  if (points_.empty()) points_ = server.points_;
  if (sampler.empty()) sampler = server.sampler;
  if (task.empty()) task = server.task;
  if (table.empty()) table = server.table;
}

const TraceSpan* QueryProfile::Find(std::string_view name) const {
  for (const TraceSpan& s : spans_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"query\":\"";
  EscapeJsonTo(query, &out);
  out += "\",\"table\":\"";
  EscapeJsonTo(table, &out);
  out += "\",\"task\":\"";
  EscapeJsonTo(task, &out);
  out += "\",\"sampler\":\"";
  EscapeJsonTo(sampler, &out);
  out += "\"";
  if (trace.valid()) {
    out += ",\"trace_id\":\"" + trace.trace_id_hex() + "\"";
    out += ",\"span_id\":\"" + trace.span_id_hex() + "\"";
  }
  out += ",\"total_ms\":" + Num(total_ms());
  out += ",\"total_samples\":" + std::to_string(total_samples());
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    EscapeJsonTo(s.name, &out);
    out += "\",\"depth\":" + std::to_string(s.depth);
    out += ",\"start_ms\":" + Num(s.start_ms);
    out += ",\"wall_ms\":" + Num(s.wall_ms);
    out += ",\"samples\":" + std::to_string(s.samples);
    out += ",\"io\":{";
    out += "\"logical_reads\":" + std::to_string(s.io.logical_reads);
    out += ",\"physical_reads\":" + std::to_string(s.io.physical_reads);
    out += ",\"physical_writes\":" + std::to_string(s.io.physical_writes);
    out += ",\"pool_hits\":" + std::to_string(s.io.pool_hits);
    out += ",\"pool_misses\":" + std::to_string(s.io.pool_misses);
    out += ",\"evictions\":" + std::to_string(s.io.evictions);
    out += "}";
    if (!s.note.empty()) {
      out += ",\"note\":\"";
      EscapeJsonTo(s.note, &out);
      out += "\"";
    }
    if (!s.site.empty()) {
      out += ",\"site\":\"";
      EscapeJsonTo(s.site, &out);
      out += "\"";
    }
    out += "}";
  }
  out += "],\"convergence\":[";
  for (size_t i = 0; i < points_.size(); ++i) {
    const ConvergencePoint& p = points_[i];
    if (i > 0) out += ",";
    out += "[" + Num(p.ms) + "," + std::to_string(p.samples) + "," +
           Num(p.estimate) + "," + Num(p.half_width) + "," +
           Num(p.cardinality_estimate) + "]";
  }
  out += "]}";
  return out;
}

std::string QueryProfile::ToString() const {
  std::string out;
  char line[256];
  out += "query profile";
  if (!query.empty()) out += ": " + query;
  out += "\n";
  if (trace.valid()) {
    out += "  trace=" + trace.trace_id_hex() +
           (trace.sampled ? " (sampled)\n" : "\n");
  }
  std::snprintf(line, sizeof(line), "  table=%s task=%s sampler=%s\n",
                table.empty() ? "?" : table.c_str(),
                task.empty() ? "?" : task.c_str(),
                sampler.empty() ? "?" : sampler.c_str());
  out += line;
  std::snprintf(line, sizeof(line), "  %-28s %10s %10s %9s %9s %9s\n", "span",
                "wall ms", "samples", "log_rd", "hits", "misses");
  out += line;
  for (const TraceSpan& s : spans_) {
    std::string name(static_cast<size_t>(s.depth) * 2, ' ');
    name += s.name;
    if (!s.site.empty()) name += " @" + s.site;
    std::snprintf(line, sizeof(line),
                  "  %-28s %10.2f %10llu %9llu %9llu %9llu", name.c_str(),
                  s.wall_ms, static_cast<unsigned long long>(s.samples),
                  static_cast<unsigned long long>(s.io.logical_reads),
                  static_cast<unsigned long long>(s.io.pool_hits),
                  static_cast<unsigned long long>(s.io.pool_misses));
    out += line;
    if (!s.note.empty()) out += "  [" + s.note + "]";
    out += "\n";
  }
  if (!points_.empty()) {
    const ConvergencePoint& first = points_.front();
    const ConvergencePoint& last = points_.back();
    std::snprintf(line, sizeof(line),
                  "  convergence: %zu points, CI half-width %.4g -> %.4g over "
                  "%.1f ms (q-estimate %.0f)\n",
                  points_.size(), first.half_width, last.half_width, last.ms,
                  last.cardinality_estimate);
    out += line;
  }
  return out;
}

}  // namespace storm
