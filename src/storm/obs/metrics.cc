#include "storm/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "storm/util/logging.h"

namespace storm {

namespace {

// Formats a double the way Prometheus clients expect: integral values
// without a trailing ".000000", non-integral values with full precision.
std::string FormatNumber(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(v);
    return out.str();
  }
  std::ostringstream out;
  out << v;
  return out.str();
}

void EscapeJsonTo(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Label *values* need escaping per the Prometheus exposition format:
// backslash, double-quote, and line-feed. Label names are identifiers and
// pass through unchanged.
void EscapeLabelValueTo(std::string_view v, std::string* out) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// HELP text escaping: backslash and line-feed only (quotes are legal there).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  for (char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SerializeLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    EscapeLabelValueTo(v, &out);
    out += "\"";
  }
  out += "}";
  return out;
}

// Label block for one histogram bucket: existing labels plus le="...".
std::string BucketLabels(const MetricLabels& labels, const std::string& le) {
  MetricLabels with_le = labels;
  with_le["le"] = le;
  return SerializeLabels(with_le);
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    case 2:
      return "histogram";
  }
  return "?";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> buckets = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(buckets[i]);
    if (cumulative < rank) continue;
    if (i >= bounds_.size()) {
      // +Inf bucket: the best claim we can make is "at least the largest
      // finite bound" — clamp, like histogram_quantile() does.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket <= 0.0) return upper;
    return lower + (upper - lower) * ((rank - prev) / in_bucket);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(const std::string& name,
                                                    Kind kind,
                                                    const std::string& help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = help;
    it = families_.emplace(name, std::move(family)).first;
  } else if (it->second.kind != kind) {
    STORM_LOG(Error) << "metric '" << name << "' already registered as "
                     << KindName(static_cast<int>(it->second.kind))
                     << ", requested as " << KindName(static_cast<int>(kind));
    return nullptr;
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = FamilyFor(name, Kind::kCounter, help);
  if (family == nullptr) {
    orphan_counters_.push_back(std::make_unique<Counter>());
    return orphan_counters_.back().get();
  }
  Instrument& inst = family->instruments[SerializeLabels(labels)];
  if (inst.counter == nullptr) {
    inst.labels = labels;
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = FamilyFor(name, Kind::kGauge, help);
  if (family == nullptr) {
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return orphan_gauges_.back().get();
  }
  Instrument& inst = family->instruments[SerializeLabels(labels)];
  if (inst.gauge == nullptr) {
    inst.labels = labels;
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = FamilyFor(name, Kind::kHistogram, help);
  if (family == nullptr) {
    orphan_histograms_.push_back(std::make_unique<Histogram>(std::move(bounds)));
    return orphan_histograms_.back().get();
  }
  Instrument& inst = family->instruments[SerializeLabels(labels)];
  if (inst.histogram == nullptr) {
    inst.labels = labels;
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return inst.histogram.get();
}

std::string MetricsRegistry::ExposePrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    // Scrapers expect every family to carry HELP and TYPE; fall back to the
    // metric name when no help string was registered.
    out += "# HELP " + name + " " +
           (family.help.empty() ? name : EscapeHelp(family.help)) + "\n";
    out += "# TYPE " + name + " ";
    out += KindName(static_cast<int>(family.kind));
    out += "\n";
    for (const auto& [key, inst] : family.instruments) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + key + " " + std::to_string(inst.counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + key + " " + FormatNumber(inst.gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *inst.histogram;
          std::vector<uint64_t> buckets = h.BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += buckets[i];
            out += name + "_bucket" +
                   BucketLabels(inst.labels, FormatNumber(h.bounds()[i])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += buckets.back();
          out += name + "_bucket" + BucketLabels(inst.labels, "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + key + " " + FormatNumber(h.sum()) + "\n";
          out += name + "_count" + key + " " + std::to_string(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExposeJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, inst] : family.instruments) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"";
      EscapeJsonTo(name, &out);
      out += "\",\"type\":\"";
      out += KindName(static_cast<int>(family.kind));
      out += "\",\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : inst.labels) {
        if (!first_label) out += ",";
        first_label = false;
        out += "\"";
        EscapeJsonTo(k, &out);
        out += "\":\"";
        EscapeJsonTo(v, &out);
        out += "\"";
      }
      out += "}";
      switch (family.kind) {
        case Kind::kCounter:
          out += ",\"value\":" + std::to_string(inst.counter->Value());
          break;
        case Kind::kGauge:
          out += ",\"value\":" + FormatNumber(inst.gauge->Value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *inst.histogram;
          out += ",\"count\":" + std::to_string(h.count());
          out += ",\"sum\":" + FormatNumber(h.sum());
          out += ",\"p50\":" + FormatNumber(h.Quantile(0.50));
          out += ",\"p90\":" + FormatNumber(h.Quantile(0.90));
          out += ",\"p99\":" + FormatNumber(h.Quantile(0.99));
          out += ",\"buckets\":[";
          std::vector<uint64_t> buckets = h.BucketCounts();
          for (size_t i = 0; i < buckets.size(); ++i) {
            if (i > 0) out += ",";
            std::string le = i < h.bounds().size()
                                 ? FormatNumber(h.bounds()[i])
                                 : std::string("\"+Inf\"");
            out += "[" + le + "," + std::to_string(buckets[i]) + "]";
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::HistogramQuantilesText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[256];
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kHistogram) continue;
    for (const auto& [key, inst] : family.instruments) {
      const Histogram& h = *inst.histogram;
      const uint64_t n = h.count();
      const double mean = n > 0 ? h.sum() / static_cast<double>(n) : 0.0;
      std::snprintf(line, sizeof(line),
                    "%s%s: n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f\n",
                    name.c_str(), key.c_str(),
                    static_cast<unsigned long long>(n), mean, h.Quantile(0.50),
                    h.Quantile(0.90), h.Quantile(0.99));
      out += line;
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::vector<double> MetricsRegistry::LatencyBucketsMs() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
          1000, 2500, 5000, 10000, 30000};
}

SamplerCounters GetSamplerCounters(std::string_view sampler) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  MetricLabels labels{{"sampler", std::string(sampler)}};
  SamplerCounters counters;
  counters.begins = registry.GetCounter(
      "storm_sampler_begins_total", "Online queries started, by strategy",
      labels);
  counters.draws = registry.GetCounter(
      "storm_sampler_draws_total",
      "Accepted online samples returned by Next(), by strategy", labels);
  return counters;
}

}  // namespace storm
