// Trace retention and export.
//
// TraceSink keeps the last N *sampled* QueryProfiles in memory (the
// /tracez endpoint and the shell's trace view read it). ChromeTraceJson
// renders one or more profiles in the Chrome trace-event format
// (chrome://tracing, Perfetto, or any OTLP-adjacent viewer): one complete
// "X" event per span, pid split by site so a joined client+server profile
// shows up as two process tracks sharing a trace id.

#ifndef STORM_OBS_TRACE_EXPORT_H_
#define STORM_OBS_TRACE_EXPORT_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storm/obs/trace.h"

namespace storm {

class TraceSink {
 public:
  /// The process-wide sink sampled traces land in.
  static TraceSink& Default();

  explicit TraceSink(size_t capacity = 64);

  /// Retains a copy of the profile (oldest evicted past capacity).
  void Record(const QueryProfile& profile);

  /// Most-recent-last snapshot of retained profiles.
  std::vector<std::shared_ptr<const QueryProfile>> Recent() const;

  /// JSON array of retained profiles, oldest first (the /tracez body).
  std::string ToJson() const;

  /// Profiles recorded since construction (evictions included).
  uint64_t recorded_total() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  uint64_t total_ = 0;
  std::deque<std::shared_ptr<const QueryProfile>> profiles_;
};

/// Chrome trace-event JSON for one profile.
std::string ChromeTraceJson(const QueryProfile& profile);

/// Chrome trace-event JSON for several profiles in one document.
std::string ChromeTraceJson(
    const std::vector<std::shared_ptr<const QueryProfile>>& profiles);

}  // namespace storm

#endif  // STORM_OBS_TRACE_EXPORT_H_
