// Query tracing: per-query profiles built from a tree of timed spans.
//
// Session::Execute opens a root span and the evaluator opens child spans per
// phase (parse, optimize, prepare, sample_loop). Each span captures wall
// time, sample count, and the IoStats delta of the table's simulated disk
// while the span was open; the sample loop additionally appends a
// convergence trajectory (estimate, CI half-width, and cardinality estimate
// over time) so a client can render the tightening interval of Figure 1.
//
// Profiles are single-query, single-thread objects: the query path builds
// one while it runs and hands it to the caller inside QueryResult.

#ifndef STORM_OBS_TRACE_H_
#define STORM_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storm/io/io_stats.h"
#include "storm/obs/trace_context.h"
#include "storm/util/stopwatch.h"

namespace storm {

/// One closed (or still-open) phase of a query.
struct TraceSpan {
  std::string name;
  int depth = 0;         ///< nesting level; 0 is the root "query" span
  double start_ms = 0.0;  ///< offset from profile creation
  double wall_ms = 0.0;
  uint64_t samples = 0;  ///< samples drawn during the span (0 if n/a)
  IoStats io;            ///< simulated-disk delta while the span was open
  std::string note;      ///< free-form detail (sampler choice, reason, ...)
  std::string site;      ///< which process produced it ("" = local, "server")
};

/// One point of the estimate trajectory recorded by the sample loop.
struct ConvergencePoint {
  double ms = 0.0;
  uint64_t samples = 0;
  double estimate = 0.0;
  double half_width = 0.0;
  double cardinality_estimate = 0.0;
};

class QueryProfile {
 public:
  /// RAII handle for an open span. End() (or destruction) stamps wall time
  /// and the IoStats delta. Move-only; a default-constructed handle is
  /// inert, which lets call sites run unconditionally with a null profile.
  class ScopedSpan {
   public:
    ScopedSpan() = default;
    ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
    ScopedSpan& operator=(ScopedSpan&& other) noexcept {
      End();
      profile_ = other.profile_;
      index_ = other.index_;
      other.profile_ = nullptr;
      return *this;
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { End(); }

    void End();
    void SetSamples(uint64_t samples);
    void SetNote(std::string note);

   private:
    friend class QueryProfile;
    ScopedSpan(QueryProfile* profile, size_t index)
        : profile_(profile), index_(index) {}
    QueryProfile* profile_ = nullptr;
    size_t index_ = 0;
  };

  /// Creation opens the root "query" span.
  QueryProfile();

  /// Points the profile at the live atomic counters (typically the table's
  /// record store) so spans can snapshot deltas. May stay unset; deltas are
  /// then all zero. The source must outlive every open span. Atomic so the
  /// snapshot is well-defined even while concurrent queries or writers
  /// bump the same counters.
  void SetIoSource(const AtomicIoStats* source) { io_source_ = source; }

  /// Opens a child span under the innermost open span.
  ScopedSpan Span(std::string name);

  /// Closes every span still open (the root included). Idempotent; called
  /// by Session before handing the profile out.
  void Finish();

  /// Appends to the convergence trajectory; decimates by power-of-two
  /// strides once `kMaxConvergencePoints` is reached, so profiles of
  /// long-running queries stay bounded.
  void AddConvergencePoint(double elapsed_ms, uint64_t samples,
                           double estimate, double half_width,
                           double cardinality_estimate);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<ConvergencePoint>& convergence() const { return points_; }

  /// Appends one already-closed span at the end of the tree. Used by the
  /// wire decoder and by MergeServerProfile; never reopens the span.
  void AppendFinishedSpan(TraceSpan span);

  /// Replaces the span tree wholesale with already-closed spans (the wire
  /// decode path, where the decoded tree must round-trip byte-for-byte —
  /// including the root the constructor would otherwise mint).
  void ReplaceSpans(std::vector<TraceSpan> spans);

  /// Replaces the convergence trajectory (wire decode path).
  void ReplaceConvergence(std::vector<ConvergencePoint> points);

  /// Grafts a remote profile under this one: the server's spans are
  /// appended one level deeper, tagged site="server" (unless already
  /// tagged), keeping their server-relative timestamps. The convergence
  /// trajectory is adopted when this profile has none (the common
  /// RemoteClient case — convergence happens server-side).
  void MergeServerProfile(const QueryProfile& server);

  /// First span with this name, or nullptr.
  const TraceSpan* Find(std::string_view name) const;

  double total_ms() const { return spans_.empty() ? 0.0 : spans_[0].wall_ms; }
  IoStats total_io() const { return spans_.empty() ? IoStats() : spans_[0].io; }
  /// Sample count of the root span (the evaluator propagates the loop's
  /// count upward when it finishes).
  uint64_t total_samples() const {
    return spans_.empty() ? 0 : spans_[0].samples;
  }

  /// Compact JSON document (spans + convergence + metadata).
  std::string ToJson() const;

  /// Human-readable profile for the shell's \profile command.
  std::string ToString() const;

  // Query metadata, filled in by the session/evaluator as it becomes known.
  std::string query;
  std::string table;
  std::string task;
  std::string sampler;
  /// Identity of the trace this profile belongs to (invalid when the query
  /// ran untraced). Set by Session/RemoteClient, carried over the wire.
  TraceContext trace;

  static constexpr size_t kMaxConvergencePoints = 512;

 private:
  IoStats CurrentIo() const {
    return io_source_ != nullptr ? io_source_->Snapshot() : IoStats();
  }
  void EndSpan(size_t index);

  Stopwatch watch_;
  const AtomicIoStats* io_source_ = nullptr;
  std::vector<TraceSpan> spans_;
  std::vector<IoStats> start_io_;   // parallel to spans_
  std::vector<bool> span_open_;     // parallel to spans_
  std::vector<size_t> open_stack_;  // indices of open spans, root first
  std::vector<ConvergencePoint> points_;
  uint64_t points_seen_ = 0;
  uint64_t point_stride_ = 1;
};

/// A span on `profile`, or an inert handle when `profile` is null.
inline QueryProfile::ScopedSpan ProfileSpan(QueryProfile* profile,
                                            const char* name) {
  return profile != nullptr ? profile->Span(name) : QueryProfile::ScopedSpan();
}

}  // namespace storm

#endif  // STORM_OBS_TRACE_H_
