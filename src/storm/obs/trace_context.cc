#include "storm/obs/trace_context.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "storm/util/rng.h"

namespace storm {

namespace {

std::string Hex(uint64_t v, int digits) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(v));
  return buf;
}

// Per-thread id generator. Seeded from the monotonic clock mixed with the
// thread identity so concurrent threads (and successive processes) mint
// distinct ids; queries never consume from it, so seeded experiments stay
// reproducible.
Rng& IdRng() {
  thread_local Rng* rng = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    uint64_t state = seed;
    return new Rng(SplitMix64(state));
  }();
  return *rng;
}

thread_local TraceContext g_current;

}  // namespace

std::string TraceContext::trace_id_hex() const {
  return Hex(trace_id_hi, 16) + Hex(trace_id_lo, 16);
}

std::string TraceContext::span_id_hex() const { return Hex(span_id, 16); }

TraceContext TraceContext::Mint(bool sampled) {
  Rng& rng = IdRng();
  TraceContext ctx;
  // An all-zero trace id means "absent"; re-draw the astronomically unlikely
  // zero so valid() is trustworthy.
  do {
    ctx.trace_id_hi = rng.Next64();
    ctx.trace_id_lo = rng.Next64();
  } while (!ctx.valid());
  ctx.span_id = rng.Next64();
  ctx.sampled = sampled;
  return ctx;
}

TraceContext TraceContext::Child() const {
  TraceContext child = *this;
  child.span_id = IdRng().Next64();
  return child;
}

const TraceContext& CurrentTraceContext() { return g_current; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : previous_(g_current) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = previous_; }

}  // namespace storm
