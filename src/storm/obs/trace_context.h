// TraceContext: the identity a query carries across threads and process
// boundaries — a 128-bit trace id, a 64-bit span id, and a sampled flag.
//
// The client (storm::Client via Session, or RemoteClient over the wire)
// mints a context when a query starts; every hop derives a child context
// (same trace id, fresh span id) so a distributed profile can be stitched
// back together by trace id. The sampled flag is the retention decision:
// sampled traces are collected into the process TraceSink (/tracez, Chrome
// trace export); unsampled ones still carry ids for log and flight-recorder
// correlation but pay no profiling cost.
//
// A thread-local *ambient* context (CurrentTraceContext / ScopedTraceContext)
// lets deep call sites — log lines, failpoint trips, flight-recorder events,
// parallel sampling workers, cluster fan-out threads — tag themselves with
// the trace id of the query they are serving without threading a parameter
// through every signature.

#ifndef STORM_OBS_TRACE_CONTEXT_H_
#define STORM_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

namespace storm {

struct TraceContext {
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  uint64_t span_id = 0;
  bool sampled = false;

  /// A context with an all-zero trace id is "no trace" (the wire encodes
  /// absence this way, matching W3C trace-context semantics).
  bool valid() const { return (trace_id_hi | trace_id_lo) != 0; }

  /// 32 lowercase hex chars (the id the export formats and log lines use).
  std::string trace_id_hex() const;
  /// 16 lowercase hex chars.
  std::string span_id_hex() const;

  /// Mints a fresh context: random 128-bit trace id, random span id. The
  /// generator is a thread-local PCG stream seeded once per thread from the
  /// monotonic clock and the thread identity — ids are unique for
  /// correlation purposes, not cryptographic.
  static TraceContext Mint(bool sampled);

  /// Same trace, fresh span id: what a server or worker adopts so its spans
  /// are distinguishable from the caller's while sharing the trace id.
  TraceContext Child() const;

  bool operator==(const TraceContext& other) const {
    return trace_id_hi == other.trace_id_hi &&
           trace_id_lo == other.trace_id_lo && span_id == other.span_id &&
           sampled == other.sampled;
  }
};

/// The ambient context of the current thread (invalid when none installed).
const TraceContext& CurrentTraceContext();

/// Installs `ctx` as the current thread's ambient context for the scope,
/// restoring the previous one on destruction. Cheap: two thread-local copies.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace storm

#endif  // STORM_OBS_TRACE_CONTEXT_H_
