#include "storm/obs/trace_export.h"

#include <cstdio>

namespace storm {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// One trace-event per span. `pid` separates processes in the viewer: the
// local process is pid 1 and every distinct remote site gets its own pid,
// so a joined profile renders as parallel client/server tracks.
void AppendProfileEvents(const QueryProfile& profile, bool* first,
                         std::string* out) {
  const std::string trace_id =
      profile.trace.valid() ? profile.trace.trace_id_hex() : std::string();
  char buf[160];
  for (const TraceSpan& span : profile.spans()) {
    if (!*first) *out += ",";
    *first = false;
    *out += "{\"name\":\"";
    AppendJsonEscaped(out, span.name);
    const int pid = span.site.empty() ? 1 : 2;
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":%d,"
                  "\"tid\":%d,\"args\":{",
                  span.start_ms * 1000.0, span.wall_ms * 1000.0, pid,
                  span.depth);
    *out += buf;
    bool first_arg = true;
    if (!trace_id.empty()) {
      *out += "\"trace_id\":\"" + trace_id + "\"";
      first_arg = false;
    }
    if (!span.site.empty()) {
      if (!first_arg) *out += ",";
      *out += "\"site\":\"";
      AppendJsonEscaped(out, span.site);
      *out += "\"";
      first_arg = false;
    }
    if (span.samples != 0) {
      if (!first_arg) *out += ",";
      *out += "\"samples\":" + std::to_string(span.samples);
      first_arg = false;
    }
    if (!span.note.empty()) {
      if (!first_arg) *out += ",";
      *out += "\"note\":\"";
      AppendJsonEscaped(out, span.note);
      *out += "\"";
    }
    *out += "}}";
  }
}

}  // namespace

TraceSink& TraceSink::Default() {
  // Leaked on purpose: recording threads may outlive static destruction.
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink::TraceSink(size_t capacity) : capacity_(capacity) {}

void TraceSink::Record(const QueryProfile& profile) {
  auto copy = std::make_shared<const QueryProfile>(profile);
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  profiles_.push_back(std::move(copy));
  while (profiles_.size() > capacity_) profiles_.pop_front();
}

std::vector<std::shared_ptr<const QueryProfile>> TraceSink::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {profiles_.begin(), profiles_.end()};
}

std::string TraceSink::ToJson() const {
  std::vector<std::shared_ptr<const QueryProfile>> recent = Recent();
  std::string out = "[";
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) out += ",";
    out += recent[i]->ToJson();
  }
  out += "]";
  return out;
}

uint64_t TraceSink::recorded_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::string ChromeTraceJson(const QueryProfile& profile) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  AppendProfileEvents(profile, &first, &out);
  out += "]}";
  return out;
}

std::string ChromeTraceJson(
    const std::vector<std::shared_ptr<const QueryProfile>>& profiles) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& profile : profiles) {
    if (profile != nullptr) AppendProfileEvents(*profile, &first, &out);
  }
  out += "]}";
  return out;
}

}  // namespace storm
