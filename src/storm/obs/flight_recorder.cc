#include "storm/obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "storm/obs/trace_context.h"

// ThreadSanitizer does not model std::atomic_thread_fence (GCC even makes
// it a hard error under -fsanitize=thread -Werror=tsan), so TSan builds
// take a fence-free seqlock re-check below.
#if defined(__SANITIZE_THREAD__)
#define STORM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STORM_TSAN 1
#endif
#endif

namespace storm {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string_view FlightEventName(FlightEvent e) {
  switch (e) {
    case FlightEvent::kMark:
      return "mark";
    case FlightEvent::kQueryAdmit:
      return "query_admit";
    case FlightEvent::kQueryFinish:
      return "query_finish";
    case FlightEvent::kQueryShed:
      return "query_shed";
    case FlightEvent::kFrameRx:
      return "frame_rx";
    case FlightEvent::kFrameTx:
      return "frame_tx";
    case FlightEvent::kBackpressureDrop:
      return "backpressure_drop";
    case FlightEvent::kBackpressureStall:
      return "backpressure_stall";
    case FlightEvent::kConnOpen:
      return "conn_open";
    case FlightEvent::kConnClose:
      return "conn_close";
    case FlightEvent::kWalSync:
      return "wal_sync";
    case FlightEvent::kFailpointTrip:
      return "failpoint_trip";
    case FlightEvent::kCancel:
      return "cancel";
    case FlightEvent::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Default() {
  // Leaked on purpose: recording threads may outlive static destruction.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder() : epoch_ns_(SteadyNowNs()) {}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  // One ring per (recorder, thread). The registry keeps a shared_ptr so a
  // ring's events remain dumpable after its thread exits; the thread-local
  // holds another so the pointer stays valid for the thread's lifetime.
  thread_local std::shared_ptr<Ring> ring;
  thread_local FlightRecorder* owner = nullptr;
  if (owner != this) {
    auto fresh = std::make_shared<Ring>();
    std::lock_guard<std::mutex> lock(rings_mutex_);
    fresh->thread_id = static_cast<uint32_t>(rings_.size());
    rings_.push_back(fresh);
    ring = std::move(fresh);
    owner = this;
  }
  return ring.get();
}

void FlightRecorder::Record(FlightEvent type, uint64_t a, uint64_t b,
                            std::string_view label) {
  Ring* ring = RingForThisThread();
  Slot& slot = ring->slots[ring->head];
  ring->head = (ring->head + 1) % kRingEvents;

  // Seqlock write: invalidate, fill, publish. Only this thread writes the
  // slot, so plain relaxed stores suffice between the two seq updates.
  slot.seq.store(0, std::memory_order_release);
  slot.ts_us.store((SteadyNowNs() - epoch_ns_) / 1000,
                   std::memory_order_relaxed);
  slot.type.store(static_cast<uint16_t>(type), std::memory_order_relaxed);
  slot.trace_lo.store(CurrentTraceContext().trace_id_lo,
                      std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  const size_t n = std::min(label.size(), kLabelBytes - 1);
  for (size_t i = 0; i < n; ++i) {
    slot.label[i].store(label[i], std::memory_order_relaxed);
  }
  slot.label[n].store('\0', std::memory_order_relaxed);
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightRecorder::Snapshot> FlightRecorder::Dump(
    size_t max_events) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings = rings_;
  }
  std::vector<Snapshot> out;
  for (const auto& ring : rings) {
    for (const Slot& slot : ring->slots) {
      // Seqlock read: copy, then confirm the slot was not rewritten
      // underneath us. A mismatch means the writer lapped this slot;
      // dropping it loses the *oldest* events, which is the right bias.
      const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before == 0) continue;
      Snapshot snap;
      snap.seq = seq_before;
      snap.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      snap.thread = ring->thread_id;
      snap.type = static_cast<FlightEvent>(
          slot.type.load(std::memory_order_relaxed));
      snap.trace_lo = slot.trace_lo.load(std::memory_order_relaxed);
      snap.a = slot.a.load(std::memory_order_relaxed);
      snap.b = slot.b.load(std::memory_order_relaxed);
      for (size_t i = 0; i < kLabelBytes; ++i) {
        const char c = slot.label[i].load(std::memory_order_relaxed);
        if (c == '\0') break;
        snap.label += c;
      }
#if defined(STORM_TSAN)
      // No fence under TSan: an acquire re-read of seq is the strongest
      // available check. Every slot field is atomic, so the worst case is
      // a torn *snapshot* (mixed old/new fields in one diagnostic event),
      // never a data race.
      if (slot.seq.load(std::memory_order_acquire) != seq_before) continue;
#else
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
#endif
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Snapshot& x, const Snapshot& y) { return x.seq < y.seq; });
  if (max_events > 0 && out.size() > max_events) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(max_events));
  }
  return out;
}

std::string FlightRecorder::DumpText(size_t max_events) const {
  std::vector<Snapshot> events = Dump(max_events);
  std::string out = "flight recorder dump (" + std::to_string(events.size()) +
                    " events)\n";
  char line[192];
  for (const Snapshot& e : events) {
    std::snprintf(line, sizeof(line),
                  "  #%llu %10.3fms t%02u %-18s a=%llu b=%llu",
                  static_cast<unsigned long long>(e.seq), e.ts_us / 1000.0,
                  e.thread, std::string(FlightEventName(e.type)).c_str(),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
    if (e.trace_lo != 0) {
      std::snprintf(line, sizeof(line), " trace=%016llx",
                    static_cast<unsigned long long>(e.trace_lo));
      out += line;
    }
    if (!e.label.empty()) {
      out += " ";
      out += e.label;
    }
    out += "\n";
  }
  return out;
}

std::string FlightRecorder::DumpJson(size_t max_events) const {
  std::vector<Snapshot> events = Dump(max_events);
  std::string out = "[";
  bool first = true;
  char buf[192];
  for (const Snapshot& e : events) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%llu,\"ts_us\":%llu,\"thread\":%u,\"event\":\"",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.ts_us), e.thread);
    out += buf;
    out += FlightEventName(e.type);
    std::snprintf(buf, sizeof(buf), "\",\"a\":%llu,\"b\":%llu",
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += buf;
    if (e.trace_lo != 0) {
      std::snprintf(buf, sizeof(buf), ",\"trace\":\"%016llx\"",
                    static_cast<unsigned long long>(e.trace_lo));
      out += buf;
    }
    if (!e.label.empty()) {
      out += ",\"label\":\"";
      AppendJsonEscaped(&out, e.label);
      out += "\"";
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace storm
