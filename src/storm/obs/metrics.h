// MetricsRegistry: named counters, gauges, and fixed-bucket histograms for
// the serving-side observability layer.
//
// The hot path is lock-free: instruments are plain atomics, and call sites
// resolve an instrument pointer once (per query / per component) and then
// increment through it from inside Next()/Pin() loops. Registration and
// exposition take a registry mutex; both are off the hot path.
//
// Exposition formats: Prometheus text (ExposePrometheus) for scraping and a
// JSON document (ExposeJson) for programmatic clients. Metric names follow
// the convention documented in docs/OBSERVABILITY.md:
// storm_<component>_<what>[_total|_ms].

#ifndef STORM_OBS_METRICS_H_
#define STORM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace storm {

/// A monotonically increasing counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that can go up and down. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram (Prometheus-style: buckets are upper bounds,
/// with an implicit +Inf bucket). Thread-safe, lock-free observes.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; the +Inf bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the last
  /// entry being the +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket the quantile rank lands in — the same estimate Prometheus's
  /// histogram_quantile() computes. Observations in the +Inf bucket clamp
  /// to the largest finite bound. Returns 0 for an empty histogram.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Label set attached to one instrument of a metric family. Ordered so the
/// serialized form (and hence the exposition output) is deterministic.
using MetricLabels = std::map<std::string, std::string>;

class MetricsRegistry {
 public:
  /// Each Get* registers the (name, labels) instrument on first use and
  /// returns the same pointer afterwards. Pointers stay valid for the
  /// registry's lifetime. Asking for an existing name with a different
  /// instrument type logs an error and returns a detached instrument that
  /// is never exported (so call sites need no error handling).
  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const MetricLabels& labels = {});

  /// Prometheus text exposition format, families sorted by name.
  std::string ExposePrometheus() const;

  /// JSON exposition: {"metrics": [{name, type, labels, ...}, ...]}.
  /// Histograms include derived p50/p90/p99.
  std::string ExposeJson() const;

  /// One line per registered histogram with count, mean, and interpolated
  /// p50/p90/p99 — the human-readable latency summary the shell's \metrics
  /// view appends. Empty string when no histograms are registered.
  std::string HistogramQuantilesText() const;

  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Default();

  /// Default latency buckets (milliseconds), sub-ms to tens of seconds.
  static std::vector<double> LatencyBucketsMs();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Instrument> instruments;  // key: serialized labels
  };

  Family* FamilyFor(const std::string& name, Kind kind,
                    const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
  // Instruments handed out on type mismatch; owned but never exported.
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_;
};

/// Per-strategy sampler instruments, resolved once per Begin() so Next()
/// only pays one relaxed atomic add per accepted draw.
struct SamplerCounters {
  Counter* begins = nullptr;
  Counter* draws = nullptr;
};
SamplerCounters GetSamplerCounters(std::string_view sampler);

}  // namespace storm

#endif  // STORM_OBS_METRICS_H_
